//! Integration tests tying the abstract MDP models to the concrete chain
//! substrate through the simulator — the workspace's "the model is the
//! protocol" guarantees.

use bvc::bu::{AttackConfig, AttackModel, AttackState, IncentiveModel, Setting, SolveOptions};
use bvc::chain::{BlockId, BlockTree, BuRizunRule, ByteSize, MinerId, NodeView};
use bvc::mdp::solve::{sample_path, XorShift64};
use bvc::sim::AttackReplay;

/// The Figure-2 phase-1 split expressed three ways — chain views, MDP
/// state derivation, and the model's fork-start transition — all agree.
#[test]
fn phase1_split_consistency() {
    // Chain world.
    let mut tree = BlockTree::new();
    let mut bob = NodeView::new(BuRizunRule::without_sticky_gate(ByteSize::mb(1), 6));
    let mut carol = NodeView::new(BuRizunRule::without_sticky_gate(ByteSize::mb(16), 6));
    let fork = tree.extend(BlockId::GENESIS, ByteSize::mb(16), MinerId(0));
    bob.receive(&tree, fork);
    carol.receive(&tree, fork);
    assert_eq!(bob.accepted_tip(), BlockId::GENESIS);
    assert_eq!(carol.accepted_tip(), fork);

    // The MDP's fork-start state is exactly (0, 1, 0, 1, 0) and is reachable.
    let model = AttackModel::build(AttackConfig::with_ratio(
        0.2,
        (1, 1),
        Setting::One,
        IncentiveModel::CompliantProfitDriven,
    ))
    .unwrap();
    let s = AttackState { l1: 0, l2: 1, a1: 0, a2: 1, r: 0 };
    assert!(model.id_of(&s).is_some());
}

/// Replaying the honest policy through both Monte Carlo channels (MDP path
/// sampling and the chain replay) gives the honest utilities.
#[test]
fn two_monte_carlo_channels_agree_on_honest() {
    let model = AttackModel::build(AttackConfig::with_ratio(
        0.3,
        (1, 1),
        Setting::One,
        IncentiveModel::CompliantProfitDriven,
    ))
    .unwrap();
    let policy = model.honest_policy();

    let base = model.id_of(&AttackState::BASE).unwrap();
    let mut rng = XorShift64::new(77);
    let path = sample_path(model.mdp(), &policy, base, 100_000, &mut rng).unwrap();
    let rates = path.component_rates();
    let mdp_u1 = rates[0] / (rates[0] + rates[1]);

    let mut replay = AttackReplay::new(&model, &policy, 78);
    let chain = replay.run(100_000);

    assert!((mdp_u1 - 0.3).abs() < 0.01, "MDP-MC u1 {mdp_u1}");
    assert!((chain.u1() - 0.3).abs() < 0.01, "chain-MC u1 {}", chain.u1());
}

/// The optimal non-compliant policy replayed on real chains reproduces the
/// exact MDP value — the strongest single consistency statement about this
/// workspace (one assertion spanning all five crates).
#[test]
fn optimal_policy_end_to_end() {
    let model = AttackModel::build(AttackConfig::with_ratio(
        0.15,
        (1, 2),
        Setting::One,
        IncentiveModel::non_compliant_default(),
    ))
    .unwrap();
    let sol = model.optimal_absolute_revenue(&SolveOptions::default()).unwrap();
    let exact = model.evaluate(&sol.policy).unwrap();
    let mut replay = AttackReplay::new(&model, &sol.policy, 5150);
    let report = replay.run(300_000);
    assert!((report.u2() - exact.u2).abs() < 0.02, "chain {} vs exact {}", report.u2(), exact.u2);
    assert!((report.u1() - exact.u1).abs() < 0.02, "chain {} vs exact {}", report.u1(), exact.u1);
}

/// Every state the chain replay visits must be reachable in the MDP — run
/// a long replay under a policy that forks aggressively and rely on the
/// replay's internal unreachable-state panic.
#[test]
fn chain_replay_stays_within_mdp_state_space() {
    let model = AttackModel::build(AttackConfig::with_ratio(
        0.10,
        (2, 3),
        Setting::One,
        IncentiveModel::NonProfitDriven,
    ))
    .unwrap();
    let sol = model.optimal_orphan_rate(&SolveOptions::default()).unwrap();
    let mut replay = AttackReplay::new(&model, &sol.policy, 99);
    let report = replay.run(150_000); // panics internally on any unmapped state
    assert!(report.oothers > 0.0, "the optimal non-profit policy must orphan blocks");
}
