//! Cross-crate integration tests pinning the paper's headline results.
//!
//! Each analytical result of the paper gets one end-to-end test through the
//! public facade crate; the finer-grained per-cell pins live in the
//! individual crates.

use bvc::bitcoin::{BitcoinConfig, BitcoinModel};
use bvc::bu::{AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};
use bvc::games::{BlockSizeIncreasingGame, EbChoosingGame, MinerGroup};

fn bu_model(
    alpha: f64,
    ratio: (u32, u32),
    setting: Setting,
    incentive: IncentiveModel,
) -> AttackModel {
    AttackModel::build(AttackConfig::with_ratio(alpha, ratio, setting, incentive))
        .expect("model builds")
}

/// Analytical Result 1: when BVC is absent, BU is not incentive compatible
/// even when all miners follow the protocol — and the violation appears
/// exactly when α + γ > β.
#[test]
fn analytical_result_1_incentive_incompatibility() {
    let opts = SolveOptions::default();
    // α + γ > β: strategic forking beats honest mining.
    let m = bu_model(0.25, (1, 1), Setting::One, IncentiveModel::CompliantProfitDriven);
    let best = m.optimal_relative_revenue(&opts).unwrap();
    assert!(best.value > 0.25 + 1e-3, "expected unfair revenue, got {}", best.value);
    // α + γ ≤ β: honest mining is optimal.
    let m = bu_model(0.10, (4, 1), Setting::One, IncentiveModel::CompliantProfitDriven);
    let best = m.optimal_relative_revenue(&opts).unwrap();
    assert!((best.value - 0.10).abs() < 1e-3, "expected fair revenue, got {}", best.value);
    // Bitcoin comparison: honest-compliant mining is always exactly fair.
    let honest = m.evaluate(&m.honest_policy()).unwrap();
    assert!((honest.u1 - 0.10).abs() < 1e-6);
}

/// Analytical Result 2: double-spending in BU is often more profitable than
/// the optimal combined attack on Bitcoin; even a 1% miner profits.
#[test]
fn analytical_result_2_double_spending() {
    let opts = SolveOptions::default();
    let bu = bu_model(0.01, (1, 1), Setting::One, IncentiveModel::non_compliant_default())
        .optimal_absolute_revenue(&opts)
        .unwrap()
        .value;
    assert!(bu > 0.01 + 1e-3, "1% BU miner must profit, got {bu}");
    // The Bitcoin optimum at 1% is honest mining even with guaranteed ties.
    let btc = BitcoinModel::build(BitcoinConfig::smds(0.01, 1.0))
        .unwrap()
        .optimal_absolute_revenue(&bvc::bitcoin::SolveOptions::default())
        .unwrap()
        .value;
    assert!((btc - 0.01).abs() < 1e-3, "1% Bitcoin miner cannot profit, got {btc}");
    assert!(bu > 2.0 * btc, "BU must dominate Bitcoin at 1%: {bu} vs {btc}");
}

/// Analytical Result 3: a non-profit-driven attacker orphans up to ~1.77
/// compliant blocks per attacker block (Bitcoin: at most 1).
#[test]
fn analytical_result_3_orphan_amplification() {
    let opts = SolveOptions::default();
    let best = bu_model(0.01, (2, 3), Setting::One, IncentiveModel::NonProfitDriven)
        .optimal_orphan_rate(&opts)
        .unwrap();
    assert!(best.value > 1.7, "expected ≈ 1.77, got {}", best.value);
    assert!(best.value < 1.85, "expected ≈ 1.77, got {}", best.value);
}

/// Analytical Result 4: with every miner below 50%, the EB choosing game's
/// equilibria are exactly the unanimous profiles.
#[test]
fn analytical_result_4_eb_equilibria() {
    let g = EbChoosingGame::new(vec![0.2, 0.25, 0.25, 0.3]);
    let eq = g.enumerate_equilibria().expect("4 miners is far below the cap");
    assert_eq!(eq.len(), 2);
    assert!(eq.iter().all(|p| p.iter().all(|&c| c == p[0])));
}

/// Analytical Result 5: the block size increasing game terminates at the
/// first stable set, forcing all earlier groups out (Figure 4's instance).
#[test]
fn analytical_result_5_stable_sets() {
    let g = BlockSizeIncreasingGame::new(vec![
        MinerGroup { mpb: 1.0, power: 0.1 },
        MinerGroup { mpb: 2.0, power: 0.2 },
        MinerGroup { mpb: 3.0, power: 0.3 },
        MinerGroup { mpb: 4.0, power: 0.4 },
    ]);
    let trace = g.play();
    assert_eq!(trace.terminal, 1);
    assert_eq!(trace.terminal, g.terminal_set());
    assert_eq!(g.utilities()[0], 0.0, "the 10% group is forced out");
}

/// The incentive models share one state space: the same model solved under
/// all three objectives gives consistent reports for a single policy.
#[test]
fn one_policy_three_utilities() {
    let m = bu_model(0.2, (1, 1), Setting::One, IncentiveModel::non_compliant_default());
    let opts = SolveOptions::default();
    let sol = m.optimal_absolute_revenue(&opts).unwrap();
    let report = m.evaluate(&sol.policy).unwrap();
    // u2 of the u2-optimal policy is its solver value.
    assert!((report.u2 - sol.value).abs() < 1e-4);
    // Its u1 cannot exceed the u1 optimum.
    let u1_best = m.optimal_relative_revenue(&opts).unwrap().value;
    assert!(report.u1 <= u1_best + 1e-4);
    // Component rates are a probability-like decomposition: locked plus
    // orphaned blocks account for every block mined (rate 1 per step).
    let total: f64 = report.rates[..4].iter().sum();
    assert!((total - 1.0).abs() < 1e-6, "block conservation, got {total}");
}

/// Structural relations between the two settings:
///
/// * at β-heavy ratios Chain-2 wins are vanishingly rare, so the settings —
///   which differ only in what follows a Chain-2 win — nearly coincide;
/// * at γ-heavy ratios setting 2 can *exceed* setting 1 (the paper's own
///   panels show 0.27 > 0.26 at α = 10%, β:γ = 1:2): phase 2 swaps the
///   roles so the large group defends Chain 1, giving the attacker a second
///   profitable splitting mode;
/// * both settings always weakly dominate honest mining (the honest policy
///   is in the strategy space).
#[test]
fn setting_comparison_structure() {
    let opts = SolveOptions::default();
    let solve = |ratio, setting| {
        bu_model(0.1, ratio, setting, IncentiveModel::non_compliant_default())
            .optimal_absolute_revenue(&opts)
            .unwrap()
            .value
    };
    // Near-coincidence at 4:1.
    let s1 = solve((4, 1), Setting::One);
    let s2 = solve((4, 1), Setting::Two);
    assert!((s1 - s2).abs() < 5e-3, "4:1 settings must nearly agree: {s1} vs {s2}");
    // Setting 2 beats setting 1 at 1:2 (matches the published panel order).
    let s1 = solve((1, 2), Setting::One);
    let s2 = solve((1, 2), Setting::Two);
    assert!(s2 > s1, "1:2: expected setting2 {s2} > setting1 {s1}");
    // Dominance over honest mining everywhere.
    for ratio in [(2, 1), (1, 1), (1, 2)] {
        for setting in [Setting::One, Setting::Two] {
            assert!(solve(ratio, setting) >= 0.1 - 1e-4);
        }
    }
}
