//! Emergent consensus on a realistic mining-power distribution: will the
//! 2017 Bitcoin mining landscape converge on one block size under BU?
//!
//! Uses approximate April-2017 pool power shares (AntPool, F2Pool, BTC.TOP,
//! Bitmain/BTC.com, ViaBTC, Slush, smaller pools) and plays both §5 games:
//! the EB choosing game (can a common EB be an equilibrium?) and the block
//! size increasing game under several assumed MPB orderings (who gets
//! forced out when miners are profit-driven?).
//!
//! Run: `cargo run --release --example emergent_consensus`

use bvc::games::{BlockSizeIncreasingGame, EbChoosingGame, MinerGroup};

/// Approximate pool power shares, spring 2017 (normalized).
const POOLS: [(&str, f64); 8] = [
    ("AntPool", 0.17),
    ("F2Pool", 0.13),
    ("BTC.TOP", 0.10),
    ("BTC.com", 0.10),
    ("ViaBTC", 0.08),
    ("SlushPool", 0.07),
    ("BW.COM", 0.06),
    ("others", 0.29),
];

fn main() {
    let powers: Vec<f64> = POOLS.iter().map(|(_, p)| *p).collect();
    println!("=== Emergent consensus on the 2017 pool distribution ===");
    println!();
    for (name, p) in POOLS {
        println!("  {name:<10} {:>5.1}%", p * 100.0);
    }
    println!();

    // --- EB choosing game. ---
    let eb = EbChoosingGame::new(powers.clone());
    let eq = eb.enumerate_equilibria().expect("8 pools is far below the cap");
    println!("EB choosing game: {} pure Nash equilibria", eq.len());
    println!("  (the unanimous profiles — consensus is an equilibrium, but the game");
    println!("   never selects which EB, and any shock restarts the coordination)");
    let (profile, nash) = eb.best_response_dynamics(vec![0, 1, 0, 1, 0, 1, 0, 1], 100);
    println!(
        "  best-response dynamics from an even split -> {} (equilibrium: {nash})",
        if profile.iter().all(|&c| c == profile[0]) { "unanimity" } else { "disagreement" }
    );
    println!();

    // --- Block size increasing game under different MPB orderings. ---
    println!("block size increasing game (who survives when miners raise MG rationally):");
    let scenarios: [(&str, Vec<usize>); 3] = [
        // MPB ordering = index of each pool in increasing-MPB order.
        ("small pools have small MPBs", vec![7, 6, 5, 4, 3, 2, 1, 0]),
        ("large pools have small MPBs", vec![0, 1, 2, 3, 4, 5, 6, 7]),
        ("mixed bandwidth", vec![5, 7, 1, 3, 0, 6, 2, 4]),
    ];
    for (label, order) in scenarios {
        let groups: Vec<MinerGroup> = order
            .iter()
            .enumerate()
            .map(|(rank, &pool)| MinerGroup { mpb: (rank + 1) as f64, power: powers[pool] })
            .collect();
        let game = BlockSizeIncreasingGame::new(groups);
        let trace = game.play();
        let survivors: Vec<&str> =
            (trace.terminal..game.len()).map(|i| POOLS[order[i]].0).collect();
        let forced_out: Vec<&str> = (0..trace.terminal).map(|i| POOLS[order[i]].0).collect();
        println!("  {label}:");
        println!("    rounds played: {}", trace.rounds.len());
        println!("    forced out  : {forced_out:?}");
        println!("    survivors   : {survivors:?}");
    }
    println!();
    println!("Analytical Result 5 in practice: unless the distribution happens to form");
    println!("a stable set, profit-driven miners raise the block size and squeeze the");
    println!("weakest groups out — 'emergent consensus' converges by exclusion, and the");
    println!("resulting block size tracks miner profitability, not network capacity.");
}
