//! Network split end-to-end: run the Cryptoconomy splitter attack on a
//! simulated BU network with the paper's April-2017 parameter snapshot
//! (miners at EB = 1 MB / AD = 6, plus a large-EB segment), and watch the
//! chain fork through real node views.
//!
//! Exercises the full `bvc-sim` + `bvc-chain` stack: sticky gates,
//! AD-acceptance, first-seen fork choice, propagation, reorg accounting.
//!
//! Run: `cargo run --release --example network_split`

use bvc::chain::{BuRizunRule, ByteSize, MinerId};
use bvc::sim::{DelayModel, HonestStrategy, MinerSpec, Simulation, SplitterStrategy};

fn main() {
    let mb1 = ByteSize::mb(1);
    let eb_c = ByteSize::mb(16);
    let blocks = 10_000;

    println!("=== Splitter attack on a five-node BU network ({blocks} blocks) ===");
    println!();
    println!("  node 0: attacker, 8%  power, EB = 16 MB (adaptive splitter)");
    println!("  node 1: miner,   30%  power, EB = 1 MB,  AD = 6");
    println!("  node 2: miner,   25%  power, EB = 1 MB,  AD = 6");
    println!("  node 3: miner,   22%  power, EB = 16 MB, AD = 6");
    println!("  node 4: miner,   15%  power, EB = 16 MB, AD = 12 (public-node profile)");
    println!();

    let miners: Vec<MinerSpec<BuRizunRule>> = vec![
        MinerSpec {
            power: 0.08,
            rule: BuRizunRule::new(eb_c, 6),
            strategy: Box::new(SplitterStrategy::against(eb_c, mb1, 6, mb1)),
        },
        MinerSpec {
            power: 0.30,
            rule: BuRizunRule::new(mb1, 6),
            strategy: Box::new(HonestStrategy { mg: mb1 }),
        },
        MinerSpec {
            power: 0.25,
            rule: BuRizunRule::new(mb1, 6),
            strategy: Box::new(HonestStrategy { mg: mb1 }),
        },
        MinerSpec {
            power: 0.22,
            rule: BuRizunRule::new(eb_c, 6),
            strategy: Box::new(HonestStrategy { mg: mb1 }),
        },
        MinerSpec {
            power: 0.15,
            rule: BuRizunRule::new(eb_c, 12),
            strategy: Box::new(HonestStrategy { mg: mb1 }),
        },
    ];

    let mut sim = Simulation::new(miners, DelayModel::Zero, 2017);
    let report = sim.run(blocks);

    println!("results:");
    for node in 0..5 {
        println!(
            "  node {node}: {:>4} reorgs, deepest {} blocks",
            report.reorg_count(node),
            report.max_reorg_depth(node)
        );
    }
    let on_chain: usize = report.chain_blocks[1].values().sum();
    println!();
    println!(
        "  blocks mined {}, on node 1's final chain {}, orphan rate {:.2}%",
        report.blocks_mined,
        on_chain,
        100.0 * (report.blocks_mined - on_chain) as f64 / report.blocks_mined as f64
    );
    for node in [1usize, 4] {
        println!(
            "  attacker's share of node {node}'s chain: {:.4} (power 0.08)",
            report.chain_share(node, MinerId(0))
        );
    }
    let agree = report.final_tips.windows(2).all(|w| w[0] == w[1]);
    println!("  final views agree: {agree}");
    println!();
    println!("An 8% attacker keeps a 92%-honest BU network persistently forked —");
    println!("every reorg is a double-spend window and a waste of compliant work.");
    println!("The same attacker on a Bitcoin-rule network produces zero reorgs");
    println!("(rerun with all EBs equal to see it).");
}
