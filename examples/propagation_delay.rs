//! Propagation-delay study: what the paper's zero-delay assumption hides,
//! and why miners' block-size preferences differ (§2.3 / Assumption 2).
//!
//! Two experiments on the network simulator:
//!
//! 1. natural orphan rate vs. uniform propagation delay — honest miners
//!    only; the classic near-linear relation `orphan rate ≈ delay / T`
//!    that makes large (slow) blocks costly;
//! 2. a "cartel topology" (Rizun's warning): two well-connected miners vs
//!    one distant miner — the distant miner's blocks lose races
//!    disproportionately, so its effective revenue share falls below its
//!    power share.
//!
//! Run: `cargo run --release --example propagation_delay`

use bvc::chain::{BitcoinRule, ByteSize, MinerId};
use bvc::games::MinerEconomics;
use bvc::sim::{DelayModel, HonestStrategy, MinerSpec, Simulation};

fn honest(power: f64) -> MinerSpec<BitcoinRule> {
    MinerSpec {
        power,
        rule: BitcoinRule::classic(),
        strategy: Box::new(HonestStrategy { mg: ByteSize::mb(1) }),
    }
}

fn main() {
    println!("=== Propagation delay vs orphan rate (honest miners, 20k blocks) ===");
    println!();
    println!("{:>10} {:>14} {:>16}", "delay/T", "orphan rate", "model 1-e^-d");
    for delay in [0.0, 0.01, 0.02, 0.05, 0.1, 0.2] {
        let miners = vec![honest(0.34), honest(0.33), honest(0.33)];
        let mut sim = Simulation::new(miners, DelayModel::Constant(delay), 99);
        let report = sim.run(20_000);
        let on_chain: usize = report.chain_blocks[0].values().sum();
        let orphan_rate = (report.blocks_mined - on_chain) as f64 / report.blocks_mined as f64;
        // The fee-market module's survival model predicts the per-block
        // orphan probability 1 - exp(-delay/T) for instant-size blocks.
        let econ = MinerEconomics {
            reward: 1.0,
            fee_per_mb: 0.05,
            bandwidth: 1e9,
            latency: delay,
            cost: 0.1,
        };
        let predicted = econ.orphan_probability(0.0);
        println!("{delay:>10.2} {:>13.2}% {:>15.2}%", orphan_rate * 100.0, predicted * 100.0);
    }
    println!();
    println!("the measured orphan rate follows the fee-market model's collision bound");
    println!("1 - exp(-d/T) at roughly two-thirds scale — only the losing side of each");
    println!("race is orphaned — which is the mechanism that gives every miner a finite");
    println!("maximum profitable block size (Assumption 2 of the paper).");
    println!();

    println!("=== Cartel topology: close pair vs distant miner (20k blocks) ===");
    println!();
    // Nodes 0 and 1 are adjacent (negligible delay); node 2 is far away.
    let far = 0.15;
    let matrix = vec![vec![0.0, 0.005, far], vec![0.005, 0.0, far], vec![far, far, 0.0]];
    let miners = vec![honest(0.35), honest(0.35), honest(0.30)];
    let mut sim = Simulation::new(miners, DelayModel::Matrix(matrix), 7);
    let report = sim.run(20_000);
    for i in 0..3 {
        let share = report.chain_share(0, MinerId(i));
        let power = [0.35, 0.35, 0.30][i];
        println!(
            "  miner {i}: power {:.2}, chain share {:.4} ({:+.1}% vs fair)",
            power,
            share,
            100.0 * (share / power - 1.0)
        );
    }
    println!();
    println!("the distant miner earns less than its power share: its blocks reach the");
    println!("cartel late and lose races. Rizun's cartel concern, and the reason the");
    println!("block size increasing game's forced exits translate into real centralization");
    println!("pressure once propagation is taken into account.");
}
