//! Quickstart: the paper's three headline analyses in one program.
//!
//! 1. Build the three-miner BU attack model for a chosen power split.
//! 2. Solve the optimal strategy under each incentive model.
//! 3. Compare against honest mining and the Bitcoin baselines.
//!
//! Run: `cargo run --release --example quickstart`

use bvc::bitcoin::{BitcoinConfig, BitcoinModel};
use bvc::bu::{AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};

fn main() {
    let opts = SolveOptions::default();
    let alpha = 0.20;
    let ratio = (1, 1); // beta : gamma

    println!("=== BVC quickstart: a {}% strategic miner in Bitcoin Unlimited ===", alpha * 100.0);
    println!("power split: alpha = {alpha}, beta : gamma = {}:{}", ratio.0, ratio.1);
    println!();

    // --- 1. Compliant & profit-driven: relative revenue (Table 2). ---
    let model = AttackModel::build(AttackConfig::with_ratio(
        alpha,
        ratio,
        Setting::One,
        IncentiveModel::CompliantProfitDriven,
    ))
    .expect("model builds");
    println!("attack MDP built: {} states", model.num_states());
    let honest = model.evaluate(&model.honest_policy()).expect("evaluation");
    let best = model.optimal_relative_revenue(&opts).expect("solver");
    println!("[compliant]      honest relative revenue : {:.4}", honest.u1);
    println!("[compliant]      optimal relative revenue: {:.4}", best.value);
    println!(
        "                 -> BU is {} for this split",
        if best.value > alpha + 1e-4 { "NOT incentive compatible" } else { "incentive compatible" }
    );
    println!();

    // --- 2. Non-compliant & profit-driven: double spending (Table 3). ---
    let model = AttackModel::build(AttackConfig::with_ratio(
        alpha,
        ratio,
        Setting::One,
        IncentiveModel::non_compliant_default(),
    ))
    .expect("model builds");
    let best_bu = model.optimal_absolute_revenue(&opts).expect("solver");
    let bitcoin = BitcoinModel::build(BitcoinConfig::smds(alpha, 0.5)).expect("model builds");
    let best_btc =
        bitcoin.optimal_absolute_revenue(&bvc::bitcoin::SolveOptions::default()).expect("solver");
    println!("[non-compliant]  BU absolute revenue/block     : {:.4}", best_bu.value);
    println!("[non-compliant]  Bitcoin SM+DS (P(win tie)=50%): {:.4}", best_btc.value);
    println!(
        "                 -> double-spending in BU pays {:.1}x the Bitcoin optimum",
        best_bu.value / best_btc.value
    );
    println!();

    // --- 3. Non-profit-driven: orphans per attacker block (Table 4). ---
    let model = AttackModel::build(AttackConfig::with_ratio(
        alpha,
        ratio,
        Setting::One,
        IncentiveModel::NonProfitDriven,
    ))
    .expect("model builds");
    let best = model.optimal_orphan_rate(&opts).expect("solver");
    println!("[non-profit]     orphans per attacker block in BU: {:.3}", best.value);
    println!("                 (in Bitcoin this ratio never exceeds 1)");
    println!();
    println!("Conclusion (the paper's): without a prescribed block validity consensus,");
    println!("every incentive model admits strictly stronger attacks than Bitcoin.");
}
