//! Merchant risk analysis: how many confirmations should a merchant
//! require, in Bitcoin vs in a BU network without block validity
//! consensus?
//!
//! The paper's Table 3 fixes four confirmations; this example sweeps the
//! merchant's settlement threshold and reports the attacker's optimal
//! double-spending revenue at each policy — the quantity a merchant would
//! use to price their exposure. It exercises the public `threshold`
//! parameter of both attack models.
//!
//! Run: `cargo run --release --example merchant_risk`

use bvc::bitcoin::{BitcoinConfig, BitcoinModel};
use bvc::bu::{AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};

fn main() {
    let alpha = 0.10;
    let rds = 10.0;
    let opts = SolveOptions::default();
    println!("=== Merchant risk vs confirmation depth (attacker power {}%) ===", alpha * 100.0);
    println!("R_DS = {rds} block rewards per reversed transaction");
    println!();
    println!(
        "{:<15} {:>22} {:>26}",
        "confirmations", "BU u2 (excess over a)", "Bitcoin u2 (excess over a)"
    );

    // `threshold = t` means a payout only when more than t blocks are
    // orphaned, i.e. the merchant ships after t + 1 confirmations.
    for threshold in 1..=5u8 {
        let confirmations = threshold + 1;
        let bu = AttackModel::build(AttackConfig::with_ratio(
            alpha,
            (1, 1),
            Setting::One,
            IncentiveModel::NonCompliantProfitDriven { rds, threshold },
        ))
        .expect("model builds")
        .optimal_absolute_revenue(&opts)
        .expect("solver")
        .value;
        let btc =
            BitcoinModel::build(BitcoinConfig { threshold, ..BitcoinConfig::smds(alpha, 0.5) })
                .expect("model builds")
                .optimal_absolute_revenue(&bvc::bitcoin::SolveOptions::default())
                .expect("solver")
                .value;
        println!(
            "{:<15} {:>12.4} ({:+.4}) {:>16.4} ({:+.4})",
            confirmations,
            bu,
            bu - alpha,
            btc,
            btc - alpha
        );
    }

    println!();
    println!("Reading: in Bitcoin, a few confirmations already push a 10% attacker's");
    println!("optimal revenue back to the honest rate; in BU the excess persists far");
    println!("longer because the attacker can split the compliant mining power and");
    println!("only needs to win a race against part of it. Merchants on a BU network");
    println!("would need substantially deeper confirmation policies for the same risk.");
}
