#!/usr/bin/env bash
# Best-effort ThreadSanitizer pass over the concurrency-heavy crates.
#
# TSan needs a nightly toolchain with rust-src (for -Zbuild-std). The CI
# containers are offline and ship only stable, so this script detects the
# prerequisites and SKIPS cleanly (exit 0) when they are missing — it is a
# supplementary dynamic check, not a gate. The authoritative concurrency
# gate is the bvc-check model suite (scripts/verify.sh, "model-check").
#
#   scripts/tsan.sh          # run if nightly+rust-src present, else skip
set -uo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

if ! command -v rustup >/dev/null 2>&1; then
    echo "==> TSAN SKIPPED: rustup not installed"
    exit 0
fi
if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    echo "==> TSAN SKIPPED: no nightly toolchain (offline container ships stable only)"
    exit 0
fi
host=$(rustc -vV | awk '/^host:/{print $2}')
if ! rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src (installed)'; then
    echo "==> TSAN SKIPPED: nightly rust-src component missing (needed for -Zbuild-std)"
    exit 0
fi

echo "==> TSan: racing tests in bvc-serve / bvc-repro / bvc-mdp (host: $host)"
# -Zbuild-std instruments std itself; without it TSan reports false
# positives on std's own synchronization. Target dir is isolated so the
# sanitized artifacts never mix with production builds.
RUSTFLAGS="-Zsanitizer=thread" \
CARGO_TARGET_DIR=target/tsan \
cargo +nightly test -q --offline -Zbuild-std --target "$host" \
    -p bvc-serve -p bvc-repro -p bvc-mdp
status=$?
if [[ $status -ne 0 ]]; then
    echo "==> TSAN FAILED"
    exit $status
fi
echo "==> TSAN OK"
