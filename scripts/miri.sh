#!/usr/bin/env bash
# Best-effort Miri pass over the lock-free hot spots: the serve metrics
# counters (bvc_serve::metrics) and the sharded sweep's bit-pattern bias
# buffer (bvc_mdp::shard::AtomicBias). Both modules carry concurrent tests
# sized specifically to finish quickly under Miri's interpreter.
#
# Miri ships only with nightly and needs a one-time setup step, so this
# script detects the prerequisites and SKIPS cleanly (exit 0) when they
# are missing — the authoritative concurrency gate is the bvc-check model
# suite (scripts/verify.sh, "model-check").
#
#   scripts/miri.sh          # run if nightly+miri present, else skip
set -uo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

if ! command -v rustup >/dev/null 2>&1; then
    echo "==> MIRI SKIPPED: rustup not installed"
    exit 0
fi
if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    echo "==> MIRI SKIPPED: no nightly toolchain (offline container ships stable only)"
    exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null | grep -q 'miri (installed)'; then
    echo "==> MIRI SKIPPED: miri component not installed on nightly"
    exit 0
fi

echo "==> Miri: bvc_serve::metrics and bvc_mdp::shard unit tests"
# MIRIFLAGS: -Zmiri-many-seeds exercises several weak-memory schedules per
# test; isolation stays on (the targeted tests touch no clock or fs).
CARGO_TARGET_DIR=target/miri \
MIRIFLAGS="-Zmiri-many-seeds=0..4" \
cargo +nightly miri test -q --offline -p bvc-serve --lib metrics:: &&
CARGO_TARGET_DIR=target/miri \
MIRIFLAGS="-Zmiri-many-seeds=0..4" \
cargo +nightly miri test -q --offline -p bvc-mdp --lib shard::
status=$?
if [[ $status -ne 0 ]]; then
    echo "==> MIRI FAILED"
    exit $status
fi
echo "==> MIRI OK"
