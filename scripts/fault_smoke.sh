#!/usr/bin/env bash
# Fault-injection smoke for the resilient sweep runner (crates/repro/src/sweep.rs).
#
# Exercises the full degradation story on the real Table 2 workload
# (setting 1 only — the sweep itself takes milliseconds):
#
#   1. clean run                          -> reference output, exit 0;
#   2. run with an injected panic and an injected NoConvergence, journaled
#                                         -> FAIL(...) cells, nonzero exit,
#                                            every healthy cell still solved;
#   3. resume from the journal with the injection removed
#                                         -> only the failed cells re-solve,
#                                            and the grid is byte-identical
#                                            to the clean run.
#
# Usage: scripts/fault_smoke.sh
# Set TABLE2_BIN to a prebuilt table2 binary to skip the cargo invocations
# (defaults to `cargo run --release --offline -p bvc-repro --bin table2`).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
journal="$workdir/table2.jsonl"

run_table2() {
    if [[ -n "${TABLE2_BIN:-}" ]]; then
        "$TABLE2_BIN" "$@"
    else
        cargo run --release --offline -q -p bvc-repro --bin table2 -- "$@"
    fi
}

echo "==> [1/3] clean Table 2 run (setting 1)"
run_table2 --setting1-only > "$workdir/clean.txt"

# The faulted and resumed runs use the sharded Bellman kernel
# (--solve-threads 2, sharding forced onto these small models) while the
# clean reference run stays serial: the byte-identical grid diff below
# then also proves the threaded kernel's determinism end to end.
echo "==> [2/3] injected faults: one panicking cell, one non-converging cell"
if run_table2 --setting1-only --journal "$journal" \
        --threads 1 --solve-threads 2 --shard-min-states 1 \
        --inject-panic 'b:g=1:1 a=15%' --inject-noconv 'b:g=1:2 a=20%' \
        > "$workdir/injected.txt" 2> "$workdir/injected.stderr"; then
    echo "FAULT SMOKE FAILED: injected run exited zero" >&2
    exit 1
fi
grep -q 'FAIL(panic)'   "$workdir/injected.txt" || { echo "missing FAIL(panic) cell" >&2; exit 1; }
grep -q 'FAIL(no-conv)' "$workdir/injected.txt" || { echo "missing FAIL(no-conv) cell" >&2; exit 1; }
# Isolation: the 19 healthy cells must all have solved around the faults.
grep -q 'solved 19' "$workdir/injected.txt" || { echo "healthy cells did not all solve" >&2; exit 1; }

echo "==> [3/3] resume from the journal with the faults removed"
run_table2 --setting1-only --journal "$journal" \
    --threads 1 --solve-threads 2 --shard-min-states 1 > "$workdir/resumed.txt"
grep -q '(19 replayed)' "$workdir/resumed.txt" || { echo "resume did not replay the 19 checkpointed cells" >&2; exit 1; }

# The '# sweep' diagnostics differ (replay counts, wall time); the grid and
# every other printed line must be byte-identical to the clean run.
if ! diff <(grep -v '^# sweep' "$workdir/clean.txt") \
          <(grep -v '^# sweep' "$workdir/resumed.txt"); then
    echo "FAULT SMOKE FAILED: resumed grid differs from the clean run" >&2
    exit 1
fi

echo "==> fault smoke OK (isolation, degraded rendering, checkpoint resume, sharded-kernel determinism)"
