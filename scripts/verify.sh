#!/usr/bin/env bash
# Tier-1 verification gate, offline-friendly.
#
# Everything this workspace depends on lives in-tree (the proptest/criterion
# API shims are the path crates `crates/propcheck` / `crates/microbench`),
# so the whole gate must pass with no registry or network access.
#
#   scripts/verify.sh           # build + full workspace tests + timing smoke
#   scripts/verify.sh --no-smoke  # skip the sweep_timing smoke run
set -euo pipefail
cd "$(dirname "$0")/.."

# --offline makes "accidentally grew a registry dependency" a hard error
# rather than a hidden network fetch.
export CARGO_NET_OFFLINE=true

echo "==> lint gate (fmt + clippy + solver-robustness lints)"
scripts/lint.sh

echo "==> cargo build --release (offline)"
cargo build --release --offline --workspace

echo "==> cargo test (offline, all workspace crates)"
cargo test -q --offline --workspace

if [[ "${1:-}" != "--no-smoke" ]]; then
    echo "==> sweep_timing smoke (Table 2, quick column)"
    cargo run --release --offline -p bvc-bench --bin sweep_timing -- --quick

    echo "==> sweep-runner fault-injection smoke (panic/no-conv/resume)"
    TABLE2_BIN=target/release/table2 scripts/fault_smoke.sh

    echo "==> serve smoke (HTTP cache hit/miss, audit 422, shedding, drain)"
    BVC_BIN=target/release/bvc scripts/serve_smoke.sh

    echo "==> cluster smoke (killed worker, lease recovery, byte-identical journal)"
    BVC_BIN=target/release/bvc TABLE2_BIN=target/release/table2 scripts/cluster_smoke.sh
fi

echo "==> OK"
