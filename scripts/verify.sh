#!/usr/bin/env bash
# Tier-1 verification gate, offline-friendly.
#
# Everything this workspace depends on lives in-tree (the proptest/criterion
# API shims are the path crates `crates/propcheck` / `crates/microbench`),
# so the whole gate must pass with no registry or network access.
#
#   scripts/verify.sh           # build + full workspace tests + timing smoke
#   scripts/verify.sh --no-smoke  # skip the sweep_timing smoke run
set -euo pipefail
cd "$(dirname "$0")/.."

# --offline makes "accidentally grew a registry dependency" a hard error
# rather than a hidden network fetch.
export CARGO_NET_OFFLINE=true

echo "==> lint gate (fmt + clippy + solver-robustness lints)"
scripts/lint.sh

echo "==> cargo build --release (offline)"
cargo build --release --offline --workspace

echo "==> cargo test (offline, all workspace crates)"
cargo test -q --offline --workspace

echo "==> model-check gate (bvc-check scheduler + cache/coordinator/parallel_map models)"
# Exhaustive interleaving exploration of the three ported concurrency
# algorithms under the bvc-check controlled scheduler (preemption bound 2).
# The shims only compile in under --cfg bvc_check; the isolated target dir
# keeps the instrumented artifacts out of the production build cache.
RUSTFLAGS="--cfg bvc_check" CARGO_TARGET_DIR=target/check \
    cargo test -q --offline -p bvc-check -p bvc-serve -p bvc-cluster -p bvc-repro \
    --test selfcheck --test model

echo "==> sharded-kernel gate (bit-identity proptests + threaded Table 2 pins)"
# Explicitly re-run the tests that pin the threaded kernel's determinism
# contract (bit-identical gain/bias/policy for every solve_threads), so a
# threading regression names this gate instead of drowning in the full
# workspace test list above.
cargo test -q --offline -p bvc-mdp --test proptest_solvers -- \
    sharded_rvi_bit_identical_across_thread_counts threaded_rvi_matches_reference
cargo test -q --offline -p bvc-bu --test table2_pins

if [[ "${1:-}" != "--no-smoke" ]]; then
    echo "==> sweep_timing smoke (Table 2, quick column)"
    cargo run --release --offline -p bvc-bench --bin sweep_timing -- --quick

    echo "==> sharded-kernel determinism diff (table2 grid, --solve-threads 4)"
    # The same grid solved serially and through the sharded kernel must be
    # byte-identical ('# sweep' diagnostics legitimately differ in timing).
    t1=$(mktemp) t4=$(mktemp)
    target/release/table2 --setting1-only --threads 1 | grep -v '^# sweep' > "$t1"
    target/release/table2 --setting1-only --threads 1 \
        --solve-threads 4 --shard-min-states 1 | grep -v '^# sweep' > "$t4"
    if ! diff "$t1" "$t4"; then
        echo "VERIFY FAILED: sharded table2 grid diverged from serial" >&2
        rm -f "$t1" "$t4"
        exit 1
    fi
    rm -f "$t1" "$t4"

    echo "==> sweep-runner fault-injection smoke (panic/no-conv/resume)"
    TABLE2_BIN=target/release/table2 scripts/fault_smoke.sh

    echo "==> serve smoke (HTTP cache hit/miss, audit 422, shedding, drain)"
    BVC_BIN=target/release/bvc scripts/serve_smoke.sh

    echo "==> cluster smoke (killed worker, lease recovery, byte-identical journal)"
    BVC_BIN=target/release/bvc TABLE2_BIN=target/release/table2 scripts/cluster_smoke.sh

    echo "==> scenario smoke (SIGKILL resume + killed worker, byte-identical journals)"
    BVC_BIN=target/release/bvc SCENARIO_BIN=target/release/scenario_crossval \
        scripts/scenario_smoke.sh

    echo "==> games smoke (frontier SIGKILL resume + killed worker, byte-identical journals)"
    BVC_BIN=target/release/bvc GAMES_BIN=target/release/games_map \
        scripts/games_smoke.sh

    echo "==> chaos soak (in-process fault matrix: churn, drops, torn appends)"
    cargo run --release --offline -q -p bvc-bench --bin chaos_soak

    echo "==> chaos smoke (crash points, SIGKILL restart-resume, reconnect)"
    timeout 90 env BVC_BIN=target/release/bvc TABLE2_BIN=target/release/table2 \
        scripts/chaos_smoke.sh
fi

echo "==> OK"
