#!/usr/bin/env bash
# Scenario-subsystem smoke: the scenario-crossval workload (20 MDP-replay
# network cells) run three ways, all demanded byte-identical:
#
#   1. locally, single-threaded, journaled -> the reference journal;
#   2. interrupted (SIGKILL mid-run with cells already journaled) and then
#      resumed from the same journal — the completed cells must replay
#      (not re-solve) and the final journal must be byte-identical to the
#      reference (`cmp`, not `diff`);
#   3. distributed (`scenario_crossval --cluster`) with two local workers,
#      one of which claims a batch, solves one cell and then hangs
#      (--die-after 1 --die-mode hang), so its cells only come back
#      through lease expiry / straggler re-dispatch — and the cluster
#      journal must still be byte-identical to the local reference.
#
# Usage: scripts/scenario_smoke.sh
# Set BVC_BIN / SCENARIO_BIN to prebuilt binaries to skip the cargo builds.
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

if [[ -z "${BVC_BIN:-}" || -z "${SCENARIO_BIN:-}" ]]; then
    echo "==> building release binaries (bvc, scenario_crossval)"
    cargo build --release --offline -q -p bvc-cli -p bvc-repro \
        --bin bvc --bin scenario_crossval
fi
BVC_BIN=${BVC_BIN:-target/release/bvc}
SCENARIO_BIN=${SCENARIO_BIN:-target/release/scenario_crossval}

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

lines() { [[ -f "$1" ]] && wc -l < "$1" || echo 0; }

echo "==> [1/3] local reference run (single-threaded, journaled)"
"$SCENARIO_BIN" --threads 1 --journal "$workdir/ref.jsonl" > "$workdir/ref.txt"
if ! grep -q 'solved 20' "$workdir/ref.txt"; then
    echo "SCENARIO SMOKE FAILED: reference run did not solve all 20 cells" >&2
    cat "$workdir/ref.txt" >&2
    exit 1
fi

echo "==> [2/3] SIGKILL mid-run, then resume from the torn journal"
"$SCENARIO_BIN" --threads 1 --journal "$workdir/resume.jsonl" \
    > "$workdir/interrupted.txt" 2>&1 &
victim=$!
pids+=("$victim")
for _ in $(seq 100); do
    [[ "$(lines "$workdir/resume.jsonl")" -ge 3 ]] && break
    sleep 0.1
done
count=$(lines "$workdir/resume.jsonl")
if [[ "$count" -lt 3 || "$count" -ge 20 ]]; then
    echo "SCENARIO SMOKE FAILED: wanted to SIGKILL mid-run," \
         "journal has $count lines" >&2
    exit 1
fi
{ kill -9 "$victim" && wait "$victim"; } 2>/dev/null || true
"$SCENARIO_BIN" --threads 1 --journal "$workdir/resume.jsonl" \
    > "$workdir/resumed.txt"
if ! grep -qE 'solved 20 \([1-9][0-9]* replayed\)' "$workdir/resumed.txt"; then
    echo "SCENARIO SMOKE FAILED: resume did not replay the journaled cells" >&2
    cat "$workdir/resumed.txt" >&2
    exit 1
fi
if ! cmp "$workdir/ref.jsonl" "$workdir/resume.jsonl"; then
    echo "SCENARIO SMOKE FAILED: resumed journal differs from the reference" >&2
    diff "$workdir/ref.jsonl" "$workdir/resume.jsonl" >&2 || true
    exit 1
fi

echo "==> [3/3] distributed run: one healthy worker, one killed mid-batch"
port=$(( (RANDOM % 2000) + 21000 ))
addr="127.0.0.1:$port"
"$SCENARIO_BIN" --cluster "$addr" --journal "$workdir/cluster.jsonl" \
    --lease 1 --cluster-batch 4 > "$workdir/coordinator.txt" 2>&1 &
coord_pid=$!
pids+=("$coord_pid")

# Worker A claims a batch of 4, solves one cell, then hangs (heartbeats
# stop, socket stays open); its cells come back only via lease expiry or
# straggler re-dispatch. Workers retry the connect, so racing the
# coordinator's bind is fine.
"$BVC_BIN" cluster work --connect "$addr" --die-after 1 --die-mode hang \
    > "$workdir/worker_a.txt" 2>&1 &
pids+=("$!")
sleep 0.5
"$BVC_BIN" cluster work --connect "$addr" > "$workdir/worker_b.txt" 2>&1 &
pids+=("$!")

if ! wait "$coord_pid"; then
    echo "SCENARIO SMOKE FAILED: cluster coordinator exited nonzero" >&2
    cat "$workdir/coordinator.txt" >&2
    exit 1
fi
wait || true # the workers; the hung one wakes up and exits on its own

if ! grep -q 'solved 20' "$workdir/coordinator.txt"; then
    echo "SCENARIO SMOKE FAILED: cluster run did not solve all 20 cells" >&2
    cat "$workdir/coordinator.txt" >&2
    exit 1
fi
if ! cmp "$workdir/ref.jsonl" "$workdir/cluster.jsonl"; then
    echo "SCENARIO SMOKE FAILED: cluster journal differs from the local" \
         "reference" >&2
    diff "$workdir/ref.jsonl" "$workdir/cluster.jsonl" >&2 || true
    exit 1
fi

echo "==> scenario smoke OK (resume replay, killed-worker recovery," \
     "byte-identical journals)"
