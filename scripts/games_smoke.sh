#!/usr/bin/env bash
# Game-engine smoke: the games-frontier workload (26 committed-coalition
# frontier shards of the block size increasing game) run three ways, all
# demanded byte-identical:
#
#   1. locally, single-threaded, journaled -> the reference journal;
#   2. interrupted (SIGKILL mid-run with shards already journaled) and then
#      resumed from the same journal — the completed shards must replay
#      (not re-solve) and the final journal must be byte-identical to the
#      reference (`cmp`, not `diff`);
#   3. distributed (`games_map --frontier --cluster`) with two local
#      workers, one of which claims a batch, solves one shard and then
#      hangs (--die-after 1 --die-mode hang), so its shards only come back
#      through lease expiry / straggler re-dispatch — and the cluster
#      journal must still be byte-identical to the local reference.
#
# Usage: scripts/games_smoke.sh
# Set BVC_BIN / GAMES_BIN to prebuilt binaries to skip the cargo builds.
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

if [[ -z "${BVC_BIN:-}" || -z "${GAMES_BIN:-}" ]]; then
    echo "==> building release binaries (bvc, games_map)"
    cargo build --release --offline -q -p bvc-cli -p bvc-repro \
        --bin bvc --bin games_map
fi
BVC_BIN=${BVC_BIN:-target/release/bvc}
GAMES_BIN=${GAMES_BIN:-target/release/games_map}

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

lines() { [[ -f "$1" ]] && wc -l < "$1" || echo 0; }

echo "==> [1/3] local reference run (single-threaded, journaled)"
"$GAMES_BIN" --frontier --threads 1 --journal "$workdir/ref.jsonl" \
    > "$workdir/ref.txt"
if ! grep -q 'solved 26' "$workdir/ref.txt"; then
    echo "GAMES SMOKE FAILED: reference run did not solve all 26 shards" >&2
    cat "$workdir/ref.txt" >&2
    exit 1
fi
if ! grep -q 'reproduced' "$workdir/ref.txt"; then
    echo "GAMES SMOKE FAILED: pinned Figure 4 frontier layer not reproduced" >&2
    cat "$workdir/ref.txt" >&2
    exit 1
fi

echo "==> [2/3] SIGKILL mid-run, then resume from the torn journal"
# Frontier shards solve in microseconds, so the victim run is paced with
# chaos latency on its journal appends (a pure stall: the bytes written
# are untouched) to open a reliable kill window mid-journal.
"$GAMES_BIN" --frontier --threads 1 --journal "$workdir/resume.jsonl" \
    --chaos "seed=7,latency_ms=400" \
    > "$workdir/interrupted.txt" 2>&1 &
victim=$!
pids+=("$victim")
for _ in $(seq 100); do
    [[ "$(lines "$workdir/resume.jsonl")" -ge 3 ]] && break
    sleep 0.1
done
count=$(lines "$workdir/resume.jsonl")
if [[ "$count" -lt 3 || "$count" -ge 26 ]]; then
    echo "GAMES SMOKE FAILED: wanted to SIGKILL mid-run," \
         "journal has $count lines" >&2
    exit 1
fi
{ kill -9 "$victim" && wait "$victim"; } 2>/dev/null || true
"$GAMES_BIN" --frontier --threads 1 --journal "$workdir/resume.jsonl" \
    > "$workdir/resumed.txt"
if ! grep -qE 'solved 26 \([1-9][0-9]* replayed\)' "$workdir/resumed.txt"; then
    echo "GAMES SMOKE FAILED: resume did not replay the journaled shards" >&2
    cat "$workdir/resumed.txt" >&2
    exit 1
fi
if ! cmp "$workdir/ref.jsonl" "$workdir/resume.jsonl"; then
    echo "GAMES SMOKE FAILED: resumed journal differs from the reference" >&2
    diff "$workdir/ref.jsonl" "$workdir/resume.jsonl" >&2 || true
    exit 1
fi

echo "==> [3/3] distributed run: one healthy worker, one killed mid-batch"
port=$(( (RANDOM % 2000) + 23000 ))
addr="127.0.0.1:$port"
"$GAMES_BIN" --frontier --cluster "$addr" --journal "$workdir/cluster.jsonl" \
    --lease 1 --cluster-batch 4 > "$workdir/coordinator.txt" 2>&1 &
coord_pid=$!
pids+=("$coord_pid")

# Worker A claims a batch of 4, solves one shard, then hangs (heartbeats
# stop, socket stays open); its shards come back only via lease expiry or
# straggler re-dispatch. Workers retry the connect, so racing the
# coordinator's bind is fine.
"$BVC_BIN" cluster work --connect "$addr" --die-after 1 --die-mode hang \
    > "$workdir/worker_a.txt" 2>&1 &
pids+=("$!")
sleep 0.5
"$BVC_BIN" cluster work --connect "$addr" > "$workdir/worker_b.txt" 2>&1 &
pids+=("$!")

if ! wait "$coord_pid"; then
    echo "GAMES SMOKE FAILED: cluster coordinator exited nonzero" >&2
    cat "$workdir/coordinator.txt" >&2
    exit 1
fi
wait || true # the workers; the hung one wakes up and exits on its own

if ! grep -q 'solved 26' "$workdir/coordinator.txt"; then
    echo "GAMES SMOKE FAILED: cluster run did not solve all 26 shards" >&2
    cat "$workdir/coordinator.txt" >&2
    exit 1
fi
if ! cmp "$workdir/ref.jsonl" "$workdir/cluster.jsonl"; then
    echo "GAMES SMOKE FAILED: cluster journal differs from the local" \
         "reference" >&2
    diff "$workdir/ref.jsonl" "$workdir/cluster.jsonl" >&2 || true
    exit 1
fi

echo "==> games smoke OK (resume replay, killed-worker recovery," \
     "byte-identical journals)"
