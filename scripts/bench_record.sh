#!/usr/bin/env bash
# Records benchmark history: runs the std-only bench binaries with --json
# and appends their one-line machine-readable records (plus a timestamp and
# the current commit) to JSONL history files at the repo root:
#
#   BENCH_sweep.json    — sweep_timing  ({"bench":"sweep_timing",...})
#   BENCH_serve.json    — serve_load    ({"bench":"serve_load",...})
#                         cluster_scaling ({"bench":"cluster_scaling",...})
#   BENCH_scenario.json — scenario_scaling ({"bench":"scenario_scaling",...})
#   BENCH_games.json    — games_scaling ({"bench":"games_scaling",...})
#
# Usage:
#   scripts/bench_record.sh             # quick shapes, suitable for CI boxes
#   scripts/bench_record.sh --full      # the real workloads (slow)
#
# Each line is self-contained JSON, so `jq -s` over the file reconstructs
# the whole history. Runs are release builds; the script is offline-safe.
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

full=false
[[ "${1:-}" == "--full" ]] && full=true

stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

echo "==> building bench binaries (release)"
cargo build --release --offline -q -p bvc-bench \
    --bin sweep_timing --bin serve_load --bin cluster_scaling --bin scenario_scaling \
    --bin games_scaling

# annotate <record-line> — prefix the JSON object with run metadata.
annotate() {
    printf '{"recorded":"%s","commit":"%s",%s\n' "$stamp" "$commit" "${1#\{}"
}

run_and_append() { # run_and_append <outfile> <bench-name> <cmd...>
    local outfile=$1 name=$2
    shift 2
    local log record
    log=$(mktemp)
    "$@" | tee "$log"
    record=$(grep -o "{\"bench\":\"$name\".*}" "$log" | tail -1)
    rm -f "$log"
    if [[ -z "$record" ]]; then
        echo "FAIL: $name emitted no JSON record" >&2
        exit 1
    fi
    annotate "$record" >> "$outfile"
    echo "==> appended $name record to $outfile"
}

if $full; then
    sweep_args=(--reps 3)
    serve_args=(--clients 4 --requests 2000)
    scaling_args=(--workers 1,2,4)
    scenario_args=(--nodes 100,400,1000 --blocks 400 --threads 1,2,4)
    games_args=(--miners 20,22,24 --size 8 --threads 1,2,4)
else
    sweep_args=(--quick)
    serve_args=(--clients 2 --requests 200)
    scaling_args=(--quick --workers 1,2)
    scenario_args=(--quick)
    games_args=(--quick)
fi

echo "==> sweep_timing ${sweep_args[*]}"
run_and_append BENCH_sweep.json sweep_timing \
    target/release/sweep_timing "${sweep_args[@]}" --json

echo "==> serve_load ${serve_args[*]}"
run_and_append BENCH_serve.json serve_load \
    target/release/serve_load "${serve_args[@]}" --json

echo "==> cluster_scaling ${scaling_args[*]}"
run_and_append BENCH_serve.json cluster_scaling \
    target/release/cluster_scaling "${scaling_args[@]}" --json

echo "==> scenario_scaling ${scenario_args[*]}"
run_and_append BENCH_scenario.json scenario_scaling \
    target/release/scenario_scaling "${scenario_args[@]}" --json

echo "==> games_scaling ${games_args[*]}"
run_and_append BENCH_games.json games_scaling \
    target/release/games_scaling "${games_args[@]}" --json

echo "==> bench records OK"
