#!/usr/bin/env bash
# End-to-end smoke for the bvc-serve HTTP subsystem (`bvc serve`).
#
# Brings the server up on an ephemeral port and exercises the full story
# over real HTTP with curl:
#
#   1. /healthz answers 200;
#   2. the same Table 2 cell requested twice: first a cache miss (solved),
#      then a cache hit — with byte-identical value_bits;
#   3. an audit demo model through POST /v1/solve answers 422 naming the
#      failed check;
#   4. with --queue-cap 0 a cold cell is shed with 429 (+ Retry-After)
#      while the warm cell from step 2 is NOT shed on a fresh server
#      (shedding applies to cold work only, verified via queue-cap 1);
#   5. POST /admin/shutdown drains and the process exits 0.
#
# Usage: scripts/serve_smoke.sh
# Set BVC_BIN to a prebuilt bvc binary to skip the cargo invocation
# (defaults to `cargo run --release --offline -p bvc-cli --bin bvc`).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [[ -n "$server_pid" ]] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

run_bvc() {
    if [[ -n "${BVC_BIN:-}" ]]; then
        "$BVC_BIN" "$@"
    else
        cargo run --release --offline -q -p bvc-cli --bin bvc -- "$@"
    fi
}

# Starts `bvc serve "$@"` in the background, waits for the listening line,
# and sets $base / $server_pid.
start_server() {
    : > "$workdir/serve.log"
    run_bvc serve --addr 127.0.0.1:0 "$@" > "$workdir/serve.log" 2>&1 &
    server_pid=$!
    base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's/^listening on \(http:\/\/.*\)$/\1/p' "$workdir/serve.log")
        [[ -n "$base" ]] && break
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "FAIL: server exited before listening"; cat "$workdir/serve.log"; exit 1
        fi
        sleep 0.1
    done
    if [[ -z "$base" ]]; then
        echo "FAIL: server never printed its address"; cat "$workdir/serve.log"; exit 1
    fi
}

# curl_code <file> <args...> — body to file, status code on stdout.
curl_json() { curl -sS -o "$1" -w '%{http_code}' "${@:2}"; }

field() { # field <file> <key> — extract a scalar JSON field value
    sed -n "s/.*\"$2\":\"\\{0,1\\}\\([^\",}]*\\)\"\\{0,1\\}[,}].*/\\1/p" "$1" | head -1
}

cell="/v1/table2?alpha=0.33&eb=2&ad=2&gate=4"

echo "==> [1/5] healthz"
start_server
code=$(curl_json "$workdir/health.json" "$base/healthz")
[[ "$code" == 200 ]] || { echo "FAIL: /healthz -> $code"; exit 1; }

echo "==> [2/5] same cell twice: miss then hit, byte-identical"
code=$(curl_json "$workdir/cold.json" "$base$cell")
[[ "$code" == 200 ]] || { echo "FAIL: cold cell -> $code"; cat "$workdir/cold.json"; exit 1; }
code=$(curl_json "$workdir/warm.json" "$base$cell")
[[ "$code" == 200 ]] || { echo "FAIL: warm cell -> $code"; exit 1; }
cold_cache=$(field "$workdir/cold.json" cache)
warm_cache=$(field "$workdir/warm.json" cache)
cold_bits=$(field "$workdir/cold.json" value_bits)
warm_bits=$(field "$workdir/warm.json" value_bits)
[[ "$cold_cache" == miss ]] || { echo "FAIL: first request was '$cold_cache', expected miss"; exit 1; }
[[ "$warm_cache" == hit ]] || { echo "FAIL: second request was '$warm_cache', expected hit"; exit 1; }
[[ -n "$cold_bits" && "$cold_bits" == "$warm_bits" ]] \
    || { echo "FAIL: value bits differ: '$cold_bits' vs '$warm_bits'"; exit 1; }
echo "    cell value bits: $cold_bits (miss -> hit)"

echo "==> [3/5] audit demo -> 422 with failed check"
code=$(curl_json "$workdir/demo.json" -X POST --data '{"demo":"multichain"}' "$base/v1/solve")
[[ "$code" == 422 ]] || { echo "FAIL: demo solve -> $code"; cat "$workdir/demo.json"; exit 1; }
check=$(field "$workdir/demo.json" check)
[[ -n "$check" ]] || { echo "FAIL: 422 body names no check"; cat "$workdir/demo.json"; exit 1; }
echo "    audit gate refused: check=$check"

echo "==> [4/5] load shedding: cold work 429s under --queue-cap 0, hits still served"
code=$(curl_json /dev/null -X POST "$base/admin/shutdown")
[[ "$code" == 200 ]] || { echo "FAIL: shutdown -> $code"; exit 1; }
wait "$server_pid"; server_pid=""

start_server --queue-cap 0
code=$(curl_json "$workdir/shed.json" "$base$cell")
[[ "$code" == 429 ]] || { echo "FAIL: cold cell under queue-cap 0 -> $code (want 429)"; exit 1; }
curl -sS -D "$workdir/shed.headers" -o /dev/null "$base$cell"
grep -qi 'retry-after' "$workdir/shed.headers" \
    || { echo "FAIL: 429 carries no Retry-After"; cat "$workdir/shed.headers"; exit 1; }
code=$(curl_json /dev/null "$base/healthz")
[[ "$code" == 200 ]] || { echo "FAIL: healthz during shed -> $code"; exit 1; }

echo "==> [5/5] graceful shutdown"
code=$(curl_json /dev/null -X POST "$base/admin/shutdown")
[[ "$code" == 200 ]] || { echo "FAIL: shutdown -> $code"; exit 1; }
if ! wait "$server_pid"; then
    echo "FAIL: server exited nonzero after shutdown"; cat "$workdir/serve.log"; exit 1
fi
server_pid=""

echo "==> serve smoke OK"
