#!/usr/bin/env bash
# Workspace lint gate, offline-friendly.
#
#   scripts/lint.sh             # fmt check + clippy -D warnings + custom lints
#   scripts/lint.sh --no-clippy # only fmt + the custom grep lints (fast path)
#
# The custom lint enforces the solver-robustness contract introduced with
# the sweep runner and the audit subsystem: inside the numeric hot paths
# (crates/mdp/src/solve/ and the fault-tolerant sweep runner) non-test code
# must not contain `.unwrap()` / `.expect(` (all failure paths return
# structured MdpError values so one poisoned cell cannot kill a sweep) and
# must not compare floats with `==` / `!=` (tolerance-based comparisons
# only). Test modules (everything at and below a `#[cfg(test)]` marker) are
# exempt.
set -uo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

fail=0

echo "==> cargo fmt --check"
if ! cargo fmt --check; then
    fail=1
fi

if [[ "${1:-}" != "--no-clippy" ]]; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    if ! cargo clippy --workspace --all-targets --offline -- -D warnings; then
        fail=1
    fi
fi

echo "==> custom lint: no unwrap/expect/float-eq in solver hot paths"
# The cluster runtime (framing, leases, journal, chaos injection) is held
# to the same contract: a malformed frame, torn journal tail or poisoned
# lock must surface as a structured error, never a panic — the no-unwrap
# lint covers those crates wholesale. Bench binaries are included too:
# they feed BENCH history and CI smokes, so a bad flag or failed solve
# must exit with a structured error, not a panic backtrace. The §5 game
# solvers (crates/games) and the distributed game engine (crates/gamesweep)
# joined the contract when their cells became cluster workloads: a bad
# GameSpec must come back as a structured decode/validate error, and
# equilibrium checks on power fractions must never use exact float
# equality.
targets=(
    crates/mdp/src/solve/*.rs
    crates/mdp/src/shard.rs
    crates/repro/src/sweep.rs
    crates/cluster/src/*.rs
    crates/journal/src/*.rs
    crates/chaos/src/*.rs
    crates/serve/src/*.rs
    crates/bench/src/*.rs
    crates/bench/src/bin/*.rs
    crates/sim/src/*.rs
    crates/chain/src/*.rs
    crates/scenario/src/*.rs
    crates/games/src/*.rs
    crates/gamesweep/src/*.rs
)
# jobs.rs is exempt from the float-eq lint only: it hosts the ported
# crossval cell whose exact-zero guard is an intentional bitwise
# comparison. Its unwrap-free obligation still applies.
floateq_exempt=(crates/cluster/src/jobs.rs)
for f in "${targets[@]}"; do
    # Strip everything from the first #[cfg(test)] marker on; the lint
    # governs production code only.
    pretest=$(awk '/#\[cfg\(test\)\]/{exit}{print}' "$f")

    hits=$(printf '%s\n' "$pretest" | grep -nE '\.unwrap\(\)|\.expect\(' | grep -vE '^\s*[0-9]+:\s*//')
    if [[ -n "$hits" ]]; then
        echo "LINT: $f: unwrap()/expect() in non-test solver code:"
        printf '%s\n' "$hits" | sed 's/^/    /'
        fail=1
    fi

    skip_floateq=0
    for exempt in "${floateq_exempt[@]}"; do
        [[ "$f" == "$exempt" ]] && skip_floateq=1
    done
    [[ "$skip_floateq" -eq 1 ]] && continue

    # Float equality: a == or != with a float literal (digits '.' digits,
    # or exponent form) on either side.
    floateq=$(printf '%s\n' "$pretest" \
        | grep -nE '(==|!=)[[:space:]]*-?[0-9]+\.[0-9]|-?[0-9]+\.[0-9]+([eE][-+]?[0-9]+)?[[:space:]]*(==|!=)|(==|!=)[[:space:]]*f64::|f64::(NAN|INFINITY|NEG_INFINITY)[[:space:]]*(==|!=)' \
        | grep -vE '^\s*[0-9]+:\s*//')
    if [[ -n "$floateq" ]]; then
        echo "LINT: $f: float == / != comparison in non-test solver code:"
        printf '%s\n' "$floateq" | sed 's/^/    /'
        fail=1
    fi
done

echo "==> custom lint: every atomic Ordering is justified"
# Memory-ordering choices are easy to cargo-cult and hard to review after
# the fact. Every `Ordering::` use in non-test code must carry a
# `// ordering: <why this ordering is sufficient>` comment on the same
# line or the line directly above it. The model checker (crates/check)
# explores interleavings but NOT weak memory, so these justifications are
# the only recorded reasoning about ordering strength.
while IFS= read -r f; do
    bad=$(awk '/#\[cfg\(test\)\]/{exit}
        {
            if ($0 ~ /Ordering::(Relaxed|Acquire|Release|AcqRel|SeqCst)/ \
                && $0 !~ /^[[:space:]]*\/\// \
                && $0 !~ /ordering:/ && prev !~ /ordering:/) {
                print NR": "$0
            }
            prev=$0
        }' "$f")
    if [[ -n "$bad" ]]; then
        echo "LINT: $f: Ordering:: without an \"// ordering:\" justification:"
        printf '%s\n' "$bad" | sed 's/^/    /'
        fail=1
    fi
done < <(find crates -path '*/src/*' -name '*.rs' | sort)

if [[ "$fail" -ne 0 ]]; then
    echo "==> LINT FAILED"
    exit 1
fi
echo "==> LINT OK"
