#!/usr/bin/env bash
# Distributed-sweep smoke for the bvc-cluster subsystem.
#
# Runs the Table 2 setting-1 workload two ways and demands identical bytes:
#
#   1. locally, single-threaded, journaled -> the reference journal;
#   2. through `bvc cluster coordinate` with two local workers, one of
#      which is killed mid-batch (--die-after 1 --die-mode hang: it claims
#      a batch, solves one cell, then goes silent with the socket open, so
#      its cells come back only via the fault-tolerance machinery — lease
#      expiry, or straggler re-dispatch to the idle healthy worker if that
#      fires first).
#
# Asserts that the coordinator recovered the dead worker's cells (at least
# one lease expiry or straggler dispatch), that every cell still solved,
# and that the cluster journal is byte-identical to the local reference
# (`cmp`, not `diff`).
#
# Usage: scripts/cluster_smoke.sh
# Set BVC_BIN / TABLE2_BIN to prebuilt binaries to skip the cargo builds.
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

if [[ -z "${BVC_BIN:-}" || -z "${TABLE2_BIN:-}" ]]; then
    echo "==> building release binaries (bvc, table2)"
    cargo build --release --offline -q -p bvc-cli -p bvc-repro --bin bvc --bin table2
fi
BVC_BIN=${BVC_BIN:-target/release/bvc}
TABLE2_BIN=${TABLE2_BIN:-target/release/table2}

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

port=$(( (RANDOM % 2000) + 19000 ))
addr="127.0.0.1:$port"

echo "==> [1/3] local reference run (table2 setting 1, single-threaded, journaled)"
"$TABLE2_BIN" --setting1-only --threads 1 --journal "$workdir/local.jsonl" \
    > "$workdir/local.txt"

echo "==> [2/3] cluster run on $addr: one healthy worker, one killed mid-batch"
"$BVC_BIN" cluster coordinate --workload table2-setting1 --addr "$addr" \
    --journal "$workdir/cluster.jsonl" --lease 1 --batch 4 --quiet \
    > "$workdir/coordinator.txt" 2>&1 &
coord_pid=$!
pids+=("$coord_pid")

# Worker A claims a batch of 4, solves one cell, then hangs (heartbeats
# stop, socket stays open). Workers retry the connect, so starting them
# while the coordinator is still binding is fine.
"$BVC_BIN" cluster work --connect "$addr" --die-after 1 --die-mode hang \
    > "$workdir/worker_a.txt" 2>&1 &
pids+=("$!")
sleep 0.5
"$BVC_BIN" cluster work --connect "$addr" > "$workdir/worker_b.txt" 2>&1 &
pids+=("$!")

if ! wait "$coord_pid"; then
    echo "CLUSTER SMOKE FAILED: coordinator exited nonzero" >&2
    cat "$workdir/coordinator.txt" >&2
    exit 1
fi
wait || true # the workers; the hung one wakes up and exits on its own

echo "==> [3/3] checking recovery stats and journal byte-identity"
if ! grep -qE 'cluster_(lease_expiries|straggler_dispatches)_total [1-9]' \
        "$workdir/coordinator.txt"; then
    echo "CLUSTER SMOKE FAILED: no lease expiry or straggler re-dispatch" \
         "recorded for the killed worker" >&2
    cat "$workdir/coordinator.txt" >&2
    exit 1
fi
if ! grep -qE '21/21 cells ok' "$workdir/coordinator.txt"; then
    echo "CLUSTER SMOKE FAILED: not every cell solved" >&2
    cat "$workdir/coordinator.txt" >&2
    exit 1
fi
if ! cmp "$workdir/local.jsonl" "$workdir/cluster.jsonl"; then
    echo "CLUSTER SMOKE FAILED: cluster journal differs from the local reference" >&2
    diff "$workdir/local.jsonl" "$workdir/cluster.jsonl" >&2 || true
    exit 1
fi

echo "==> cluster smoke OK (lease recovery, 21/21 cells, byte-identical journal)"
