#!/usr/bin/env bash
# Crash-recovery smoke for the chaos layer: real process deaths, not
# in-process simulations (those live in `chaos_soak`).
#
# Scenarios (all against the Table 2 setting-1 workload, 21 cells, with
# a local single-threaded journal as the byte-identity reference):
#
#   1. planned crash — the coordinator runs under
#      `BVC_CHAOS=crash_at=journal.after_append:5` and exits 137 after
#      journaling exactly 5 cells, twice (same plan, same line count:
#      the failure schedule replays). A restarted coordinator over the
#      same journal replays the 5-line prefix and finishes byte-identical
#      to the reference; the worker rides the outage via `--reconnect`.
#   2. kill -9 — a latency-paced worker keeps the run slow enough to
#      SIGKILL the coordinator mid-run with at least 5 cells journaled;
#      the restarted coordinator (fsync-per-append, over a possibly torn
#      tail) again converges to byte-identity.
#
# Usage: scripts/chaos_smoke.sh
# Set BVC_BIN / TABLE2_BIN to prebuilt binaries to skip the cargo builds.
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

if [[ -z "${BVC_BIN:-}" || -z "${TABLE2_BIN:-}" ]]; then
    echo "==> building release binaries (bvc, table2)"
    cargo build --release --offline -q -p bvc-cli -p bvc-repro --bin bvc --bin table2
fi
BVC_BIN=${BVC_BIN:-target/release/bvc}
TABLE2_BIN=${TABLE2_BIN:-target/release/table2}

workdir=$(mktemp -d)
pids=()
cleanup() {
    { for pid in "${pids[@]}"; do kill -9 "$pid" || true; done; wait; } \
        2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

lines() { if [[ -f "$1" ]]; then wc -l < "$1"; else echo 0; fi; }

echo "==> [1/4] local reference run (table2 setting 1, single-threaded, journaled)"
"$TABLE2_BIN" --setting1-only --threads 1 --journal "$workdir/local.jsonl" \
    > "$workdir/local.txt"

# --- scenario 1: planned crash point, twice, then restart-resume --------------
port=$(( (RANDOM % 2000) + 19000 ))
addr="127.0.0.1:$port"
crash_plan="seed=42,crash_at=journal.after_append:5"

echo "==> [2/4] planned crash: coordinator exits 137 after 5 journal appends (x2)"
for round in a b; do
    rm -f "$workdir/crash.jsonl"
    BVC_CHAOS="$crash_plan" "$BVC_BIN" cluster coordinate \
        --workload table2-setting1 --addr "$addr" \
        --journal "$workdir/crash.jsonl" --quiet \
        > "$workdir/crash_$round.txt" 2>&1 &
    coord_pid=$!
    pids+=("$coord_pid")
    if [[ "$round" == "a" ]]; then
        # One worker for the whole scenario; --reconnect carries it across
        # both planned crashes and into the restarted coordinator below.
        "$BVC_BIN" cluster work --connect "$addr" --reconnect 25 \
            > "$workdir/crash_worker.txt" 2>&1 &
        pids+=("$!")
    fi
    status=0
    wait "$coord_pid" || status=$?
    if [[ "$status" -ne 137 ]]; then
        echo "CHAOS SMOKE FAILED: crash run $round exited $status, want 137" >&2
        cat "$workdir/crash_$round.txt" >&2
        exit 1
    fi
    count=$(lines "$workdir/crash.jsonl")
    if [[ "$count" -ne 5 ]]; then
        echo "CHAOS SMOKE FAILED: crash run $round journaled $count lines, want" \
             "exactly 5 (crash schedule must replay deterministically)" >&2
        exit 1
    fi
done

echo "==> [3/4] restart-resume: same port, same journal, byte-identity after replay"
"$BVC_BIN" cluster coordinate --workload table2-setting1 --addr "$addr" \
    --journal "$workdir/crash.jsonl" \
    > "$workdir/resume.txt" 2>&1 &
coord_pid=$!
pids+=("$coord_pid")
if ! wait "$coord_pid"; then
    echo "CHAOS SMOKE FAILED: restarted coordinator exited nonzero" >&2
    cat "$workdir/resume.txt" >&2
    exit 1
fi
if ! grep -qE '21/21 cells ok \(5 replayed' "$workdir/resume.txt"; then
    echo "CHAOS SMOKE FAILED: restart did not replay the 5-line prefix" >&2
    cat "$workdir/resume.txt" >&2
    exit 1
fi
if ! cmp "$workdir/local.jsonl" "$workdir/crash.jsonl"; then
    echo "CHAOS SMOKE FAILED: resumed journal differs from the local reference" >&2
    exit 1
fi

# --- scenario 2: real SIGKILL mid-run, fsync-per-append restart ---------------
port=$(( (RANDOM % 2000) + 19000 ))
addr="127.0.0.1:$port"

echo "==> [4/4] kill -9 mid-run, restart with --durability always"
"$BVC_BIN" cluster coordinate --workload table2-setting1 --addr "$addr" \
    --journal "$workdir/kill.jsonl" --quiet \
    > "$workdir/kill_a.txt" 2>&1 &
coord_pid=$!
pids+=("$coord_pid")
# The worker's chaos plan paces every frame op so the journal grows
# slowly enough to kill the coordinator mid-run with cells left over.
"$BVC_BIN" cluster work --connect "$addr" --reconnect 25 \
    --chaos "seed=7,latency_ms=120" --chaos-site pacer \
    > "$workdir/kill_worker.txt" 2>&1 &
pids+=("$!")

for _ in $(seq 1 200); do
    [[ "$(lines "$workdir/kill.jsonl")" -ge 5 ]] && break
    sleep 0.1
done
count=$(lines "$workdir/kill.jsonl")
if [[ "$count" -lt 5 || "$count" -ge 21 ]]; then
    echo "CHAOS SMOKE FAILED: wanted to SIGKILL mid-run, journal has $count lines" >&2
    exit 1
fi
{ kill -9 "$coord_pid" && wait "$coord_pid"; } 2>/dev/null || true

"$BVC_BIN" cluster coordinate --workload table2-setting1 --addr "$addr" \
    --journal "$workdir/kill.jsonl" --durability always \
    > "$workdir/kill_b.txt" 2>&1 &
coord_pid=$!
pids+=("$coord_pid")
if ! wait "$coord_pid"; then
    echo "CHAOS SMOKE FAILED: post-SIGKILL coordinator exited nonzero" >&2
    cat "$workdir/kill_b.txt" >&2
    exit 1
fi
if ! grep -qE '21/21 cells ok' "$workdir/kill_b.txt"; then
    echo "CHAOS SMOKE FAILED: not every cell solved after SIGKILL restart" >&2
    cat "$workdir/kill_b.txt" >&2
    exit 1
fi
if ! cmp "$workdir/local.jsonl" "$workdir/kill.jsonl"; then
    echo "CHAOS SMOKE FAILED: post-SIGKILL journal differs from the reference" >&2
    exit 1
fi

echo "==> chaos smoke OK (planned crash x2, resume replay, SIGKILL recovery," \
     "byte-identical journals)"
