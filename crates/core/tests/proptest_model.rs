//! Property-based tests for the BU attack model: structural invariants of
//! the generated MDP over arbitrary power splits and parameters, and
//! dominance laws of the utilities.

use bvc_bu::{
    rewards, Action, AttackConfig, AttackModel, AttackState, IncentiveModel, Setting, SolveOptions,
};
use proptest::prelude::*;

/// Arbitrary valid power splits: alpha in [1%, 30%], the rest split by a
/// random fraction, respecting alpha <= min(beta, gamma) when asked.
fn power_split() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.01f64..0.30, 0.05f64..0.95).prop_map(|(alpha, frac)| {
        let rest = 1.0 - alpha;
        let beta = rest * frac;
        let gamma = rest - beta;
        (alpha, beta, gamma)
    })
}

fn config(
    (alpha, beta, gamma): (f64, f64, f64),
    ad: u8,
    setting: Setting,
    incentive: IncentiveModel,
) -> AttackConfig {
    AttackConfig { alpha, beta, gamma, ad, ad_carol: ad, gate_blocks: 24, setting, incentive }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated model validates (probabilities sum to one, no
    /// dangling states) and satisfies the state-geometry invariants.
    #[test]
    fn model_is_well_formed(split in power_split(), ad in 2u8..8,
                            setting_two in proptest::bool::ANY) {
        let setting = if setting_two { Setting::Two } else { Setting::One };
        let cfg = config(split, ad, setting, IncentiveModel::NonProfitDriven);
        let model = AttackModel::build(cfg).unwrap();
        model.mdp().validate().unwrap();
        for (s, _) in model.iter() {
            prop_assert!(s.l1 <= s.l2);
            prop_assert!(s.l2 < ad);
            prop_assert!(s.a1 <= s.l1 && s.a2 <= s.l2);
            if s.forked() { prop_assert!(s.a2 >= 1); }
            if setting == Setting::One { prop_assert_eq!(s.r, 0); }
        }
    }

    /// Block conservation: along every transition, the total locked +
    /// orphaned block mass equals the expected number of blocks mined in
    /// that (merged) event — the per-step rates then sum to exactly 1.
    #[test]
    fn block_conservation_per_policy(split in power_split(), ad in 2u8..7) {
        let cfg = config(split, ad, Setting::One, IncentiveModel::CompliantProfitDriven);
        let model = AttackModel::build(cfg).unwrap();
        let report = model.evaluate(&model.honest_policy()).unwrap();
        let total: f64 = report.rates[..4].iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "honest total {}", total);
    }

    /// The honest policy earns exactly alpha in both u1 and u2 and never
    /// orphans anything, for any parameters.
    #[test]
    fn honest_is_exactly_fair(split in power_split(), ad in 2u8..7) {
        let (alpha, _, _) = split;
        let cfg = config(split, ad, Setting::One, IncentiveModel::non_compliant_default());
        let model = AttackModel::build(cfg).unwrap();
        let report = model.evaluate(&model.honest_policy()).unwrap();
        prop_assert!((report.u1 - alpha).abs() < 1e-6);
        prop_assert!((report.u2 - alpha).abs() < 1e-6);
        prop_assert!(report.rates[rewards::OA].abs() < 1e-9);
        prop_assert!(report.rates[rewards::OOTHERS].abs() < 1e-9);
        prop_assert!(report.rates[rewards::DS].abs() < 1e-9);
    }

    /// Optimal utilities dominate the honest baseline: u1* >= alpha and
    /// u2* >= alpha (the honest policy is inside the strategy space).
    #[test]
    fn optima_dominate_honest(split in power_split(), ad in 3u8..7) {
        let (alpha, _, _) = split;
        let opts = SolveOptions::default();
        let cfg = config(split, ad, Setting::One, IncentiveModel::CompliantProfitDriven);
        let u1 = AttackModel::build(cfg).unwrap()
            .optimal_relative_revenue(&opts).unwrap().value;
        prop_assert!(u1 >= alpha - 1e-4, "u1* {} < alpha {}", u1, alpha);
        let cfg = config(split, ad, Setting::One, IncentiveModel::non_compliant_default());
        let u2 = AttackModel::build(cfg).unwrap()
            .optimal_absolute_revenue(&opts).unwrap().value;
        prop_assert!(u2 >= alpha - 1e-4, "u2* {} < alpha {}", u2, alpha);
    }

    /// Analytical Result 1's boundary: the compliant optimum strictly
    /// exceeds alpha only when alpha + gamma > beta.
    #[test]
    fn unfairness_requires_gamma_side_majority(split in power_split(), ad in 4u8..7) {
        let (alpha, beta, gamma) = split;
        prop_assume!((alpha + gamma - beta).abs() > 0.02); // stay off the boundary
        let opts = SolveOptions::default();
        let cfg = config(split, ad, Setting::One, IncentiveModel::CompliantProfitDriven);
        let u1 = AttackModel::build(cfg).unwrap()
            .optimal_relative_revenue(&opts).unwrap().value;
        if alpha + gamma < beta {
            prop_assert!((u1 - alpha).abs() < 1e-3,
                "expected honest-only at a+g<b, got {} vs {}", u1, alpha);
        }
        // (The converse direction — a strict gain whenever a+g>b — holds
        // only for large enough alpha; Table 2 shows fair cells at 10%.)
    }

    /// The Wait action never hurts: the non-profit optimum with Wait is at
    /// least the best ratio achievable without it (checked by evaluating
    /// the u3 objective on the NonCompliant model, whose action set lacks
    /// Wait but whose dynamics are identical).
    #[test]
    fn wait_action_weakly_helps(split in power_split(), ad in 3u8..6) {
        let opts = SolveOptions::default();
        let with_wait = AttackModel::build(config(
            split, ad, Setting::One, IncentiveModel::NonProfitDriven,
        )).unwrap().optimal_orphan_rate(&opts).unwrap().value;
        let without_wait = AttackModel::build(config(
            split, ad, Setting::One, IncentiveModel::CompliantProfitDriven,
        )).unwrap().optimal_orphan_rate(&opts).unwrap().value;
        prop_assert!(with_wait >= without_wait - 1e-3,
            "wait hurt: {} < {}", with_wait, without_wait);
    }

    /// The base state is recurrent: from every reachable state there is a
    /// path back to base under any action choices (unichain requirement of
    /// the solvers). Verified by breadth-first search over the union of all
    /// actions' transitions, reversed.
    #[test]
    fn base_state_is_globally_reachable(split in power_split(), ad in 2u8..7) {
        let cfg = config(split, ad, Setting::One, IncentiveModel::NonProfitDriven);
        let model = AttackModel::build(cfg).unwrap();
        let n = model.num_states();
        // Reverse reachability from base over per-action supports.
        let base = model.id_of(&AttackState::BASE).unwrap();
        let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, arms) in model.mdp().iter_states() {
            for arm in arms {
                for t in &arm.transitions {
                    incoming[t.to].push(id);
                }
            }
        }
        let mut reached = vec![false; n];
        let mut stack = vec![base];
        reached[base] = true;
        while let Some(s) = stack.pop() {
            for &p in &incoming[s] {
                if !reached[p] {
                    reached[p] = true;
                    stack.push(p);
                }
            }
        }
        // Every state reaches base... this checks the reverse: every state
        // is *co-reachable* from base along reversed edges, i.e. base is
        // reachable from it.
        prop_assert!(reached.iter().all(|&r| r), "some state cannot return to base");
    }
}

/// Non-property regression: the action labels on every arm round-trip
/// through `Action::from_label` (guards against enum/label drift).
#[test]
fn action_labels_roundtrip_in_model() {
    let cfg = AttackConfig::with_ratio(0.2, (1, 1), Setting::Two, IncentiveModel::NonProfitDriven);
    let model = AttackModel::build(cfg).unwrap();
    for (_, arms) in model.iter() {
        for arm in arms {
            let a = Action::from_label(arm.label);
            assert_eq!(a.label(), arm.label);
        }
    }
}
