//! Static audit of the real Table 2 models: the audit subsystem must
//! certify every precondition of the models the reproduction actually
//! solves, and the `--audit` pre-solve gate must stay invisible on them.
//!
//! These are the positive counterparts of the hand-built broken models in
//! `bvc_mdp::audit`'s unit tests: a reproduction whose auditor rejects its
//! own models would be useless, so the certification itself is pinned here.

use bvc_bu::{AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};
use bvc_mdp::{audit_compiled, audit_policy, AuditOptions, AuditStatus, CompiledMdp};

fn setting1_model(alpha: f64, ratio: (u32, u32), incentive: IncentiveModel) -> AttackModel {
    let cfg = AttackConfig::with_ratio(alpha, ratio, Setting::One, incentive);
    AttackModel::build(cfg).expect("model builds")
}

/// Table 2, setting 1, α = 25%, β:γ = 1:1 — the canonical cell: every
/// audit check must PASS outright, including the unichain certificate.
#[test]
fn table2_setting1_model_is_certified_clean() {
    let model = setting1_model(0.25, (1, 1), IncentiveModel::CompliantProfitDriven);
    let report = model.audit();
    assert!(
        report.clean(),
        "Table 2 setting-1 model must pass every audit check:\n{}",
        report.render_text()
    );
    for name in ["structure", "prob-finite", "prob-mass", "reward-finite", "reachable", "unichain"]
    {
        assert_eq!(
            report.check(name).map(|c| c.status),
            Some(AuditStatus::Pass),
            "check {name} missing or not PASS:\n{}",
            report.render_text()
        );
    }
    assert!(report.gate().is_ok());
}

/// The compiled CSR layout of the same model is certified by the
/// compiled-side auditor (csr-layout instead of structure).
#[test]
fn table2_setting1_compiled_model_is_certified_clean() {
    let model = setting1_model(0.25, (1, 1), IncentiveModel::CompliantProfitDriven);
    let compiled = CompiledMdp::compile(model.mdp()).expect("compiles");
    let report = audit_compiled(&compiled, &AuditOptions::default());
    assert!(report.clean(), "compiled audit must be clean:\n{}", report.render_text());
    assert_eq!(report.check("csr-layout").map(|c| c.status), Some(AuditStatus::Pass));
}

/// The honest policy of a certified model induces a single recurrent class.
#[test]
fn honest_policy_is_unichain_on_certified_model() {
    let model = setting1_model(0.2, (1, 1), IncentiveModel::CompliantProfitDriven);
    let check = audit_policy(model.mdp(), &model.honest_policy(), &AuditOptions::default());
    assert_eq!(check.status, AuditStatus::Pass, "{}: {}", check.name, check.detail);
}

/// All three incentive models of the paper produce certified-clean MDPs.
#[test]
fn all_incentive_models_audit_clean() {
    for incentive in [
        IncentiveModel::CompliantProfitDriven,
        IncentiveModel::non_compliant_default(),
        IncentiveModel::NonProfitDriven,
    ] {
        let model = setting1_model(0.15, (1, 2), incentive);
        let report = model.audit();
        assert!(report.clean(), "{incentive:?} model not clean:\n{}", report.render_text());
    }
}

/// With `SolveOptions::audit` on, the pre-solve gate is invisible for a
/// healthy model: the solver runs and reproduces the published value.
#[test]
fn audit_gate_is_transparent_for_certified_models() {
    let model = setting1_model(0.25, (2, 3), IncentiveModel::CompliantProfitDriven);
    let opts = SolveOptions { audit: true, ..SolveOptions::default() };
    let sol = model.optimal_relative_revenue(&opts).expect("gated solve succeeds");
    assert!((sol.value - 0.2739).abs() < 5e-4, "expected ≈ 0.2739, got {:.4}", sol.value);
}
