//! Tests for the heterogeneous-AD extension (§2.3 cites van Wirdum's
//! discussion of miners choosing different ADs: the 2017 network had the
//! BU majority at AD = 6 and BitClub Network at AD = 20).

use bvc_bu::{AttackConfig, AttackModel, AttackState, IncentiveModel, Setting, SolveOptions};

fn cfg(ad_bob: u8, ad_carol: u8, setting: Setting) -> AttackConfig {
    let mut c = AttackConfig::with_ratio(0.10, (1, 1), setting, IncentiveModel::NonProfitDriven)
        .with_ads(ad_bob, ad_carol);
    // A short sticky gate keeps the setting-2 state space small; the
    // qualitative comparisons are gate-length independent.
    c.gate_blocks = 24;
    c
}

/// Equal ADs reproduce the paper's model exactly (regression against the
/// homogeneous path).
#[test]
fn equal_ads_match_homogeneous_model() {
    let hetero = AttackModel::build(cfg(6, 6, Setting::One)).unwrap();
    let homo = AttackModel::build(AttackConfig::with_ratio(
        0.10,
        (1, 1),
        Setting::One,
        IncentiveModel::NonProfitDriven,
    ))
    .unwrap();
    assert_eq!(hetero.num_states(), homo.num_states());
    let opts = SolveOptions::default();
    let a = hetero.optimal_orphan_rate(&opts).unwrap().value;
    let b = homo.optimal_orphan_rate(&opts).unwrap().value;
    assert!((a - b).abs() < 1e-9);
}

/// In setting 1 only Bob's AD matters (phase-1 forks resolve at Bob's
/// acceptance depth), so varying Carol's AD changes nothing.
#[test]
fn setting1_ignores_carols_ad() {
    let opts = SolveOptions::default();
    let base = AttackModel::build(cfg(6, 6, Setting::One))
        .unwrap()
        .optimal_orphan_rate(&opts)
        .unwrap()
        .value;
    for ad_carol in [2, 12, 20] {
        let v = AttackModel::build(cfg(6, ad_carol, Setting::One))
            .unwrap()
            .optimal_orphan_rate(&opts)
            .unwrap()
            .value;
        assert!((v - base).abs() < 1e-6, "ad_carol={ad_carol}: {v} vs {base}");
    }
}

/// In setting 2, a larger Carol AD lengthens phase-2 forks: the reachable
/// state space grows and the attacker's orphan damage strictly increases.
#[test]
fn setting2_larger_carol_ad_amplifies_damage() {
    let opts = SolveOptions::default();
    let m6 = AttackModel::build(cfg(6, 6, Setting::Two)).unwrap();
    let m12 = AttackModel::build(cfg(6, 12, Setting::Two)).unwrap();
    assert!(m12.num_states() > m6.num_states());
    // Phase-2 fork states now reach l2 = 11.
    let deep = m12.iter().any(|(s, _)| s.phase2() && s.forked() && s.l2 >= 8);
    assert!(deep, "deep phase-2 forks must be reachable with ad_carol = 12");
    let u3_6 = m6.optimal_orphan_rate(&opts).unwrap().value;
    let u3_12 = m12.optimal_orphan_rate(&opts).unwrap().value;
    assert!(u3_12 > u3_6 + 1e-3, "longer phase-2 forks must increase damage: {u3_12} vs {u3_6}");
}

/// State geometry still holds with heterogeneous ADs: phase-1 forks are
/// bounded by Bob's AD, phase-2 forks by Carol's.
#[test]
fn heterogeneous_state_geometry() {
    let m = AttackModel::build(cfg(4, 9, Setting::Two)).unwrap();
    for (s, _) in m.iter() {
        assert!(s.l1 <= s.l2, "{s}");
        if s.forked() {
            if s.phase2() {
                assert!(s.l2 < 9, "phase-2 fork too long: {s}");
            } else {
                assert!(s.l2 < 4, "phase-1 fork too long: {s}");
            }
        }
    }
    assert!(m.id_of(&AttackState::BASE).is_some());
}
