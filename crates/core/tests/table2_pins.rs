//! Regression pins for Table 2 cells solved through the compiled CSR path.
//!
//! `AttackModel::optimal_relative_revenue` routes through
//! `bvc_mdp::solve::maximize_ratio`, which compiles the model once and runs
//! the warm-started, in-place-re-scalarized bisection. These pins hold the
//! published values fixed across layout/solver changes: if a future
//! "optimization" of the compiled kernels perturbs any of them, tier-1
//! fails here rather than in a table diff nobody reads.
//!
//! Tolerance is 5e-4: the paper prints four decimals and states a solver
//! precision of 1e-4.

use bvc_bu::{AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};

fn u1_with(alpha: f64, ratio: (u32, u32), opts: &SolveOptions) -> f64 {
    let cfg =
        AttackConfig::with_ratio(alpha, ratio, Setting::One, IncentiveModel::CompliantProfitDriven);
    let model = AttackModel::build(cfg).expect("model builds");
    model.optimal_relative_revenue(opts).expect("solver converges").value
}

fn u1(alpha: f64, ratio: (u32, u32)) -> f64 {
    u1_with(alpha, ratio, &SolveOptions::default())
}

/// Table 2, setting 1, α = 25%, β:γ = 2:3 — published 0.2739.
#[test]
fn table2_alpha25_2to3_compiled() {
    let v = u1(0.25, (2, 3));
    assert!((v - 0.2739).abs() < 5e-4, "expected ≈ 0.2739, got {v:.4}");
}

/// Table 2, setting 1, α = 15%, β:γ = 1:2 — published 0.1562.
#[test]
fn table2_alpha15_1to2_compiled() {
    let v = u1(0.15, (1, 2));
    assert!((v - 0.1562).abs() < 5e-4, "expected ≈ 0.1562, got {v:.4}");
}

/// Table 2, setting 1, α = 10%, β:γ = 1:3 — published 0.1026: a *strict*
/// incentive-compatibility violation (u1 > α) even for a 10% miner.
#[test]
fn table2_alpha10_1to3_compiled() {
    let v = u1(0.10, (1, 3));
    assert!((v - 0.1026).abs() < 5e-4, "expected ≈ 0.1026, got {v:.4}");
    assert!(v > 0.10, "u1 must strictly exceed α");
}

/// The same pins solved through the sharded Bellman kernel
/// (`solve_threads: 4`, sharding forced down to 1-state shards) — the
/// threaded path must reproduce the published table BIT-identically, not
/// just within tolerance, per the kernel's determinism contract.
#[test]
fn table2_pins_bit_identical_through_threaded_path() {
    let threaded = SolveOptions { solve_threads: 4, shard_min_states: 1, ..Default::default() };
    for (alpha, ratio, published) in
        [(0.25, (2, 3), 0.2739), (0.15, (1, 2), 0.1562), (0.10, (1, 3), 0.1026)]
    {
        let serial = u1(alpha, ratio);
        let parallel = u1_with(alpha, ratio, &threaded);
        assert_eq!(
            parallel.to_bits(),
            serial.to_bits(),
            "α={alpha} β:γ={ratio:?}: threaded u1 {parallel} != serial u1 {serial}"
        );
        assert!(
            (parallel - published).abs() < 5e-4,
            "α={alpha} β:γ={ratio:?}: expected ≈ {published}, got {parallel:.4}"
        );
    }
}
