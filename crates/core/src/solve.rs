//! High-level solving API: the optimal value of each of the paper's three
//! utilities for a configured attack model, plus full evaluation of any
//! fixed policy.

use bvc_mdp::solve::{
    evaluate_policy, maximize_ratio, relative_value_iteration, EvalOptions, RatioOptions,
    RviOptions,
};
use bvc_mdp::{MdpError, Policy, SolveBudget};

use crate::model::AttackModel;
use crate::rewards;
use crate::state::Action;

/// Numeric precision options for the high-level API.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Outer tolerance for ratio objectives (`u1`, `u3`). The paper states a
    /// maximum error of `1e-4`.
    pub ratio_tolerance: f64,
    /// Inner average-reward tolerance (also used directly for `u2`).
    pub gain_tolerance: f64,
    /// Iteration budget of the inner RVI solver. Sweep runners escalate
    /// this on [`MdpError::NoConvergence`] retries.
    pub max_iterations: usize,
    /// Aperiodicity mixing weight of the inner RVI solver, in `[0, 1)`.
    /// Sweep runners nudge this upward on retries to break periodic stalls.
    pub aperiodicity_tau: f64,
    /// Wall-clock deadline / cooperative cancellation, threaded through to
    /// every inner solver iteration. Unlimited by default.
    pub budget: SolveBudget,
    /// When set, run the static precondition audit ([`bvc_mdp::audit`])
    /// before solving and refuse to solve a model that fails any check
    /// (the solve returns [`MdpError::AuditFailed`] instead of converging
    /// to an untrustworthy number). Off by default; sweep runners enable
    /// it with `--audit`.
    pub audit: bool,
    /// Worker threads *inside* each Bellman sweep (sharded Jacobi kernel).
    /// `0` and `1` both mean single-threaded. Results are bit-identical for
    /// every value, so this is a pure throughput knob and is deliberately
    /// excluded from [`SolveOptions::fingerprint_token`]. Sweep runners that
    /// already parallelize across cells should leave this at 1 (see
    /// DESIGN.md on thread-budget arbitration).
    pub solve_threads: usize,
    /// Minimum states per intra-solve shard; solves smaller than
    /// `solve_threads * shard_min_states` engage fewer threads (possibly
    /// one) so tiny models never pay sharding overhead. Also excluded from
    /// the fingerprint token.
    pub shard_min_states: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        let rvi = RviOptions::default();
        SolveOptions {
            ratio_tolerance: 1e-5,
            gain_tolerance: 1e-7,
            max_iterations: rvi.max_iterations,
            aperiodicity_tau: rvi.aperiodicity_tau,
            budget: SolveBudget::unlimited(),
            audit: false,
            solve_threads: 1,
            shard_min_states: bvc_mdp::DEFAULT_SHARD_MIN_STATES,
        }
    }
}

impl SolveOptions {
    fn ratio_opts(&self) -> RatioOptions {
        RatioOptions { tolerance: self.ratio_tolerance, rvi: self.rvi_opts(), initial_hi: 1.0 }
    }

    fn rvi_opts(&self) -> RviOptions {
        RviOptions {
            tolerance: self.gain_tolerance,
            max_iterations: self.max_iterations,
            aperiodicity_tau: self.aperiodicity_tau,
            budget: self.budget.clone(),
            solve_threads: self.solve_threads,
            shard_min_states: self.shard_min_states,
            ..Default::default()
        }
    }

    /// A stable token identifying every numeric knob that can change a
    /// solver's *result* (budgets and deadlines are excluded: they change
    /// whether a cell solves, never its value). Checkpoint journals key
    /// cell fingerprints off this so stale results are re-solved.
    pub fn fingerprint_token(&self) -> String {
        format!(
            "rt={:016x};gt={:016x};mi={};tau={:016x}",
            self.ratio_tolerance.to_bits(),
            self.gain_tolerance.to_bits(),
            self.max_iterations,
            self.aperiodicity_tau.to_bits(),
        )
    }
}

/// An optimal-value result: the utility achieved and a policy achieving it.
#[derive(Debug, Clone)]
pub struct OptimalStrategy {
    /// The optimal utility value.
    pub value: f64,
    /// A policy attaining it (action indices per MDP state; map through
    /// [`AttackModel::state`] and [`Action::from_label`] to read it).
    pub policy: Policy,
}

/// Long-run behaviour of one fixed policy, reported in every utility.
#[derive(Debug, Clone)]
pub struct UtilityReport {
    /// Relative revenue `u1` (Eq. 1).
    pub u1: f64,
    /// Absolute revenue per block `u2` (Eq. 2).
    pub u2: f64,
    /// Orphans per attacker block `u3` (Eq. 3).
    pub u3: f64,
    /// Raw per-step rates of all five reward components
    /// `[R_A, R_others, O_A, O_others, DS]`.
    pub rates: Vec<f64>,
}

impl AttackModel {
    /// The opt-in pre-solve audit gate: a no-op unless `opts.audit` is set.
    fn audit_gate(&self, opts: &SolveOptions) -> Result<(), MdpError> {
        if opts.audit {
            self.audit().gate()?;
        }
        Ok(())
    }

    /// Maximum relative revenue `u1` (Table 2). For an honest miner this is
    /// exactly `α`; values above `α` mean BU is not incentive compatible.
    pub fn optimal_relative_revenue(
        &self,
        opts: &SolveOptions,
    ) -> Result<OptimalStrategy, MdpError> {
        self.audit_gate(opts)?;
        let sol = maximize_ratio(
            self.mdp(),
            &rewards::u1_numerator(),
            &rewards::u1_denominator(),
            &opts.ratio_opts(),
        )?;
        Ok(OptimalStrategy { value: sol.value, policy: sol.policy })
    }

    /// Maximum absolute revenue per block `u2` (Table 3): the long-run
    /// average of `R_A + R_DS` per block found in the network.
    pub fn optimal_absolute_revenue(
        &self,
        opts: &SolveOptions,
    ) -> Result<OptimalStrategy, MdpError> {
        self.audit_gate(opts)?;
        let sol = relative_value_iteration(self.mdp(), &rewards::u2_objective(), &opts.rvi_opts())?;
        Ok(OptimalStrategy { value: sol.gain, policy: sol.policy })
    }

    /// Maximum orphans per attacker block `u3` (Table 4). In Bitcoin this
    /// can never exceed 1; the paper's headline finding is 1.77 in BU.
    pub fn optimal_orphan_rate(&self, opts: &SolveOptions) -> Result<OptimalStrategy, MdpError> {
        self.audit_gate(opts)?;
        let sol = maximize_ratio(
            self.mdp(),
            &rewards::u3_numerator(),
            &rewards::u3_denominator(),
            &opts.ratio_opts(),
        )?;
        Ok(OptimalStrategy { value: sol.value, policy: sol.policy })
    }

    /// Evaluates a fixed policy in all three utilities at once.
    pub fn evaluate(&self, policy: &Policy) -> Result<UtilityReport, MdpError> {
        let ev = evaluate_policy(self.mdp(), policy, &EvalOptions::default())?;
        Ok(UtilityReport {
            u1: ev.ratio(&rewards::u1_numerator().weights, &rewards::u1_denominator().weights),
            u2: ev.rate(&rewards::u2_objective().weights),
            u3: ev.ratio(&rewards::u3_numerator().weights, &rewards::u3_denominator().weights),
            rates: ev.component_rates,
        })
    }

    /// The always-honest policy: mine on Chain 1 everywhere.
    pub fn honest_policy(&self) -> Policy {
        let mut p = Policy::zeros(self.num_states());
        for (id, arms) in self.mdp().iter_states() {
            let a = arms
                .iter()
                .position(|arm| arm.label == Action::OnChain1.label())
                .expect("OnChain1 is always available");
            p.choices[id] = a;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AttackConfig, IncentiveModel, Setting};
    use crate::model::AttackModel;

    fn model(alpha: f64, ratio: (u32, u32), incentive: IncentiveModel) -> AttackModel {
        AttackModel::build(AttackConfig::with_ratio(alpha, ratio, Setting::One, incentive)).unwrap()
    }

    #[test]
    fn honest_policy_earns_fair_share() {
        let m = model(0.2, (1, 1), IncentiveModel::CompliantProfitDriven);
        let report = m.evaluate(&m.honest_policy()).unwrap();
        assert!((report.u1 - 0.2).abs() < 1e-6, "u1 = {}", report.u1);
        assert!((report.u2 - 0.2).abs() < 1e-6, "u2 = {}", report.u2);
        assert!(report.u3.abs() < 1e-9, "u3 = {}", report.u3);
        // Honest mining never orphans anything.
        assert!(report.rates[crate::rewards::OA].abs() < 1e-12);
        assert!(report.rates[crate::rewards::OOTHERS].abs() < 1e-12);
    }

    /// Table 2, cell (α = 25%, β:γ = 1:1, setting 1): expected 26.24%.
    #[test]
    fn table2_alpha25_1to1() {
        let m = model(0.25, (1, 1), IncentiveModel::CompliantProfitDriven);
        let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
        assert!((sol.value - 0.2624).abs() < 5e-4, "expected ≈ 0.2624, got {:.4}", sol.value);
    }

    /// Table 2: when α + γ ≤ β the optimal strategy is honest (u1 = α).
    #[test]
    fn table2_no_gain_when_bob_strong() {
        let m = model(0.10, (3, 2), IncentiveModel::CompliantProfitDriven);
        let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
        assert!((sol.value - 0.10).abs() < 5e-4, "got {:.4}", sol.value);
    }

    /// Table 3, setting 2, cell (α = 1%, β:γ = 1:1): expected 0.034. Our
    /// implementation of the paper's stated double-spend rule reproduces the
    /// *setting 2* panel exactly; the published setting-1 panel is mutually
    /// inconsistent with it (see EXPERIMENTS.md), so setting-2 cells are the
    /// ones pinned here.
    #[test]
    fn table3_setting2_alpha1_1to1() {
        let m = AttackModel::build(AttackConfig::with_ratio(
            0.01,
            (1, 1),
            Setting::Two,
            IncentiveModel::non_compliant_default(),
        ))
        .unwrap();
        let sol = m.optimal_absolute_revenue(&SolveOptions::default()).unwrap();
        assert!((sol.value - 0.034).abs() < 1e-3, "expected ≈ 0.034, got {:.4}", sol.value);
    }

    /// Setting 1, γ-heavy cell (α = 1%, β:γ = 1:4): the published 0.013
    /// is reproduced by the stated rule.
    #[test]
    fn table3_setting1_alpha1_1to4() {
        let m = model(0.01, (1, 4), IncentiveModel::non_compliant_default());
        let sol = m.optimal_absolute_revenue(&SolveOptions::default()).unwrap();
        assert!((sol.value - 0.013).abs() < 1e-3, "expected ≈ 0.013, got {:.4}", sol.value);
    }

    /// Analytical Result 2's qualitative core: in BU even a 1% miner earns
    /// strictly more than the honest rate by double-spend forking, for every
    /// table ratio, in setting 1.
    #[test]
    fn table3_one_percent_miner_profits() {
        for ratio in [(2, 1), (1, 1), (1, 2), (1, 4)] {
            let m = model(0.01, ratio, IncentiveModel::non_compliant_default());
            let sol = m.optimal_absolute_revenue(&SolveOptions::default()).unwrap();
            assert!(
                sol.value > 0.01 + 1e-3,
                "ratio {ratio:?}: expected profit above honest 0.01, got {:.4}",
                sol.value
            );
        }
    }

    /// Table 4, cell (α = 1%, β:γ = 2:3, setting 1): expected 1.77.
    #[test]
    fn table4_alpha1_2to3() {
        let m = model(0.01, (2, 3), IncentiveModel::NonProfitDriven);
        let sol = m.optimal_orphan_rate(&SolveOptions::default()).unwrap();
        assert!((sol.value - 1.77).abs() < 2e-2, "expected ≈ 1.77, got {:.4}", sol.value);
    }
}
