//! Inspection of computed attack policies.
//!
//! The paper reasons qualitatively about the optimal strategies ("a close
//! examination of the optimal strategies in Sect. 4.2 shows that Alice
//! mines with the stronger miner group unless the other group has a large
//! lead", §5.1.2). This module turns a [`bvc_mdp::Policy`] back into that
//! kind of statement: per-state action maps, per-phase summaries, and the
//! side-preference statistics the §5.1.2 claim is about.

use bvc_mdp::{Policy, PolicyTable, PolicyTableError};

use crate::model::AttackModel;
use crate::state::{Action, AttackState};

/// The action a policy takes in one state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateAction {
    /// The state.
    pub state: AttackState,
    /// The chosen action.
    pub action: Action,
}

/// Aggregate description of a policy over the attack state space.
#[derive(Debug, Clone)]
pub struct PolicySummary {
    /// The action taken at the phase-1 base state: `OnChain2` means the
    /// policy initiates forks.
    pub base_action: Action,
    /// Fork states where the policy mines on Chain 1 (Bob's side in
    /// phase 1).
    pub on_chain1: usize,
    /// Fork states where the policy mines on Chain 2.
    pub on_chain2: usize,
    /// Fork states where the policy waits.
    pub waits: usize,
    /// Among phase-1 fork states, those where the policy mines with the
    /// *stronger* side, counting Alice's own contribution — Chain 2 when
    /// `α + γ > β` (the Table-2 profitability condition), Chain 1 when
    /// `α + β > γ`.
    pub with_stronger_group: usize,
    /// Total phase-1 fork states considered for the side statistic.
    pub phase1_fork_states: usize,
}

/// Extracts `(state, action)` pairs for every reachable state.
pub fn state_actions(model: &AttackModel, policy: &Policy) -> Vec<StateAction> {
    model
        .mdp()
        .iter_states()
        .map(|(id, _)| StateAction {
            state: model.state(id),
            action: Action::from_label(policy.label(model.mdp(), id)),
        })
        .collect()
}

/// Exports `policy` as a serializable [`PolicyTable`] keyed by each attack
/// state's display form `"(l1, l2, a1, a2, r)"`.
///
/// The display form is injective over the state space (it prints the full
/// 5-tuple), so the only possible errors are structural and indicate a bug
/// in the model's state enumeration. Consumers look actions up with
/// `table.action_of(&state.to_string())` and decode the label through
/// [`Action::from_label`]; the table's canonical text form
/// ([`PolicyTable::encode`]) is what the simulator and `/v1/policy`
/// transport across process boundaries.
pub fn policy_table(model: &AttackModel, policy: &Policy) -> Result<PolicyTable, PolicyTableError> {
    PolicyTable::from_policy(model.mdp(), policy, |id| model.state(id).to_string())
}

/// Summarizes a policy; see [`PolicySummary`].
pub fn summarize(model: &AttackModel, policy: &Policy) -> PolicySummary {
    let cfg = model.config();
    // The side Alice joins gains her power: Chain 2's effective strength
    // is alpha + gamma when she mines there, Chain 1's is alpha + beta.
    let stronger_is_chain2 = cfg.alpha + cfg.gamma > cfg.beta;
    let mut summary = PolicySummary {
        base_action: Action::OnChain1,
        on_chain1: 0,
        on_chain2: 0,
        waits: 0,
        with_stronger_group: 0,
        phase1_fork_states: 0,
    };
    for sa in state_actions(model, policy) {
        if sa.state == AttackState::BASE {
            summary.base_action = sa.action;
        }
        if !sa.state.forked() {
            continue;
        }
        match sa.action {
            Action::OnChain1 => summary.on_chain1 += 1,
            Action::OnChain2 => summary.on_chain2 += 1,
            Action::Wait => summary.waits += 1,
        }
        if !sa.state.phase2() {
            summary.phase1_fork_states += 1;
            let with_chain2 = sa.action == Action::OnChain2;
            if with_chain2 == stronger_is_chain2 && sa.action != Action::Wait {
                summary.with_stronger_group += 1;
            }
        }
    }
    summary
}

/// Renders the phase-1 action map as a compact text grid: rows are
/// `(l1, l2)`, entries list the action per `(a1, a2)` in enumeration order
/// (`1` = OnChain1, `2` = OnChain2, `w` = Wait).
pub fn render_phase1_map(model: &AttackModel, policy: &Policy) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut entries = state_actions(model, policy);
    entries.retain(|sa| sa.state.forked() && !sa.state.phase2());
    entries.sort_by_key(|sa| (sa.state.l1, sa.state.l2, sa.state.a1, sa.state.a2));
    let mut current = (u8::MAX, u8::MAX);
    for sa in entries {
        let key = (sa.state.l1, sa.state.l2);
        if key != current {
            if current != (u8::MAX, u8::MAX) {
                let _ = writeln!(out);
            }
            let _ = write!(out, "l1={} l2={}: ", key.0, key.1);
            current = key;
        }
        let c = match sa.action {
            Action::OnChain1 => '1',
            Action::OnChain2 => '2',
            Action::Wait => 'w',
        };
        let _ = write!(out, "{c}");
    }
    let _ = writeln!(out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AttackConfig, IncentiveModel, Setting};
    use crate::solve::SolveOptions;

    fn model(alpha: f64, ratio: (u32, u32)) -> AttackModel {
        AttackModel::build(AttackConfig::with_ratio(
            alpha,
            ratio,
            Setting::One,
            IncentiveModel::CompliantProfitDriven,
        ))
        .unwrap()
    }

    /// The action table of a *solved* cell round-trips through the text
    /// encoding and agrees with the raw policy state-by-state.
    #[test]
    fn policy_table_roundtrips_solved_cell() {
        let m = model(0.25, (1, 1));
        let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
        let table = policy_table(&m, &sol.policy).unwrap();
        assert_eq!(table.len(), m.num_states());
        let back = PolicyTable::decode(&table.encode()).unwrap();
        assert_eq!(back, table);
        for (id, _) in m.mdp().iter_states() {
            let state = m.state(id);
            let expect = sol.policy.label(m.mdp(), id);
            assert_eq!(
                back.action_of(&state.to_string()),
                Some(expect),
                "table disagrees with policy at {state}"
            );
            // And the label decodes to a domain action.
            let _ = Action::from_label(expect);
        }
    }

    #[test]
    fn honest_policy_summary_is_all_chain1() {
        let m = model(0.2, (1, 1));
        let s = summarize(&m, &m.honest_policy());
        assert_eq!(s.base_action, Action::OnChain1);
        assert_eq!(s.on_chain2, 0);
        assert_eq!(s.waits, 0);
        assert!(s.on_chain1 > 0);
    }

    /// The profitable optimal policy initiates forks at the base state.
    #[test]
    fn profitable_policy_forks_at_base() {
        let m = model(0.25, (1, 1));
        let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
        let s = summarize(&m, &sol.policy);
        assert_eq!(s.base_action, Action::OnChain2);
        assert!(s.on_chain2 > 0);
    }

    /// §5.1.2's claim: in the compliant optimum, Alice mines with the
    /// stronger group in the (large) majority of fork states.
    #[test]
    fn alice_mines_with_the_stronger_group() {
        for ratio in [(1, 2), (2, 3)] {
            let m = model(0.25, ratio);
            let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
            let s = summarize(&m, &sol.policy);
            assert!(s.phase1_fork_states > 0);
            let frac = s.with_stronger_group as f64 / s.phase1_fork_states as f64;
            assert!(
                frac > 0.5,
                "ratio {ratio:?}: only {frac:.2} of fork states side with the stronger group"
            );
        }
    }

    #[test]
    fn phase1_map_renders_all_fork_states() {
        let m = model(0.25, (1, 1));
        let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
        let map = render_phase1_map(&m, &sol.policy);
        assert!(map.contains("l1=0 l2=1"));
        assert!(map.contains('2'), "a profitable policy shows OnChain2 somewhere");
        // Every fork state appears exactly once: count action characters
        // after each row's "label: " prefix.
        let cells: usize = map
            .lines()
            .filter_map(|line| line.split(": ").nth(1))
            .map(|actions| actions.chars().filter(|c| matches!(c, '1' | '2' | 'w')).count())
            .sum();
        let fork_states =
            state_actions(&m, &sol.policy).iter().filter(|sa| sa.state.forked()).count();
        assert_eq!(cells, fork_states);
    }
}
