//! Scenario configuration: mining power split, acceptance depth, sticky-gate
//! setting, and the incentive model under which Alice is analyzed.

use std::fmt;

/// Which phases of the attack are reachable (§4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Setting {
    /// Setting 1: the sticky gate is disabled (BUIP038), so only phase 1 is
    /// permitted. Equivalently, the attacker only launches the attack in
    /// phase 1.
    One,
    /// Setting 2: the sticky gate is enabled; both phase 1 and phase 2 are
    /// permitted.
    Two,
}

impl fmt::Display for Setting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Setting::One => write!(f, "setting 1"),
            Setting::Two => write!(f, "setting 2"),
        }
    }
}

/// The three strategic-miner incentive models of §3, with the per-model
/// utility the paper assigns to each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IncentiveModel {
    /// §3.1: Alice never observably deviates; utility is *relative revenue*
    /// `u1 = ΣR_A / (ΣR_A + ΣR_others)` (Eq. 1).
    CompliantProfitDriven,
    /// §3.2: Alice combines forking with double spending; utility is the
    /// *absolute reward* per block `u2 = (ΣR_A + ΣR_DS) / t` (Eq. 2).
    NonCompliantProfitDriven {
        /// Double-spend payout in units of the block reward (the paper uses
        /// 10).
        rds: f64,
        /// Merchant settlement threshold: a payout of `(k - threshold) * rds`
        /// is received when `k > threshold` blocks are orphaned in one
        /// resolution (the paper uses 3, i.e. four confirmations).
        threshold: u8,
    },
    /// §3.3: Alice maximizes damage per own block; utility is
    /// `u3 = ΣO_others / (ΣR_A + ΣO_A)` (Eq. 3). Adds the `Wait` action.
    NonProfitDriven,
}

impl IncentiveModel {
    /// The paper's double-spending parameterization: `R_DS` worth ten block
    /// rewards, merchants shipping after four confirmations.
    pub fn non_compliant_default() -> Self {
        IncentiveModel::NonCompliantProfitDriven { rds: 10.0, threshold: 3 }
    }

    /// Whether this model grants Alice the `Wait` action.
    pub fn allows_wait(&self) -> bool {
        matches!(self, IncentiveModel::NonProfitDriven)
    }
}

/// Full configuration of the three-miner attack scenario of §4.1.1.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackConfig {
    /// Alice's (the strategic miner's) mining power share.
    pub alpha: f64,
    /// Bob's share — the miner (group) with the *smaller* EB.
    pub beta: f64,
    /// Carol's share — the miner (group) with the *larger* EB.
    pub gamma: f64,
    /// Bob's excessive acceptance depth (the paper uses `AD = 6` in line
    /// with 2017 BU miners). Bob's AD governs phase-1 forks: Chain 2 must
    /// reach this depth before Bob adopts it.
    pub ad: u8,
    /// Carol's excessive acceptance depth. Equal to [`AttackConfig::ad`] in
    /// the paper's model; the heterogeneous case (§2.3 cites real miners
    /// signalling `AD = 6` vs `AD = 20`) is an extension of this crate.
    /// Carol's AD governs phase-2 forks, where she is the rejecting miner.
    pub ad_carol: u8,
    /// Sticky-gate countdown length (144 in BU; exposed for ablations and
    /// fast tests).
    pub gate_blocks: u16,
    /// Which phases are reachable.
    pub setting: Setting,
    /// Alice's incentive model.
    pub incentive: IncentiveModel,
}

impl AttackConfig {
    /// A configuration with the paper's defaults (`AD = 6`, 144-block gate)
    /// for a given power split. `beta_to_gamma` is the `β : γ` ratio used in
    /// the paper's tables; the remaining power `1 − α` is divided
    /// accordingly.
    pub fn with_ratio(
        alpha: f64,
        beta_to_gamma: (u32, u32),
        setting: Setting,
        incentive: IncentiveModel,
    ) -> Self {
        let (b, c) = beta_to_gamma;
        assert!(b > 0 && c > 0, "ratio parts must be positive");
        let rest = 1.0 - alpha;
        let beta = rest * b as f64 / (b + c) as f64;
        let gamma = rest * c as f64 / (b + c) as f64;
        AttackConfig {
            alpha,
            beta,
            gamma,
            ad: 6,
            ad_carol: 6,
            gate_blocks: 144,
            setting,
            incentive,
        }
    }

    /// Sets both miners' acceptance depths (the heterogeneous-AD
    /// extension); returns `self` for chaining.
    pub fn with_ads(mut self, ad_bob: u8, ad_carol: u8) -> Self {
        self.ad = ad_bob;
        self.ad_carol = ad_carol;
        self
    }

    /// Validates the power split and structural parameters.
    ///
    /// # Panics
    /// Panics on non-positive shares, shares not summing to one, `ad < 2`,
    /// or a zero-length gate in setting 2.
    pub fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.beta > 0.0 && self.gamma > 0.0,
            "all shares must be positive"
        );
        let sum = self.alpha + self.beta + self.gamma;
        assert!((sum - 1.0).abs() < 1e-9, "shares must sum to 1, got {sum}");
        assert!(self.ad >= 2, "AD must be at least 2 for a fork to exist");
        assert!(self.ad_carol >= 2, "Carol's AD must be at least 2");
        if self.setting == Setting::Two {
            assert!(self.gate_blocks >= 1, "setting 2 requires a nonzero gate");
        }
    }

    /// Whether this configuration satisfies the paper's standing assumption
    /// `α ≤ min(β, γ)` (the tables only report such cells).
    pub fn satisfies_power_assumption(&self) -> bool {
        self.alpha <= self.beta.min(self.gamma) + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_ratio_splits_rest() {
        let c = AttackConfig::with_ratio(
            0.10,
            (2, 1),
            Setting::One,
            IncentiveModel::CompliantProfitDriven,
        );
        assert!((c.beta - 0.6).abs() < 1e-12);
        assert!((c.gamma - 0.3).abs() < 1e-12);
        c.validate();
    }

    #[test]
    fn power_assumption_detects_violations() {
        let ok = AttackConfig::with_ratio(
            0.25,
            (1, 1),
            Setting::One,
            IncentiveModel::CompliantProfitDriven,
        );
        assert!(ok.satisfies_power_assumption());
        let bad = AttackConfig::with_ratio(
            0.25,
            (4, 1),
            Setting::One,
            IncentiveModel::CompliantProfitDriven,
        );
        assert!(!bad.satisfies_power_assumption()); // gamma = 0.15 < alpha
    }

    #[test]
    #[should_panic(expected = "shares must sum to 1")]
    fn validate_rejects_bad_sum() {
        let c = AttackConfig {
            alpha: 0.5,
            beta: 0.1,
            gamma: 0.1,
            ad: 6,
            ad_carol: 6,
            gate_blocks: 144,
            setting: Setting::One,
            incentive: IncentiveModel::CompliantProfitDriven,
        };
        c.validate();
    }

    #[test]
    fn wait_only_for_non_profit() {
        assert!(!IncentiveModel::CompliantProfitDriven.allows_wait());
        assert!(!IncentiveModel::non_compliant_default().allows_wait());
        assert!(IncentiveModel::NonProfitDriven.allows_wait());
    }

    #[test]
    fn settings_display() {
        assert_eq!(Setting::One.to_string(), "setting 1");
        assert_eq!(Setting::Two.to_string(), "setting 2");
    }
}
