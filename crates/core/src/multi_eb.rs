//! The multi-EB generalization of §4.1.1.
//!
//! The paper's three-miner setup with two compliant `EB` groups is "the
//! weakest form of the attack": with `k` distinct EBs
//! `EB_1 < EB_2 < … < EB_k` in the network, Alice can pick any split point
//! `1 ≤ d < k` and divide the compliant miners into the groups
//! `{EB_1 … EB_d}` (rejecting her fork block) and `{EB_{d+1} … EB_k}`
//! (accepting it) by mining a block of size `EB_{d+1}` (or just above
//! `EB_d`). Every split instantiates the two-group model with
//! `β = m_1 + … + m_d` and `γ = m_{d+1} + … + m_k`, so more EBs can only
//! give Alice *more options*.
//!
//! This module makes that argument executable: it enumerates the splits,
//! solves the induced two-group model for each, and returns the best.

use bvc_mdp::MdpError;

use crate::config::{AttackConfig, IncentiveModel, Setting};
use crate::model::AttackModel;
use crate::solve::SolveOptions;

/// A compliant miner group signalling one EB value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EbGroup {
    /// The group's excessive block size, in any unit (only the order
    /// matters for the analysis).
    pub eb: u64,
    /// The group's mining power share (of the whole network).
    pub power: f64,
}

/// The outcome of one split choice.
#[derive(Debug, Clone)]
pub struct SplitOutcome {
    /// The chosen split index `d`: groups `0..d` reject the fork block.
    pub d: usize,
    /// The induced `β` (rejecting power).
    pub beta: f64,
    /// The induced `γ` (accepting power).
    pub gamma: f64,
    /// The attacker's optimal utility for this split.
    pub value: f64,
}

/// The multi-EB attack scenario.
#[derive(Debug, Clone)]
pub struct MultiEbScenario {
    /// Alice's power share.
    pub alpha: f64,
    /// The compliant groups, strictly increasing in `eb`, powers summing to
    /// `1 − alpha`.
    pub groups: Vec<EbGroup>,
    /// Acceptance depth shared by all compliant miners.
    pub ad: u8,
    /// Which phases are modeled.
    pub setting: Setting,
    /// Alice's incentive model.
    pub incentive: IncentiveModel,
}

impl MultiEbScenario {
    /// Validates group ordering and power totals.
    ///
    /// # Panics
    /// Panics on non-increasing EBs or powers not summing to `1 − alpha`.
    pub fn validate(&self) {
        assert!(self.groups.len() >= 2, "need at least two EB groups to split");
        for w in self.groups.windows(2) {
            assert!(w[0].eb < w[1].eb, "EBs must be strictly increasing");
        }
        let total: f64 = self.groups.iter().map(|g| g.power).sum();
        assert!(
            (total + self.alpha - 1.0).abs() < 1e-9,
            "powers must sum to 1 - alpha, got {total}"
        );
    }

    /// The two-group configuration induced by split `d` (groups `0..d`
    /// become Bob, the rest Carol).
    pub fn config_for_split(&self, d: usize) -> AttackConfig {
        assert!(d >= 1 && d < self.groups.len(), "split must be 1 ≤ d < k");
        let beta: f64 = self.groups[..d].iter().map(|g| g.power).sum();
        let gamma: f64 = self.groups[d..].iter().map(|g| g.power).sum();
        AttackConfig {
            alpha: self.alpha,
            beta,
            gamma,
            ad: self.ad,
            ad_carol: self.ad,
            gate_blocks: 144,
            setting: self.setting,
            incentive: self.incentive,
        }
    }

    /// Solves the attacker's optimal utility for every split and returns
    /// the outcomes in split order.
    pub fn all_splits(&self, opts: &SolveOptions) -> Result<Vec<SplitOutcome>, MdpError> {
        self.validate();
        let mut out = Vec::with_capacity(self.groups.len() - 1);
        for d in 1..self.groups.len() {
            let cfg = self.config_for_split(d);
            let (beta, gamma) = (cfg.beta, cfg.gamma);
            let model = AttackModel::build(cfg)?;
            let value = match self.incentive {
                IncentiveModel::CompliantProfitDriven => {
                    model.optimal_relative_revenue(opts)?.value
                }
                IncentiveModel::NonCompliantProfitDriven { .. } => {
                    model.optimal_absolute_revenue(opts)?.value
                }
                IncentiveModel::NonProfitDriven => model.optimal_orphan_rate(opts)?.value,
            };
            out.push(SplitOutcome { d, beta, gamma, value });
        }
        Ok(out)
    }

    /// The attacker's best split.
    pub fn best_split(&self, opts: &SolveOptions) -> Result<SplitOutcome, MdpError> {
        let splits = self.all_splits(opts)?;
        Ok(splits
            .into_iter()
            .max_by(|a, b| a.value.partial_cmp(&b.value).expect("values are finite"))
            .expect("at least one split"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(alpha: f64, powers: &[f64], incentive: IncentiveModel) -> MultiEbScenario {
        MultiEbScenario {
            alpha,
            groups: powers
                .iter()
                .enumerate()
                .map(|(i, &power)| EbGroup { eb: (i as u64 + 1) * 1_000_000, power })
                .collect(),
            ad: 6,
            setting: Setting::One,
            incentive,
        }
    }

    /// With three EB groups, the attacker's best split weakly dominates
    /// both two-group sub-scenarios — "more EBs only give Alice more
    /// options".
    #[test]
    fn more_ebs_weakly_dominate() {
        let opts = SolveOptions::default();
        let s = scenario(0.05, &[0.35, 0.30, 0.30], IncentiveModel::NonProfitDriven);
        let splits = s.all_splits(&opts).unwrap();
        assert_eq!(splits.len(), 2);
        let best = s.best_split(&opts).unwrap();
        for split in &splits {
            assert!(best.value >= split.value - 1e-9);
        }
        // The best split must at least match any *merged* coarsening: here
        // both coarsenings are exactly the two splits, so nothing more to
        // check structurally; numerically the best is positive.
        assert!(best.value > 0.0);
    }

    /// The induced β/γ decomposition is consistent.
    #[test]
    fn split_power_arithmetic() {
        let s = scenario(0.10, &[0.2, 0.3, 0.4], IncentiveModel::CompliantProfitDriven);
        let c1 = s.config_for_split(1);
        assert!((c1.beta - 0.2).abs() < 1e-12);
        assert!((c1.gamma - 0.7).abs() < 1e-12);
        let c2 = s.config_for_split(2);
        assert!((c2.beta - 0.5).abs() < 1e-12);
        assert!((c2.gamma - 0.4).abs() < 1e-12);
    }

    /// A compliant 20% attacker against three equal groups: splitting in
    /// the middle maximizes γ-side advantage per Table 2's α + γ > β
    /// condition.
    #[test]
    fn compliant_best_split_obeys_table2_condition() {
        let opts = SolveOptions::default();
        let s = scenario(0.10, &[0.30, 0.30, 0.30], IncentiveModel::CompliantProfitDriven);
        let splits = s.all_splits(&opts).unwrap();
        // d = 1: beta 0.3, gamma 0.6 (alpha + gamma > beta: attack viable).
        // d = 2: beta 0.6, gamma 0.3 (alpha + gamma = 0.4 < 0.6: honest).
        assert!(splits[0].value >= splits[1].value);
        assert!((splits[1].value - 0.10).abs() < 1e-3, "d=2 is honest-only");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_groups() {
        let s = MultiEbScenario {
            alpha: 0.1,
            groups: vec![
                EbGroup { eb: 2_000_000, power: 0.45 },
                EbGroup { eb: 1_000_000, power: 0.45 },
            ],
            ad: 6,
            setting: Setting::One,
            incentive: IncentiveModel::CompliantProfitDriven,
        };
        s.validate();
    }
}
