//! Reward components and the paper's three utility functions.
//!
//! Every transition of the attack MDP carries a 5-component reward vector;
//! the utilities of §3 are ratios or rates of linear combinations of these
//! components, built here as [`bvc_mdp::Objective`]s.

use bvc_mdp::Objective;

/// Number of reward components.
pub const COMPONENTS: usize = 5;

/// Component index: block rewards locked in for Alice (`ΣR_A`).
pub const RA: usize = 0;
/// Component index: block rewards locked in for Bob and Carol combined
/// (`ΣR_others`).
pub const ROTHERS: usize = 1;
/// Component index: Alice's orphaned blocks (`ΣO_A`).
pub const OA: usize = 2;
/// Component index: Bob's and Carol's orphaned blocks (`ΣO_others`).
pub const OOTHERS: usize = 3;
/// Component index: double-spending payouts in block-reward units
/// (`ΣR_DS`).
pub const DS: usize = 4;

/// An empty reward vector.
pub fn zero() -> Vec<f64> {
    vec![0.0; COMPONENTS]
}

/// Numerator of relative revenue `u1` (Eq. 1): `ΣR_A`.
pub fn u1_numerator() -> Objective {
    Objective::component(RA, COMPONENTS)
}

/// Denominator of relative revenue `u1` (Eq. 1): `ΣR_A + ΣR_others`.
pub fn u1_denominator() -> Objective {
    let mut w = vec![0.0; COMPONENTS];
    w[RA] = 1.0;
    w[ROTHERS] = 1.0;
    Objective::new(w)
}

/// Per-step objective of absolute revenue `u2` (Eq. 2): `R_A + R_DS`.
/// One block is found per MDP step, so the long-run per-step rate of this
/// objective *is* `u2` (the paper sets `t = ΣR_A + ΣR_others + ΣO_A +
/// ΣO_others`, the total number of blocks mined).
pub fn u2_objective() -> Objective {
    let mut w = vec![0.0; COMPONENTS];
    w[RA] = 1.0;
    w[DS] = 1.0;
    Objective::new(w)
}

/// Denominator of the ratio form of `u2`: all blocks mined. Used to verify
/// that the per-step and per-block readings of Eq. 2 agree.
pub fn all_blocks() -> Objective {
    let mut w = vec![0.0; COMPONENTS];
    w[RA] = 1.0;
    w[ROTHERS] = 1.0;
    w[OA] = 1.0;
    w[OOTHERS] = 1.0;
    Objective::new(w)
}

/// Numerator of the orphan-rate utility `u3` (Eq. 3): `ΣO_others`.
pub fn u3_numerator() -> Objective {
    Objective::component(OOTHERS, COMPONENTS)
}

/// Denominator of `u3` (Eq. 3): `ΣR_A + ΣO_A` — every block Alice mined,
/// whether it ended up locked or orphaned.
pub fn u3_denominator() -> Objective {
    let mut w = vec![0.0; COMPONENTS];
    w[RA] = 1.0;
    w[OA] = 1.0;
    Objective::new(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_indices_are_distinct() {
        let all = [RA, ROTHERS, OA, OOTHERS, DS];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert!(all.iter().all(|&c| c < COMPONENTS));
    }

    #[test]
    fn objectives_pick_expected_components() {
        let r = [1.0, 2.0, 4.0, 8.0, 16.0];
        assert_eq!(u1_numerator().scalarize(&r), 1.0);
        assert_eq!(u1_denominator().scalarize(&r), 3.0);
        assert_eq!(u2_objective().scalarize(&r), 17.0);
        assert_eq!(all_blocks().scalarize(&r), 15.0);
        assert_eq!(u3_numerator().scalarize(&r), 8.0);
        assert_eq!(u3_denominator().scalarize(&r), 5.0);
    }

    #[test]
    fn zero_has_right_arity() {
        assert_eq!(zero().len(), COMPONENTS);
        assert!(zero().iter().all(|&x| x == 0.0));
    }
}
