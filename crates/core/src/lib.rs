//! # bvc-bu — the Bitcoin Unlimited attack-strategy MDP models
//!
//! This crate is the reproduction of the core contribution of Zhang &
//! Preneel, *"On the Necessity of a Prescribed Block Validity Consensus:
//! Analyzing Bitcoin Unlimited Mining Protocol"* (CoNEXT 2017), §4: a
//! three-miner model in which a strategic miner (Alice) exploits the absence
//! of a block validity consensus to fork the blockchain between two
//! compliant miner groups (Bob with a small `EB`, Carol with a larger one).
//!
//! The mining race is encoded as an undiscounted average-reward Markov
//! decision process over states `(l1, l2, a1, a2, r)` (see
//! [`state::AttackState`]) and solved for the optimal attacker strategy
//! under the paper's three incentive models:
//!
//! | incentive model | utility | paper result |
//! |---|---|---|
//! | compliant & profit-driven | relative revenue `u1` | Table 2: up to 27.6% for a 25% miner |
//! | non-compliant & profit-driven | absolute revenue `u2` | Table 3: profitable double spending even at α = 1% |
//! | non-profit-driven | orphans per attacker block `u3` | Table 4: up to 1.77 (Bitcoin: ≤ 1) |
//!
//! ## Quick example
//!
//! ```
//! use bvc_bu::{AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};
//!
//! // A compliant 25% miner against a 37.5%/37.5% split (β : γ = 1 : 1).
//! let cfg = AttackConfig::with_ratio(
//!     0.25, (1, 1), Setting::One, IncentiveModel::CompliantProfitDriven);
//! let model = AttackModel::build(cfg).unwrap();
//! let honest = model.evaluate(&model.honest_policy()).unwrap();
//! assert!((honest.u1 - 0.25).abs() < 1e-6); // honest mining is fair...
//! let best = model.optimal_relative_revenue(&SolveOptions::default()).unwrap();
//! assert!(best.value > 0.26); // ...but deliberate forking beats it.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod model;
pub mod multi_eb;
pub mod policy_view;
pub mod rewards;
pub mod solve;
pub mod state;
pub mod table1;

pub use config::{AttackConfig, IncentiveModel, Setting};
pub use model::{expand, AttackModel};
pub use multi_eb::{EbGroup, MultiEbScenario, SplitOutcome};
pub use policy_view::{
    policy_table, render_phase1_map, state_actions, summarize, PolicySummary, StateAction,
};
pub use solve::{OptimalStrategy, SolveOptions, UtilityReport};
pub use state::{Action, AttackState};
