//! The attacker's MDP state and action space (§4.1.2 of the paper).

use std::fmt;

/// A state of the attack MDP: the paper's 5-tuple `(l1, l2, a1, a2, r)`.
///
/// * `l1`, `l2` — lengths of Chain 1 and Chain 2 since the fork point;
/// * `a1`, `a2` — how many of those blocks Alice mined;
/// * `r` — blocks that still need to be mined on Bob's chain before his
///   sticky gate closes. `r == 0` means phase 1 (both gates closed);
///   `1 ..= 144` means phase 2 (Bob's gate open). Phase 3 (both gates open)
///   is only a transient during state transition and never stored.
///
/// Role convention, following the paper: in phase 1 Chain 1 is Bob's chain
/// and Chain 2 starts with Alice's block of size `EB_C` (Carol mines on it);
/// in phase 2 the roles swap — Chain 1 is Carol's chain and Chain 2 starts
/// with Alice's block of size just above `EB_C` (Bob, whose gate is open,
/// mines on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttackState {
    /// Length of Chain 1 since the fork (the chain of the miner whose view
    /// rejects Alice's fork block).
    pub l1: u8,
    /// Length of Chain 2 since the fork (the chain containing Alice's fork
    /// block). `0` iff there is no ongoing fork.
    pub l2: u8,
    /// Alice's blocks on Chain 1.
    pub a1: u8,
    /// Alice's blocks on Chain 2.
    pub a2: u8,
    /// Sticky-gate countdown: blocks remaining before Bob's gate closes.
    pub r: u16,
}

impl AttackState {
    /// The phase-1 base state `(0, 0, 0, 0, 0)`.
    pub const BASE: AttackState = AttackState { l1: 0, l2: 0, a1: 0, a2: 0, r: 0 };

    /// A base state (no ongoing fork) with the given gate countdown.
    pub fn base(r: u16) -> Self {
        AttackState { l1: 0, l2: 0, a1: 0, a2: 0, r }
    }

    /// Whether a fork is ongoing.
    pub fn forked(&self) -> bool {
        self.l2 > 0
    }

    /// Whether the system is in phase 2 (Bob's sticky gate open).
    pub fn phase2(&self) -> bool {
        self.r > 0
    }
}

impl fmt::Display for AttackState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {}, {})", self.l1, self.l2, self.a1, self.a2, self.r)
    }
}

/// Alice's actions. `Wait` exists only in the non-profit-driven model
/// (§4.4): Alice stops mining and watches Bob and Carol orphan each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Mine on Chain 1. At the base state this means mining a compliant
    /// block on the agreed chain.
    OnChain1,
    /// Mine on Chain 2. At the base state this means *trying to fork*: in
    /// phase 1, mining a block of size exactly `EB_C` (valid for Carol,
    /// excessive for Bob); in phase 2, a block just above `EB_C` (accepted
    /// by gate-open Bob, rejected by Carol).
    OnChain2,
    /// Do not mine; the next block comes from Bob or Carol.
    Wait,
}

impl Action {
    /// Stable numeric label used inside [`bvc_mdp::Mdp`] action arms.
    pub const fn label(self) -> usize {
        match self {
            Action::OnChain1 => 0,
            Action::OnChain2 => 1,
            Action::Wait => 2,
        }
    }

    /// Inverse of [`Action::label`].
    pub fn from_label(label: usize) -> Self {
        match label {
            0 => Action::OnChain1,
            1 => Action::OnChain2,
            2 => Action::Wait,
            other => panic!("unknown action label {other}"),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Action::OnChain1 => "OnChain1",
            Action::OnChain2 => "OnChain2",
            Action::Wait => "Wait",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_state_is_unforked_phase1() {
        assert!(!AttackState::BASE.forked());
        assert!(!AttackState::BASE.phase2());
        assert_eq!(AttackState::base(0), AttackState::BASE);
    }

    #[test]
    fn phase2_base() {
        let s = AttackState::base(144);
        assert!(s.phase2());
        assert!(!s.forked());
    }

    #[test]
    fn action_label_roundtrip() {
        for a in [Action::OnChain1, Action::OnChain2, Action::Wait] {
            assert_eq!(Action::from_label(a.label()), a);
        }
    }

    #[test]
    fn display_formats() {
        let s = AttackState { l1: 1, l2: 3, a1: 0, a2: 2, r: 17 };
        assert_eq!(s.to_string(), "(1, 3, 0, 2, 17)");
        assert_eq!(Action::OnChain2.to_string(), "OnChain2");
    }
}
