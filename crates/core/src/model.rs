//! The attack-MDP transition generator (§4.1.2, Table 1 and its phase-2
//! extension).
//!
//! Each MDP step is the discovery of exactly one block, by Alice (α), Bob
//! (β) or Carol (γ). Rewards are granted when blocks become *locked* — when
//! all miners agree on them — and record five components: Alice's and the
//! others' locked blocks, Alice's and the others' orphaned blocks, and
//! double-spend payouts (see [`crate::rewards`]).
//!
//! ## Resolution rules encoded here
//!
//! * Chain 1 wins as soon as it *outgrows* Chain 2 (`l1 = l2 + 1`); Chain 2
//!   wins as soon as it reaches `AD` blocks.
//! * Phase 1 (`r = 0`): Chain 1 is Bob's chain; Chain 2 starts with Alice's
//!   block of size `EB_C`, and Carol mines on it. A Chain-2 win opens Bob's
//!   sticky gate: the successor is `(0,0,0,0,144)` in setting 2 and the
//!   plain base state in setting 1 (gate disabled).
//! * Phase 2 (`r ≥ 1`): roles swap — Chain 1 is Carol's, Chain 2 starts with
//!   Alice's block just above `EB_C` and Bob mines on it. Locked Chain-1
//!   blocks are non-excessive and reduce `r`; at `r = 0` the gate closes and
//!   the system is back in phase 1. A Chain-2 win opens Carol's gate too
//!   (phase 3), which the model collapses straight back to the base state,
//!   per the paper.

use bvc_mdp::{explore, ActionSpec, Explored, MdpError};

use crate::config::{AttackConfig, IncentiveModel, Setting};
use crate::rewards::{self, COMPONENTS, DS, OA, OOTHERS, RA, ROTHERS};
use crate::state::{Action, AttackState};

/// One raw event before merging: successor, probability, reward.
type Event = (AttackState, f64, Vec<f64>);

/// The double-spend payout for orphaning `k` blocks of the losing chain in
/// one resolution: `(k - threshold) * rds` when `k > threshold`, else zero.
fn ds_payout(cfg: &AttackConfig, k: u8) -> f64 {
    match cfg.incentive {
        IncentiveModel::NonCompliantProfitDriven { rds, threshold } if k > threshold => {
            f64::from(k - threshold) * rds
        }
        _ => 0.0,
    }
}

/// Decrement the sticky-gate countdown by `n` locked non-excessive blocks.
/// In phase 1 (`r = 0`) the countdown is absent and stays zero.
fn dec_r(r: u16, n: u16) -> u16 {
    r.saturating_sub(n)
}

/// The event of one more block on Chain 1 (mined by Alice iff `alice`).
fn chain1_grow(cfg: &AttackConfig, s: AttackState, alice: bool) -> (AttackState, Vec<f64>) {
    let l1 = s.l1 + 1;
    let a1 = s.a1 + u8::from(alice);
    if l1 > s.l2 {
        // Chain 1 outgrows Chain 2: everyone adopts Chain 1. Its blocks are
        // locked; Chain 2's are orphaned.
        let mut reward = rewards::zero();
        reward[RA] = f64::from(a1);
        reward[ROTHERS] = f64::from(l1 - a1);
        reward[OA] = f64::from(s.a2);
        reward[OOTHERS] = f64::from(s.l2 - s.a2);
        reward[DS] = ds_payout(cfg, s.l2);
        // Locked Chain-1 blocks are non-excessive: in phase 2 they advance
        // Bob's gate-closure countdown.
        (AttackState::base(dec_r(s.r, u16::from(l1))), reward)
    } else {
        (AttackState { l1, a1, ..s }, rewards::zero())
    }
}

/// The event of one more block on Chain 2 (mined by Alice iff `alice`).
fn chain2_grow(cfg: &AttackConfig, s: AttackState, alice: bool) -> (AttackState, Vec<f64>) {
    let l2 = s.l2 + 1;
    let a2 = s.a2 + u8::from(alice);
    // The rejecting miner's acceptance depth governs the resolution: Bob's
    // in phase 1, Carol's in phase 2 (heterogeneous-AD extension; the two
    // coincide in the paper's model).
    let resolving_ad = if s.phase2() { cfg.ad_carol } else { cfg.ad };
    if l2 >= resolving_ad {
        // Chain 2 reaches the acceptance depth: the rejecting miner adopts
        // it wholesale and opens their sticky gate.
        let mut reward = rewards::zero();
        reward[RA] = f64::from(a2);
        reward[ROTHERS] = f64::from(l2 - a2);
        reward[OA] = f64::from(s.a1);
        reward[OOTHERS] = f64::from(s.l1 - s.a1);
        reward[DS] = ds_payout(cfg, s.l1);
        let next = if s.phase2() {
            // Phase-2 fork resolved for Chain 2: Carol's gate opens too —
            // phase 3, which the model collapses back to the base state.
            AttackState::BASE
        } else {
            match cfg.setting {
                Setting::One => AttackState::BASE,
                Setting::Two => AttackState::base(cfg.gate_blocks),
            }
        };
        (next, reward)
    } else {
        (AttackState { l2, a2, ..s }, rewards::zero())
    }
}

/// The event of one more locked block on the common (unforked) chain.
fn common_grow(s: AttackState, alice: bool) -> (AttackState, Vec<f64>) {
    debug_assert!(!s.forked());
    let mut reward = rewards::zero();
    if alice {
        reward[RA] = 1.0;
    } else {
        reward[ROTHERS] = 1.0;
    }
    (AttackState::base(dec_r(s.r, 1)), reward)
}

/// Merges events with the same successor into single transitions with
/// probability-weighted rewards — the exact "merged row" form of the paper's
/// Table 1.
fn merge(events: Vec<Event>) -> Vec<(AttackState, f64, Vec<f64>)> {
    let mut out: Vec<(AttackState, f64, Vec<f64>)> = Vec::with_capacity(events.len());
    for (next, p, r) in events {
        if p == 0.0 {
            continue;
        }
        if let Some(slot) = out.iter_mut().find(|(n, _, _)| *n == next) {
            // Weighted average of rewards, conditioned on the merged event.
            let total = slot.1 + p;
            for (acc, x) in slot.2.iter_mut().zip(&r) {
                *acc = (*acc * slot.1 + x * p) / total;
            }
            slot.1 = total;
        } else {
            out.push((next, p, r));
        }
    }
    out
}

/// Enumerates the raw events of one action in one state.
fn action_events(cfg: &AttackConfig, s: AttackState, action: Action) -> Vec<Event> {
    let (alpha, beta, gamma) = (cfg.alpha, cfg.beta, cfg.gamma);
    if !s.forked() {
        // Common chain. OnChain2 means Alice tries to mine the fork block.
        match action {
            Action::OnChain1 => vec![
                {
                    let (n, r) = common_grow(s, true);
                    (n, alpha, r)
                },
                {
                    let (n, r) = common_grow(s, false);
                    (n, beta + gamma, r)
                },
            ],
            Action::OnChain2 => {
                vec![(AttackState { l2: 1, a2: 1, ..s }, alpha, rewards::zero()), {
                    let (n, r) = common_grow(s, false);
                    (n, beta + gamma, r)
                }]
            }
            Action::Wait => vec![{
                let (n, r) = common_grow(s, false);
                (n, 1.0, r)
            }],
        }
    } else {
        // Forked. Which compliant miner works on which chain depends on the
        // phase: in phase 1 Bob (β) defends Chain 1 and Carol (γ) extends
        // Chain 2; in phase 2 the roles are swapped.
        let (p_c1, p_c2) = if s.phase2() { (gamma, beta) } else { (beta, gamma) };
        let others = |s: AttackState| {
            vec![
                {
                    let (n, r) = chain1_grow(cfg, s, false);
                    (n, p_c1, r)
                },
                {
                    let (n, r) = chain2_grow(cfg, s, false);
                    (n, p_c2, r)
                },
            ]
        };
        match action {
            Action::OnChain1 => {
                let mut ev = vec![{
                    let (n, r) = chain1_grow(cfg, s, true);
                    (n, alpha, r)
                }];
                ev.extend(others(s));
                ev
            }
            Action::OnChain2 => {
                let mut ev = vec![{
                    let (n, r) = chain2_grow(cfg, s, true);
                    (n, alpha, r)
                }];
                ev.extend(others(s));
                ev
            }
            Action::Wait => {
                let total = p_c1 + p_c2;
                vec![
                    {
                        let (n, r) = chain1_grow(cfg, s, false);
                        (n, p_c1 / total, r)
                    },
                    {
                        let (n, r) = chain2_grow(cfg, s, false);
                        (n, p_c2 / total, r)
                    },
                ]
            }
        }
    }
}

/// The available actions in a state under a configuration.
fn available_actions(cfg: &AttackConfig, _s: AttackState) -> Vec<Action> {
    let mut actions = vec![Action::OnChain1, Action::OnChain2];
    if cfg.incentive.allows_wait() {
        actions.push(Action::Wait);
    }
    actions
}

/// Expands one state into its action specifications (merged rows).
pub fn expand(cfg: &AttackConfig, s: &AttackState) -> Vec<ActionSpec<AttackState>> {
    available_actions(cfg, *s)
        .into_iter()
        .map(|a| ActionSpec { label: a.label(), outcomes: merge(action_events(cfg, *s, a)) })
        .collect()
}

/// A fully built attack model: the explored MDP plus its configuration.
pub struct AttackModel {
    cfg: AttackConfig,
    explored: Explored<AttackState>,
}

impl AttackModel {
    /// Builds the reachable state space from the base state.
    pub fn build(cfg: AttackConfig) -> Result<Self, MdpError> {
        cfg.validate();
        let cfg2 = cfg.clone();
        let explored = explore(COMPONENTS, [AttackState::BASE], move |s| expand(&cfg2, s))?;
        let model = AttackModel { cfg, explored };
        debug_assert!(
            model.audit().passed(),
            "freshly built attack model failed its static audit:\n{}",
            model.audit().render_text()
        );
        Ok(model)
    }

    /// Runs the static precondition audit over this model (numeric
    /// invariants, reachability, unichain certification — see
    /// [`bvc_mdp::audit`]). The BFS-explored base state is MDP state 0.
    pub fn audit(&self) -> bvc_mdp::AuditReport {
        bvc_mdp::audit_mdp(self.mdp(), &bvc_mdp::AuditOptions::default())
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &AttackConfig {
        &self.cfg
    }

    /// The underlying MDP.
    pub fn mdp(&self) -> &bvc_mdp::Mdp {
        &self.explored.mdp
    }

    /// The typed state behind an MDP state index.
    pub fn state(&self, id: bvc_mdp::StateId) -> AttackState {
        *self.explored.indexer.state(id)
    }

    /// The MDP index of a typed state, if reachable.
    pub fn id_of(&self, s: &AttackState) -> Option<bvc_mdp::StateId> {
        self.explored.indexer.get(s)
    }

    /// Number of reachable states.
    pub fn num_states(&self) -> usize {
        self.explored.mdp.num_states()
    }

    /// Iterates `(state, &[ActionArm])` over the whole model.
    pub fn iter(&self) -> impl Iterator<Item = (AttackState, &[bvc_mdp::ActionArm])> + '_ {
        self.explored.mdp.iter_states().map(|(id, arms)| (*self.explored.indexer.state(id), arms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AttackConfig, IncentiveModel, Setting};

    fn cfg(setting: Setting, incentive: IncentiveModel) -> AttackConfig {
        AttackConfig::with_ratio(0.2, (1, 1), setting, incentive)
    }

    #[test]
    fn setting1_reaches_only_phase1_states() {
        let m =
            AttackModel::build(cfg(Setting::One, IncentiveModel::CompliantProfitDriven)).unwrap();
        for (s, _) in m.iter() {
            assert_eq!(s.r, 0, "phase-2 state {s} reachable in setting 1");
            assert!(s.l1 <= s.l2, "impossible fork geometry {s}");
            assert!(s.l2 < 6, "unresolved chain 2 at AD in {s}");
            assert!(s.a1 <= s.l1 && s.a2 <= s.l2);
            if s.forked() {
                assert!(s.a2 >= 1, "chain 2 must start with Alice's block: {s}");
            }
        }
    }

    #[test]
    fn setting2_reaches_phase2() {
        let m =
            AttackModel::build(cfg(Setting::Two, IncentiveModel::CompliantProfitDriven)).unwrap();
        assert!(m.iter().any(|(s, _)| s.phase2()));
        assert!(m.id_of(&AttackState::base(144)).is_some());
        // Countdown values above the initial 144 are impossible.
        for (s, _) in m.iter() {
            assert!(s.r <= 144);
        }
    }

    #[test]
    fn state_count_matches_combinatorics_setting1() {
        // For AD = 6: base + sum over l2 in 1..=5, l1 in 0..=l2, a1 in
        // 0..=l1, a2 in 1..=l2. But unreachable corners may exist; the
        // formula is an upper bound and the base must be reachable.
        let m =
            AttackModel::build(cfg(Setting::One, IncentiveModel::CompliantProfitDriven)).unwrap();
        let mut bound = 1usize;
        for l2 in 1..=5u32 {
            for l1 in 0..=l2 {
                bound += ((l1 + 1) * l2) as usize;
            }
        }
        assert!(m.num_states() <= bound, "{} > {}", m.num_states(), bound);
        assert!(m.num_states() > 100, "suspiciously small: {}", m.num_states());
    }

    #[test]
    fn wait_action_present_only_for_non_profit() {
        let m = AttackModel::build(cfg(Setting::One, IncentiveModel::NonProfitDriven)).unwrap();
        let base = m.id_of(&AttackState::BASE).unwrap();
        assert_eq!(m.mdp().actions(base).len(), 3);
        let m2 =
            AttackModel::build(cfg(Setting::One, IncentiveModel::CompliantProfitDriven)).unwrap();
        let base2 = m2.id_of(&AttackState::BASE).unwrap();
        assert_eq!(m2.mdp().actions(base2).len(), 2);
    }

    #[test]
    fn base_onchain1_is_single_merged_row() {
        // Table 1, first row: (0,0,0,0) --OnChain1--> (0,0,0,0) w.p. 1,
        // reward (α, β + γ).
        let c = cfg(Setting::One, IncentiveModel::CompliantProfitDriven);
        let m = AttackModel::build(c.clone()).unwrap();
        let base = m.id_of(&AttackState::BASE).unwrap();
        let arm = &m.mdp().actions(base)[Action::OnChain1.label()];
        assert_eq!(arm.transitions.len(), 1);
        let t = &arm.transitions[0];
        assert_eq!(m.state(t.to), AttackState::BASE);
        assert!((t.prob - 1.0).abs() < 1e-12);
        assert!((t.reward[RA] - c.alpha).abs() < 1e-12);
        assert!((t.reward[ROTHERS] - (c.beta + c.gamma)).abs() < 1e-12);
    }

    #[test]
    fn base_onchain2_forks_with_alpha() {
        let c = cfg(Setting::One, IncentiveModel::CompliantProfitDriven);
        let m = AttackModel::build(c.clone()).unwrap();
        let base = m.id_of(&AttackState::BASE).unwrap();
        let arm = &m.mdp().actions(base)[Action::OnChain2.label()];
        assert_eq!(arm.transitions.len(), 2);
        let fork = arm
            .transitions
            .iter()
            .find(|t| m.state(t.to) == AttackState { l1: 0, l2: 1, a1: 0, a2: 1, r: 0 })
            .expect("fork transition");
        assert!((fork.prob - c.alpha).abs() < 1e-12);
        assert!(fork.reward.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn chain2_win_orphans_chain1_and_pays_ds() {
        // State (4, 5, 0, 1) with AD = 6: Carol's block resolves Chain 2,
        // orphaning 4 Chain-1 blocks => DS = (4 - 3) * 10 = 10.
        let c = cfg(Setting::One, IncentiveModel::non_compliant_default());
        let s = AttackState { l1: 4, l2: 5, a1: 0, a2: 1, r: 0 };
        let (next, reward) = chain2_grow(&c, s, false);
        assert_eq!(next, AttackState::BASE);
        assert_eq!(reward[RA], 1.0);
        assert_eq!(reward[ROTHERS], 5.0);
        assert_eq!(reward[OA], 0.0);
        assert_eq!(reward[OOTHERS], 4.0);
        assert_eq!(reward[DS], 10.0);
    }

    #[test]
    fn chain2_win_in_setting2_opens_gate() {
        let c = cfg(Setting::Two, IncentiveModel::CompliantProfitDriven);
        let s = AttackState { l1: 0, l2: 5, a1: 0, a2: 1, r: 0 };
        let (next, _) = chain2_grow(&c, s, false);
        assert_eq!(next, AttackState::base(144));
    }

    #[test]
    fn phase2_chain1_win_decrements_gate() {
        let c = cfg(Setting::Two, IncentiveModel::CompliantProfitDriven);
        let s = AttackState { l1: 2, l2: 2, a1: 0, a2: 1, r: 100 };
        let (next, reward) = chain1_grow(&c, s, false);
        assert_eq!(next, AttackState::base(97)); // r - l1' = 100 - 3
        assert_eq!(reward[ROTHERS], 3.0);
        assert_eq!(reward[OOTHERS], 1.0); // Carol's... chain-2 non-Alice block
        assert_eq!(reward[OA], 1.0);
    }

    #[test]
    fn phase2_chain2_win_collapses_phase3_to_base() {
        let c = cfg(Setting::Two, IncentiveModel::CompliantProfitDriven);
        let s = AttackState { l1: 1, l2: 5, a1: 0, a2: 1, r: 100 };
        let (next, _) = chain2_grow(&c, s, false);
        assert_eq!(next, AttackState::BASE);
    }

    #[test]
    fn gate_countdown_clamps_at_zero() {
        let c = cfg(Setting::Two, IncentiveModel::CompliantProfitDriven);
        let s = AttackState { l1: 3, l2: 3, a1: 0, a2: 1, r: 2 };
        let (next, _) = chain1_grow(&c, s, false);
        assert_eq!(next, AttackState::BASE); // saturates, back to phase 1
    }

    #[test]
    fn phase2_roles_swap() {
        // In phase 2 Carol (γ) extends Chain 1 and Bob (β) extends Chain 2.
        let mut c = cfg(Setting::Two, IncentiveModel::CompliantProfitDriven);
        c.beta = 0.5;
        c.gamma = 0.3;
        let s = AttackState { l1: 0, l2: 1, a1: 0, a2: 1, r: 50 };
        let ev = action_events(&c, s, Action::OnChain1);
        // Events: Alice on C1 (α), Carol on C1 (γ), Bob on C2 (β).
        let c1_other = ev
            .iter()
            .find(|(n, _, _)| n.l1 == 1 && n.a1 == 0 && n.l2 == 1)
            .expect("other miner on chain 1");
        assert!((c1_other.1 - c.gamma).abs() < 1e-12);
        let c2_other = ev.iter().find(|(n, _, _)| n.l2 == 2).expect("on chain 2");
        assert!((c2_other.1 - c.beta).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one_everywhere() {
        for setting in [Setting::One, Setting::Two] {
            let m = AttackModel::build(cfg(setting, IncentiveModel::NonProfitDriven)).unwrap();
            m.mdp().validate().unwrap();
        }
    }
}
