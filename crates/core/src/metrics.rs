//! Episode-level metrics of attack policies, beyond long-run averages:
//! fork-depth distributions and sticky-gate trigger spacing, computed
//! exactly from the policy-induced Markov chain via hitting analysis.
//!
//! These answer the §6.2 trade-off questions quantitatively: *"how often
//! does the attacker open a victim's sticky gate?"* (the giant-block
//! exposure of a small `AD`) and *"how deep do forks get?"* (the
//! double-spend exposure of a large `AD`).

use std::collections::HashSet;

use bvc_mdp::solve::{expected_hitting_time, hitting_probability, HittingOptions};
use bvc_mdp::{MdpError, Policy};

use crate::model::AttackModel;
use crate::state::AttackState;

impl AttackModel {
    /// The probability that a fork, once started, reaches Chain-2 length
    /// `depth` before resolving — the chance a double-spend window of that
    /// depth opens per fork attempt. Computed from the fork-start state
    /// `(0, 1, 0, 1, r)` (phase 1) under `policy`.
    ///
    /// Returns 0 when the policy never forks (the fork-start state may
    /// still exist; the probability is conditional on reaching it).
    pub fn fork_depth_probability(&self, policy: &Policy, depth: u8) -> Result<f64, MdpError> {
        let start = AttackState { l1: 0, l2: 1, a1: 0, a2: 1, r: 0 };
        let Some(start_id) = self.id_of(&start) else {
            return Ok(0.0);
        };
        let mut targets = HashSet::new();
        let mut avoid = HashSet::new();
        for (id, _) in self.mdp().iter_states() {
            let s = self.state(id);
            if s.forked() && s.l2 >= depth {
                targets.insert(id);
            } else if !s.forked() {
                // Any base state (either phase) means the race resolved.
                avoid.insert(id);
            }
        }
        if targets.is_empty() {
            return Ok(0.0);
        }
        let p =
            hitting_probability(self.mdp(), policy, &targets, &avoid, &HittingOptions::default())?;
        Ok(p[start_id])
    }

    /// Expected number of blocks from the phase-1 base state until Bob's
    /// sticky gate first opens (the system enters phase 2) under `policy`.
    /// Only meaningful for setting-2 models; returns `None` when no
    /// phase-2 state is reachable or the policy never triggers the gate.
    pub fn expected_blocks_to_gate_trigger(
        &self,
        policy: &Policy,
    ) -> Result<Option<f64>, MdpError> {
        let base = self.id_of(&AttackState::BASE).expect("base is reachable");
        let targets: HashSet<_> = self
            .mdp()
            .iter_states()
            .filter(|(id, _)| self.state(*id).phase2())
            .map(|(id, _)| id)
            .collect();
        if targets.is_empty() {
            return Ok(None);
        }
        // The hitting-time solver requires global reachability of the
        // target; under policies that never fork it is unreachable, so
        // check first via the probability solver (with an empty avoid set,
        // absorbing probabilities are 1 exactly on states that can reach
        // the target).
        let reach = hitting_probability(
            self.mdp(),
            policy,
            &targets,
            &HashSet::new(),
            &HittingOptions::default(),
        )?;
        if reach[base] < 1.0 - 1e-6 {
            return Ok(None);
        }
        let h = expected_hitting_time(self.mdp(), policy, &targets, &HittingOptions::default())?;
        Ok(Some(h[base]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AttackConfig, IncentiveModel, Setting};
    use crate::solve::SolveOptions;

    fn build(setting: Setting) -> AttackModel {
        let mut cfg = AttackConfig::with_ratio(
            0.10,
            (1, 1),
            setting,
            IncentiveModel::non_compliant_default(),
        );
        cfg.gate_blocks = 24;
        AttackModel::build(cfg).unwrap()
    }

    #[test]
    fn fork_depth_probabilities_decrease_with_depth() {
        let m = build(Setting::One);
        let sol = m.optimal_absolute_revenue(&SolveOptions::default()).unwrap();
        let mut last = 1.0;
        for depth in 2..=5u8 {
            let p = m.fork_depth_probability(&sol.policy, depth).unwrap();
            assert!(p <= last + 1e-12, "depth {depth}: {p} > {last}");
            assert!(p > 0.0, "depth {depth} reachable under the optimal policy");
            last = p;
        }
        // Depth 1 is certain (the fork-start state itself).
        let p1 = m.fork_depth_probability(&sol.policy, 1).unwrap();
        assert!((p1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn honest_policy_never_triggers_gate() {
        let m = build(Setting::Two);
        let honest = m.honest_policy();
        assert_eq!(m.expected_blocks_to_gate_trigger(&honest).unwrap(), None);
    }

    #[test]
    fn optimal_policy_gate_trigger_time_is_finite() {
        let m = build(Setting::Two);
        let sol = m.optimal_absolute_revenue(&SolveOptions::default()).unwrap();
        let t = m
            .expected_blocks_to_gate_trigger(&sol.policy)
            .unwrap()
            .expect("the optimal policy forks, so the gate eventually triggers");
        // Triggering needs at least AD blocks; and it should happen within
        // a few hundred blocks at alpha = 10%, 1:1.
        assert!(t >= 6.0, "t = {t}");
        assert!(t < 10_000.0, "t = {t}");
    }

    #[test]
    fn setting1_has_no_gate_states() {
        let m = build(Setting::One);
        let sol = m.optimal_absolute_revenue(&SolveOptions::default()).unwrap();
        assert_eq!(m.expected_blocks_to_gate_trigger(&sol.policy).unwrap(), None);
    }
}
