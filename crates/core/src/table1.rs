//! An independent, hand-coded copy of the paper's **Table 1** (state
//! transition and reward distribution for a compliant and profit-driven
//! Alice, setting 1), used to pin the transition generator row by row.
//!
//! ## Two typos in the published table
//!
//! Block conservation requires that the rewards distributed at a resolution
//! sum to the length of the locked chain, which always includes the block
//! just mined (`l + 1`). Two entries of the published table violate this:
//!
//! * row `(l1, l2, a1, a2), onC1` with `l1 = l2 = AD − 1`: the γ-event
//!   contribution to `R_others` is printed as `γ(l2 − a2)`; every other row
//!   (e.g. the `l1 < l2 = AD − 1` case) uses `l2 + 1 − a2`.
//! * row `(l1, l2, a1, a2), onC2` with `l1 = l2 = AD − 1`: the β-event
//!   contribution is printed as `β(l1 − a1)` instead of `β(l1 + 1 − a1)`.
//!
//! [`published_rows`] takes a `corrected` flag: with `corrected = true` the
//! two entries are fixed (and match the generator exactly); with
//! `corrected = false` the verbatim published values are produced, and the
//! crate's tests assert that the difference against the generator is
//! *exactly* those two entries.

use crate::config::AttackConfig;
use crate::model::AttackModel;
use crate::rewards::{RA, ROTHERS};
use crate::state::{Action, AttackState};

/// One outcome of a (state, action) row: successor, probability, and the
/// `(R_A, R_others)` reward pair of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Resulting state.
    pub next: AttackState,
    /// Probability of the (merged) event.
    pub prob: f64,
    /// Expected `R_A` reward on this event.
    pub ra: f64,
    /// Expected `R_others` reward on this event.
    pub rothers: f64,
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Source state (the 5th tuple entry is always 0 in setting 1).
    pub state: AttackState,
    /// Alice's action.
    pub action: Action,
    /// The merged outcomes.
    pub outcomes: Vec<Outcome>,
}

fn f(x: u8) -> f64 {
    f64::from(x)
}

/// Enumerates all phase-1 states of the model for a given `AD`, base first,
/// in a deterministic order.
pub fn phase1_states(ad: u8) -> Vec<AttackState> {
    let mut out = vec![AttackState::BASE];
    for l2 in 1..ad {
        for l1 in 0..=l2 {
            for a1 in 0..=l1 {
                for a2 in 1..=l2 {
                    out.push(AttackState { l1, l2, a1, a2, r: 0 });
                }
            }
        }
    }
    out
}

/// The published Table 1 rows for one state, evaluated numerically for the
/// configuration's `(α, β, γ, AD)`.
pub fn published_rows_for(cfg: &AttackConfig, s: AttackState, corrected: bool) -> Vec<Row> {
    let (al, be, ga) = (cfg.alpha, cfg.beta, cfg.gamma);
    let ad = cfg.ad;
    let base = AttackState::BASE;
    let mk = |l1, l2, a1, a2| AttackState { l1, l2, a1, a2, r: 0 };
    let o = |next, prob, ra, rothers| Outcome { next, prob, ra, rothers };

    if !s.forked() {
        return vec![
            Row { state: s, action: Action::OnChain1, outcomes: vec![o(base, 1.0, al, be + ga)] },
            Row {
                state: s,
                action: Action::OnChain2,
                outcomes: vec![o(base, be + ga, 0.0, 1.0), o(mk(0, 1, 0, 1), al, 0.0, 0.0)],
            },
        ];
    }

    let AttackState { l1, l2, a1, a2, .. } = s;
    let (ap, bp) = (al / (al + be), be / (al + be)); // α', β'
    let (app, gpp) = (al / (al + ga), ga / (al + ga)); // α'', γ''

    let row1; // OnChain1
    let row2; // OnChain2
    if l1 < l2 && l2 != ad - 1 {
        row1 = vec![
            o(mk(l1 + 1, l2, a1 + 1, a2), al, 0.0, 0.0),
            o(mk(l1 + 1, l2, a1, a2), be, 0.0, 0.0),
            o(mk(l1, l2 + 1, a1, a2), ga, 0.0, 0.0),
        ];
        row2 = vec![
            o(mk(l1, l2 + 1, a1, a2 + 1), al, 0.0, 0.0),
            o(mk(l1 + 1, l2, a1, a2), be, 0.0, 0.0),
            o(mk(l1, l2 + 1, a1, a2), ga, 0.0, 0.0),
        ];
    } else if l1 == l2 && l2 != ad - 1 {
        row1 = vec![
            o(base, al + be, ap * f(a1 + 1) + bp * f(a1), ap * f(l1 - a1) + bp * f(l1 + 1 - a1)),
            o(mk(l1, l2 + 1, a1, a2), ga, 0.0, 0.0),
        ];
        row2 = vec![
            o(mk(l1, l2 + 1, a1, a2 + 1), al, 0.0, 0.0),
            o(base, be, f(a1), f(l1 + 1 - a1)),
            o(mk(l1, l2 + 1, a1, a2), ga, 0.0, 0.0),
        ];
    } else if l1 < l2 {
        // l2 == ad - 1
        row1 = vec![
            o(mk(l1 + 1, l2, a1 + 1, a2), al, 0.0, 0.0),
            o(mk(l1 + 1, l2, a1, a2), be, 0.0, 0.0),
            o(base, ga, f(a2), f(l2 + 1 - a2)),
        ];
        row2 = vec![
            o(
                base,
                al + ga,
                app * f(a2 + 1) + gpp * f(a2),
                app * f(l2 - a2) + gpp * f(l2 + 1 - a2),
            ),
            o(mk(l1 + 1, l2, a1, a2), be, 0.0, 0.0),
        ];
    } else {
        // l1 == l2 == ad - 1
        // The two published typos live here; `corrected` fixes them.
        let gamma_rothers = if corrected { f(l2 + 1 - a2) } else { f(l2 - a2) };
        row1 = vec![o(
            base,
            1.0,
            al * f(a1 + 1) + be * f(a1) + ga * f(a2),
            al * f(l1 - a1) + be * f(l1 + 1 - a1) + ga * gamma_rothers,
        )];
        let beta_rothers = if corrected { f(l1 + 1 - a1) } else { f(l1 - a1) };
        row2 = vec![o(
            base,
            1.0,
            al * f(a2 + 1) + be * f(a1) + ga * f(a2),
            al * f(l2 - a2) + be * beta_rothers + ga * f(l2 + 1 - a2),
        )];
    }
    vec![
        Row { state: s, action: Action::OnChain1, outcomes: row1 },
        Row { state: s, action: Action::OnChain2, outcomes: row2 },
    ]
}

/// All published Table 1 rows for every phase-1 state.
pub fn published_rows(cfg: &AttackConfig, corrected: bool) -> Vec<Row> {
    phase1_states(cfg.ad).into_iter().flat_map(|s| published_rows_for(cfg, s, corrected)).collect()
}

/// The generator's rows for the same states, extracted from a built model.
/// States unreachable from the base state are expanded on the fly so the
/// comparison covers the entire published table.
pub fn generator_rows(model: &AttackModel) -> Vec<Row> {
    let cfg = model.config();
    phase1_states(cfg.ad)
        .into_iter()
        .flat_map(|s| {
            crate::model::expand(cfg, &s).into_iter().map(move |spec| Row {
                state: s,
                action: Action::from_label(spec.label),
                outcomes: spec
                    .outcomes
                    .into_iter()
                    .map(|(next, prob, reward)| Outcome {
                        next,
                        prob,
                        ra: reward[RA],
                        rothers: reward[ROTHERS],
                    })
                    .collect(),
            })
        })
        .collect()
}

/// The entries where two row sets differ beyond `tol`, as
/// `(state, action, outcome index)` triples. Outcomes are matched by
/// successor state; a missing or extra successor is also a difference.
pub fn diff_rows(a: &[Row], b: &[Row], tol: f64) -> Vec<(AttackState, Action, usize)> {
    let mut diffs = Vec::new();
    assert_eq!(a.len(), b.len(), "row sets must cover the same table");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.state, rb.state);
        assert_eq!(ra.action, rb.action);
        for (i, oa) in ra.outcomes.iter().enumerate() {
            match rb.outcomes.iter().find(|ob| ob.next == oa.next) {
                Some(ob) => {
                    if (oa.prob - ob.prob).abs() > tol
                        || (oa.ra - ob.ra).abs() > tol
                        || (oa.rothers - ob.rothers).abs() > tol
                    {
                        diffs.push((ra.state, ra.action, i));
                    }
                }
                None => diffs.push((ra.state, ra.action, i)),
            }
        }
        if rb.outcomes.len() != ra.outcomes.len() {
            diffs.push((ra.state, ra.action, usize::MAX));
        }
    }
    diffs
}

/// Renders rows as an aligned text table (for the `table1` repro binary).
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:<9} {:<18} {:>8}  {:>8} {:>8}\n",
        "(State", "Action)", "Resulting State", "Prob", "R_A", "R_others"
    ));
    for row in rows {
        for (i, o) in row.outcomes.iter().enumerate() {
            let head = if i == 0 {
                format!("{:<18} {:<9}", row.state.to_string(), row.action.to_string())
            } else {
                format!("{:<18} {:<9}", "", "")
            };
            out.push_str(&format!(
                "{head} {:<18} {:>8.4}  {:>8.4} {:>8.4}\n",
                o.next.to_string(),
                o.prob,
                o.ra,
                o.rothers
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IncentiveModel, Setting};

    fn cfg(alpha: f64, ratio: (u32, u32)) -> AttackConfig {
        AttackConfig::with_ratio(alpha, ratio, Setting::One, IncentiveModel::CompliantProfitDriven)
    }

    /// The generator reproduces the corrected published Table 1 exactly,
    /// for several parameter sets.
    #[test]
    fn generator_matches_corrected_table1() {
        for (alpha, ratio) in [(0.25, (1, 1)), (0.10, (2, 3)), (0.05, (1, 4)), (0.15, (3, 2))] {
            let c = cfg(alpha, ratio);
            let model = AttackModel::build(c.clone()).unwrap();
            let published = published_rows(&c, true);
            let generated = generator_rows(&model);
            let diffs = diff_rows(&published, &generated, 1e-12);
            assert!(diffs.is_empty(), "α={alpha}, ratio={ratio:?}: diffs {diffs:?}");
        }
    }

    /// The verbatim published table differs from the generator in exactly
    /// the two typo entries of the `l1 = l2 = AD − 1` rows.
    #[test]
    fn verbatim_table1_has_exactly_two_typos() {
        let c = cfg(0.25, (1, 1));
        let model = AttackModel::build(c.clone()).unwrap();
        let published = published_rows(&c, false);
        let generated = generator_rows(&model);
        let diffs = diff_rows(&published, &generated, 1e-12);
        let ad = c.ad;
        // Typos occur in every (a1, a2) instantiation of the two rows; all
        // diffs must be in l1 = l2 = AD - 1 states, and both actions appear.
        assert!(!diffs.is_empty());
        for (s, _, _) in &diffs {
            assert_eq!(s.l1, ad - 1);
            assert_eq!(s.l2, ad - 1);
        }
        assert!(diffs.iter().any(|(_, a, _)| *a == Action::OnChain1));
        assert!(diffs.iter().any(|(_, a, _)| *a == Action::OnChain2));
    }

    #[test]
    fn phase1_state_enumeration_is_complete_and_unique() {
        let states = phase1_states(6);
        let mut sorted = states.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), states.len(), "duplicates in enumeration");
        // The enumeration must cover every state the generator can reach.
        let c = cfg(0.2, (1, 1));
        let model = AttackModel::build(c).unwrap();
        for (s, _) in model.iter() {
            assert!(states.contains(&s), "reachable state {s} missing");
        }
    }

    #[test]
    fn render_contains_header_and_rows() {
        let c = cfg(0.25, (1, 1));
        let rows = published_rows_for(&c, AttackState::BASE, true);
        let text = render(&rows);
        assert!(text.contains("R_others"));
        assert!(text.contains("OnChain1"));
        assert!(text.contains("(0, 0, 0, 0, 0)"));
    }

    /// Probabilities in every published row sum to 1.
    #[test]
    fn published_probabilities_sum_to_one() {
        let c = cfg(0.1, (1, 2));
        for corrected in [true, false] {
            for row in published_rows(&c, corrected) {
                let sum: f64 = row.outcomes.iter().map(|o| o.prob).sum();
                assert!((sum - 1.0).abs() < 1e-12, "{:?}", row);
            }
        }
    }
}
