//! The controlled scheduler and the DFS exploration driver.
//!
//! Model threads are real OS threads, but exactly one holds the "active"
//! token at any instant. A thread reaching a visible operation publishes
//! the operation, runs the scheduling decision itself (no separate
//! scheduler thread), and parks until it is the active thread again. A
//! decision point with more than one enabled choice becomes a branch in
//! the DFS; the sequence of branch choices *is* the schedule.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Public configuration and report types
// ---------------------------------------------------------------------------

/// Exploration limits and semantics switches.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum forced context switches per schedule (iterative bounding
    /// runs 0, 1, …, `max_preemptions`).
    pub max_preemptions: usize,
    /// Hard cap on explored schedules (the report notes when it is hit).
    pub max_schedules: u64,
    /// Per-run visible-operation budget; exceeding it is a violation
    /// (livelock guard).
    pub max_steps: usize,
    /// Model spurious condvar wakeups: any parked waiter may be woken at
    /// any decision point.
    pub spurious: bool,
    /// Wall-clock budget for the whole exploration (the report notes when
    /// it is hit).
    pub deadline: Option<Duration>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_preemptions: 2,
            max_schedules: 50_000,
            max_steps: 20_000,
            spurious: false,
            deadline: Some(Duration::from_secs(30)),
        }
    }
}

/// What kind of property the counterexample violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// No runnable thread, not all finished (includes lost wakeups).
    Deadlock,
    /// A model thread panicked (failed `assert!` included).
    Panic,
    /// The per-run operation budget was exhausted (livelock guard).
    StepLimit,
    /// A replayed schedule no longer matches the program.
    Divergence,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Deadlock => write!(f, "deadlock"),
            ViolationKind::Panic => write!(f, "panic"),
            ViolationKind::StepLimit => write!(f, "step-limit"),
            ViolationKind::Divergence => write!(f, "divergence"),
        }
    }
}

/// One counterexample: what went wrong and the schedule that reproduces
/// it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Violation class.
    pub kind: ViolationKind,
    /// Human-readable description (panic message, per-thread blocked
    /// states for a deadlock, …).
    pub message: String,
    /// Replayable schedule string: branch choices at every multi-choice
    /// decision point, dot-separated (empty = the deterministic default
    /// schedule). Feed to [`replay`].
    pub schedule: String,
    /// The tail of the visible-operation log of the violating run.
    pub ops: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.kind, self.message)?;
        writeln!(f, "schedule: \"{}\"", self.schedule)?;
        writeln!(f, "last operations:")?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules fully executed.
    pub schedules: u64,
    /// Highest preemption bound reached (inclusive).
    pub bound_reached: usize,
    /// The first counterexample found, if any.
    pub violation: Option<Violation>,
    /// True when the schedule cap or wall-clock deadline stopped the
    /// search before the state space (at `max_preemptions`) was
    /// exhausted.
    pub capped: bool,
}

impl Report {
    /// True when every schedule within the bounds was explored and none
    /// violated a property.
    pub fn exhaustive_pass(&self) -> bool {
        self.violation.is_none() && !self.capped
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.violation {
            Some(v) => write!(
                f,
                "VIOLATION after {} schedule(s) (bound {}):\n{v}",
                self.schedules, self.bound_reached
            ),
            None => write!(
                f,
                "ok: {} schedule(s) explored, preemption bound {}{}",
                self.schedules,
                self.bound_reached,
                if self.capped { " (CAPPED: not exhaustive)" } else { "" }
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local model context
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) ctrl: Arc<Controller>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The current model context, if this OS thread is a model thread.
pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctrl: Arc<Controller>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { ctrl, tid }));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Panic payload used to unwind model threads when a run is torn down
/// after a violation. [`is_model_abort`] lets model code that catches
/// panics (e.g. fault-isolation layers under test) recognize and re-raise
/// it.
pub(crate) struct ModelAbort;

/// True when a caught panic payload is the checker's internal teardown
/// signal rather than a real panic. Model code that uses `catch_unwind`
/// must re-raise such payloads with `std::panic::resume_unwind`.
pub fn is_model_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<ModelAbort>()
}

/// Convenience for fault-isolation layers under test: resumes the unwind
/// when `payload` is the checker's teardown signal, otherwise hands the
/// payload back for normal handling.
pub fn reraise_if_abort(payload: Box<dyn std::any::Any + Send>) -> Box<dyn std::any::Any + Send> {
    if is_model_abort(payload.as_ref()) {
        std::panic::resume_unwind(payload);
    }
    payload
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

/// Why a thread cannot currently be scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Blocked {
    /// Schedulable.
    None,
    /// Waiting to acquire a mutex.
    Mutex(usize),
    /// Parked on a condvar (released `mutex`); `timeout_ok` marks a
    /// `wait_timeout` that may be woken by its timeout at any point.
    Condvar { cv: usize, mutex: usize, timeout_ok: bool },
    /// Waiting for another thread to finish.
    Join(usize),
    /// Done.
    Finished,
}

/// Why a parked waiter woke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wake {
    Notified,
    Timeout,
    Spurious,
}

#[derive(Debug, Clone, Copy)]
enum Choice {
    /// Schedule a runnable thread.
    Run(usize),
    /// Wake a parked waiter (timeout or spurious) and schedule it.
    Wake(usize),
}

/// One multi-choice decision point of a run, as needed for backtracking.
#[derive(Debug, Clone)]
struct TraceEntry {
    /// Rank chosen (0 = default: continue the yielding thread when
    /// possible, else the first enabled choice).
    rank: usize,
    /// Preemption cost per rank. Rank 0 (the default) is always free;
    /// a non-default `Run` costs 1 only when it preempts a yielding
    /// thread that could have continued; a `Wake` (timeout or spurious
    /// injection) always costs 1, which bounds wake chains by the
    /// preemption budget.
    costs: Vec<u8>,
}

struct Inner {
    threads: Vec<Blocked>,
    wake_reason: Vec<Option<Wake>>,
    mutex_owner: Vec<Option<usize>>,
    next_cv: usize,
    /// The thread currently holding the execution token.
    active: Option<usize>,
    complete: bool,
    failure: Option<(ViolationKind, String)>,
    steps: usize,
    /// Index into `prefix` (counts multi-choice points only).
    decision_i: usize,
    trace: Vec<TraceEntry>,
    ops: VecDeque<String>,
}

pub(crate) struct Controller {
    state: StdMutex<Inner>,
    cv: StdCondvar,
    prefix: Vec<usize>,
    spurious: bool,
    max_steps: usize,
}

const OP_LOG_CAP: usize = 64;

impl Controller {
    fn new(prefix: Vec<usize>, spurious: bool, max_steps: usize) -> Controller {
        Controller {
            state: StdMutex::new(Inner {
                threads: vec![Blocked::None],
                wake_reason: vec![None],
                mutex_owner: Vec::new(),
                next_cv: 0,
                active: Some(0),
                complete: false,
                failure: None,
                steps: 0,
                decision_i: 0,
                trace: Vec::new(),
                ops: VecDeque::new(),
            }),
            cv: StdCondvar::new(),
            prefix,
            spurious,
            max_steps,
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, Inner> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn log(inner: &mut Inner, op: String) {
        if inner.ops.len() == OP_LOG_CAP {
            inner.ops.pop_front();
        }
        inner.ops.push_back(op);
    }

    /// Records a failure (first one wins) and releases every parked
    /// thread so the run tears down.
    fn fail(&self, inner: &mut Inner, kind: ViolationKind, message: String) {
        if inner.failure.is_none() {
            inner.failure = Some((kind, message));
        }
        inner.active = None;
        self.cv.notify_all();
    }

    /// The scheduling decision: enumerates enabled choices, consumes the
    /// replay prefix or takes the default, applies the choice. Called
    /// with the lock held by the thread giving up the token.
    fn pick(&self, inner: &mut Inner) {
        if inner.failure.is_some() {
            return;
        }
        inner.steps += 1;
        if inner.steps > self.max_steps {
            self.fail(
                inner,
                ViolationKind::StepLimit,
                format!("run exceeded {} visible operations (livelock?)", self.max_steps),
            );
            return;
        }

        let mut choices: Vec<Choice> = Vec::new();
        for (t, b) in inner.threads.iter().enumerate() {
            if *b == Blocked::None {
                choices.push(Choice::Run(t));
            }
        }
        for (t, b) in inner.threads.iter().enumerate() {
            if let Blocked::Condvar { timeout_ok, .. } = b {
                if self.spurious || *timeout_ok {
                    choices.push(Choice::Wake(t));
                }
            }
        }

        if choices.is_empty() {
            if inner.threads.iter().all(|b| *b == Blocked::Finished) {
                inner.complete = true;
                inner.active = None;
                self.cv.notify_all();
            } else {
                let msg = describe_deadlock(inner);
                self.fail(inner, ViolationKind::Deadlock, msg);
            }
            return;
        }

        // Exploration order: rank 0 = the yielding thread itself when
        // still runnable (zero preemptions), else the first choice; the
        // remaining choices keep enumeration order.
        let prev = inner.active;
        let prev_pos =
            prev.and_then(|p| choices.iter().position(|c| matches!(c, Choice::Run(t) if *t == p)));
        let default_pos = prev_pos.unwrap_or(0);
        // rank -> concrete choice: 0 is default_pos, others skip it.
        let rank_to_pos = |rank: usize| {
            if rank == 0 {
                default_pos
            } else {
                (0..choices.len()).filter(|&p| p != default_pos).nth(rank - 1).unwrap_or(0)
            }
        };

        let rank = if choices.len() > 1 {
            let di = inner.decision_i;
            inner.decision_i += 1;
            let rank = if di < self.prefix.len() { self.prefix[di] } else { 0 };
            if rank >= choices.len() {
                self.fail(
                    inner,
                    ViolationKind::Divergence,
                    format!(
                        "replayed schedule chose branch {rank} of a {}-way decision point \
                         (the schedule no longer matches the program)",
                        choices.len()
                    ),
                );
                return;
            }
            let costs: Vec<u8> = (0..choices.len())
                .map(|r| {
                    if r == 0 {
                        0
                    } else {
                        match choices[rank_to_pos(r)] {
                            Choice::Wake(_) => 1,
                            Choice::Run(_) => u8::from(prev_pos.is_some()),
                        }
                    }
                })
                .collect();
            inner.trace.push(TraceEntry { rank, costs });
            rank
        } else {
            0
        };

        let pos = rank_to_pos(rank);
        match choices[pos] {
            Choice::Run(t) => inner.active = Some(t),
            Choice::Wake(t) => {
                let reason = match &inner.threads[t] {
                    Blocked::Condvar { timeout_ok: true, .. } => Wake::Timeout,
                    _ => Wake::Spurious,
                };
                Self::log(inner, format!("t{t} woken ({reason:?}) by scheduler"));
                inner.threads[t] = Blocked::None;
                inner.wake_reason[t] = Some(reason);
                inner.active = Some(t);
            }
        }
        self.cv.notify_all();
    }

    /// Parks until this thread holds the execution token; unwinds with
    /// [`ModelAbort`] when the run failed.
    fn wait_for_turn<'a>(&'a self, mut inner: StdMutexGuard<'a, Inner>, tid: usize) {
        while inner.active != Some(tid) {
            if inner.failure.is_some() {
                drop(inner);
                std::panic::panic_any(ModelAbort);
            }
            inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    // -- operations used by the shims ------------------------------------

    /// A plain visible operation (atomic access, yield): decision point,
    /// then the caller performs its effect while holding the token.
    pub(crate) fn op(&self, tid: usize, label: impl FnOnce() -> String) {
        let mut inner = self.lock();
        Self::log(&mut inner, format!("t{tid} {}", label()));
        self.pick(&mut inner);
        self.wait_for_turn(inner, tid);
    }

    pub(crate) fn register_mutex(&self) -> usize {
        let mut inner = self.lock();
        inner.mutex_owner.push(None);
        inner.mutex_owner.len() - 1
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut inner = self.lock();
        inner.next_cv += 1;
        inner.next_cv - 1
    }

    /// Registers a new model thread (runnable, waiting for its first
    /// turn) and returns its tid.
    pub(crate) fn register_thread(&self) -> usize {
        let mut inner = self.lock();
        inner.threads.push(Blocked::None);
        inner.wake_reason.push(None);
        inner.threads.len() - 1
    }

    /// First park of a freshly spawned model thread.
    pub(crate) fn first_turn(&self, tid: usize) {
        let inner = self.lock();
        self.wait_for_turn(inner, tid);
    }

    /// Blocking mutex acquire.
    pub(crate) fn mutex_lock(&self, tid: usize, mid: usize) {
        let mut inner = self.lock();
        Self::log(&mut inner, format!("t{tid} lock m{mid}"));
        inner.threads[tid] = match inner.mutex_owner[mid] {
            Some(owner) if owner != tid => Blocked::Mutex(mid),
            _ => Blocked::None,
        };
        self.pick(&mut inner);
        loop {
            self.wait_for_turn(inner, tid);
            inner = self.lock();
            if inner.mutex_owner[mid].is_none() {
                inner.mutex_owner[mid] = Some(tid);
                inner.threads[tid] = Blocked::None;
                drop(inner);
                return;
            }
            // Scheduled, but another thread re-took the mutex first.
            inner.threads[tid] = Blocked::Mutex(mid);
            self.pick(&mut inner);
        }
    }

    /// Mutex release; never a decision point and never panics (runs in
    /// guard drops, possibly during unwinding).
    pub(crate) fn mutex_unlock(&self, tid: usize, mid: usize) {
        let mut inner = self.lock();
        if inner.failure.is_some() {
            return;
        }
        Self::log(&mut inner, format!("t{tid} unlock m{mid}"));
        inner.mutex_owner[mid] = None;
        for b in inner.threads.iter_mut() {
            if *b == Blocked::Mutex(mid) {
                *b = Blocked::None;
            }
        }
    }

    /// Atomic release-and-park; returns the wake reason after the mutex
    /// has been re-acquired.
    pub(crate) fn cond_wait(&self, tid: usize, cvid: usize, mid: usize, timeout_ok: bool) -> Wake {
        // Pre-park switch point: in real executions other threads can run
        // between the caller's last predicate check and the park (the
        // wait is only atomic with respect to the *mutex*). Without this
        // decision the classic lost-wakeup — a notify landing after an
        // unlocked predicate check but before the park — would be
        // inexpressible.
        self.op(tid, || format!("about to wait c{cvid} (still holds m{mid})"));
        let mut inner = self.lock();
        Self::log(&mut inner, format!("t{tid} wait c{cvid} (releases m{mid})"));
        inner.mutex_owner[mid] = None;
        for b in inner.threads.iter_mut() {
            if *b == Blocked::Mutex(mid) {
                *b = Blocked::None;
            }
        }
        inner.threads[tid] = Blocked::Condvar { cv: cvid, mutex: mid, timeout_ok };
        inner.wake_reason[tid] = None;
        self.pick(&mut inner);
        self.wait_for_turn(inner, tid);
        // Woken and scheduled: take the reason, re-acquire the mutex.
        let mut inner = self.lock();
        let reason = inner.wake_reason[tid].take().unwrap_or(Wake::Notified);
        loop {
            if inner.mutex_owner[mid].is_none() {
                inner.mutex_owner[mid] = Some(tid);
                inner.threads[tid] = Blocked::None;
                drop(inner);
                return reason;
            }
            inner.threads[tid] = Blocked::Mutex(mid);
            self.pick(&mut inner);
            self.wait_for_turn(inner, tid);
            inner = self.lock();
        }
    }

    /// `notify_one` / `notify_all`: a decision point, then wakes the
    /// lowest-tid waiter (or all of them).
    pub(crate) fn notify(&self, tid: usize, cvid: usize, all: bool) {
        self.op(tid, || format!("notify_{} c{cvid}", if all { "all" } else { "one" }));
        let mut inner = self.lock();
        if inner.failure.is_some() {
            return;
        }
        let mut woken = Vec::new();
        for (t, b) in inner.threads.iter_mut().enumerate() {
            if let Blocked::Condvar { cv, .. } = b {
                if *cv == cvid {
                    *b = Blocked::None;
                    woken.push(t);
                    if !all {
                        break;
                    }
                }
            }
        }
        for &t in &woken {
            inner.wake_reason[t] = Some(Wake::Notified);
        }
        if !woken.is_empty() {
            Self::log(&mut inner, format!("t{tid} woke {woken:?} on c{cvid}"));
        }
    }

    /// Blocks until `target` finishes (a decision point either way).
    pub(crate) fn join(&self, tid: usize, target: usize) {
        let mut inner = self.lock();
        Self::log(&mut inner, format!("t{tid} join t{target}"));
        if inner.threads[target] != Blocked::Finished {
            inner.threads[tid] = Blocked::Join(target);
        }
        self.pick(&mut inner);
        loop {
            self.wait_for_turn(inner, tid);
            inner = self.lock();
            if inner.threads[target] == Blocked::Finished {
                inner.threads[tid] = Blocked::None;
                return;
            }
            inner.threads[tid] = Blocked::Join(target);
            self.pick(&mut inner);
        }
    }

    /// Marks a thread finished, wakes its joiners, hands the token on.
    pub(crate) fn finish(&self, tid: usize) {
        let mut inner = self.lock();
        if inner.failure.is_some() {
            return;
        }
        Self::log(&mut inner, format!("t{tid} finished"));
        inner.threads[tid] = Blocked::Finished;
        for b in inner.threads.iter_mut() {
            if *b == Blocked::Join(tid) {
                *b = Blocked::None;
            }
        }
        self.pick(&mut inner);
    }

    /// Records a real panic of a model thread as a violation (internal
    /// teardown unwinds are ignored).
    pub(crate) fn thread_panicked(&self, tid: usize, payload: &(dyn std::any::Any + Send)) {
        if is_model_abort(payload) {
            let mut inner = self.lock();
            inner.threads[tid] = Blocked::Finished;
            return;
        }
        let msg = panic_message(payload);
        let mut inner = self.lock();
        Self::log(&mut inner, format!("t{tid} panicked: {msg}"));
        inner.threads[tid] = Blocked::Finished;
        self.fail(&mut inner, ViolationKind::Panic, format!("t{tid} panicked: {msg}"));
    }

    /// Records a panic as a violation *without* finishing the thread —
    /// used when a scope owner unwinds but keeps running (the panic will
    /// cross the scope boundary later). Teardown unwinds are ignored.
    pub(crate) fn record_panic(&self, tid: usize, payload: &(dyn std::any::Any + Send)) {
        if is_model_abort(payload) {
            return;
        }
        let msg = panic_message(payload);
        let mut inner = self.lock();
        Self::log(&mut inner, format!("t{tid} panicked: {msg}"));
        self.fail(&mut inner, ViolationKind::Panic, format!("t{tid} panicked: {msg}"));
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn describe_deadlock(inner: &Inner) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("no runnable thread:");
    let mut parked_on_cv = false;
    for (t, b) in inner.threads.iter().enumerate() {
        match b {
            Blocked::Finished => {}
            Blocked::None => {
                let _ = write!(out, " t{t}=runnable?!");
            }
            Blocked::Mutex(m) => {
                let holder =
                    inner.mutex_owner[*m].map_or("nobody".to_string(), |h| format!("t{h}"));
                let _ = write!(out, " t{t}=lock(m{m} held by {holder})");
            }
            Blocked::Condvar { cv, mutex, .. } => {
                parked_on_cv = true;
                let _ = write!(out, " t{t}=parked(c{cv}, released m{mutex})");
            }
            Blocked::Join(j) => {
                let _ = write!(out, " t{t}=join(t{j})");
            }
        }
    }
    if parked_on_cv {
        out.push_str(" — a thread is parked on a condvar forever (lost wakeup or deadlock)");
    }
    out
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

struct RunOutcome {
    trace: Vec<TraceEntry>,
    failure: Option<(ViolationKind, String)>,
    ops: Vec<String>,
}

fn run_once<F>(cfg: &Config, prefix: &[usize], f: &F) -> RunOutcome
where
    F: Fn() + Send + Sync,
{
    let ctrl = Arc::new(Controller::new(prefix.to_vec(), cfg.spurious, cfg.max_steps));
    std::thread::scope(|scope| {
        let ctrl = &ctrl;
        scope.spawn(move || {
            set_ctx(Arc::clone(ctrl), 0);
            let r = catch_unwind(AssertUnwindSafe(f));
            match r {
                Ok(()) => ctrl.finish(0),
                Err(payload) => ctrl.thread_panicked(0, payload.as_ref()),
            }
            clear_ctx();
        });
    });
    // Model threads created with `thread::spawn` are real detached
    // threads; the scope above only joins the root. Wait for the
    // scheduler to declare the run over before reading the outcome.
    let mut inner = ctrl.state.lock().unwrap_or_else(|e| e.into_inner());
    while !inner.complete && inner.failure.is_none() {
        inner = ctrl.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
    }
    RunOutcome {
        trace: inner.trace.clone(),
        failure: inner.failure.clone(),
        ops: inner.ops.iter().cloned().collect(),
    }
}

fn schedule_string(trace: &[TraceEntry]) -> String {
    trace.iter().map(|e| e.rank.to_string()).collect::<Vec<_>>().join(".")
}

/// The deepest-first next prefix within the preemption bound, or None
/// when this subtree is exhausted.
fn next_prefix(trace: &[TraceEntry], bound: usize) -> Option<Vec<usize>> {
    let cost = |e: &TraceEntry, rank: usize| e.costs[rank] as usize;
    let mut spent: Vec<usize> = Vec::with_capacity(trace.len() + 1);
    let mut acc = 0;
    for e in trace {
        spent.push(acc);
        acc += cost(e, e.rank);
    }
    for i in (0..trace.len()).rev() {
        let e = &trace[i];
        let next_rank = e.rank + 1;
        if next_rank < e.costs.len() && spent[i] + cost(e, next_rank) <= bound {
            let mut prefix: Vec<usize> = trace[..i].iter().map(|t| t.rank).collect();
            prefix.push(next_rank);
            return Some(prefix);
        }
    }
    None
}

/// Explores the interleavings of `f` under `cfg`, iterating the
/// preemption bound from 0 upward so minimal counterexamples surface
/// first. `f` is re-run once per schedule and must construct fresh state
/// each time.
pub fn explore<F>(cfg: &Config, f: F) -> Report
where
    F: Fn() + Send + Sync,
{
    let started = Instant::now();
    let mut report = Report { schedules: 0, bound_reached: 0, violation: None, capped: false };
    for bound in 0..=cfg.max_preemptions {
        report.bound_reached = bound;
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            let out = run_once(cfg, &prefix, &f);
            report.schedules += 1;
            if let Some((kind, message)) = out.failure {
                report.violation = Some(Violation {
                    kind,
                    message,
                    schedule: schedule_string(&out.trace),
                    ops: out.ops,
                });
                return report;
            }
            if report.schedules >= cfg.max_schedules
                || cfg.deadline.is_some_and(|d| started.elapsed() >= d)
            {
                report.capped = true;
                return report;
            }
            match next_prefix(&out.trace, bound) {
                Some(p) => prefix = p,
                None => break,
            }
        }
    }
    report
}

/// [`explore`] with the default [`Config`].
pub fn check<F>(f: F) -> Report
where
    F: Fn() + Send + Sync,
{
    explore(&Config::default(), f)
}

/// Re-executes exactly one schedule (a [`Violation::schedule`] string)
/// and reports what it does — deterministic counterexample replay. Pass
/// the same [`Config`] the violating exploration used: the semantics
/// switches (notably [`Config::spurious`]) change which choices exist at
/// each decision point, and the schedule indexes into those choices.
pub fn replay<F>(cfg: &Config, schedule: &str, f: F) -> Report
where
    F: Fn() + Send + Sync,
{
    let prefix: Vec<usize> = schedule
        .split('.')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<usize>().unwrap_or(usize::MAX))
        .collect();
    let out = run_once(cfg, &prefix, &f);
    Report {
        schedules: 1,
        bound_reached: 0,
        violation: out.failure.map(|(kind, message)| Violation {
            kind,
            message,
            schedule: schedule_string(&out.trace),
            ops: out.ops,
        }),
        capped: false,
    }
}
