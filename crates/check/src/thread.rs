//! Thread shims: model-aware `spawn`, `scope`, `sleep`, `yield_now`.
//!
//! Inside a model run, spawned closures become scheduler-controlled model
//! threads; outside a run everything delegates to `std::thread`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

use crate::sched::{clear_ctx, current, set_ctx, Controller};

/// Spawns a thread. Inside a model run this registers a new model thread
/// (the spawn itself is a decision point — the child may run first).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        Some(ctx) => {
            let tid = ctx.ctrl.register_thread();
            let ctrl = Arc::clone(&ctx.ctrl);
            let real = std::thread::spawn(move || {
                set_ctx(Arc::clone(&ctrl), tid);
                ctrl.first_turn(tid);
                let r = catch_unwind(AssertUnwindSafe(f));
                match &r {
                    Ok(_) => ctrl.finish(tid),
                    Err(payload) => ctrl.thread_panicked(tid, payload.as_ref()),
                }
                clear_ctx();
                r
            });
            // The decision point comes after the OS thread exists, so the
            // scheduler may hand it the token immediately.
            ctx.ctrl.op(ctx.tid, || format!("spawn t{tid}"));
            JoinHandle { model: Some((ctx.ctrl, tid)), real }
        }
        None => JoinHandle {
            model: None,
            real: std::thread::spawn(move || catch_unwind(AssertUnwindSafe(f))),
        },
    }
}

/// Handle returned by [`spawn`].
pub struct JoinHandle<T> {
    model: Option<(Arc<Controller>, usize)>,
    real: std::thread::JoinHandle<std::thread::Result<T>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish (a decision point inside a model
    /// run) and returns its result; `Err` carries a panic payload exactly
    /// like `std::thread::JoinHandle::join`.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(ctx), Some((_, target))) = (current(), &self.model) {
            ctx.ctrl.join(ctx.tid, *target);
        }
        match self.real.join() {
            Ok(r) => r,
            Err(payload) => Err(payload),
        }
    }
}

/// Scoped threads mirroring `std::thread::scope`. All threads spawned on
/// the [`Scope`] are joined (model-joined first, inside the scheduler)
/// before `scope` returns.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let ctx = current();
    std::thread::scope(|s| {
        let scope = Scope {
            real: s,
            ctrl: ctx.as_ref().map(|c| Arc::clone(&c.ctrl)),
            children: StdMutex::new(Vec::new()),
        };
        let out = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        match &out {
            // Model-join every child before std's implicit (real) join:
            // the real join blocks this OS thread while it still holds
            // the scheduler token, so un-joined model children would
            // never be scheduled again.
            Ok(_) => scope.join_all(),
            // The scope owner is unwinding. Recording the panic now sets
            // the run's failure so parked children tear down and std's
            // implicit join can complete; the payload then resumes below
            // and crosses the scope boundary as it would under std.
            Err(payload) => {
                if let Some(c) = &ctx {
                    c.ctrl.record_panic(c.tid, payload.as_ref());
                }
            }
        }
        match out {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        }
    })
}

/// Scope passed to the [`scope`] closure.
pub struct Scope<'scope, 'env: 'scope> {
    real: &'scope std::thread::Scope<'scope, 'env>,
    ctrl: Option<Arc<Controller>>,
    children: StdMutex<Vec<usize>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread (a decision point inside a model run).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match (&self.ctrl, current()) {
            (Some(ctrl), Some(ctx)) => {
                let tid = ctrl.register_thread();
                self.children.lock().unwrap_or_else(|e| e.into_inner()).push(tid);
                let ctrl2 = Arc::clone(ctrl);
                let real = self.real.spawn(move || {
                    set_ctx(Arc::clone(&ctrl2), tid);
                    ctrl2.first_turn(tid);
                    let r = catch_unwind(AssertUnwindSafe(f));
                    match &r {
                        Ok(_) => ctrl2.finish(tid),
                        Err(payload) => ctrl2.thread_panicked(tid, payload.as_ref()),
                    }
                    clear_ctx();
                    r
                });
                ctx.ctrl.op(ctx.tid, || format!("spawn t{tid} (scoped)"));
                ScopedJoinHandle { model: Some((Arc::clone(ctrl), tid)), real }
            }
            _ => ScopedJoinHandle {
                model: None,
                real: self.real.spawn(move || catch_unwind(AssertUnwindSafe(f))),
            },
        }
    }

    /// Model-joins every child spawned on this scope (idempotent: joining
    /// a finished thread is a plain decision point).
    fn join_all(&self) {
        if self.ctrl.is_none() {
            return;
        }
        if let Some(ctx) = current() {
            let children: Vec<usize> =
                self.children.lock().unwrap_or_else(|e| e.into_inner()).clone();
            for t in children {
                ctx.ctrl.join(ctx.tid, t);
            }
        }
    }
}

/// Handle returned by [`Scope::spawn`].
pub struct ScopedJoinHandle<'scope, T> {
    model: Option<(Arc<Controller>, usize)>,
    real: std::thread::ScopedJoinHandle<'scope, std::thread::Result<T>>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the scoped thread to finish; see [`JoinHandle::join`].
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(ctx), Some((_, target))) = (current(), &self.model) {
            ctx.ctrl.join(ctx.tid, *target);
        }
        match self.real.join() {
            Ok(r) => r,
            Err(payload) => Err(payload),
        }
    }
}

/// Inside a model run a sleep is just a decision point (time is not
/// simulated); outside it really sleeps.
pub fn sleep(dur: Duration) {
    match current() {
        Some(ctx) => ctx.ctrl.op(ctx.tid, || format!("sleep {dur:?} (yield)")),
        None => std::thread::sleep(dur),
    }
}

/// A pure decision point inside a model run; a real yield elsewhere.
pub fn yield_now() {
    match current() {
        Some(ctx) => ctx.ctrl.op(ctx.tid, || "yield".to_string()),
        None => std::thread::yield_now(),
    }
}
