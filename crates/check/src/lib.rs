//! # bvc-check — a loom-style concurrency model checker
//!
//! Runs a closure's threads under shim synchronization primitives
//! ([`sync`], [`thread`]) on a *controlled scheduler*: exactly one model
//! thread executes at a time, and every visible operation (mutex acquire,
//! condvar park/notify, atomic access, spawn/join) is a scheduling
//! decision point. [`explore`] enumerates interleavings by depth-first
//! search over those decisions with *iterative preemption bounding* (all
//! schedules with 0 forced context switches first, then 1, then 2, …),
//! which finds minimal counterexamples first and keeps the search
//! tractable — empirically almost all real concurrency bugs need very few
//! preemptions (CHESS; Musuvathi & Qadeer, PLDI 2007).
//!
//! Detected violations:
//!
//! * **deadlock** — no thread is runnable but not all have finished
//!   (includes lost condvar notifications: a waiter parked forever);
//! * **panic** — any model thread panics, including failed `assert!`s of
//!   user-stated invariants;
//! * **step limit** — a schedule exceeds the per-run operation budget
//!   (livelock guard);
//! * **divergence** — a replayed schedule no longer matches the program
//!   (stale counterexample).
//!
//! Every violation carries a compact *schedule string* (the branch
//! choices taken at each multi-choice decision point, e.g. `"1.0.2"`)
//! that [`replay`] re-executes deterministically — the same spirit as
//! `bvc-chaos` fault-schedule seeds.
//!
//! The shim primitives fall back to plain `std::sync` behaviour when used
//! outside a model run, so a `--cfg bvc_check` build of a crate that
//! routes its synchronization through the facade (see DESIGN.md §13)
//! still works normally; only closures run under [`explore`]/[`replay`]
//! are scheduled.
//!
//! Spurious condvar wakeups are modelled as an opt-in extra
//! nondeterministic choice ([`Config::spurious`]): any parked waiter may
//! be woken at any decision point, so `if`-guarded waits that survive
//! exploration with `spurious: true` are certified wakeup-safe.
//!
//! ```
//! use std::sync::atomic::Ordering;
//!
//! // Two threads, non-atomic read-modify-write: the checker finds the
//! // lost update and hands back a replayable schedule.
//! let report = bvc_check::explore(&bvc_check::Config::default(), || {
//!     let c = bvc_check::sync::Arc::new(bvc_check::sync::AtomicU64::new(0));
//!     let t = bvc_check::thread::spawn({
//!         let c = c.clone();
//!         move || {
//!             let v = c.load(Ordering::SeqCst);
//!             c.store(v + 1, Ordering::SeqCst);
//!         }
//!     });
//!     let v = c.load(Ordering::SeqCst);
//!     c.store(v + 1, Ordering::SeqCst);
//!     t.join().ok();
//!     assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
//! });
//! let v = report.violation.expect("the race must be found");
//! assert!(v.message.contains("lost update"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sched;
pub mod sync;
pub mod thread;

pub use sched::{
    check, explore, is_model_abort, replay, reraise_if_abort, Config, Report, Violation,
    ViolationKind,
};
