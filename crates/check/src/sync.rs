//! Shim synchronization primitives.
//!
//! Inside a model run (a closure executed by [`crate::explore`]) every
//! operation is a scheduling decision point of the controlled scheduler.
//! Outside a model run the shims behave exactly like their `std::sync`
//! counterparts, so `--cfg bvc_check` builds of facade crates still work
//! normally.
//!
//! Atomics model *interleavings*, not weak memory: inside a run the
//! requested `Ordering` is recorded in the operation log but the effect
//! executes sequentially consistent (each access is a separate decision
//! point). Racy interleavings are still explored — what is not modelled
//! is reordering within a single thread.

use std::sync::atomic::Ordering;
use std::sync::{
    Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
    TryLockError,
};
use std::time::Duration;

use crate::sched::{current, Controller, Ctx, Wake};

pub use std::sync::Arc;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutex that becomes a scheduler-visible lock inside a model run and a
/// plain `std::sync::Mutex` elsewhere.
pub struct Mutex<T: ?Sized> {
    id: Option<usize>,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex; registers it with the scheduler when called from
    /// model code.
    pub fn new(value: T) -> Mutex<T> {
        let id = current().map(|c| c.ctrl.register_mutex());
        Mutex { id, inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the value. Sole ownership makes this
    /// invisible to the scheduler.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex (a decision point inside a model run).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match (current(), self.id) {
            (Some(Ctx { ctrl, tid }), Some(mid)) => {
                ctrl.mutex_lock(tid, mid);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(self.take_real(mid)),
                    model: Some((ctrl, tid)),
                })
            }
            _ => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard { lock: self, inner: Some(g), model: None }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            },
        }
    }

    /// Takes the real lock after the scheduler granted logical ownership;
    /// it is free by construction (the model serializes accesses).
    fn take_real(&self, mid: usize) -> StdMutexGuard<'_, T> {
        match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model mutex m{mid} held outside the scheduler")
            }
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

/// Guard returned by [`Mutex::lock`]; releasing it is scheduler-visible
/// inside a model run.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    model: Option<(Arc<Controller>, usize)>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("mutex guard already released")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("mutex guard already released")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then tell the scheduler; unlock is
        // not a decision point and never panics (drops run during model
        // teardown unwinds too).
        self.inner = None;
        if let (Some((ctrl, tid)), Some(mid)) = (self.model.take(), self.lock.id) {
            ctrl.mutex_unlock(tid, mid);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a [`Condvar::wait_timeout`]; mirrors
/// `std::sync::WaitTimeoutResult` (which cannot be constructed outside
/// std).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable whose park/notify operations are
/// scheduler-visible inside a model run.
pub struct Condvar {
    id: Option<usize>,
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a condvar; registers it with the scheduler when called
    /// from model code.
    pub fn new() -> Condvar {
        let id = current().map(|c| c.ctrl.register_condvar());
        Condvar { id, inner: StdCondvar::new() }
    }

    /// Atomically releases the guard's mutex and parks. Inside a model
    /// run, with [`crate::Config::spurious`] the scheduler may wake the
    /// waiter without a notification — callers must use `while`-predicate
    /// loops.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match self.model_wait(guard, false) {
            Ok((g, _)) => Ok(g),
            Err(guard) => {
                let lock = guard.lock;
                let std_guard = into_std(guard);
                match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard { lock, inner: Some(g), model: None }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(p.into_inner()),
                        model: None,
                    })),
                }
            }
        }
    }

    /// [`Condvar::wait`] with a timeout. Inside a model run the duration
    /// is not simulated: the timeout is an always-enabled nondeterministic
    /// wake, so exploration covers both the notified and the timed-out
    /// path regardless of the requested duration.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match self.model_wait(guard, true) {
            Ok((g, reason)) => Ok((g, WaitTimeoutResult(reason == Wake::Timeout))),
            Err(guard) => {
                let lock = guard.lock;
                let std_guard = into_std(guard);
                match self.inner.wait_timeout(std_guard, dur) {
                    Ok((g, t)) => Ok((
                        MutexGuard { lock, inner: Some(g), model: None },
                        WaitTimeoutResult(t.timed_out()),
                    )),
                    Err(p) => {
                        let (g, t) = p.into_inner();
                        Err(PoisonError::new((
                            MutexGuard { lock, inner: Some(g), model: None },
                            WaitTimeoutResult(t.timed_out()),
                        )))
                    }
                }
            }
        }
    }

    /// Wakes one parked waiter (the lowest-tid one inside a model run).
    pub fn notify_one(&self) {
        match (current(), self.id) {
            (Some(Ctx { ctrl, tid }), Some(cvid)) => ctrl.notify(tid, cvid, false),
            _ => self.inner.notify_one(),
        }
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        match (current(), self.id) {
            (Some(Ctx { ctrl, tid }), Some(cvid)) => ctrl.notify(tid, cvid, true),
            _ => self.inner.notify_all(),
        }
    }

    /// Model-path wait; hands the guard back via `Err` when this is not a
    /// model wait (no model context or a non-model guard).
    fn model_wait<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout_ok: bool,
    ) -> Result<(MutexGuard<'a, T>, Wake), MutexGuard<'a, T>> {
        let cvid = match (current(), self.id) {
            (Some(_), Some(cvid)) => cvid,
            _ => return Err(guard),
        };
        let (ctrl, tid) = match guard.model.take() {
            Some(m) => m,
            None => return Err(guard),
        };
        let lock = guard.lock;
        let mid = match lock.id {
            Some(mid) => mid,
            None => {
                guard.model = Some((ctrl, tid));
                return Err(guard);
            }
        };
        // Defuse the guard (model already cleared, drop the real lock
        // without a scheduler unlock — cond_wait performs the logical
        // release atomically with parking).
        guard.inner = None;
        std::mem::forget(guard);
        let reason = ctrl.cond_wait(tid, cvid, mid, timeout_ok);
        Ok((
            MutexGuard { lock, inner: Some(lock.take_real(mid)), model: Some((ctrl, tid)) },
            reason,
        ))
    }
}

/// Unwraps a fallback-path guard into the underlying std guard.
fn into_std<'a, T: ?Sized>(mut guard: MutexGuard<'a, T>) -> StdMutexGuard<'a, T> {
    let g = guard.inner.take().expect("mutex guard already released");
    std::mem::forget(guard);
    g
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! shim_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Atomic shim: each access is a decision point inside a model
        /// run; a plain std atomic elsewhere.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates the atomic with an initial value.
            pub const fn new(v: $prim) -> $name {
                $name { inner: <$std>::new(v) }
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> $prim {
                if let Some(ctx) = current() {
                    ctx.ctrl.op(ctx.tid, || format!("load {} ({order:?})", stringify!($name)));
                    // ordering: model effects are always SeqCst — the checker models interleavings, not weak memory.
                    self.inner.load(Ordering::SeqCst)
                } else {
                    self.inner.load(order)
                }
            }

            /// Atomic store.
            pub fn store(&self, v: $prim, order: Ordering) {
                if let Some(ctx) = current() {
                    ctx.ctrl.op(ctx.tid, || format!("store {} ({order:?})", stringify!($name)));
                    // ordering: model effects are always SeqCst — the checker models interleavings, not weak memory.
                    self.inner.store(v, Ordering::SeqCst);
                } else {
                    self.inner.store(v, order);
                }
            }

            /// Atomic swap.
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                if let Some(ctx) = current() {
                    ctx.ctrl.op(ctx.tid, || format!("swap {} ({order:?})", stringify!($name)));
                    // ordering: model effects are always SeqCst — the checker models interleavings, not weak memory.
                    self.inner.swap(v, Ordering::SeqCst)
                } else {
                    self.inner.swap(v, order)
                }
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                if let Some(ctx) = current() {
                    ctx.ctrl.op(ctx.tid, || format!("fetch_add {} ({order:?})", stringify!($name)));
                    // ordering: model effects are always SeqCst — the checker models interleavings, not weak memory.
                    self.inner.fetch_add(v, Ordering::SeqCst)
                } else {
                    self.inner.fetch_add(v, order)
                }
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                if let Some(ctx) = current() {
                    ctx.ctrl.op(ctx.tid, || format!("fetch_sub {} ({order:?})", stringify!($name)));
                    // ordering: model effects are always SeqCst — the checker models interleavings, not weak memory.
                    self.inner.fetch_sub(v, Ordering::SeqCst)
                } else {
                    self.inner.fetch_sub(v, order)
                }
            }

            /// Atomic max, returning the previous value.
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                if let Some(ctx) = current() {
                    ctx.ctrl.op(ctx.tid, || format!("fetch_max {} ({order:?})", stringify!($name)));
                    // ordering: model effects are always SeqCst — the checker models interleavings, not weak memory.
                    self.inner.fetch_max(v, Ordering::SeqCst)
                } else {
                    self.inner.fetch_max(v, order)
                }
            }

            /// Atomic read-modify-write via a closure. One decision point:
            /// the whole CAS loop is a single visible operation, matching
            /// the atomicity of a successful `fetch_update`.
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                f: F,
            ) -> Result<$prim, $prim>
            where
                F: FnMut($prim) -> Option<$prim>,
            {
                if let Some(ctx) = current() {
                    ctx.ctrl.op(ctx.tid, || format!("fetch_update {}", stringify!($name)));
                    // ordering: model effects are always SeqCst — the checker models interleavings, not weak memory.
                    self.inner.fetch_update(Ordering::SeqCst, Ordering::SeqCst, f)
                } else {
                    self.inner.fetch_update(set_order, fetch_order, f)
                }
            }
        }
    };
}

shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Atomic boolean shim: each access is a decision point inside a model
/// run; a plain std atomic elsewhere.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates the atomic with an initial value.
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool { inner: std::sync::atomic::AtomicBool::new(v) }
    }

    /// Atomic load.
    pub fn load(&self, order: Ordering) -> bool {
        if let Some(ctx) = current() {
            ctx.ctrl.op(ctx.tid, || format!("load AtomicBool ({order:?})"));
            // ordering: model effects are always SeqCst — the checker models interleavings, not weak memory.
            self.inner.load(Ordering::SeqCst)
        } else {
            self.inner.load(order)
        }
    }

    /// Atomic store.
    pub fn store(&self, v: bool, order: Ordering) {
        if let Some(ctx) = current() {
            ctx.ctrl.op(ctx.tid, || format!("store AtomicBool ({order:?})"));
            // ordering: model effects are always SeqCst — the checker models interleavings, not weak memory.
            self.inner.store(v, Ordering::SeqCst);
        } else {
            self.inner.store(v, order);
        }
    }

    /// Atomic swap.
    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        if let Some(ctx) = current() {
            ctx.ctrl.op(ctx.tid, || format!("swap AtomicBool ({order:?})"));
            // ordering: model effects are always SeqCst — the checker models interleavings, not weak memory.
            self.inner.swap(v, Ordering::SeqCst)
        } else {
            self.inner.swap(v, order)
        }
    }
}
