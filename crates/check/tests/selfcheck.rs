//! Self-tests for the model checker: known-good programs must pass
//! exhaustively, known-broken programs must produce a violation whose
//! schedule string replays deterministically.

use std::sync::atomic::Ordering;

use bvc_check::sync::{Arc, AtomicBool, AtomicU64, Condvar, Mutex};
use bvc_check::{explore, replay, Config, ViolationKind};

fn cfg(preemptions: usize) -> Config {
    Config { max_preemptions: preemptions, ..Config::default() }
}

// ---------------------------------------------------------------------------
// Races that must be found
// ---------------------------------------------------------------------------

#[test]
fn finds_lost_update() {
    let report = explore(&cfg(2), || {
        let c = Arc::new(AtomicU64::new(0));
        let t = bvc_check::thread::spawn({
            let c = c.clone();
            move || {
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
            }
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join().ok();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    });
    let v = report.violation.expect("non-atomic increment must race");
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(v.message.contains("lost update"), "message: {}", v.message);
}

#[test]
fn finds_ab_ba_deadlock() {
    let report = explore(&cfg(2), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let t = bvc_check::thread::spawn({
            let (a, b) = (a.clone(), b.clone());
            move || {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            }
        });
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        t.join().ok();
    });
    let v = report.violation.expect("AB/BA lock order must deadlock");
    assert_eq!(v.kind, ViolationKind::Deadlock);
    assert!(v.message.contains("lock("), "message: {}", v.message);
}

#[test]
fn finds_lost_wakeup_from_unlocked_flag() {
    // Classic bug: the producer sets the flag *outside* the mutex and
    // notifies before the consumer parks — interleaving: consumer checks
    // flag (false), producer sets+notifies, consumer parks forever.
    let report = explore(&cfg(2), || {
        let flag = Arc::new(AtomicBool::new(false));
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let t = bvc_check::thread::spawn({
            let (flag, pair) = (flag.clone(), pair.clone());
            move || {
                flag.store(true, Ordering::SeqCst);
                pair.1.notify_all();
            }
        });
        {
            let (lock, cv) = (&pair.0, &pair.1);
            let mut guard = lock.lock().unwrap();
            while !flag.load(Ordering::SeqCst) {
                guard = cv.wait(guard).unwrap();
            }
            drop(guard);
        }
        t.join().ok();
    });
    let v = report.violation.expect("flag set outside the mutex must lose the wakeup");
    assert_eq!(v.kind, ViolationKind::Deadlock);
    assert!(v.message.contains("parked"), "message: {}", v.message);
}

#[test]
fn spurious_mode_breaks_if_guarded_wait() {
    // With an `if` instead of `while`, a spurious wakeup slips past the
    // predicate re-check and observes an un-set flag.
    let broken = |spurious: bool| {
        let config = Config { spurious, max_preemptions: 2, ..Config::default() };
        explore(&config, || {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let t = bvc_check::thread::spawn({
                let state = state.clone();
                move || {
                    let (lock, cv) = (&state.0, &state.1);
                    *lock.lock().unwrap() = true;
                    cv.notify_all();
                }
            });
            {
                let (lock, cv) = (&state.0, &state.1);
                let mut ready = lock.lock().unwrap();
                if !*ready {
                    ready = cv.wait(ready).unwrap();
                }
                assert!(*ready, "woke before the flag was set");
            }
            t.join().ok();
        })
    };
    assert!(
        broken(false).violation.is_none(),
        "without spurious wakeups the if-wait happens to hold"
    );
    let v = broken(true).violation.expect("spurious mode must break the if-wait");
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(v.message.contains("woke before"), "message: {}", v.message);
}

#[test]
fn step_limit_flags_livelock() {
    let config = Config { max_steps: 64, max_preemptions: 0, ..Config::default() };
    let report = explore(&config, || {
        let stop = AtomicBool::new(false);
        // Nobody ever sets `stop`: under the scheduler's default
        // round-robin this spins forever; the step budget catches it.
        while !stop.load(Ordering::SeqCst) {
            bvc_check::thread::yield_now();
        }
    });
    let v = report.violation.expect("unbounded spin must hit the step limit");
    assert_eq!(v.kind, ViolationKind::StepLimit);
}

// ---------------------------------------------------------------------------
// Replay and bounding semantics
// ---------------------------------------------------------------------------

#[test]
fn violation_schedule_replays_deterministically() {
    let model = || {
        let c = Arc::new(AtomicU64::new(0));
        let t = bvc_check::thread::spawn({
            let c = c.clone();
            move || {
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
            }
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join().ok();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    };
    let config = cfg(2);
    let found = explore(&config, model).violation.expect("race must be found");
    for _ in 0..3 {
        let replayed = replay(&config, &found.schedule, model)
            .violation
            .expect("the schedule string must reproduce the violation");
        assert_eq!(replayed.kind, found.kind);
        assert_eq!(replayed.message, found.message);
        assert_eq!(replayed.schedule, found.schedule);
    }
}

#[test]
fn stale_schedule_reports_divergence() {
    // A schedule with branch indexes far beyond any decision point's
    // fan-out no longer matches the program.
    let report = replay(&cfg(0), "9.9.9.9", || {
        let t = bvc_check::thread::spawn(|| {});
        t.join().ok();
    });
    let v = report.violation.expect("out-of-range branch must diverge");
    assert_eq!(v.kind, ViolationKind::Divergence);
}

#[test]
fn preemption_bounding_is_iterative() {
    // This race needs at least one forced preemption (between the load
    // and the store of the same thread); bound 0 must miss it and
    // bound >= 1 must find it — and the report says which bound did.
    let model = || {
        let c = Arc::new(AtomicU64::new(0));
        let t = bvc_check::thread::spawn({
            let c = c.clone();
            move || {
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
            }
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join().ok();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    };
    let at_zero = explore(&cfg(0), model);
    assert!(at_zero.violation.is_none(), "bound 0 cannot interleave the RMW");
    assert!(at_zero.exhaustive_pass());
    let at_one = explore(&cfg(1), model);
    let v = at_one.violation.expect("bound 1 must find the race");
    assert_eq!(at_one.bound_reached, 1);
    assert_eq!(v.kind, ViolationKind::Panic);
}

// ---------------------------------------------------------------------------
// Correct programs must pass exhaustively
// ---------------------------------------------------------------------------

#[test]
fn atomic_counter_passes() {
    let report = explore(&cfg(3), || {
        let c = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                bvc_check::thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in threads {
            t.join().ok();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
    assert!(report.violation.is_none(), "{report}");
    assert!(report.exhaustive_pass(), "{report}");
}

#[test]
fn while_guarded_wait_survives_spurious_mode() {
    let config = Config { spurious: true, max_preemptions: 2, ..Config::default() };
    let report = explore(&config, || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let t = bvc_check::thread::spawn({
            let state = state.clone();
            move || {
                let (lock, cv) = (&state.0, &state.1);
                *lock.lock().unwrap() = true;
                cv.notify_all();
            }
        });
        {
            let (lock, cv) = (&state.0, &state.1);
            let mut ready = lock.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            assert!(*ready);
        }
        t.join().ok();
    });
    assert!(report.violation.is_none(), "{report}");
    assert!(report.exhaustive_pass(), "{report}");
}

#[test]
fn scoped_threads_join_inside_scheduler() {
    let report = explore(&cfg(2), || {
        let c = AtomicU64::new(0);
        bvc_check::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(c.load(Ordering::SeqCst), 2, "scope returned before children ran");
    });
    assert!(report.violation.is_none(), "{report}");
}

#[test]
fn wait_timeout_explores_timeout_path() {
    // The waiter uses wait_timeout and nobody ever notifies: exploration
    // must cover the timed-out wake (no deadlock) because the timeout is
    // an always-enabled nondeterministic choice.
    let report = explore(&cfg(2), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let (lock, cv) = (&state.0, &state.1);
        let mut ready = lock.lock().unwrap();
        let mut fired = false;
        while !*ready {
            let (g, timeout) = cv.wait_timeout(ready, std::time::Duration::from_millis(1)).unwrap();
            ready = g;
            if timeout.timed_out() {
                fired = true;
                break;
            }
        }
        assert!(fired || *ready);
    });
    assert!(report.violation.is_none(), "{report}");
}
