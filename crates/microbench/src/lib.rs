//! # microbench — a zero-dependency criterion shim
//!
//! The workspace's benches were written against [criterion], which the
//! offline build environment cannot download. This crate re-implements the
//! subset of criterion's API those benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`sample_size`/`finish`, the `Bencher`
//! closure protocol and the `criterion_group!`/`criterion_main!` macros — on
//! `std::time::Instant`, reporting median / mean / min per benchmark.
//!
//! The workspace imports it under the name `criterion` (Cargo dependency
//! renaming), so bench files keep their original imports and would keep
//! compiling against the real crate.
//!
//! [criterion]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== group: {name} ==");
        BenchmarkGroup { sample_size: 30 }
    }

    /// Registers a stand-alone benchmark (group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup { sample_size: 30 };
        g.bench_function(name, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // One untimed warm-up pass, then the timed samples.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mut ns: Vec<u128> = b.samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        let median = ns[ns.len() / 2];
        let mean = ns.iter().sum::<u128>() / ns.len() as u128;
        let min = ns[0];
        println!(
            "{name:<44} median {:>12}  mean {:>12}  min {:>12}  ({} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min),
            ns.len()
        );
        self
    }

    /// Ends the group (criterion API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Times one sample of the routine under test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once under the clock and records the elapsed time as
    /// one sample. (Criterion's batching heuristics are unnecessary at the
    /// millisecond scale of this workspace's solver benches.)
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        std::hint::black_box(out);
    }
}

/// Formats nanoseconds human-readably.
fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a group-running function from benchmark functions (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-test");
        g.sample_size(5);
        let mut runs = 0usize;
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // 1 warm-up + 5 timed samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn formats_durations() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
