//! Seeded, deterministic fault injection for the bvc workspace.
//!
//! The FoundationDB-style discipline: every injected failure is drawn from
//! a **per-site** [`SplitMix64`] stream seeded from `plan.seed ^
//! fnv1a(site)`, so the decision sequence at any site is a pure function
//! of the fault plan — independent of thread interleaving, wall-clock
//! time, or what other sites drew. Re-running with the same seed
//! reproduces the identical failure schedule.
//!
//! Three layers:
//!
//! * [`FaultPlan`] — parsed from a `--chaos` flag or the `BVC_CHAOS`
//!   environment variable, grammar
//!   `seed=42,conn_drop=0.02,read_stall_ms=50,torn_write=0.01,crash_at=journal.after_append:3`.
//! * [`ChaosStream`] — wraps any `Read + Write` byte stream (layered
//!   *under* `bvc_serve::net` framing) and injects connection resets,
//!   torn/partial writes at drawn byte offsets, read stalls, and latency.
//! * [`crash_point`] — named process crash points
//!   (`journal.after_append`, …): when the plan's `crash_at=SITE:N`
//!   matches the Nth hit of that site, the process exits immediately with
//!   status [`CRASH_EXIT_CODE`], simulating a kill mid-operation.
//!
//! The plan is installed process-globally ([`install`] /
//! [`install_from_env`]); when nothing is installed every hook is a
//! no-op behind one relaxed atomic load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Exit status used by [`crash_point`] when a planned crash fires —
/// deliberately the shell's code for SIGKILL so drill scripts treat a
/// chaos crash and a real `kill -9` identically.
pub const CRASH_EXIT_CODE: i32 = 137;

// ---------------------------------------------------------------------------
// SplitMix64
// ---------------------------------------------------------------------------

/// The SplitMix64 generator (Steele/Lea/Flood): tiny state, full 2^64
/// period, and — crucially for per-site streams — good output even from
/// correlated seeds, which is why each site can be seeded by XOR-ing the
/// plan seed with a hash of the site name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 significant bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`; returns 0 when `n == 0`.
    pub fn next_range(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// FNV-1a over the site name; mixed into the plan seed to derive per-site
/// streams. (Duplicated from `bvc-journal` because this crate sits below
/// every other crate in the dependency graph.)
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------------

/// A `SITE:N` target: the Nth hit (1-based) of the named site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteCount {
    /// Site name, e.g. `journal.after_append` or `workerA.s1.tx`.
    pub site: String,
    /// 1-based hit count at which the fault fires.
    pub count: u64,
}

impl SiteCount {
    fn parse(raw: &str, key: &str) -> Result<SiteCount, String> {
        let (site, count) =
            raw.rsplit_once(':').ok_or_else(|| format!("{key} takes SITE:N, got {raw:?}"))?;
        let count: u64 =
            count.parse().map_err(|_| format!("{key} takes SITE:N with integer N, got {raw:?}"))?;
        if site.is_empty() || count == 0 {
            return Err(format!("{key} needs a nonempty SITE and N >= 1, got {raw:?}"));
        }
        Ok(SiteCount { site: site.to_string(), count })
    }
}

/// A parsed fault plan. All probabilities are per-I/O-operation; all
/// draws come from per-site seeded streams so the schedule is
/// reproducible. The zero plan (all fields default) injects nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Master seed; per-site streams derive from it.
    pub seed: u64,
    /// Probability that an I/O operation hits a connection reset.
    pub conn_drop: f64,
    /// Deterministic connection reset at the Nth operation of one site.
    pub conn_drop_at: Option<SiteCount>,
    /// Read stall length in milliseconds (fires with [`FaultPlan::read_stall_p`]).
    pub read_stall_ms: u64,
    /// Probability that a read stalls for `read_stall_ms` (default 0.05
    /// when `read_stall_ms` is set).
    pub read_stall_p: f64,
    /// Probability that a write is torn: a prefix (cut offset drawn from
    /// the site stream) is written, then the connection resets.
    pub torn_write: f64,
    /// Deterministic torn write at the Nth operation of one site.
    pub torn_write_at: Option<SiteCount>,
    /// Extra latency: each operation sleeps a drawn uniform
    /// `[0, latency_ms)` milliseconds.
    pub latency_ms: u64,
    /// Process crash at the Nth hit of a named [`crash_point`].
    pub crash_at: Option<SiteCount>,
}

fn parse_prob(raw: &str, key: &str) -> Result<f64, String> {
    let p: f64 = raw.parse().map_err(|_| format!("{key} takes a probability, got {raw:?}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{key} must be in [0, 1], got {raw:?}"));
    }
    Ok(p)
}

impl FaultPlan {
    /// Parses the comma-separated `key=value` grammar, e.g.
    /// `seed=42,conn_drop=0.02,read_stall_ms=50,torn_write=0.01,crash_at=journal.after_append:3`.
    ///
    /// Keys: `seed`, `conn_drop`, `conn_drop_at=SITE:N`, `read_stall_ms`,
    /// `read_stall_p`, `torn_write`, `torn_write_at=SITE:N`, `latency_ms`,
    /// `crash_at=SITE:N`. Unknown keys are an error (a typo must not
    /// silently disable a drill).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        let mut stall_p_set = false;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec needs key=value, got {part:?}"))?;
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("seed takes an integer, got {value:?}"))?;
                }
                "conn_drop" => plan.conn_drop = parse_prob(value, "conn_drop")?,
                "conn_drop_at" => {
                    plan.conn_drop_at = Some(SiteCount::parse(value, "conn_drop_at")?)
                }
                "read_stall_ms" => {
                    plan.read_stall_ms = value
                        .parse()
                        .map_err(|_| format!("read_stall_ms takes milliseconds, got {value:?}"))?;
                }
                "read_stall_p" => {
                    plan.read_stall_p = parse_prob(value, "read_stall_p")?;
                    stall_p_set = true;
                }
                "torn_write" => plan.torn_write = parse_prob(value, "torn_write")?,
                "torn_write_at" => {
                    plan.torn_write_at = Some(SiteCount::parse(value, "torn_write_at")?)
                }
                "latency_ms" => {
                    plan.latency_ms = value
                        .parse()
                        .map_err(|_| format!("latency_ms takes milliseconds, got {value:?}"))?;
                }
                "crash_at" => plan.crash_at = Some(SiteCount::parse(value, "crash_at")?),
                other => return Err(format!("unknown chaos key {other:?}")),
            }
        }
        if plan.read_stall_ms > 0 && !stall_p_set {
            plan.read_stall_p = 0.05;
        }
        Ok(plan)
    }

    /// True when the plan injects nothing (every hook stays a no-op).
    pub fn is_noop(&self) -> bool {
        self.conn_drop <= 0.0
            && self.conn_drop_at.is_none()
            && (self.read_stall_ms == 0 || self.read_stall_p <= 0.0)
            && self.torn_write <= 0.0
            && self.torn_write_at.is_none()
            && self.latency_ms == 0
            && self.crash_at.is_none()
    }
}

// ---------------------------------------------------------------------------
// Global controller
// ---------------------------------------------------------------------------

struct SiteState {
    rng: SplitMix64,
    hits: u64,
}

struct Chaos {
    plan: FaultPlan,
    sites: HashMap<String, SiteState>,
    events: Vec<String>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static CTL: Mutex<Option<Chaos>> = Mutex::new(None);

const MAX_EVENTS: usize = 10_000;

fn lock_ctl() -> std::sync::MutexGuard<'static, Option<Chaos>> {
    CTL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs a fault plan process-globally, replacing any previous one and
/// resetting all per-site streams and counters.
pub fn install(plan: FaultPlan) {
    let mut ctl = lock_ctl();
    // ordering: SeqCst — set-once under the CTL lock; off every hot path, strongest order is free.
    ACTIVE.store(true, Ordering::SeqCst);
    *ctl = Some(Chaos { plan, sites: HashMap::new(), events: Vec::new() });
}

/// Parses and installs a `--chaos` spec.
pub fn install_spec(spec: &str) -> Result<(), String> {
    let plan = FaultPlan::parse(spec)?;
    install(plan);
    Ok(())
}

/// Installs a plan from the `BVC_CHAOS` environment variable if set.
/// Returns whether a plan was installed; a malformed value is an error
/// (silent fallback would turn a typoed drill into a clean run).
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var("BVC_CHAOS") {
        Ok(spec) if !spec.trim().is_empty() => {
            install_spec(&spec).map_err(|e| format!("BVC_CHAOS: {e}"))?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Removes the installed plan; every hook becomes a no-op again.
pub fn reset() {
    let mut ctl = lock_ctl();
    // ordering: SeqCst — set-once under the CTL lock; off every hot path, strongest order is free.
    ACTIVE.store(false, Ordering::SeqCst);
    *ctl = None;
}

/// True when a fault plan is installed (one relaxed load on the no-chaos
/// fast path).
pub fn is_active() -> bool {
    // ordering: Relaxed — no-chaos fast path; hooks that see true re-check under the CTL lock.
    ACTIVE.load(Ordering::Relaxed)
}

/// Returns a copy of the installed plan, if any.
pub fn active_plan() -> Option<FaultPlan> {
    lock_ctl().as_ref().map(|c| c.plan.clone())
}

/// Drains the recorded fault-event log (site, op index, decision). The
/// per-site decision *sequence* is deterministic for a given seed; which
/// wall-clock operation each decision lands on can vary with scheduling.
pub fn drain_events() -> Vec<String> {
    match lock_ctl().as_mut() {
        Some(c) => std::mem::take(&mut c.events),
        None => Vec::new(),
    }
}

fn record_event(c: &mut Chaos, site: &str, hit: u64, what: &str) {
    if c.events.len() < MAX_EVENTS {
        c.events.push(format!("{site}#{hit}:{what}"));
    }
}

/// Whether an I/O operation reads or writes — decides which fault kinds
/// apply (stalls on reads, torn writes on writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A read from the stream.
    Read,
    /// A write to the stream.
    Write,
}

/// The fault (if any) drawn for one I/O operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IoFault {
    /// Proceed normally.
    None,
    /// Reset the connection (the stream is dead afterwards).
    Reset,
    /// Sleep this long, then proceed.
    Stall(Duration),
    /// Write only `cut` of a fraction of the buffer, then reset. The cut
    /// fraction in `[0, 1)` was drawn from the site stream — the torn
    /// byte offset is part of the reproducible schedule.
    Torn {
        /// Fraction of the buffer to write before the reset.
        cut: f64,
    },
}

/// Draws the fault for one I/O operation at `site`. No plan installed →
/// [`IoFault::None`]. Exactly four values are drawn from the site stream
/// per call regardless of configuration or outcome, so enabling one fault
/// kind never shifts another kind's schedule.
pub fn draw_io(site: &str, op: IoOp) -> IoFault {
    if !is_active() {
        return IoFault::None;
    }
    let mut ctl = lock_ctl();
    let Some(c) = ctl.as_mut() else { return IoFault::None };
    let plan = c.plan.clone();
    let seed = plan.seed ^ fnv1a64(site.as_bytes());
    let st = c
        .sites
        .entry(site.to_string())
        .or_insert_with(|| SiteState { rng: SplitMix64::new(seed), hits: 0 });
    st.hits += 1;
    let hit = st.hits;
    let (u_drop, u_stall, u_torn) = (st.rng.next_f64(), st.rng.next_f64(), st.rng.next_f64());
    let u_aux = st.rng.next_u64();

    let targeted =
        |t: &Option<SiteCount>| t.as_ref().is_some_and(|sc| sc.site == site && sc.count == hit);
    let fault = if targeted(&plan.conn_drop_at) || u_drop < plan.conn_drop {
        IoFault::Reset
    } else if op == IoOp::Write && (targeted(&plan.torn_write_at) || u_torn < plan.torn_write) {
        IoFault::Torn { cut: u_torn.fract() }
    } else if op == IoOp::Read && plan.read_stall_ms > 0 && u_stall < plan.read_stall_p {
        IoFault::Stall(Duration::from_millis(plan.read_stall_ms))
    } else if plan.latency_ms > 0 {
        IoFault::Stall(Duration::from_millis(u_aux % plan.latency_ms.max(1)))
    } else {
        IoFault::None
    };
    match fault {
        IoFault::None => {}
        IoFault::Reset => record_event(c, site, hit, "reset"),
        IoFault::Stall(d) => record_event(c, site, hit, &format!("stall{}ms", d.as_millis())),
        IoFault::Torn { cut } => record_event(c, site, hit, &format!("torn@{cut:.3}")),
    }
    fault
}

/// A named crash point. When the installed plan's `crash_at=SITE:N`
/// matches the Nth hit of `site`, prints a diagnostic and exits the
/// process with [`CRASH_EXIT_CODE`] — no unwinding, no destructors, like
/// a kill mid-operation. A no-op otherwise.
///
/// Established site names: `journal.after_append` (after a journal line
/// is written and flushed), `journal.before_append` (before the write),
/// `journal.after_compact` (after a compaction rename).
pub fn crash_point(site: &str) {
    if !is_active() {
        return;
    }
    let hit = {
        let mut ctl = lock_ctl();
        let Some(c) = ctl.as_mut() else { return };
        let Some(target) = c.plan.crash_at.clone() else { return };
        if target.site != site {
            return;
        }
        let seed = c.plan.seed ^ fnv1a64(site.as_bytes());
        let st = c
            .sites
            .entry(site.to_string())
            .or_insert_with(|| SiteState { rng: SplitMix64::new(seed), hits: 0 });
        st.hits += 1;
        if st.hits != target.count {
            return;
        }
        st.hits
    };
    eprintln!("chaos: crash_point {site} hit {hit}, exiting {CRASH_EXIT_CODE}");
    std::process::exit(CRASH_EXIT_CODE);
}

// ---------------------------------------------------------------------------
// Chaos-wrapped byte stream
// ---------------------------------------------------------------------------

/// Wraps a byte stream and injects the installed plan's network faults:
/// connection resets, torn writes (a drawn prefix is written, then the
/// stream dies), read stalls, and latency. Layered *under* framing, so a
/// torn write tears a frame mid-bytes exactly like a crashed peer.
///
/// Each wrapper draws from the per-site stream named at construction;
/// give every connection its own site (e.g. `workerA.s2.tx`) so
/// schedules stay independent and reproducible.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    site: String,
    dead: bool,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner`, drawing faults from the per-site stream `site`.
    pub fn new(inner: S, site: &str) -> Self {
        ChaosStream { inner, site: site.to_string(), dead: false }
    }
}

fn reset_err() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "chaos: injected connection reset")
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(reset_err());
        }
        match draw_io(&self.site, IoOp::Read) {
            IoFault::Reset => {
                self.dead = true;
                Err(reset_err())
            }
            IoFault::Stall(d) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            IoFault::Torn { .. } | IoFault::None => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(reset_err());
        }
        match draw_io(&self.site, IoOp::Write) {
            IoFault::Reset => {
                self.dead = true;
                Err(reset_err())
            }
            IoFault::Torn { cut } => {
                // Write a prefix up to the drawn byte offset, then die —
                // the peer sees a torn frame.
                let n = ((buf.len() as f64 * cut) as usize).min(buf.len().saturating_sub(1));
                if n > 0 {
                    let _ = self.inner.write(&buf[..n]);
                    let _ = self.inner.flush();
                }
                self.dead = true;
                Err(reset_err())
            }
            IoFault::Stall(d) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            IoFault::None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(reset_err());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The chaos controller is process-global; serialize tests that
    // install plans.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn splitmix_is_deterministic_and_distinct_by_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
        let mut d = SplitMix64::new(0);
        for _ in 0..100 {
            let f = d.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn plan_parses_the_issue_grammar() {
        let plan = FaultPlan::parse(
            "seed=42,conn_drop=0.02,read_stall_ms=50,torn_write=0.01,crash_at=journal.after_append:3",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert!((plan.conn_drop - 0.02).abs() < 1e-12);
        assert_eq!(plan.read_stall_ms, 50);
        assert!((plan.read_stall_p - 0.05).abs() < 1e-12, "default stall probability");
        assert!((plan.torn_write - 0.01).abs() < 1e-12);
        assert_eq!(
            plan.crash_at,
            Some(SiteCount { site: "journal.after_append".into(), count: 3 })
        );
        assert!(!plan.is_noop());
        assert!(FaultPlan::parse("").unwrap().is_noop());
    }

    #[test]
    fn plan_rejects_malformed_specs() {
        assert!(FaultPlan::parse("conn_drop=2.0").is_err(), "probability out of range");
        assert!(FaultPlan::parse("bogus_key=1").is_err(), "unknown key");
        assert!(FaultPlan::parse("crash_at=nocolon").is_err(), "missing :N");
        assert!(FaultPlan::parse("crash_at=site:0").is_err(), "zero count");
        assert!(FaultPlan::parse("seed").is_err(), "missing =value");
    }

    #[test]
    fn per_site_draw_sequences_replay_exactly() {
        let _g = guard();
        let plan = FaultPlan::parse("seed=7,conn_drop=0.3,torn_write=0.2,latency_ms=1").unwrap();
        let draw_all = || -> Vec<IoFault> {
            (0..32)
                .map(|i| {
                    let op = if i % 2 == 0 { IoOp::Read } else { IoOp::Write };
                    draw_io("test.site", op)
                })
                .collect()
        };
        install(plan.clone());
        let first = draw_all();
        install(plan);
        let second = draw_all();
        assert_eq!(first, second, "same seed + site must replay the identical schedule");
        assert!(first.iter().any(|f| *f != IoFault::None), "plan should fire at least once");
        reset();
        assert_eq!(draw_io("test.site", IoOp::Read), IoFault::None, "reset disables draws");
    }

    #[test]
    fn targeted_faults_fire_at_the_exact_op() {
        let _g = guard();
        install(FaultPlan::parse("seed=1,conn_drop_at=tgt:3").unwrap());
        assert_eq!(draw_io("tgt", IoOp::Write), IoFault::None);
        assert_eq!(draw_io("tgt", IoOp::Write), IoFault::None);
        assert_eq!(draw_io("tgt", IoOp::Write), IoFault::Reset);
        assert_eq!(draw_io("tgt", IoOp::Write), IoFault::None, "fires exactly once");
        assert_eq!(draw_io("other", IoOp::Write), IoFault::None, "other sites untouched");
        reset();
    }

    #[test]
    fn chaos_stream_tears_writes_and_dies() {
        let _g = guard();
        install(FaultPlan::parse("seed=1,torn_write_at=cs.tx:2").unwrap());
        let mut s = ChaosStream::new(Vec::<u8>::new(), "cs.tx");
        assert_eq!(s.write(b"hello").unwrap(), 5);
        let err = s.write(b"worldworld").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(s.inner.len() < 15, "second write must be torn, not completed");
        assert!(s.write(b"x").is_err(), "stream stays dead");
        let events = drain_events();
        assert!(events.iter().any(|e| e.starts_with("cs.tx#2:torn")), "events: {events:?}");
        reset();
    }

    #[test]
    fn crash_point_is_inert_without_matching_site() {
        let _g = guard();
        install(FaultPlan::parse("seed=1,crash_at=never.here:1").unwrap());
        // Must not exit the test process.
        crash_point("journal.after_append");
        crash_point("journal.after_append");
        reset();
        crash_point("never.here");
    }
}
