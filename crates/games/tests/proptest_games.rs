//! Property tests for the §5 game invariants.
//!
//! * **Analytical Result 4** — in the EB choosing game with every miner
//!   strictly below 50%, the pure Nash equilibria are *exactly* the two
//!   unanimous profiles; with a strict majority miner there is no pure
//!   equilibrium at all.
//! * **Analytical Result 5** — the block size increasing game's rational
//!   playout terminates at the stable-set induction's terminal suffix, the
//!   recorded rounds have the pass/fail shape the induction predicts, and
//!   utilities split the unit reward over exactly the surviving suffix.
//! * The committed-coalition induction with an *empty* coalition reduces
//!   bit-for-bit to the base induction (the frontier engine's identity).

use bvc_games::{BlockSizeIncreasingGame, EbChoosingGame, MinerGroup};
use proptest::prelude::*;

/// Normalizes integer weights to power shares summing to one.
fn normalize(weights: &[u32]) -> Vec<f64> {
    let sum: f64 = weights.iter().map(|&w| f64::from(w)).sum();
    weights.iter().map(|&w| f64::from(w) / sum).collect()
}

fn weights() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(1u32..20, 3..9)
}

/// Thresholds exercised: BU's majority rule, two supermajorities, and the
/// §6.3 countermeasure equivalent.
const THRESHOLDS: [f64; 4] = [0.5, 0.6, 0.75, 0.9];

/// Builds the block size increasing game on a strict MPB ladder, so only
/// the power shape varies.
fn ladder_game(weights: &[u32], threshold: f64) -> BlockSizeIncreasingGame {
    let groups = normalize(weights)
        .into_iter()
        .enumerate()
        .map(|(i, power)| MinerGroup { mpb: (i + 1) as f64, power })
        .collect();
    BlockSizeIncreasingGame::with_threshold(groups, threshold)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AR4, minority case: all miners below 50% ⟹ the pure Nash set is
    /// exactly the two unanimities.
    #[test]
    fn minority_nash_set_is_the_two_unanimities(w in weights()) {
        let sum: u32 = w.iter().sum();
        prop_assume!(w.iter().all(|&x| 2 * x < sum));
        let n = w.len();
        let game = EbChoosingGame::new(normalize(&w));
        let equilibria = game.enumerate_equilibria().expect("n is far below the cap");
        prop_assert_eq!(equilibria.len(), 2);
        prop_assert!(equilibria.contains(&vec![0u8; n]));
        prop_assert!(equilibria.contains(&vec![1u8; n]));
    }

    /// AR4, majority case: a strict majority miner destroys every pure
    /// equilibrium (it always prefers to mine its EB alone).
    #[test]
    fn majority_miner_kills_every_pure_equilibrium(w in weights()) {
        let sum: u32 = w.iter().sum();
        prop_assume!(w.iter().any(|&x| 2 * x > sum));
        let game = EbChoosingGame::new(normalize(&w));
        let equilibria = game.enumerate_equilibria().expect("n is far below the cap");
        prop_assert!(equilibria.is_empty());
    }

    /// AR5: the rational playout and the stable-set backward induction
    /// agree on the terminal suffix, and the trace has the predicted
    /// shape — `terminal` passing rounds, then one failing round unless
    /// the cascade ran all the way to the last group.
    #[test]
    fn playout_terminal_matches_the_stable_set_induction(
        w in weights(),
        t in 0usize..4,
    ) {
        let game = ladder_game(&w, THRESHOLDS[t]);
        let n = game.len();
        let stable = game.stable_suffixes();
        prop_assert!(stable[n - 1]);
        let first = stable.iter().position(|&s| s).expect("last suffix is always stable");
        prop_assert_eq!(game.terminal_set(), first);

        let trace = game.play();
        prop_assert_eq!(trace.terminal, first);
        for (r, round) in trace.rounds.iter().enumerate() {
            prop_assert_eq!(round.leaving, r);
            prop_assert_eq!(round.passed, r < first);
        }
        let expected_rounds = if first == n - 1 { n - 1 } else { first + 1 };
        prop_assert_eq!(trace.rounds.len(), expected_rounds);

        // Utilities: survivors (and only survivors) split the unit reward.
        let utilities = game.utilities();
        let total: f64 = utilities.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for (i, &u) in utilities.iter().enumerate() {
            prop_assert_eq!(u > 0.0, i >= first);
        }
    }

    /// The committed-coalition induction with nobody committed reduces
    /// exactly to the base induction — the identity the coalition-frontier
    /// engine's `base_terminal` metric rests on. (Non-empty coalitions are
    /// deliberately *not* compared against the base terminal: commitments
    /// reshape cascade targets non-monotonically.)
    #[test]
    fn empty_coalition_reduces_to_the_base_induction(
        w in weights(),
        t in 0usize..4,
    ) {
        let game = ladder_game(&w, THRESHOLDS[t]);
        let nobody = vec![false; game.len()];
        prop_assert_eq!(game.stable_suffixes_committed(&nobody), game.stable_suffixes());
        prop_assert_eq!(game.terminal_committed(&nobody), game.terminal_set());
    }
}
