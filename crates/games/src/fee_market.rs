//! Rizun's fee-market model ("A Transaction Fee Market Exists Without a
//! Block Size Limit"), which the paper cites in §2.3 as the economic basis
//! for Assumption 2: *every miner has a maximum profitable block size
//! (MPB)* determined by its mining cost and network capacity.
//!
//! A block of size `Q` takes `τ(Q) = z₀ + Q/C` to propagate (latency plus
//! bandwidth); with exponential block arrivals of mean interval `T`, the
//! probability that no competing block is found during propagation — the
//! block's survival probability — is `exp(−τ(Q)/T)`. A miner collecting a
//! base reward `R` and fees `f` per size unit therefore expects
//!
//! ```text
//! profit(Q) = (R + f·Q) · exp(−(z₀ + Q/C)/T) − cost
//! ```
//!
//! per found block. The revenue-optimal size has the closed form
//! `Q* = C·T − R/f` (clamped at 0), and the **MPB** is the largest `Q`
//! whose profit is still nonnegative — beyond it the orphan risk outweighs
//! the extra fees. Faster miners (larger `C`) have larger `Q*` and MPB,
//! which is exactly the heterogeneity the block size increasing game
//! ([`crate::BlockSizeIncreasingGame`]) weaponizes.

use crate::bsig::MinerGroup;

/// Economic parameters of one miner for the fee-market model. Sizes are in
/// MB and money in block-reward units; time is in expected block intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinerEconomics {
    /// Base block reward `R` (1.0 = one block reward).
    pub reward: f64,
    /// Fees collected per MB of transactions, `f`.
    pub fee_per_mb: f64,
    /// Effective bandwidth `C·T`: MB the miner can propagate per block
    /// interval.
    pub bandwidth: f64,
    /// Fixed propagation latency as a fraction of the block interval,
    /// `z₀/T`.
    pub latency: f64,
    /// Operating cost per expected block found, in block rewards.
    pub cost: f64,
}

impl MinerEconomics {
    /// Probability that a block of size `q` MB is orphaned by a competing
    /// block found during its propagation.
    pub fn orphan_probability(&self, q: f64) -> f64 {
        1.0 - (-(self.latency + q / self.bandwidth)).exp()
    }

    /// Expected profit of mining a block of size `q` MB (block rewards).
    pub fn expected_profit(&self, q: f64) -> f64 {
        (self.reward + self.fee_per_mb * q) * (1.0 - self.orphan_probability(q)) - self.cost
    }

    /// The revenue-optimal block size `Q* = C·T − R/f`, clamped at zero.
    pub fn optimal_size(&self) -> f64 {
        (self.bandwidth - self.reward / self.fee_per_mb).max(0.0)
    }

    /// The maximum profitable block size: the largest `q ≥ Q*` with
    /// `expected_profit(q) ≥ 0`, found by bisection. Returns `None` when
    /// the miner is unprofitable even at its optimum (it must leave the
    /// business regardless of the block size), and `f64::INFINITY` cannot
    /// occur because profit tends to `−cost < 0` for large `q` whenever
    /// `cost > 0`.
    ///
    /// # Panics
    /// Panics when `cost <= 0` (the MPB would be unbounded — every size is
    /// forever profitable).
    pub fn max_profitable_size(&self) -> Option<f64> {
        assert!(self.cost > 0.0, "a zero-cost miner has no finite MPB");
        let q_star = self.optimal_size();
        if self.expected_profit(q_star) < 0.0 {
            return None;
        }
        // Bracket: profit at q_star is >= 0; find hi with profit < 0.
        let mut lo = q_star;
        let mut hi = (q_star + 1.0) * 2.0;
        while self.expected_profit(hi) >= 0.0 {
            hi *= 2.0;
            assert!(hi < 1e12, "profit failed to decay; check parameters");
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.expected_profit(mid) >= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }
}

/// Derives the miner groups of a [`crate::BlockSizeIncreasingGame`] from
/// per-miner economics: each miner's MPB becomes the group's `mpb`.
/// Unprofitable miners (no MPB at any size) are dropped and the remaining
/// powers renormalized; miners with numerically equal MPBs are merged.
pub fn mpb_groups(miners: &[(MinerEconomics, f64)]) -> Vec<MinerGroup> {
    let mut entries: Vec<(f64, f64)> = miners
        .iter()
        .filter_map(|(econ, power)| econ.max_profitable_size().map(|mpb| (mpb, *power)))
        .collect();
    entries.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Merge groups with (nearly) identical MPBs.
    let mut merged: Vec<(f64, f64)> = Vec::new();
    for (mpb, power) in entries {
        match merged.last_mut() {
            Some((m, p)) if (*m - mpb).abs() < 1e-9 => *p += power,
            _ => merged.push((mpb, power)),
        }
    }
    let total: f64 = merged.iter().map(|(_, p)| p).sum();
    assert!(total > 0.0, "no profitable miners remain");
    merged.into_iter().map(|(mpb, power)| MinerGroup { mpb, power: power / total }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsig::BlockSizeIncreasingGame;

    fn econ(bandwidth: f64) -> MinerEconomics {
        MinerEconomics { reward: 1.0, fee_per_mb: 0.05, bandwidth, latency: 0.01, cost: 0.2 }
    }

    #[test]
    fn closed_form_matches_numeric_argmax() {
        let e = econ(100.0);
        let q_star = e.optimal_size();
        assert!((q_star - (100.0 - 20.0)).abs() < 1e-9);
        // Numeric sweep: no q beats q_star.
        let best = (0..2000)
            .map(|i| i as f64 * 0.1)
            .map(|q| e.expected_profit(q))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(e.expected_profit(q_star) >= best - 1e-9);
    }

    #[test]
    fn orphan_probability_increases_with_size() {
        let e = econ(50.0);
        assert!(e.orphan_probability(0.0) < e.orphan_probability(10.0));
        assert!(e.orphan_probability(10.0) < e.orphan_probability(100.0));
        assert!(e.orphan_probability(0.0) > 0.0, "latency alone orphans some blocks");
    }

    #[test]
    fn mpb_exists_and_brackets_optimum() {
        let e = econ(100.0);
        let mpb = e.max_profitable_size().expect("profitable miner");
        assert!(mpb > e.optimal_size());
        assert!(e.expected_profit(mpb) >= -1e-6);
        assert!(e.expected_profit(mpb + 1.0) < 0.0);
    }

    #[test]
    fn faster_miners_have_larger_mpb() {
        let slow = econ(30.0).max_profitable_size().unwrap();
        let fast = econ(300.0).max_profitable_size().unwrap();
        assert!(fast > slow);
    }

    #[test]
    fn unprofitable_miner_has_no_mpb() {
        let mut e = econ(50.0);
        e.cost = 2.0; // more than the max possible revenue
        assert_eq!(e.max_profitable_size(), None);
    }

    /// End-to-end: economics -> MPBs -> block size increasing game, both
    /// outcomes. With a 50% fast miner, forcing the slow miner out cascades
    /// (the medium miner cannot stop at the second round), so both weaker
    /// miners are squeezed. With a 40/40 medium/fast split, the medium
    /// miner rationally *protects* the slow one — voting yes would make it
    /// the next victim — and nobody exits.
    #[test]
    fn economics_drive_forced_exit() {
        // Cascade case: fast miner holds exactly half.
        let groups = mpb_groups(&[(econ(20.0), 0.2), (econ(100.0), 0.3), (econ(300.0), 0.5)]);
        assert_eq!(groups.len(), 3);
        let trace = BlockSizeIncreasingGame::new(groups).play();
        assert_eq!(trace.terminal, 2, "slow and medium both squeezed out");

        // Protection case: medium + slow jointly outweigh fast.
        let groups = mpb_groups(&[(econ(20.0), 0.2), (econ(100.0), 0.4), (econ(300.0), 0.4)]);
        let trace = BlockSizeIncreasingGame::new(groups).play();
        assert_eq!(trace.terminal, 0, "medium protects slow to avoid being next");
    }

    #[test]
    fn mpb_groups_drop_unprofitable_and_renormalize() {
        let mut broke = econ(50.0);
        broke.cost = 2.0;
        let groups = mpb_groups(&[(broke, 0.5), (econ(100.0), 0.25), (econ(300.0), 0.25)]);
        assert_eq!(groups.len(), 2);
        let total: f64 = groups.iter().map(|g| g.power).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no finite MPB")]
    fn zero_cost_is_rejected() {
        let mut e = econ(50.0);
        e.cost = 0.0;
        let _ = e.max_profitable_size();
    }
}
