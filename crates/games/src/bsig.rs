//! The **block size increasing game** (§5.2): when every miner has a
//! *maximum profitable block size* (MPB), do miners keep a common block
//! size — or do large miners raise it to force small miners out?
//!
//! Miner groups are ordered by increasing MPB. The game proceeds in rounds:
//! in round `j` the remaining groups `{j, …, n}` vote on raising the block
//! size to `MPB_{j+1}`, which would force group `j` out of business. The
//! vote passes when at least half of the remaining mining power votes yes;
//! the game terminates when more than half votes no. Survivors split the
//! rewards in proportion to power.
//!
//! The paper characterizes the termination state by **stable sets** (§5.2.3,
//! proved by backward induction): the suffix `{j, …, n}` is stable iff
//! `j = n`, or — with `{k, …, n}` the largest proper stable suffix —
//! the groups `j … k−1` jointly outweigh the groups `k … n` (so they can
//! block the vote), while `j+1 … k−1` do not (so removing `j` cascades all
//! the way to `k`). This module implements both the recursion and a
//! round-by-round playout with rational voting, and the crate's tests check
//! they always agree (Analytical Result 5).

/// One miner group: its maximum profitable block size and its power share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinerGroup {
    /// Maximum profitable block size (any unit; only the ordering matters).
    pub mpb: f64,
    /// Mining power share.
    pub power: f64,
}

/// One round of the playout.
#[derive(Debug, Clone, PartialEq)]
pub struct Round {
    /// Index (0-based) of the group that would be forced out.
    pub leaving: usize,
    /// Vote of every *remaining* group (`true` = raise the block size),
    /// indexed by group.
    pub votes: Vec<(usize, bool)>,
    /// Whether the motion passed.
    pub passed: bool,
}

/// A full playout: the rounds and the index of the first surviving group.
#[derive(Debug, Clone, PartialEq)]
pub struct GameTrace {
    /// The rounds played, in order.
    pub rounds: Vec<Round>,
    /// Index of the first group in the terminal (surviving) suffix.
    pub terminal: usize,
}

/// The block size increasing game.
#[derive(Debug, Clone)]
pub struct BlockSizeIncreasingGame {
    groups: Vec<MinerGroup>,
    /// Fraction of remaining power required to pass a raise. The paper's
    /// BU game uses 0.5 ("at least half"); the §6.3 countermeasure's
    /// 75%-for / ≤10%-against rule is equivalent to 0.9.
    pass_threshold: f64,
}

impl BlockSizeIncreasingGame {
    /// Creates the game from groups with *distinct* MPBs and positive power
    /// summing to one. Groups are sorted by MPB internally.
    pub fn new(groups: Vec<MinerGroup>) -> Self {
        Self::with_threshold(groups, 0.5)
    }

    /// Like [`BlockSizeIncreasingGame::new`] but with a custom pass
    /// threshold: a raise passes when the yes-voting power is at least
    /// `pass_threshold` of the remaining power. Values above 0.5 model
    /// supermajority rules such as the §6.3 countermeasure, where a raise
    /// needs ≥ 75% support *and* ≤ 10% opposition — equivalent to a 0.9
    /// threshold when every miner votes.
    pub fn with_threshold(mut groups: Vec<MinerGroup>, pass_threshold: f64) -> Self {
        assert!(!groups.is_empty(), "need at least one group");
        assert!(groups.iter().all(|g| g.power > 0.0), "powers must be positive");
        let sum: f64 = groups.iter().map(|g| g.power).sum();
        assert!((sum - 1.0).abs() < 1e-9, "powers must sum to 1, got {sum}");
        assert!((0.0..=1.0).contains(&pass_threshold), "pass threshold must be a fraction");
        assert!(groups.iter().all(|g| g.mpb.is_finite()), "MPBs must be finite");
        groups.sort_by(|a, b| a.mpb.total_cmp(&b.mpb));
        for w in groups.windows(2) {
            assert!(w[0].mpb < w[1].mpb, "MPBs must be distinct");
        }
        BlockSizeIncreasingGame { groups, pass_threshold }
    }

    /// The groups, sorted by MPB.
    pub fn groups(&self) -> &[MinerGroup] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the game has just one group.
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees at least one group
    }

    fn power_range(&self, lo: usize, hi: usize) -> f64 {
        self.groups[lo..hi].iter().map(|g| g.power).sum()
    }

    /// `stable[j]` — whether the suffix `{j, …, n−1}` is a stable set
    /// (0-based indices; `stable[n−1]` is always true).
    pub fn stable_suffixes(&self) -> Vec<bool> {
        let n = self.groups.len();
        let mut stable = vec![false; n];
        stable[n - 1] = true;
        let mut k = n - 1; // smallest known stable suffix start above j
        for j in (0..n - 1).rev() {
            // Groups j..k-1 block the cascade iff the raisers k..n-1 fall
            // short of the pass threshold of the remaining power.
            let blockers = self.power_range(j, k);
            let raisers = self.power_range(k, n);
            if raisers < self.pass_threshold * (blockers + raisers) {
                stable[j] = true;
                k = j;
            }
        }
        stable
    }

    /// Index of the first group of the terminal suffix: the smallest `j`
    /// with `{j, …}` stable (the paper's termination-state theorem).
    pub fn terminal_set(&self) -> usize {
        // The last suffix is always stable, so the fallback is unreachable.
        self.stable_suffixes().iter().position(|&s| s).unwrap_or(self.groups.len() - 1)
    }

    /// [`BlockSizeIncreasingGame::stable_suffixes`] under a **committed
    /// coalition**: every group with `committed[i]` true votes yes on any
    /// raise that does not remove group `i` itself, even when the cascade
    /// it triggers would force `i` out later — a block-size cartel. The
    /// remaining groups vote rationally *given* those commitments. With no
    /// commitments this reduces exactly to the base induction.
    pub fn stable_suffixes_committed(&self, committed: &[bool]) -> Vec<bool> {
        let n = self.groups.len();
        assert_eq!(committed.len(), n, "one commitment flag per group");
        let mut stable = vec![false; n];
        stable[n - 1] = true;
        let mut k = n - 1; // smallest known stable suffix start above j
        for j in (0..n.saturating_sub(1)).rev() {
            // Yes-voters on removing group j: the cascade survivors k..n
            // plus the committed groups among the doomed middle j+1..k
            // (group j itself never votes for its own exit).
            let yes: f64 =
                (j + 1..n).filter(|&i| i >= k || committed[i]).map(|i| self.groups[i].power).sum();
            let total = self.power_range(j, n);
            if yes < self.pass_threshold * total {
                stable[j] = true;
                k = j;
            }
        }
        stable
    }

    /// The terminal suffix start under a committed coalition (see
    /// [`BlockSizeIncreasingGame::stable_suffixes_committed`]).
    pub fn terminal_committed(&self, committed: &[bool]) -> usize {
        self.stable_suffixes_committed(committed)
            .iter()
            .position(|&s| s)
            .unwrap_or(self.groups.len() - 1)
    }

    /// Plays the game round by round with fully rational voters (each group
    /// votes yes iff it survives the cascade the removal would trigger).
    pub fn play(&self) -> GameTrace {
        let n = self.groups.len();
        let stable = self.stable_suffixes();
        let mut rounds = Vec::new();
        let mut j = 0; // current suffix start
                       // Every round up to and including the terminal *failing* vote is
                       // recorded — Figure 4 shows the final round explicitly.
        while j < n - 1 {
            // Cascade target if group j is removed: next stable suffix
            // (the last suffix is always stable, so the fallback is
            // unreachable).
            let k = (j + 1..n).find(|&i| stable[i]).unwrap_or(n - 1);
            let votes: Vec<(usize, bool)> = (j..n).map(|i| (i, i >= k)).collect();
            let yes: f64 =
                votes.iter().filter(|&&(_, v)| v).map(|&(i, _)| self.groups[i].power).sum();
            let no: f64 =
                votes.iter().filter(|&&(_, v)| !v).map(|&(i, _)| self.groups[i].power).sum();
            let passed = yes >= self.pass_threshold * (yes + no);
            rounds.push(Round { leaving: j, votes, passed });
            if !passed {
                break;
            }
            j += 1;
        }
        GameTrace { rounds, terminal: j }
    }

    /// The utility of every group: survivors split 1 proportionally to
    /// power, forced-out groups get 0 (§5.2.1).
    pub fn utilities(&self) -> Vec<f64> {
        let t = self.play().terminal;
        let mass = self.power_range(t, self.groups.len());
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| if i >= t { g.power / mass } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game(powers: &[f64]) -> BlockSizeIncreasingGame {
        BlockSizeIncreasingGame::new(
            powers
                .iter()
                .enumerate()
                .map(|(i, &power)| MinerGroup { mpb: (i + 1) as f64, power })
                .collect(),
        )
    }

    /// Figure 4: powers 10/20/30/40. Round 1 passes (groups 2, 3, 4 vote
    /// yes), round 2 fails (groups 2, 3 vote no, because if group 2 left,
    /// group 4 could force group 3 out). Terminal set {2, 3, 4}.
    #[test]
    fn figure4_example() {
        let g = game(&[0.1, 0.2, 0.3, 0.4]);
        let trace = g.play();
        assert_eq!(trace.terminal, 1); // 0-based: groups 1, 2, 3 survive
        assert_eq!(trace.rounds.len(), 2);
        assert!(trace.rounds[0].passed);
        assert_eq!(trace.rounds[0].votes, vec![(0, false), (1, true), (2, true), (3, true)]);
        assert!(!trace.rounds[1].passed);
        assert_eq!(trace.rounds[1].votes, vec![(1, false), (2, false), (3, true)]);
        let u = g.utilities();
        assert_eq!(u[0], 0.0);
        assert!((u[1] - 0.2 / 0.9).abs() < 1e-12);
        assert!((u[3] - 0.4 / 0.9).abs() < 1e-12);
    }

    /// The example from §5.2.2: m1 = m2 = 0.3, m3 = 0.4. If group 2 voted
    /// yes in round 1, group 3 would then force it out; so groups 1 and 2
    /// block round 1 and the game terminates immediately with everyone in.
    #[test]
    fn rationality_example_three_groups() {
        let g = game(&[0.3, 0.3, 0.4]);
        assert_eq!(g.terminal_set(), 0);
        let trace = g.play();
        assert!(trace.rounds.is_empty() || !trace.rounds[0].passed);
        assert_eq!(trace.terminal, 0);
    }

    #[test]
    fn single_group_is_trivially_stable() {
        let g = game(&[1.0]);
        assert_eq!(g.terminal_set(), 0);
        assert!(g.play().rounds.is_empty());
        assert_eq!(g.utilities(), vec![1.0]);
    }

    /// A dominant large-MPB group sweeps everyone out.
    #[test]
    fn dominant_group_forces_everyone_out() {
        let g = game(&[0.1, 0.15, 0.75]);
        assert_eq!(g.terminal_set(), 2);
        let u = g.utilities();
        assert_eq!(u, vec![0.0, 0.0, 1.0]);
    }

    /// Equal halves: the last two groups. With {n-1} as the largest proper
    /// stable suffix of {n-2, n-1}, the vote ties (0.5 vs 0.5) and at least
    /// half suffices -> passes: the smaller-MPB group is forced out.
    #[test]
    fn equal_split_tie_passes() {
        let g = game(&[0.5, 0.5]);
        assert_eq!(g.terminal_set(), 1);
    }

    /// Under the §6.3 countermeasure's effective 0.9 supermajority
    /// threshold, the Figure-4 distribution keeps everyone in: the 10%
    /// group alone vetoes the raise that BU's 0.5 threshold passes.
    #[test]
    fn supermajority_threshold_protects_small_miners() {
        // 11/19/30/40: the smallest group holds strictly more than the 10%
        // veto quota (a group at exactly 10% sits on the "at most 10%
        // against" boundary and the raise still passes).
        let groups: Vec<MinerGroup> = [0.11, 0.19, 0.3, 0.4]
            .iter()
            .enumerate()
            .map(|(i, &power)| MinerGroup { mpb: (i + 1) as f64, power })
            .collect();
        let bu = BlockSizeIncreasingGame::new(groups.clone());
        assert_eq!(bu.terminal_set(), 1, "BU's majority rule forces group 1 out");
        let cm = BlockSizeIncreasingGame::with_threshold(groups.clone(), 0.9);
        assert_eq!(cm.terminal_set(), 0, "a >10% group vetoes under the countermeasure");
        let trace = cm.play();
        assert!(!trace.rounds.is_empty());
        assert!(!trace.rounds[0].passed);
        // Only a coalition controlling >= 90% can still force exits: a 5%
        // fringe group is not protected even by the supermajority.
        let fringe: Vec<MinerGroup> = [0.05, 0.3, 0.3, 0.35]
            .iter()
            .enumerate()
            .map(|(i, &power)| MinerGroup { mpb: (i + 1) as f64, power })
            .collect();
        let cm = BlockSizeIncreasingGame::with_threshold(fringe, 0.9);
        assert_eq!(cm.terminal_set(), 1, "95% >= 90%: the 5% group is still exposed");
    }

    /// Raising the threshold never hurts a group: terminal sets shrink
    /// (weakly) toward 0 as the threshold grows.
    #[test]
    fn terminal_set_monotone_in_threshold() {
        let groups: Vec<MinerGroup> = [0.05, 0.1, 0.2, 0.25, 0.4]
            .iter()
            .enumerate()
            .map(|(i, &power)| MinerGroup { mpb: (i + 1) as f64, power })
            .collect();
        let mut last = usize::MAX;
        for tau in [0.5, 0.6, 0.75, 0.9, 1.0] {
            let t = BlockSizeIncreasingGame::with_threshold(groups.clone(), tau).terminal_set();
            assert!(t <= last, "tau {tau}: terminal {t} > previous {last}");
            last = t;
        }
    }

    /// Committed coalitions on the Figure 4 distribution: an empty
    /// coalition reduces to the base game; committing the 30% group is
    /// kamikaze (the cascade it enables runs past itself, terminal 1 → 3);
    /// committing a group already at or above the terminal changes nothing.
    #[test]
    fn committed_coalitions_shift_the_terminal() {
        let g = game(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(g.stable_suffixes_committed(&[false; 4]), g.stable_suffixes());
        assert_eq!(g.terminal_committed(&[false; 4]), 1);
        // Group 2 (30%) commits: rounds 2 and 3 now pass, everyone but the
        // 40% group — the committed member included — is forced out.
        assert_eq!(g.terminal_committed(&[false, false, true, false]), 3);
        // Groups at the base terminal or above add nothing new.
        assert_eq!(g.terminal_committed(&[false, true, false, false]), 1);
        assert_eq!(g.terminal_committed(&[false, false, false, true]), 1);
        // A full cartel drives the game to the last group.
        assert_eq!(g.terminal_committed(&[true; 4]), 3);
    }

    /// The termination-state theorem agrees with the playout by
    /// construction; spot-check that stable_suffixes is internally
    /// consistent with its definition on a nontrivial instance.
    #[test]
    fn stable_suffix_definition_holds() {
        let g = game(&[0.05, 0.1, 0.2, 0.25, 0.4]);
        let stable = g.stable_suffixes();
        let n = g.len();
        assert!(stable[n - 1]);
        for j in 0..n - 1 {
            let k = (j + 1..n).find(|&i| stable[i]).unwrap();
            let blockers: f64 = g.groups()[j..k].iter().map(|x| x.power).sum();
            let raisers: f64 = g.groups()[k..n].iter().map(|x| x.power).sum();
            assert_eq!(stable[j], raisers < 0.5 * (blockers + raisers), "suffix {j}");
        }
    }
}
