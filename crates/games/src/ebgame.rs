//! The **EB choosing game** (§5.1): under the assumption that any EB value
//! is equally profitable, do miners converge on a common EB?
//!
//! `n` miners with positive power shares each choose one of two EB values.
//! The side holding the larger total power wins: its members split the
//! mining rewards in proportion to their power; the losing side earns
//! nothing; an exact power tie is "a bad situation for all miners" and pays
//! everyone zero. The paper's Analytical Result 4: the Nash equilibria are
//! exactly the unanimous profiles (when every miner is below 50%), which is
//! why the paper's April-2017 snapshot — everyone at `EB = 1 MB` — was
//! stable, and why the equilibrium says nothing about *which* EB emerges.

/// Numeric guard for exact power ties.
const TIE_EPS: f64 = 1e-12;

/// Default miner-count cap for [`EbChoosingGame::enumerate_equilibria`]
/// (2^n profiles are visited; 20 keeps a call under ~a million checks).
pub const ENUM_CAP: usize = 20;

/// Default miner-count cap for
/// [`EbChoosingGame::minimal_flipping_coalition`] (2^n coalitions, each
/// with a best-response playout).
pub const COALITION_CAP: usize = 16;

/// An exhaustive analysis was refused because it would be exponential in
/// the miner count: `2^miners` exceeds what the `cap` allows. Callers
/// decide whether to fall back to an analytic shortcut, a bounded search,
/// or an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooManyMiners {
    /// Number of miners in the game.
    pub miners: usize,
    /// The cap the analysis was invoked with.
    pub cap: usize,
}

impl std::fmt::Display for TooManyMiners {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exhaustive analysis over 2^{} profiles refused: {} miners exceeds the cap of {}",
            self.miners, self.miners, self.cap
        )
    }
}

impl std::error::Error for TooManyMiners {}

/// The EB choosing game: miners' power shares (positive, summing to 1).
#[derive(Debug, Clone)]
pub struct EbChoosingGame {
    powers: Vec<f64>,
}

/// A pure strategy profile: `choice[i]` is miner `i`'s EB pick (0 or 1).
pub type Profile = Vec<u8>;

/// Where best-response dynamics settle after a perturbation of a unanimous
/// profile (see [`EbChoosingGame::perturb_and_converge`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The network returned to the original EB.
    Restored,
    /// The whole network flipped to the perturbers' EB.
    Flipped,
    /// The dynamics reached a non-unanimous equilibrium (cannot happen
    /// with every miner below 50%; listed for completeness).
    Split,
    /// The dynamics cycled without settling.
    NoConvergence,
}

impl EbChoosingGame {
    /// Creates the game.
    ///
    /// # Panics
    /// Panics if any share is non-positive or the shares do not sum to 1.
    pub fn new(powers: Vec<f64>) -> Self {
        assert!(!powers.is_empty(), "need at least one miner");
        assert!(powers.iter().all(|&m| m > 0.0), "shares must be positive");
        let sum: f64 = powers.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares must sum to 1, got {sum}");
        EbChoosingGame { powers }
    }

    /// Number of miners.
    pub fn num_miners(&self) -> usize {
        self.powers.len()
    }

    /// The miners' power shares.
    pub fn powers(&self) -> &[f64] {
        &self.powers
    }

    /// Total power choosing each EB value under `profile`.
    pub fn masses(&self, profile: &Profile) -> (f64, f64) {
        let mut m = [0.0f64; 2];
        for (i, &c) in profile.iter().enumerate() {
            m[usize::from(c)] += self.powers[i];
        }
        (m[0], m[1])
    }

    /// The utility of every miner under `profile` (Sect. 5.1.1): winners
    /// split 1 in proportion to power, losers and tied profiles get 0.
    pub fn utilities(&self, profile: &Profile) -> Vec<f64> {
        assert_eq!(profile.len(), self.powers.len());
        let (m0, m1) = self.masses(profile);
        if (m0 - m1).abs() < TIE_EPS {
            return vec![0.0; self.powers.len()];
        }
        let winner: u8 = if m0 > m1 { 0 } else { 1 };
        let mass = if winner == 0 { m0 } else { m1 };
        profile
            .iter()
            .enumerate()
            .map(|(i, &c)| if c == winner { self.powers[i] / mass } else { 0.0 })
            .collect()
    }

    /// Miner `i`'s best response to the others' choices: the EB value that
    /// maximizes `i`'s utility (ties keep the current choice).
    pub fn best_response(&self, i: usize, profile: &Profile) -> u8 {
        let mut alt = profile.clone();
        alt[i] = 1 - profile[i];
        let here = self.utilities(profile)[i];
        let there = self.utilities(&alt)[i];
        if there > here {
            alt[i]
        } else {
            profile[i]
        }
    }

    /// Whether `profile` is a pure Nash equilibrium.
    pub fn is_nash(&self, profile: &Profile) -> bool {
        (0..self.powers.len()).all(|i| self.best_response(i, profile) == profile[i])
    }

    /// Exhaustively enumerates all pure Nash equilibria, refusing games
    /// above [`ENUM_CAP`] miners (the search visits `2^n` profiles).
    pub fn enumerate_equilibria(&self) -> Result<Vec<Profile>, TooManyMiners> {
        self.enumerate_equilibria_capped(ENUM_CAP)
    }

    /// Like [`EbChoosingGame::enumerate_equilibria`] with an explicit
    /// miner-count cap — front ends bound per-request work with it.
    pub fn enumerate_equilibria_capped(&self, cap: usize) -> Result<Vec<Profile>, TooManyMiners> {
        let n = self.powers.len();
        if n > cap.min(62) {
            return Err(TooManyMiners { miners: n, cap: cap.min(62) });
        }
        let mut out = Vec::new();
        for bits in 0u64..(1 << n) {
            let profile: Profile = (0..n).map(|i| ((bits >> i) & 1) as u8).collect();
            if self.is_nash(&profile) {
                out.push(profile);
            }
        }
        Ok(out)
    }

    /// Perturbs the all-zeros unanimity by flipping the miners in `flipped`
    /// to EB 1, runs best-response dynamics, and reports where the system
    /// settles. Used by the fragility analysis (§6.2: the emergent
    /// consensus "is easily disrupted even when it holds").
    pub fn perturb_and_converge(&self, flipped: &[usize]) -> Outcome {
        let mut profile: Profile = vec![0; self.powers.len()];
        for &i in flipped {
            profile[i] = 1;
        }
        let (end, nash) = self.best_response_dynamics(profile, 100);
        if !nash {
            return Outcome::NoConvergence;
        }
        if end.iter().all(|&c| c == 0) {
            Outcome::Restored
        } else if end.iter().all(|&c| c == 1) {
            Outcome::Flipped
        } else {
            Outcome::Split
        }
    }

    /// The size of the smallest coalition whose joint EB deviation flips
    /// the entire network to the new value (by exhaustive subset search,
    /// refused above [`COALITION_CAP`] miners). This is the paper's
    /// fragility made concrete: with 2017-style pool concentration, a
    /// handful of pools suffice.
    pub fn minimal_flipping_coalition(&self) -> Result<Option<usize>, TooManyMiners> {
        self.minimal_flipping_coalition_capped(COALITION_CAP)
    }

    /// Like [`EbChoosingGame::minimal_flipping_coalition`] with an explicit
    /// miner-count cap on the exponential subset search.
    pub fn minimal_flipping_coalition_capped(
        &self,
        cap: usize,
    ) -> Result<Option<usize>, TooManyMiners> {
        let n = self.powers.len();
        if n > cap.min(62) {
            return Err(TooManyMiners { miners: n, cap: cap.min(62) });
        }
        let mut best: Option<usize> = None;
        for mask in 1u64..(1 << n) {
            let size = mask.count_ones() as usize;
            if best.is_some_and(|b| size >= b) {
                continue;
            }
            let flipped: Vec<usize> = (0..n).filter(|i| (mask >> i) & 1 == 1).collect();
            if self.perturb_and_converge(&flipped) == Outcome::Flipped {
                best = Some(size);
            }
        }
        Ok(best)
    }

    /// A deterministic greedy *upper bound* on the minimal flipping
    /// coalition for games too large for the exhaustive search: flip the
    /// `k` most powerful miners for growing `k` until the network follows.
    /// Returns the flipped miner indices, or `None` if even flipping
    /// everyone but one miner fails to move the consensus.
    pub fn greedy_flipping_coalition(&self) -> Option<Vec<usize>> {
        let n = self.powers.len();
        let mut by_power: Vec<usize> = (0..n).collect();
        // Stable order on exact power ties: lower index first.
        by_power.sort_by(|&a, &b| self.powers[b].total_cmp(&self.powers[a]).then(a.cmp(&b)));
        for k in 1..n {
            let flipped = &by_power[..k];
            if self.perturb_and_converge(flipped) == Outcome::Flipped {
                let mut coalition = flipped.to_vec();
                coalition.sort_unstable();
                return Some(coalition);
            }
        }
        None
    }

    /// Runs best-response dynamics from `start` until a fixed point or the
    /// sweep budget runs out; returns the final profile and whether it is a
    /// Nash equilibrium.
    pub fn best_response_dynamics(&self, start: Profile, max_sweeps: usize) -> (Profile, bool) {
        let mut profile = start;
        for _ in 0..max_sweeps {
            let mut changed = false;
            for i in 0..self.powers.len() {
                let br = self.best_response(i, &profile);
                if br != profile[i] {
                    profile[i] = br;
                    changed = true;
                }
            }
            if !changed {
                return (profile.clone(), self.is_nash(&profile));
            }
        }
        let nash = self.is_nash(&profile);
        (profile, nash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game(shares: &[f64]) -> EbChoosingGame {
        EbChoosingGame::new(shares.to_vec())
    }

    #[test]
    fn unanimity_pays_proportionally() {
        let g = game(&[0.2, 0.3, 0.5]);
        let u = g.utilities(&vec![0, 0, 0]);
        assert_eq!(u, vec![0.2, 0.3, 0.5]);
    }

    #[test]
    fn losers_get_nothing() {
        let g = game(&[0.2, 0.3, 0.5]);
        // Miner 2 (50%) alone vs the 0.5 coalition: exact tie -> all zero.
        let u = g.utilities(&vec![0, 0, 1]);
        assert_eq!(u, vec![0.0, 0.0, 0.0]);
        // Miner 0 alone loses to the 0.8 coalition.
        let u = g.utilities(&vec![1, 0, 0]);
        assert_eq!(u[0], 0.0);
        assert!((u[1] - 0.3 / 0.8).abs() < 1e-12);
        assert!((u[2] - 0.5 / 0.8).abs() < 1e-12);
    }

    /// Analytical Result 4: with every miner below 50%, the pure Nash
    /// equilibria are exactly the two unanimous profiles.
    #[test]
    fn equilibria_are_exactly_unanimity() {
        let g = game(&[0.1, 0.15, 0.3, 0.45]);
        let mut eq = g.enumerate_equilibria().unwrap();
        eq.sort();
        assert_eq!(eq, vec![vec![0, 0, 0, 0], vec![1, 1, 1, 1]]);
    }

    /// The paper's NE proof needs every miner below 50%. With a strict
    /// majority miner the game has *no* pure equilibrium at all: the
    /// majority miner always profits from defecting to win alone (utility
    /// 1 > its share), and every loser profits from rejoining the majority —
    /// an endless cycle.
    #[test]
    fn majority_miner_destroys_all_equilibria() {
        let g = game(&[0.6, 0.25, 0.15]);
        assert!(g.enumerate_equilibria().unwrap().is_empty());
        // Unanimity specifically is not a NE: the 60% miner defects.
        assert!(!g.is_nash(&vec![0, 0, 0]));
        assert_eq!(g.best_response(0, &vec![0, 0, 0]), 1);
    }

    #[test]
    fn best_response_joins_winning_side() {
        let g = game(&[0.2, 0.3, 0.5]);
        assert_eq!(g.best_response(0, &vec![1, 0, 0]), 0);
        // A winner stays.
        assert_eq!(g.best_response(2, &vec![0, 0, 0]), 0);
    }

    #[test]
    fn dynamics_converge_to_unanimity() {
        let g = game(&[0.1, 0.2, 0.3, 0.4]);
        let (profile, nash) = g.best_response_dynamics(vec![0, 1, 0, 1], 100);
        assert!(nash);
        assert!(profile.iter().all(|&c| c == profile[0]), "profile {profile:?}");
    }

    #[test]
    #[should_panic(expected = "shares must sum to 1")]
    fn rejects_bad_shares() {
        game(&[0.5, 0.1]);
    }

    /// Fragility: flipping a sub-majority coalition is restored; flipping a
    /// majority coalition drags the whole network to the new EB.
    #[test]
    fn perturbations_resolve_by_power_majority() {
        let g = game(&[0.1, 0.2, 0.3, 0.4]);
        // 0.1 + 0.2 = 30% < 50%: restored.
        assert_eq!(g.perturb_and_converge(&[0, 1]), Outcome::Restored);
        // 0.3 + 0.4 = 70% > 50%: everyone flips.
        assert_eq!(g.perturb_and_converge(&[2, 3]), Outcome::Flipped);
        // Single 40% miner: restored.
        assert_eq!(g.perturb_and_converge(&[3]), Outcome::Restored);
    }

    /// The minimal flipping coalition is the smallest set of miners with
    /// joint power above one half.
    #[test]
    fn minimal_flipping_coalition_matches_majority() {
        let g = game(&[0.1, 0.2, 0.3, 0.4]);
        // {2, 3} holds 70%: two miners suffice; no single miner does
        // (each defector returns before anyone has an incentive to follow).
        assert_eq!(g.minimal_flipping_coalition(), Ok(Some(2)));
        // With a near-majority miner the consensus is even more brittle:
        // the 49% miner itself cannot flip the network (it returns,
        // restoring unanimity)...
        let g = game(&[0.49, 0.17, 0.17, 0.17]);
        assert_eq!(g.perturb_and_converge(&[0]), Outcome::Restored);
        // ...but a single 17% defector can! The 49% miner prefers the
        // *smaller* winning coalition (0.49/0.66 of the rewards instead of
        // 0.49/0.83) and joins the defector; the remaining miners follow.
        // (With the deterministic sweep order, the cascade locks in when
        // another small miner moves before the defector reconsiders —
        // miner 2's defection flips the network.) The "emergent consensus"
        // is one small miner's whim away from a network-wide EB change.
        assert_eq!(g.perturb_and_converge(&[2]), Outcome::Flipped);
        assert_eq!(g.minimal_flipping_coalition(), Ok(Some(1)));
    }

    /// On the 2017-style pool distribution, four pools can flip the
    /// network's EB — the fragility behind §6.2.
    #[test]
    fn pool_concentration_fragility() {
        let g = game(&[0.17, 0.13, 0.10, 0.10, 0.08, 0.07, 0.06, 0.29]);
        let k = g.minimal_flipping_coalition().unwrap().unwrap();
        assert!(k <= 3, "with a 29% aggregate group, 3 parties suffice, got {k}");
    }

    /// Past the cap, the exhaustive analyses return a structured error
    /// instead of attempting 2^n work (the old behaviour was an assert).
    #[test]
    fn exhaustive_analyses_refuse_past_the_cap() {
        let n = 24;
        let g = game(&vec![1.0 / n as f64; n]);
        assert_eq!(g.enumerate_equilibria(), Err(TooManyMiners { miners: n, cap: ENUM_CAP }));
        assert_eq!(
            g.minimal_flipping_coalition(),
            Err(TooManyMiners { miners: n, cap: COALITION_CAP })
        );
        // An explicit cap tightens the bound further.
        let small = game(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(small.enumerate_equilibria_capped(3), Err(TooManyMiners { miners: 4, cap: 3 }));
        assert!(small.enumerate_equilibria_capped(4).is_ok());
    }

    /// The greedy bound agrees with the exhaustive search when the most
    /// powerful miners form a minimal coalition, and always flips when it
    /// returns a coalition.
    #[test]
    fn greedy_coalition_is_a_valid_upper_bound() {
        let g = game(&[0.1, 0.2, 0.3, 0.4]);
        let coalition = g.greedy_flipping_coalition().unwrap();
        assert_eq!(coalition, vec![2, 3]);
        assert_eq!(g.perturb_and_converge(&coalition), Outcome::Flipped);
        // 40 equal miners: far beyond the exhaustive cap, the greedy bound
        // still terminates and flips with a bare majority.
        let n = 40;
        let g = game(&vec![1.0 / n as f64; n]);
        let coalition = g.greedy_flipping_coalition().unwrap();
        assert_eq!(g.perturb_and_converge(&coalition), Outcome::Flipped);
        assert!(coalition.len() <= n / 2 + 1);
    }
}
