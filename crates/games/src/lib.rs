//! # bvc-games — emergent-consensus games for Bitcoin Unlimited
//!
//! Game-theoretic models of §5 of Zhang & Preneel (CoNEXT 2017), answering
//! *"when will emergent consensus emerge?"*:
//!
//! * [`EbChoosingGame`] (§5.1) — when any EB is equally profitable, the pure
//!   Nash equilibria are exactly the unanimous profiles (Analytical Result
//!   4): consensus *can* hold, but nothing prescribes which value.
//! * [`BlockSizeIncreasingGame`] (§5.2) — when each miner group has a
//!   maximum profitable block size, large miners rationally raise the block
//!   size to force small miners out; the game terminates exactly at the
//!   first **stable set** (Analytical Result 5, Figure 4).
//!
//! ## Example: Figure 4
//!
//! ```
//! use bvc_games::{BlockSizeIncreasingGame, MinerGroup};
//!
//! let game = BlockSizeIncreasingGame::new(vec![
//!     MinerGroup { mpb: 1.0, power: 0.1 },
//!     MinerGroup { mpb: 2.0, power: 0.2 },
//!     MinerGroup { mpb: 4.0, power: 0.3 },
//!     MinerGroup { mpb: 8.0, power: 0.4 },
//! ]);
//! let trace = game.play();
//! assert_eq!(trace.terminal, 1);          // group 1 is forced out...
//! assert_eq!(trace.rounds.len(), 2);      // ...then groups 2 and 3 block.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bsig;
pub mod ebgame;
pub mod fee_market;

pub use bsig::{BlockSizeIncreasingGame, GameTrace, MinerGroup, Round};
pub use ebgame::{EbChoosingGame, Outcome, Profile, TooManyMiners, COALITION_CAP, ENUM_CAP};
pub use fee_market::{mpb_groups, MinerEconomics};
