//! Crash-recovery and chaos-injection end-to-end tests:
//!
//! 1. a coordinator restarted over a crash-torn journal (complete prefix +
//!    torn tail) truncates the tail, replays the prefix, re-solves the
//!    rest, and finishes with a journal **byte-identical** to an
//!    uninterrupted run;
//! 2. a worker whose connection is killed mid-batch by a targeted chaos
//!    fault reconnects with seeded backoff, redelivers its unacked
//!    results (deduped by fingerprint), and the journal identity still
//!    holds;
//! 3. a torn journal append inside a run is rolled back to the previous
//!    line boundary and retried by the reorder cursor, preserving
//!    identity without restarting anything;
//! 4. the same chaos seed reproduces the same injected-fault schedule.
//!
//! The chaos controller is process-global, so every test serializes on
//! one lock and resets the plan on entry and exit.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use bvc_cluster::jobs::workload;
use bvc_cluster::{
    ClusterConfig, ClusterError, ClusterReport, Coordinator, ReconnectPolicy, WorkerOptions,
    WorkerSummary, Workload,
};
use bvc_repro::sweep::{run_jobs, SweepOptions};

/// Serializes tests: the chaos plan and its per-site hit counters are
/// process-global state.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    bvc_chaos::reset();
    guard
}

/// Unique scratch path per invocation (tests in one binary share a process).
fn tmp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bvc-chaos-rec-{tag}-{}-{n}.jsonl", std::process::id()))
}

fn stone() -> Workload {
    workload("stone-sim").expect("stone-sim is registered")
}

/// The reference journal: the exact bytes a local single-threaded sweep
/// writes for this workload. Computed with no chaos plan installed.
fn local_journal(wl: &Workload, tag: &str) -> Vec<u8> {
    let path = tmp_path(tag);
    let opts = SweepOptions {
        journal: Some(path.clone()),
        threads: Some(1),
        config_token: wl.config_token.clone(),
        ..SweepOptions::default()
    };
    let report = run_jobs(wl.label, &wl.jobs, &opts);
    assert_eq!(report.solved(), wl.jobs.len(), "{}", report.failure_legend());
    let bytes = std::fs::read(&path).expect("local journal written");
    std::fs::remove_file(&path).ok();
    bytes
}

/// What one cluster run yields: the coordinator's report, the journal
/// bytes, and each worker's summary.
type RunResult = (Result<ClusterReport, ClusterError>, Vec<u8>, Vec<Result<WorkerSummary, String>>);

/// Runs a coordinator over `wl` against `path` (pre-seeded or fresh) with
/// the given workers; returns the report, the journal bytes (file left in
/// place for the caller to delete) and each worker's summary.
fn cluster_run_at(wl: &Workload, path: &PathBuf, workers: Vec<WorkerOptions>) -> RunResult {
    let cfg = ClusterConfig {
        config_token: wl.config_token.clone(),
        journal: Some(path.clone()),
        lease: Duration::from_secs(30),
        quiet: true,
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg).expect("bind ephemeral");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let (result, summaries) = std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|opts| {
                let addr = addr.clone();
                scope.spawn(move || bvc_cluster::run_worker(&addr, &opts))
            })
            .collect();
        let result = coordinator.run(wl.label, &wl.jobs);
        (result, handles.into_iter().map(|h| h.join().expect("worker thread")).collect())
    });
    let bytes = std::fs::read(path).unwrap_or_default();
    (result, bytes, summaries)
}

/// Extracts one `name value` counter from the coordinator's stats text.
fn stat(stats: &str, name: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("stats missing {name}:\n{stats}"))
        .trim()
        .parse()
        .expect("counter is integral")
}

#[test]
fn coordinator_restart_over_torn_journal_is_byte_identical() {
    let _guard = lock();
    let wl = stone();
    let reference = local_journal(&wl, "restart-ref");
    let lines: Vec<&[u8]> = reference.split_inclusive(|&b| b == b'\n').collect();
    assert!(lines.len() >= 2, "stone-sim writes one line per cell");

    // Simulate a coordinator crashed mid-append: one complete line, then a
    // torn fragment of the next (no terminating newline).
    let path = tmp_path("restart");
    let mut seeded = lines[0].to_vec();
    seeded.extend_from_slice(&lines[1][..lines[1].len() / 2]);
    std::fs::write(&path, &seeded).expect("seed crashed journal");

    let (result, bytes, summaries) = cluster_run_at(&wl, &path, vec![WorkerOptions::default()]);
    std::fs::remove_file(&path).ok();
    let report = result.expect("restarted run completes");
    assert_eq!(
        bytes, reference,
        "journal after crash-restart must be byte-identical to an uninterrupted run"
    );
    let replayed = report.cells.iter().filter(|c| c.replayed).count();
    assert_eq!(replayed, 1, "exactly the intact prefix line is replayed");
    assert_eq!(stat(&report.stats, "cluster_cells_lost"), 0);
    let summary = summaries[0].as_ref().expect("worker finishes");
    assert_eq!(summary.solved as usize, wl.jobs.len() - 1, "torn + missing cells re-solve");
}

#[test]
fn worker_reconnects_and_redelivers_unacked_results() {
    let _guard = lock();
    let wl = stone();
    let reference = local_journal(&wl, "reconnect-ref");

    // Worker session 1 frames: hello(1), claim(2), done(3), done(4).
    // Killing tx op 4 loses the second result mid-batch: the worker must
    // reconnect, redeliver both pending results (the first is a dedupe on
    // the coordinator), and finish the rest on session 2.
    bvc_chaos::install_spec("seed=42,conn_drop_at=w1.s1.tx:4").expect("valid plan");
    let worker = WorkerOptions {
        site: "w1".into(),
        reconnect: ReconnectPolicy {
            attempts: 10,
            base: Duration::from_millis(10),
            max: Duration::from_millis(40),
            seed: 42,
        },
        ..WorkerOptions::default()
    };
    let path = tmp_path("reconnect");
    let (result, bytes, summaries) = cluster_run_at(&wl, &path, vec![worker]);
    std::fs::remove_file(&path).ok();
    let events = bvc_chaos::drain_events();
    bvc_chaos::reset();

    let report = result.expect("run completes despite the injected drop");
    assert_eq!(bytes, reference, "journal identity survives worker reconnect + redelivery");
    let summary = summaries[0].as_ref().expect("worker survives via reconnect");
    assert!(summary.sessions >= 2, "worker must have reconnected: {summary:?}");
    assert!(
        stat(&report.stats, "cluster_duplicate_results_total") >= 1,
        "redelivered first result dedupes:\n{}",
        report.stats
    );
    assert_eq!(stat(&report.stats, "cluster_cells_lost"), 0);
    assert!(
        events.iter().any(|e| e.starts_with("w1.s1.tx#4:")),
        "the injected drop fired at the planned site/op: {events:?}"
    );
}

#[test]
fn torn_journal_append_self_heals_within_the_run() {
    let _guard = lock();
    let wl = stone();
    let reference = local_journal(&wl, "torn-ref");

    // The coordinator's second journal append is torn mid-line. The
    // writer rolls the file back to the previous line boundary and the
    // reorder cursor parks until a later event retries the identical
    // bytes — no restart needed for identity.
    bvc_chaos::install_spec("seed=7,torn_write_at=journal.append:2").expect("valid plan");
    let path = tmp_path("torn-append");
    let (result, bytes, _) = cluster_run_at(&wl, &path, vec![WorkerOptions::default()]);
    std::fs::remove_file(&path).ok();
    bvc_chaos::reset();

    let report = result.expect("run completes despite the torn append");
    assert_eq!(bytes, reference, "rolled-back append must retry byte-identically");
    assert!(
        stat(&report.stats, "cluster_journal_retries_total") >= 1,
        "the torn append was detected and retried:\n{}",
        report.stats
    );
}

#[test]
fn same_seed_reproduces_the_same_fault_schedule() {
    let _guard = lock();
    let wl = stone();

    let mut schedules = Vec::new();
    let mut journals = Vec::new();
    for round in 0..2 {
        bvc_chaos::install_spec("seed=99,conn_drop_at=w1.s1.tx:4").expect("valid plan");
        let worker = WorkerOptions {
            site: "w1".into(),
            reconnect: ReconnectPolicy {
                attempts: 10,
                base: Duration::from_millis(10),
                max: Duration::from_millis(40),
                seed: 99,
            },
            ..WorkerOptions::default()
        };
        let path = tmp_path(&format!("sched-{round}"));
        let (result, bytes, _) = cluster_run_at(&wl, &path, vec![worker]);
        std::fs::remove_file(&path).ok();
        result.expect("run completes");
        let mut events = bvc_chaos::drain_events();
        bvc_chaos::reset();
        // Only injected faults are recorded; order across sites can vary
        // with thread interleaving, so compare the sorted schedule.
        events.sort();
        schedules.push(events);
        journals.push(bytes);
    }
    assert_eq!(schedules[0], schedules[1], "same seed, same failure schedule");
    assert_eq!(journals[0], journals[1], "same seed, same journal bytes");
    assert!(!schedules[0].is_empty(), "the plan injected at least one fault");
}
