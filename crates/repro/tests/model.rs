//! Exhaustive model checks of `parallel_map`'s dynamic claim cursor.
//!
//! Runs only under `RUSTFLAGS="--cfg bvc_check"`. Two workers race on the
//! shared claim cursor and abort flag; the checker explores every
//! interleaving up to the preemption bound and verifies:
//!
//! * **exactly once**: every input is mapped exactly one time and its
//!   result lands in its own slot (no duplicate or skipped claims);
//! * **panic propagation**: a worker panic re-raises the original
//!   payload in the caller and the abort flag stops the other worker
//!   without deadlocking the scope join.
#![cfg(bvc_check)]

use std::sync::atomic::Ordering;

use bvc_check::sync::{Arc, AtomicUsize};
use bvc_check::{explore, Config, Report};
use bvc_repro::parallel_map_with_threads;

fn model_config() -> Config {
    Config { max_preemptions: 2, ..Config::default() }
}

fn assert_exhaustive_pass(report: &Report, what: &str) {
    assert!(
        report.violation.is_none(),
        "{what}: unexpected violation:\n{}",
        report.violation.as_ref().unwrap()
    );
    assert!(report.exhaustive_pass(), "{what}: exploration was capped (not exhaustive)");
}

/// Three inputs, two workers: each input is claimed exactly once and the
/// output preserves input order regardless of interleaving.
#[test]
fn claim_cursor_maps_each_input_exactly_once() {
    let report = explore(&model_config(), || {
        let calls: Arc<Vec<AtomicUsize>> = Arc::new((0..3).map(|_| AtomicUsize::new(0)).collect());
        let c = Arc::clone(&calls);
        let out = parallel_map_with_threads(vec![0usize, 1, 2], 2, move |&i| {
            c[i].fetch_add(1, Ordering::SeqCst);
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20], "output order broken");
        for (i, n) in calls.iter().enumerate() {
            assert_eq!(n.load(Ordering::SeqCst), 1, "input {i} mapped a wrong number of times");
        }
    });
    assert_exhaustive_pass(&report, "exactly-once");
}

/// A panicking cell must re-raise its payload in the caller in every
/// interleaving — the abort flag may or may not save the other worker
/// work, but the scope join must never deadlock and the payload must
/// never be lost.
#[test]
fn worker_panic_always_propagates() {
    let report = explore(&model_config(), || {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with_threads(vec![0u64, 1], 2, |&x| {
                if x == 0 {
                    panic!("cell zero exploded");
                }
                x
            })
        });
        let payload = result.expect_err("panic must propagate to the caller");
        let payload = bvc_check::reraise_if_abort(payload);
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("cell zero exploded"), "payload lost: {msg:?}");
    });
    assert_exhaustive_pass(&report, "panic propagation");
}
