//! End-to-end tests for the distributed sweep subsystem (`bvc-cluster`):
//!
//! 1. a cluster run writes a journal **byte-identical** to a local
//!    single-threaded `run_sweep` over the same cells;
//! 2. killing a worker mid-batch (heartbeats stop, socket open) expires
//!    its lease, the cells are reassigned, and the final journal is still
//!    byte-identical to a clean local run;
//! 3. a worker that drops its socket triggers immediate EOF requeue with
//!    the same guarantee;
//! 4. duplicate completion frames are deduped by fingerprint (first result
//!    wins) and results for unknown fingerprints are counted and ignored;
//! 5. two *successful* results with different value bits for the same cell
//!    are a hard error (the journal must never silently pick one);
//! 6. a torn frame (length prefix promising more bytes than arrive) drops
//!    the connection and requeues its cells without corrupting the journal.
//!
//! The stone-sim workload drives the identity tests: three deterministic
//! Monte Carlo cells, no solver options involved, each cheap enough for a
//! debug-profile test run.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use bvc_cluster::jobs::workload;
use bvc_cluster::protocol::{DoneFrame, Frame, PROTO_VERSION};
use bvc_cluster::{
    CellFailure, ClusterConfig, ClusterError, ClusterReport, Coordinator, DieMode, WorkerOptions,
    Workload,
};
use bvc_repro::sweep::{run_jobs, SweepOptions};

/// Unique scratch path per invocation (tests in one binary share a process).
fn tmp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bvc-cluster-e2e-{tag}-{}-{n}.jsonl", std::process::id()))
}

fn stone() -> Workload {
    workload("stone-sim").expect("stone-sim is registered")
}

/// The reference journal: the exact bytes a local single-threaded sweep
/// writes for this workload.
fn local_journal(wl: &Workload, tag: &str) -> Vec<u8> {
    let path = tmp_path(tag);
    let opts = SweepOptions {
        journal: Some(path.clone()),
        threads: Some(1),
        config_token: wl.config_token.clone(),
        ..SweepOptions::default()
    };
    let report = run_jobs(wl.label, &wl.jobs, &opts);
    assert_eq!(report.solved(), wl.jobs.len(), "{}", report.failure_legend());
    let bytes = std::fs::read(&path).expect("local journal written");
    std::fs::remove_file(&path).ok();
    bytes
}

/// Runs a coordinator over `wl` with the given workers, each started after
/// its configured delay. Returns the report and the journal bytes.
fn cluster_run(
    wl: &Workload,
    tag: &str,
    lease: Duration,
    batch: u32,
    workers: &[(WorkerOptions, Duration)],
) -> (Result<ClusterReport, ClusterError>, Vec<u8>) {
    let path = tmp_path(tag);
    let cfg = ClusterConfig {
        config_token: wl.config_token.clone(),
        journal: Some(path.clone()),
        lease,
        batch,
        quiet: true,
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg).expect("bind ephemeral");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let result = std::thread::scope(|scope| {
        for (opts, delay) in workers {
            let addr = addr.clone();
            let delay = *delay;
            scope.spawn(move || {
                std::thread::sleep(delay);
                bvc_cluster::run_worker(&addr, opts)
            });
        }
        coordinator.run(wl.label, &wl.jobs)
    });
    let bytes = std::fs::read(&path).unwrap_or_default();
    std::fs::remove_file(&path).ok();
    (result, bytes)
}

/// Extracts one `name value` counter from the coordinator's stats text.
fn stat(stats: &str, name: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("stats missing {name}:\n{stats}"))
        .trim()
        .parse()
        .expect("counter is integral")
}

fn healthy(threads: u32) -> WorkerOptions {
    WorkerOptions { threads, ..WorkerOptions::default() }
}

#[test]
fn cluster_journal_byte_identical_to_local() {
    let wl = stone();
    let reference = local_journal(&wl, "ident-local");
    let (result, bytes) = cluster_run(
        &wl,
        "ident-cluster",
        Duration::from_secs(30),
        2,
        &[(healthy(1), Duration::ZERO)],
    );
    let report = result.expect("cluster run succeeds");
    assert_eq!(report.cells.iter().filter(|c| c.outcome.is_ok()).count(), wl.jobs.len());
    assert_eq!(
        bytes,
        reference,
        "cluster journal differs from local journal:\n--- cluster ---\n{}\n--- local ---\n{}",
        String::from_utf8_lossy(&bytes),
        String::from_utf8_lossy(&reference)
    );
}

#[test]
fn killed_worker_lease_expires_and_journal_is_byte_identical() {
    let wl = stone();
    let reference = local_journal(&wl, "kill-local");
    // Worker A claims two cells, solves one, then goes silent with the
    // socket open — only lease expiry can recover its second cell. Worker
    // B starts shortly after and carries the rest of the sweep.
    let dying =
        WorkerOptions { die_after: Some(1), die_mode: DieMode::Hang, ..WorkerOptions::default() };
    let (result, bytes) = cluster_run(
        &wl,
        "kill-cluster",
        Duration::from_millis(300),
        2,
        &[(dying, Duration::ZERO), (healthy(1), Duration::from_millis(150))],
    );
    let report = result.expect("cluster run survives the killed worker");
    assert_eq!(report.cells.iter().filter(|c| c.outcome.is_ok()).count(), wl.jobs.len());
    assert!(
        stat(&report.stats, "cluster_lease_expiries_total") >= 1,
        "expected at least one lease expiry:\n{}",
        report.stats
    );
    assert_eq!(bytes, reference, "journal diverged after lease-expiry reassignment");
}

#[test]
fn disconnected_worker_requeues_and_journal_is_byte_identical() {
    let wl = stone();
    let reference = local_journal(&wl, "eof-local");
    let dying = WorkerOptions {
        die_after: Some(1),
        die_mode: DieMode::Disconnect,
        ..WorkerOptions::default()
    };
    let (result, bytes) = cluster_run(
        &wl,
        "eof-cluster",
        Duration::from_secs(30),
        2,
        &[(dying, Duration::ZERO), (healthy(1), Duration::from_millis(150))],
    );
    let report = result.expect("cluster run survives the disconnect");
    assert_eq!(report.cells.iter().filter(|c| c.outcome.is_ok()).count(), wl.jobs.len());
    assert!(
        stat(&report.stats, "cluster_requeues_total") >= 1,
        "expected at least one EOF requeue:\n{}",
        report.stats
    );
    assert_eq!(bytes, reference, "journal diverged after EOF requeue");
}

// --- Raw protocol clients (misbehaving workers) ---------------------------

fn send_raw(stream: &mut TcpStream, payload: &str) {
    stream.write_all(&(payload.len() as u32).to_be_bytes()).expect("frame len");
    stream.write_all(payload.as_bytes()).expect("frame body");
}

fn recv_raw(stream: &mut TcpStream) -> Frame {
    use std::io::Read;
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("frame len");
    let mut buf = vec![0u8; u32::from_be_bytes(len) as usize];
    stream.read_exact(&mut buf).expect("frame body");
    Frame::decode(std::str::from_utf8(&buf).expect("utf8 frame")).expect("valid frame")
}

/// Connects, handshakes, and claims up to `max` cells. Returns the stream
/// and the granted tasks (fp, lease).
fn claim_cells(addr: &str, max: u32) -> (TcpStream, Vec<u64>, u64) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    send_raw(&mut stream, &Frame::Hello { proto: PROTO_VERSION, threads: 1 }.encode());
    let Frame::Config(_) = recv_raw(&mut stream) else { panic!("expected config") };
    send_raw(&mut stream, &Frame::Claim { max }.encode());
    let mut fps = Vec::new();
    let lease = loop {
        match recv_raw(&mut stream) {
            Frame::Task(t) => fps.push(t.fp),
            Frame::Grant { lease, count, .. } => {
                assert_eq!(count as usize, fps.len());
                break lease;
            }
            other => panic!("unexpected frame during claim: {other:?}"),
        }
    };
    (stream, fps, lease)
}

fn fabricated_done(lease: u64, fp: u64, bits: Vec<u64>) -> Frame {
    Frame::Done(DoneFrame {
        lease,
        fp,
        key: String::new(),
        ok: true,
        attempts: 1,
        bits,
        code: String::new(),
        reason: String::new(),
        elapsed_us: 1,
    })
}

#[test]
fn duplicate_and_unknown_results_are_counted_not_applied() {
    let wl = stone();
    let path = tmp_path("dup-journal");
    let cfg = ClusterConfig {
        config_token: wl.config_token.clone(),
        journal: Some(path.clone()),
        quiet: true,
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = coordinator.local_addr().expect("addr").to_string();
    let result = std::thread::scope(|scope| {
        scope.spawn(move || {
            let (mut stream, fps, lease) = claim_cells(&addr, 8);
            assert_eq!(fps.len(), 3, "stone-sim has three cells");
            // The first two results sent twice (identical bits) plus one
            // result for a fingerprint that is not part of the sweep, all
            // before the final first-time result: once every cell is
            // terminal the coordinator sends Fin and stops reading, so
            // trailing frames would be legitimately dropped.
            for &fp in &fps[..2] {
                let frame = fabricated_done(lease, fp, vec![1.5f64.to_bits()]);
                send_raw(&mut stream, &frame.encode());
                send_raw(&mut stream, &frame.encode());
            }
            send_raw(
                &mut stream,
                &fabricated_done(lease, 0xdead_beef, vec![2.5f64.to_bits()]).encode(),
            );
            send_raw(&mut stream, &fabricated_done(lease, fps[2], vec![1.5f64.to_bits()]).encode());
            // Drain until the coordinator says fin.
            send_raw(&mut stream, &Frame::Claim { max: 1 }.encode());
            loop {
                match recv_raw(&mut stream) {
                    Frame::Fin => break,
                    Frame::Wait { ms } => {
                        std::thread::sleep(Duration::from_millis(ms.min(100)));
                        send_raw(&mut stream, &Frame::Claim { max: 1 }.encode());
                    }
                    other => panic!("unexpected frame while draining: {other:?}"),
                }
            }
        });
        coordinator.run(wl.label, &wl.jobs)
    });
    let report = result.expect("fabricated results complete the sweep");
    assert_eq!(stat(&report.stats, "cluster_duplicate_results_total"), 2);
    assert_eq!(stat(&report.stats, "cluster_unknown_results_total"), 1);
    // First result won: every journaled cell carries the fabricated bits.
    let body = std::fs::read_to_string(&path).expect("journal written");
    std::fs::remove_file(&path).ok();
    assert_eq!(body.lines().count(), 3);
    for line in body.lines() {
        assert!(line.contains("3ff8000000000000"), "expected fabricated bits in {line}");
    }
}

#[test]
fn conflicting_successful_results_are_a_hard_error() {
    let wl = stone();
    let cfg = ClusterConfig {
        config_token: wl.config_token.clone(),
        quiet: true,
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = coordinator.local_addr().expect("addr").to_string();
    let result = std::thread::scope(|scope| {
        scope.spawn(move || {
            let (mut stream, fps, lease) = claim_cells(&addr, 1);
            let fp = fps[0];
            send_raw(&mut stream, &fabricated_done(lease, fp, vec![1.5f64.to_bits()]).encode());
            send_raw(&mut stream, &fabricated_done(lease, fp, vec![2.5f64.to_bits()]).encode());
            // The coordinator goes fatal; drop the socket.
        });
        coordinator.run(wl.label, &wl.jobs)
    });
    match result {
        Err(ClusterError::Conflict { .. }) => {}
        other => panic!("expected ClusterError::Conflict, got {other:?}"),
    }
}

#[test]
fn late_done_after_lease_expiry_is_accepted_once_not_redispatched() {
    let wl = stone();
    let path = tmp_path("late-done-journal");
    let cfg = ClusterConfig {
        config_token: wl.config_token.clone(),
        journal: Some(path.clone()),
        lease: Duration::from_millis(300),
        quiet: true,
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = coordinator.local_addr().expect("addr").to_string();
    let addr_raw = addr.clone();
    let result = std::thread::scope(|scope| {
        scope.spawn(move || {
            // Claim one cell, stall past lease expiry (the cell is
            // requeued), then deliver the result late. The late result must
            // be accepted exactly once and the stale queue index must never
            // be re-leased: a re-dispatch would hand the healthy worker a
            // Done cell, whose second (real-bits) result conflicts with the
            // fabricated one and aborts the sweep.
            let (mut stream, fps, lease) = claim_cells(&addr_raw, 1);
            assert_eq!(fps.len(), 1);
            std::thread::sleep(Duration::from_millis(600));
            send_raw(&mut stream, &fabricated_done(lease, fps[0], vec![1.5f64.to_bits()]).encode());
            // Keep the socket open long enough for the frame to be read.
            std::thread::sleep(Duration::from_millis(500));
        });
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(700));
            bvc_cluster::run_worker(&addr, &WorkerOptions::default())
        });
        coordinator.run(wl.label, &wl.jobs)
    });
    let report = result.expect("late result must not be re-dispatched into a conflict");
    assert_eq!(report.cells.iter().filter(|c| c.outcome.is_ok()).count(), wl.jobs.len());
    assert!(
        stat(&report.stats, "cluster_lease_expiries_total") >= 1,
        "expected the stalled lease to expire:\n{}",
        report.stats
    );
    let body = std::fs::read_to_string(&path).expect("journal written");
    std::fs::remove_file(&path).ok();
    assert_eq!(body.lines().count(), 3, "each cell journaled exactly once:\n{body}");
}

#[test]
fn fail_fast_skips_cells_requeued_after_the_failure() {
    let wl = stone();
    let cfg = ClusterConfig {
        config_token: wl.config_token.clone(),
        fail_fast: true,
        quiet: true,
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = coordinator.local_addr().expect("addr").to_string();
    let addr_worker = addr.clone();
    let result = std::thread::scope(|scope| {
        scope.spawn(move || {
            // Claim every cell, fail one, then disconnect: the EOF releases
            // the two unfinished cells *after* the failure was recorded.
            // Under fail-fast they must be skipped, not requeued and handed
            // to the healthy worker.
            let (mut stream, fps, lease) = claim_cells(&addr, 8);
            assert_eq!(fps.len(), 3, "stone-sim has three cells");
            let fail = Frame::Done(DoneFrame {
                lease,
                fp: fps[0],
                key: String::new(),
                ok: false,
                attempts: 1,
                bits: vec![],
                code: "injected".into(),
                reason: "injected failure".into(),
                elapsed_us: 1,
            });
            send_raw(&mut stream, &fail.encode());
            std::thread::sleep(Duration::from_millis(200));
            drop(stream);
        });
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            bvc_cluster::run_worker(&addr_worker, &WorkerOptions::default())
        });
        coordinator.run(wl.label, &wl.jobs)
    });
    let report = result.expect("fail-fast sweep still reports");
    let failed = report
        .cells
        .iter()
        .filter(|c| matches!(&c.outcome, Err(CellFailure::Remote { .. })))
        .count();
    let skipped =
        report.cells.iter().filter(|c| matches!(&c.outcome, Err(CellFailure::Skipped))).count();
    assert_eq!(failed, 1, "the injected failure is reported");
    assert_eq!(skipped, 2, "cells released after the failure are skipped, not re-dispatched");
}

#[test]
fn foreign_heartbeat_cannot_keep_another_workers_lease_alive() {
    let wl = stone();
    let cfg = ClusterConfig {
        config_token: wl.config_token.clone(),
        lease: Duration::from_millis(300),
        quiet: true,
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = coordinator.local_addr().expect("addr").to_string();
    let addr_a = addr.clone();
    let addr_b = addr.clone();
    let (lease_tx, lease_rx) = std::sync::mpsc::channel();
    let result = std::thread::scope(|scope| {
        scope.spawn(move || {
            // Worker A claims a cell and goes silent with the socket open.
            let (_stream, fps, lease) = claim_cells(&addr_a, 1);
            assert_eq!(fps.len(), 1);
            lease_tx.send(lease).expect("hand lease id to client B");
            std::thread::sleep(Duration::from_millis(1500));
        });
        scope.spawn(move || {
            // Client B heartbeats A's lease id from a different connection.
            // Those renewals must be ignored: A's lease still expires and
            // its cell is requeued for the healthy worker.
            let lease = lease_rx.recv().expect("lease id from worker A");
            let mut stream = TcpStream::connect(&addr_b).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");
            send_raw(&mut stream, &Frame::Hello { proto: PROTO_VERSION, threads: 1 }.encode());
            let Frame::Config(_) = recv_raw(&mut stream) else { panic!("expected config") };
            for _ in 0..40 {
                let payload = Frame::Heartbeat { lease }.encode();
                if stream.write_all(&(payload.len() as u32).to_be_bytes()).is_err()
                    || stream.write_all(payload.as_bytes()).is_err()
                {
                    break; // Coordinator finished and closed the socket.
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(800));
            bvc_cluster::run_worker(&addr, &WorkerOptions::default())
        });
        coordinator.run(wl.label, &wl.jobs)
    });
    let report = result.expect("sweep completes despite foreign heartbeats");
    assert_eq!(report.cells.iter().filter(|c| c.outcome.is_ok()).count(), wl.jobs.len());
    assert!(
        stat(&report.stats, "cluster_lease_expiries_total") >= 1,
        "foreign heartbeats must not stop the lease from expiring:\n{}",
        report.stats
    );
}

#[test]
fn torn_frame_drops_connection_and_journal_stays_identical() {
    let wl = stone();
    let reference = local_journal(&wl, "torn-local");
    let path = tmp_path("torn-journal");
    let cfg = ClusterConfig {
        config_token: wl.config_token.clone(),
        journal: Some(path.clone()),
        lease: Duration::from_millis(400),
        quiet: true,
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = coordinator.local_addr().expect("addr").to_string();
    let addr_worker = addr.clone();
    let result = std::thread::scope(|scope| {
        scope.spawn(move || {
            // Claim a cell, then send a frame whose length prefix promises
            // far more bytes than ever arrive, and go silent. The read tick
            // sees a partial frame and must drop the connection, requeueing
            // the claimed cell.
            let (mut stream, fps, _lease) = claim_cells(&addr, 1);
            assert_eq!(fps.len(), 1);
            stream.write_all(&100u32.to_be_bytes()).expect("torn len");
            stream.write_all(b"only-ten-b").expect("torn body");
            std::thread::sleep(Duration::from_secs(3));
        });
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            bvc_cluster::run_worker(&addr_worker, &WorkerOptions::default())
        });
        coordinator.run(wl.label, &wl.jobs)
    });
    let report = result.expect("sweep completes despite the torn frame");
    assert_eq!(report.cells.iter().filter(|c| c.outcome.is_ok()).count(), wl.jobs.len());
    assert!(
        stat(&report.stats, "cluster_requeues_total") >= 1,
        "expected the torn connection's cell to requeue:\n{}",
        report.stats
    );
    let bytes = std::fs::read(&path).expect("journal written");
    std::fs::remove_file(&path).ok();
    assert_eq!(bytes, reference, "journal diverged after torn-frame recovery");
}
