//! Property tests for the sweep runner's checkpoint/resume machinery.
//!
//! The invariants under test:
//!
//! 1. interrupting a sweep after any prefix of cells and resuming from the
//!    journal yields *bit-identical* values to an uninterrupted run, and the
//!    resumed run re-executes only the missing cells;
//! 2. stale journal entries (lines dropped or re-fingerprinted) invalidate
//!    exactly the affected cells — everything else still replays;
//! 3. journal corruption (garbage lines, a torn final write) degrades to
//!    re-solving, never to a crash or a wrong value.
//!
//! Cell values are derived from the key's hash through raw bit patterns, so
//! NaNs, infinities and subnormals routinely flow through the journal codec;
//! all comparisons are on bit patterns, not float equality.

use bvc_repro::sweep::{fnv1a64, run_sweep, SweepOptions};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique scratch path per invocation (tests in one binary share a process).
fn tmp_journal(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bvc-sweep-prop-{tag}-{}-{n}.jsonl", std::process::id()))
}

/// The deterministic "solver": value depends only on the key, with bit
/// patterns chosen to exercise the codec's full f64 range (NaNs included).
fn val_of(key: &str) -> Vec<f64> {
    let h = fnv1a64(key.as_bytes());
    let len = (h % 3 + 1) as usize;
    (0..len as u32)
        .map(|i| f64::from_bits(h.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(i * 17 + 1)))
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs the deterministic sweep over `keys`, counting actually-executed
/// (non-replayed) cells into `executed`.
fn sweep(keys: &[String], opts: &SweepOptions, executed: &AtomicUsize) -> Vec<Vec<u64>> {
    let report = run_sweep(
        "prop",
        keys,
        opts,
        |k| k.clone(),
        |k, _ctx| {
            executed.fetch_add(1, Ordering::Relaxed);
            Ok(val_of(k))
        },
    );
    assert_eq!(report.solved(), keys.len(), "{}", report.failure_legend());
    (0..keys.len()).map(|i| bits(report.value(i).expect("solved above"))).collect()
}

fn opts_with(journal: Option<PathBuf>) -> SweepOptions {
    SweepOptions {
        journal,
        // One worker makes journal line order equal input order, which the
        // stale-line property below relies on.
        threads: Some(1),
        config_token: "prop-token".to_string(),
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariant 1: prefix run + resume ≡ clean run, re-solving only the
    /// missing suffix.
    #[test]
    fn interrupted_then_resumed_equals_clean(
        n in 2usize..12,
        cut in 0usize..12,
        salt in 0u64..1_000_000,
    ) {
        let cut = cut.min(n);
        let keys: Vec<String> = (0..n).map(|i| format!("cell-{i}-{salt}")).collect();
        let clean = sweep(&keys, &opts_with(None), &AtomicUsize::new(0));

        // "Interrupted" run: only the first `cut` cells reached the journal.
        let journal = tmp_journal("resume");
        sweep(&keys[..cut], &opts_with(Some(journal.clone())), &AtomicUsize::new(0));

        let executed = AtomicUsize::new(0);
        let resumed = sweep(&keys, &opts_with(Some(journal.clone())), &executed);
        prop_assert_eq!(executed.load(Ordering::Relaxed), n - cut);
        prop_assert_eq!(&resumed, &clean);
        let _ = std::fs::remove_file(&journal);
    }

    /// Invariant 2: dropping an arbitrary subset of journal lines (stale or
    /// lost checkpoints) re-solves exactly those cells; the rest replay, and
    /// the final values are unchanged either way.
    #[test]
    fn stale_lines_invalidate_only_their_cells(
        n in 1usize..12,
        mask in 0u32..4096,
        salt in 0u64..1_000_000,
    ) {
        let keys: Vec<String> = (0..n).map(|i| format!("cell-{i}-{salt}")).collect();
        let journal = tmp_journal("stale");
        let full = sweep(&keys, &opts_with(Some(journal.clone())), &AtomicUsize::new(0));

        // With one worker each cell appended exactly one line, in order.
        let text = std::fs::read_to_string(&journal).expect("journal written");
        let kept: Vec<&str> = text
            .lines()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) == 0)
            .map(|(_, l)| l)
            .collect();
        let dropped = n - kept.len();
        std::fs::write(&journal, kept.join("\n") + "\n").expect("journal rewritten");

        let executed = AtomicUsize::new(0);
        let resumed = sweep(&keys, &opts_with(Some(journal.clone())), &executed);
        prop_assert_eq!(executed.load(Ordering::Relaxed), dropped);
        prop_assert_eq!(&resumed, &full);
        let _ = std::fs::remove_file(&journal);
    }

    /// Invariant 2b: a config-token change invalidates the whole journal —
    /// no cell may replay a value computed under different solver settings.
    #[test]
    fn changed_token_invalidates_everything(n in 1usize..8, salt in 0u64..1_000_000) {
        let keys: Vec<String> = (0..n).map(|i| format!("cell-{i}-{salt}")).collect();
        let journal = tmp_journal("token");
        let full = sweep(&keys, &opts_with(Some(journal.clone())), &AtomicUsize::new(0));

        let mut opts = opts_with(Some(journal.clone()));
        opts.config_token = "prop-token-v2".to_string();
        let executed = AtomicUsize::new(0);
        let resolved = sweep(&keys, &opts, &executed);
        prop_assert_eq!(executed.load(Ordering::Relaxed), n);
        // The toy solver ignores options, so values agree; what matters is
        // that every cell was re-executed rather than replayed.
        prop_assert_eq!(&resolved, &full);
        let _ = std::fs::remove_file(&journal);
    }

    /// Invariant 3: garbage lines are skipped and a torn final write only
    /// costs that one cell a re-solve; values stay bit-identical throughout.
    #[test]
    fn corruption_degrades_to_resolving(
        n in 1usize..10,
        salt in 0u64..1_000_000,
        garbage in proptest::collection::vec(0u8..128, 0..40),
        torn in 2usize..24,
    ) {
        let keys: Vec<String> = (0..n).map(|i| format!("cell-{i}-{salt}")).collect();
        let journal = tmp_journal("corrupt");
        let full = sweep(&keys, &opts_with(Some(journal.clone())), &AtomicUsize::new(0));

        // Whole garbage lines between valid entries: ignored on replay.
        let text = std::fs::read_to_string(&journal).expect("journal written");
        let noise: String = garbage.iter().map(|&b| (b.max(32)) as char).collect();
        std::fs::write(&journal, format!("{noise}\n{text}{{\"fp\":\n")).expect("rewrite");
        let executed = AtomicUsize::new(0);
        prop_assert_eq!(&sweep(&keys, &opts_with(Some(journal.clone())), &executed), &full);
        prop_assert_eq!(executed.load(Ordering::Relaxed), 0);

        // A torn final write (crash mid-append): that cell re-solves, the
        // journal heals on the next run.
        let text = std::fs::read_to_string(&journal).expect("journal intact");
        // The file is pure ASCII, so a byte cut never splits a char. At most
        // the final line can be damaged, so at most one cell re-solves.
        let cut = text.len().saturating_sub(torn);
        std::fs::write(&journal, &text[..cut]).expect("truncate");
        let executed = AtomicUsize::new(0);
        prop_assert_eq!(&sweep(&keys, &opts_with(Some(journal.clone())), &executed), &full);
        prop_assert!(executed.load(Ordering::Relaxed) <= 1);
        let _ = std::fs::remove_file(&journal);
    }
}
