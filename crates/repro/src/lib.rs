//! # bvc-repro — regenerating every table and figure of the paper
//!
//! One binary per experiment (see `src/bin/`), each printing the paper's
//! published numbers next to the values this workspace computes:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — the state transition & reward specification |
//! | `table2` | Table 2 — max relative revenue (compliant Alice) |
//! | `table3` | Table 3 top/middle — max absolute revenue in BU |
//! | `table3_bitcoin` | Table 3 bottom — selfish mining + double spending |
//! | `table4` | Table 4 — orphans per attacker block |
//! | `figure1` | Figure 1 — BU parent-block choice and the sticky gate |
//! | `figure2` | Figure 2 — the phase-1 / phase-2 fork construction |
//! | `figure3` | Figure 3 — two blocks orphaned by one attacker block |
//! | `figure4` | Figure 4 — the block size increasing game |
//! | `eb_game` | §5.1 — EB-choosing-game equilibria (Analytical Result 4) |
//! | `stone_sim` | §2.3 — Stone-style fork-frequency simulations |
//! | `crossval` | MDP ↔ chain-simulator cross-validation |
//!
//! This library holds the shared plumbing: aligned table rendering, a
//! scoped-thread parallel sweep over parameter cells, and the fault-tolerant
//! sweep runner ([`sweep`]) with per-cell isolation, retries, and
//! checkpoint/resume journals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod sweep;
pub(crate) mod sync;

use std::fmt::Write as _;

/// A rendered comparison cell: the paper's value (if printed) and ours.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// The value published in the paper, if the cell exists there.
    pub paper: Option<f64>,
    /// The value this workspace computes.
    pub ours: f64,
}

impl Cell {
    /// Relative deviation |ours − paper| / |paper| (None when no paper
    /// value or the paper value is zero).
    pub fn rel_dev(&self) -> Option<f64> {
        match self.paper {
            Some(p) if p != 0.0 => Some(((self.ours - p) / p).abs()),
            _ => None,
        }
    }
}

/// One position of a rendered comparison grid, including the degraded case
/// where the solve for the cell failed.
#[derive(Debug, Clone, PartialEq)]
pub enum GridEntry {
    /// The paper leaves this position blank; so do we.
    Absent,
    /// A computed comparison cell.
    Value(Cell),
    /// The solve failed; the short reason code is rendered in place as
    /// `FAIL(reason)` so the rest of the grid still lines up.
    Failed(String),
}

impl GridEntry {
    /// Lifts the pre-runner convention (`None` = blank position).
    pub fn from_option(cell: Option<Cell>) -> Self {
        match cell {
            Some(c) => GridEntry::Value(c),
            None => GridEntry::Absent,
        }
    }
}

/// Renders a labelled grid of [`GridEntry`]s as `ours (paper)` pairs with a
/// deviation summary line. Failed cells render as `FAIL(reason)` and are
/// counted separately so one bad solve degrades a single position instead of
/// the whole table.
pub fn render_grid(
    title: &str,
    row_labels: &[String],
    col_labels: &[String],
    cells: &[Vec<GridEntry>],
    precision: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let width = precision + 6;
    let _ = write!(out, "{:<12}", "");
    for c in col_labels {
        let _ = write!(out, "{c:>width$} {:>width$}", "(paper)");
    }
    let _ = writeln!(out);
    let mut max_dev: f64 = 0.0;
    let mut n_compared = 0usize;
    let mut n_failed = 0usize;
    for (r, label) in row_labels.iter().enumerate() {
        let _ = write!(out, "{label:<12}");
        for cell in &cells[r] {
            match cell {
                GridEntry::Value(c) => {
                    let _ = write!(out, "{:>width$.precision$}", c.ours);
                    match c.paper {
                        Some(p) => {
                            let _ = write!(out, " {:>width$.precision$}", p);
                        }
                        None => {
                            let _ = write!(out, " {:>width$}", "-");
                        }
                    }
                    if let Some(d) = c.rel_dev() {
                        max_dev = max_dev.max(d);
                        n_compared += 1;
                    }
                }
                GridEntry::Failed(reason) => {
                    n_failed += 1;
                    let tag = format!("FAIL({reason})");
                    if tag.len() >= width {
                        // Wider than the column: keep one separating space
                        // so the tag never fuses with its left neighbour.
                        let _ = write!(out, " {tag} {:>width$}", "-");
                    } else {
                        let _ = write!(out, "{tag:>width$} {:>width$}", "-");
                    }
                }
                GridEntry::Absent => {
                    let _ = write!(out, "{:>width$} {:>width$}", "-", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = write!(
        out,
        "cells compared: {n_compared}, max relative deviation: {:.2}%",
        max_dev * 100.0
    );
    if n_failed > 0 {
        let _ = write!(out, ", FAILED cells: {n_failed}");
    }
    let _ = writeln!(out);
    out
}

/// Evaluates `f` over `inputs` in parallel with scoped threads, preserving
/// input order in the output. Used by the table binaries to sweep parameter
/// cells across cores.
///
/// Scheduling is dynamic: workers claim the next unprocessed cell through a
/// shared atomic cursor, so heterogeneous cells (MDP solves whose cost
/// varies by orders of magnitude across the parameter grid) balance across
/// cores instead of being pinned to fixed chunks. Results are slotted back
/// by index, so output order always matches input order.
///
/// # Panics
/// If `f` panics on any input, the *original* panic payload is re-raised in
/// the caller once all workers have stopped. A shared abort flag is raised
/// as soon as any worker panics and is checked at claim time, so the other
/// workers stop promptly instead of grinding through the rest of the grid
/// whose results would be discarded anyway.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n.max(1));
    parallel_map_with_threads(inputs, threads, f)
}

/// [`parallel_map`] with an explicit worker count instead of
/// `available_parallelism`. Exposed so model-checking runs (and tests on
/// single-core machines) can force real claim-cursor contention.
///
/// # Panics
/// Same contract as [`parallel_map`].
pub fn parallel_map_with_threads<I, O, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    use std::panic::AssertUnwindSafe;
    use std::sync::atomic::Ordering;

    use crate::sync::{scope, AtomicBool, AtomicUsize, Mutex};

    let n = inputs.len();
    let threads = threads.clamp(1, n.max(1));
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let out: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // ordering: Relaxed suffices — the flag is a shutdown hint,
                // and the claim cursor's fetch_add is itself atomic; no
                // other memory is published through either.
                // ordering: Relaxed — the abort flag is a shutdown hint; no data is published through it.
                if abort.load(Ordering::Relaxed) {
                    return;
                }
                // ordering: Relaxed — the RMW itself is the claim; slot data flows via the out mutex.
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                match std::panic::catch_unwind(AssertUnwindSafe(|| f(&inputs[i]))) {
                    Ok(o) => {
                        out.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(o);
                    }
                    Err(payload) => {
                        // A model-checker abort is scheduler teardown, not
                        // a user panic; re-raise it untouched.
                        #[cfg(bvc_check)]
                        let payload = bvc_check::reraise_if_abort(payload);
                        // ordering: Relaxed — hint only; the payload is published under the panic_payload mutex.
                        abort.store(true, Ordering::Relaxed);
                        panic_payload
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .get_or_insert(payload);
                        return;
                    }
                }
            });
        }
    });
    if let Some(payload) = panic_payload.into_inner().unwrap_or_else(|e| e.into_inner()) {
        std::panic::resume_unwind(payload);
    }
    out.into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|o| o.expect("all cells computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(inputs.clone(), |&x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let out = parallel_map(Vec::<u64>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_balances_uneven_work() {
        // One expensive cell among many cheap ones: dynamic claiming must
        // still return every result in input order.
        let inputs: Vec<u64> = (0..64).collect();
        let out = parallel_map(inputs, |&x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cell 13 exploded")]
    fn parallel_map_propagates_worker_panic_payload() {
        let inputs: Vec<u64> = (0..32).collect();
        let _ = parallel_map(inputs, |&x| {
            if x == 13 {
                panic!("cell {x} exploded");
            }
            x
        });
    }

    #[test]
    fn parallel_map_aborts_promptly_after_panic() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // The first claimed cell panics; with the abort flag checked at
        // claim time, the other workers must stop long before the grid is
        // exhausted (each surviving cell is slow enough that the flag is
        // visible before the pool could drain all 256).
        let executed = AtomicUsize::new(0);
        let inputs: Vec<u64> = (0..256).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(inputs, |&x| {
                executed.fetch_add(1, Ordering::SeqCst);
                if x == 0 {
                    panic!("injected");
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
                x
            })
        }));
        assert!(result.is_err(), "panic must propagate");
        let ran = executed.load(Ordering::SeqCst);
        assert!(ran < 256, "workers kept claiming after the panic: {ran} cells ran");
    }

    #[test]
    fn render_grid_reports_deviation() {
        let cells = vec![vec![
            GridEntry::Value(Cell { paper: Some(0.10), ours: 0.11 }),
            GridEntry::Value(Cell { paper: None, ours: 0.5 }),
            GridEntry::Absent,
        ]];
        let text =
            render_grid("t", &["r".into()], &["a".into(), "b".into(), "c".into()], &cells, 3);
        assert!(text.contains("max relative deviation: 10.00%"), "{text}");
        assert!(text.contains('-'));
    }

    #[test]
    fn render_grid_marks_failed_cells() {
        let cells = vec![vec![
            GridEntry::Value(Cell { paper: Some(0.10), ours: 0.10 }),
            GridEntry::Failed("panic".into()),
        ]];
        let text = render_grid("t", &["r".into()], &["a".into(), "b".into()], &cells, 3);
        // The tag is wider than the column; it must keep a separating
        // space instead of fusing with the neighbouring value.
        assert!(text.contains(" FAIL(panic)"), "{text}");
        assert!(text.contains("FAILED cells: 1"), "{text}");
        // The healthy cell still renders and is still compared.
        assert!(text.contains("cells compared: 1"), "{text}");
    }

    #[test]
    fn cell_rel_dev() {
        assert!(Cell { paper: Some(2.0), ours: 2.2 }.rel_dev().unwrap() - 0.1 < 1e-12);
        assert!(Cell { paper: None, ours: 1.0 }.rel_dev().is_none());
        assert!(Cell { paper: Some(0.0), ours: 1.0 }.rel_dev().is_none());
    }
}
