//! Regenerates **Table 3 (top and middle panels)**: Alice's maximum
//! absolute revenue per block (Eq. 2) in BU under the non-compliant and
//! profit-driven model, settings 1 and 2.
//!
//! Note on setting 1 (see EXPERIMENTS.md): our implementation of the
//! paper's stated double-spend rule — `(k − 3) · R_DS` for `k > 3` blocks
//! orphaned in the losing chain — reproduces the published *setting 2*
//! panel exactly, but the published *setting 1* panel is mutually
//! inconsistent with it (e.g. at β:γ = 4:1 the two settings must nearly
//! coincide because Chain-2 wins are vanishingly rare there, yet the paper
//! prints 0.013 vs 0.010). The deviation column makes this visible.
//!
//! Run: `cargo run --release -p bvc-repro --bin table3`
//!
//! Accepts the standard sweep-runner flags (see `bvc_repro::sweep`); exits
//! nonzero when any cell failed.

use bvc_bu::{Setting, SolveOptions};
use bvc_repro::sweep::{run_jobs, JobSpec, SweepOptions};
use bvc_repro::{render_grid, GridEntry};

const RATIOS: [(u32, u32); 5] = [(4, 1), (2, 1), (1, 1), (1, 2), (1, 4)];
const ALPHAS: [f64; 7] = [0.01, 0.025, 0.05, 0.10, 0.15, 0.20, 0.25];

/// Published setting-1 panel; `None` where α > min(β, γ).
const PAPER_S1: [[Option<f64>; 5]; 7] = [
    [Some(0.013), Some(0.035), Some(0.042), Some(0.025), Some(0.013)],
    [Some(0.038), Some(0.089), Some(0.10), Some(0.063), Some(0.033)],
    [Some(0.090), Some(0.18), Some(0.20), Some(0.13), Some(0.067)],
    [Some(0.24), Some(0.39), Some(0.40), Some(0.26), Some(0.14)],
    [Some(0.44), Some(0.61), Some(0.59), Some(0.40), Some(0.23)],
    [None, Some(0.83), Some(0.78), Some(0.55), None],
    [None, Some(1.1), Some(0.97), Some(0.71), None],
];

/// Published setting-2 panel.
const PAPER_S2: [[Option<f64>; 5]; 7] = [
    [Some(0.01), Some(0.025), Some(0.034), Some(0.024), Some(0.011)],
    [Some(0.027), Some(0.064), Some(0.084), Some(0.063), Some(0.028)],
    [Some(0.063), Some(0.13), Some(0.16), Some(0.13), Some(0.064)],
    [Some(0.16), Some(0.27), Some(0.31), Some(0.27), Some(0.16)],
    [Some(0.28), Some(0.41), Some(0.46), Some(0.41), Some(0.29)],
    [None, Some(0.55), Some(0.59), Some(0.55), None],
    [None, Some(0.69), Some(0.73), Some(0.69), None],
];

fn panel(setting: Setting, paper: &[[Option<f64>; 5]; 7], opts: &SweepOptions) -> (String, i32) {
    let tag = match setting {
        Setting::One => 1u8,
        Setting::Two => 2,
    };
    let jobs = bvc_cluster::jobs::table3_jobs(tag);
    let report = run_jobs(&format!("table3-setting{tag}"), &jobs, opts);
    let cells: Vec<Vec<GridEntry>> = paper
        .iter()
        .enumerate()
        .map(|(r, row)| {
            row.iter()
                .enumerate()
                .map(|(c, p)| {
                    let spec = JobSpec::Table3 { alpha: ALPHAS[r], ratio: RATIOS[c], setting: tag };
                    match jobs.iter().position(|j| *j == spec) {
                        Some(j) => report.grid_entry(j, *p),
                        None => GridEntry::Absent,
                    }
                })
                .collect()
        })
        .collect();
    let rows: Vec<String> = ALPHAS.iter().map(|a| format!("a={}%", a * 100.0)).collect();
    let cols: Vec<String> = RATIOS.iter().map(|(b, c)| format!("{b}:{c}")).collect();
    let mut text = render_grid(
        &format!("Table 3 — max absolute revenue u2, {setting} (ours vs paper)"),
        &rows,
        &cols,
        &cells,
        3,
    );
    text.push_str(&report.summary());
    text.push('\n');
    text.push_str(&report.failure_legend());
    if opts.json {
        text.push_str(&report.to_json());
        text.push('\n');
    }
    (text, report.exit_code())
}

fn main() {
    let (mut opts, rest) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    opts.config_token = SolveOptions::default().fingerprint_token();
    let setting1_only = rest.iter().any(|a| a == "--setting1-only");

    let (text, mut exit) = panel(Setting::One, &PAPER_S1, &opts);
    print!("{text}");
    if !setting1_only {
        println!();
        let (text, code) = panel(Setting::Two, &PAPER_S2, &opts);
        print!("{text}");
        exit = exit.max(code);
    }
    println!();
    println!("Analytical Result 2: even a 1% miner profits from double-spend forking in BU;");
    println!(
        "compare the Bitcoin baseline via `cargo run --release -p bvc-repro --bin table3_bitcoin`."
    );
    std::process::exit(exit);
}
