//! Regenerates **Table 1**: the state transition and reward distribution
//! for a compliant and profit-driven Alice in setting 1, printed from the
//! model generator and diffed against an independent hand-coded copy of
//! the published table.
//!
//! Run: `cargo run --release -p bvc-repro --bin table1 [alpha beta_ratio gamma_ratio]`

use bvc_bu::table1::{diff_rows, generator_rows, published_rows, render};
use bvc_bu::{AttackConfig, AttackModel, IncentiveModel, Setting};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (alpha, ratio) = if args.len() >= 4 {
        let a: f64 = args[1].parse().expect("alpha");
        let b: u32 = args[2].parse().expect("beta ratio");
        let c: u32 = args[3].parse().expect("gamma ratio");
        (a, (b, c))
    } else {
        (0.25, (1, 1))
    };
    let cfg =
        AttackConfig::with_ratio(alpha, ratio, Setting::One, IncentiveModel::CompliantProfitDriven);
    println!(
        "Table 1 — transitions & rewards, alpha={alpha}, beta={:.4}, gamma={:.4}, AD={}",
        cfg.beta, cfg.gamma, cfg.ad
    );
    println!();

    let model = AttackModel::build(cfg.clone()).expect("model builds");
    let generated = generator_rows(&model);
    print!("{}", render(&generated));

    let corrected = published_rows(&cfg, true);
    let diffs = diff_rows(&corrected, &generated, 1e-12);
    println!();
    println!(
        "diff vs published table (two reward typos corrected): {} differing entries",
        diffs.len()
    );

    let verbatim = published_rows(&cfg, false);
    let diffs = diff_rows(&verbatim, &generated, 1e-12);
    println!(
        "diff vs verbatim published table: {} entries — all in the l1 = l2 = AD-1 rows,",
        diffs.len()
    );
    println!("where the published R_others coefficients γ(l2−a2) / β(l1−a1) violate block");
    println!("conservation (the locked chain has l+1 blocks); see bvc-bu/src/table1.rs.");
}
