//! Regenerates **Figure 1**: a BU miner's choice of parent block with
//! `AD = 3`, in three scenarios:
//!
//! * upper panel — an excessive block is rejected while the chain on it is
//!   shorter than `AD`;
//! * middle panel — two blocks are mined on the excessive block: the chain
//!   is accepted and the sticky gate opens, releasing the limit to 32 MB;
//! * lower panel — the sticky gate closes again after 144 consecutive
//!   non-excessive blocks.
//!
//! Each panel is executed against the real chain substrate and the asserted
//! view outcomes are printed.
//!
//! Run: `cargo run --release -p bvc-repro --bin figure1`

use bvc_chain::{
    BlockId, BlockTree, BuRizunRule, ByteSize, GateStatus, MinerId, NodeView, STICKY_GATE_BLOCKS,
};

fn small() -> ByteSize {
    ByteSize(900_000)
}
fn excessive() -> ByteSize {
    ByteSize::mb(16)
}

fn main() {
    let eb = ByteSize::mb(1);
    let ad = 3;
    println!("Figure 1 — BU parent-block choice, EB = {eb}, AD = {ad}");
    println!();

    // Upper panel: the excessive block is rejected.
    {
        let mut tree = BlockTree::new();
        let mut node = NodeView::new(BuRizunRule::new(eb, ad));
        let a = tree.extend(BlockId::GENESIS, small(), MinerId(1));
        node.receive(&tree, a);
        let e = tree.extend(a, excessive(), MinerId(1));
        node.receive(&tree, e);
        let f = tree.extend(e, small(), MinerId(1));
        node.receive(&tree, f);
        assert_eq!(node.accepted_tip(), a);
        println!("upper:  chain [.., excessive, small]; depth 2 < AD");
        println!("        -> miner keeps mining on the pre-excessive block ({})", a);
    }

    // Middle panel: two blocks after the excessive one -> accepted, gate
    // opens, 32 MB blocks become valid on that chain.
    {
        let mut tree = BlockTree::new();
        let mut node = NodeView::new(BuRizunRule::new(eb, ad));
        let e = tree.extend(BlockId::GENESIS, excessive(), MinerId(1));
        node.receive(&tree, e);
        let f1 = tree.extend(e, small(), MinerId(1));
        node.receive(&tree, f1);
        let f2 = tree.extend(f1, small(), MinerId(1));
        node.receive(&tree, f2);
        assert_eq!(node.accepted_tip(), f2, "AD reached: chain accepted");
        let rule = *node.rule();
        let sizes = NodeView::<BuRizunRule>::chain_sizes(&tree, f2);
        let gate = rule.gate_after(&sizes);
        assert!(matches!(gate, GateStatus::Open { .. }));
        // A 20 MB block is now acceptable on this chain.
        let big = tree.extend(f2, ByteSize::mb(20), MinerId(1));
        assert!(node.receive(&tree, big));
        println!("middle: two blocks mined on the excessive block -> chain valid & accepted;");
        println!("        sticky gate open ({gate:?}), block size limit released to 32 MB");
    }

    // Lower panel: gate closes after 144 consecutive non-excessive blocks.
    {
        let mut tree = BlockTree::new();
        let mut node = NodeView::new(BuRizunRule::new(eb, ad));
        let e = tree.extend(BlockId::GENESIS, excessive(), MinerId(1));
        node.receive(&tree, e);
        let mut tip = e;
        for _ in 0..STICKY_GATE_BLOCKS {
            tip = tree.extend(tip, small(), MinerId(1));
            node.receive(&tree, tip);
        }
        let rule = *node.rule();
        let sizes = NodeView::<BuRizunRule>::chain_sizes(&tree, tip);
        assert_eq!(rule.gate_after(&sizes), GateStatus::Closed);
        // The next oversize block is rejected again.
        let big = tree.extend(tip, ByteSize::mb(20), MinerId(1));
        node.receive(&tree, big);
        assert_eq!(node.accepted_tip(), tip);
        println!(
            "lower:  after {STICKY_GATE_BLOCKS} consecutive non-excessive blocks the gate closes;"
        );
        println!("        the next 20 MB block is rejected until it has AD depth again");
    }

    println!();
    println!("all three panels verified against the chain substrate.");
}
