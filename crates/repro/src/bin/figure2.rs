//! Regenerates **Figure 2**: the two fork constructions of the attack.
//!
//! * Phase 1: Alice mines a block of size exactly `EB_C` — Carol accepts it
//!   and mines on it (Chain 2), Bob rejects it and keeps extending Chain 1.
//! * Phase 2 (after Bob's sticky gate opened): Alice mines a block slightly
//!   larger than `EB_C` — Bob (gate open) accepts it, Carol rejects it.
//!
//! Both panels are executed against real node views and the diverging
//! accepted tips are printed.
//!
//! Run: `cargo run --release -p bvc-repro --bin figure2`

use bvc_chain::{BlockId, BlockTree, BuRizunRule, ByteSize, MinerId, NodeView};

const ALICE: MinerId = MinerId(0);
const BOB_EB: ByteSize = ByteSize(1_000_000);
const CAROL_EB: ByteSize = ByteSize(16_000_000);

fn small() -> ByteSize {
    ByteSize(900_000)
}

fn main() {
    let ad = 3;
    println!(
        "Figure 2 — phase-1 and phase-2 splits, EB_B = {BOB_EB}, EB_C = {CAROL_EB}, AD = {ad}"
    );
    println!();

    // Phase 1.
    {
        let mut tree = BlockTree::new();
        let mut bob = NodeView::new(BuRizunRule::new(BOB_EB, ad));
        let mut carol = NodeView::new(BuRizunRule::new(CAROL_EB, ad));
        // Alice mines the EB_C-sized fork block.
        let fork = tree.extend(BlockId::GENESIS, CAROL_EB, ALICE);
        bob.receive(&tree, fork);
        carol.receive(&tree, fork);
        assert_eq!(bob.accepted_tip(), BlockId::GENESIS, "Bob rejects");
        assert_eq!(carol.accepted_tip(), fork, "Carol accepts");
        println!("phase 1: Alice mines a block of size EB_C = {CAROL_EB}");
        println!("         Bob's tip:   {} (rejects, mines Chain 1)", bob.accepted_tip());
        println!("         Carol's tip: {} (accepts, mines Chain 2)", carol.accepted_tip());

        // Chain 2 reaches AD: Bob adopts it and his sticky gate opens.
        let c1 = tree.extend(fork, small(), MinerId(2));
        bob.receive(&tree, c1);
        carol.receive(&tree, c1);
        let c2 = tree.extend(c1, small(), MinerId(2));
        bob.receive(&tree, c2);
        carol.receive(&tree, c2);
        assert_eq!(bob.accepted_tip(), c2, "Bob adopts all AD blocks");
        println!("         after AD = {ad} blocks on Chain 2, Bob adopts it: sticky gate opens");

        // Phase 2, continuing the same world: Alice mines just above EB_C.
        let over = ByteSize(CAROL_EB.bytes() + 1);
        let fork2 = tree.extend(c2, over, ALICE);
        bob.receive(&tree, fork2);
        carol.receive(&tree, fork2);
        assert_eq!(bob.accepted_tip(), fork2, "gate-open Bob accepts > EB_C");
        assert_eq!(carol.accepted_tip(), c2, "Carol rejects > EB_C");
        println!();
        println!("phase 2: Alice mines a block of size EB_C + 1 byte = {over}");
        println!(
            "         Bob's tip:   {} (gate open: accepts, mines Chain 2)",
            bob.accepted_tip()
        );
        println!("         Carol's tip: {} (rejects, mines Chain 1)", carol.accepted_tip());
    }

    println!();
    println!("both splits verified against the chain substrate.");
}
