//! §5 equilibrium maps and coalition-frontier search as sweep workloads:
//! the `bvc-gamesweep` engine run through the journaled, resumable,
//! cluster-shardable sweep runner.
//!
//! Default: the `games-grid` equilibrium map — every canonical
//! [`bvc_gamesweep::games_grid_specs`] cell (power distributions ×
//! economics × pass thresholds × perturbation schedules), with the
//! paper's Figure 4 trace pinned as cell 0 and re-checked on every run
//! (`terminal = 1`, two rounds, first raise passed).
//!
//! `--frontier`: the `games-frontier` workload — the committed-coalition
//! search over the block size increasing game, one journaled cell per
//! (coalition size, shard) tiling the exponential `C(n, k)` expansion.
//!
//! Run: `cargo run --release -p bvc-repro --bin games_map [-- --frontier]`
//!
//! Accepts the standard sweep-runner flags (see `bvc_repro::sweep`), so
//! cells shard across threads, journal, resume, and run distributed
//! (`--cluster`) with bit-identical journals.

use bvc_gamesweep::{
    frontier_cells, frontier_config_token, games_grid_specs, grid_config_token, NO_CARTEL,
};
use bvc_repro::sweep::{run_jobs, JobSpec, SweepOptions};

fn main() {
    let (mut opts, rest) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    let frontier = rest.iter().any(|a| a == "--frontier");
    if let Some(unknown) = rest.iter().find(|a| *a != "--frontier") {
        eprintln!("error: unknown flag {unknown:?} (this binary only adds --frontier)");
        std::process::exit(2);
    }
    if frontier {
        run_frontier(&mut opts)
    } else {
        run_grid(&mut opts)
    }
}

fn run_grid(opts: &mut SweepOptions) {
    // Must match the `games-grid` workload token so journals from either
    // entry point are interchangeable.
    opts.config_token = grid_config_token();

    let specs = games_grid_specs();
    println!("equilibrium map: {} game cells (EB choosing + block size increasing)", specs.len());
    println!();
    let jobs: Vec<JobSpec> =
        specs.iter().map(|spec| JobSpec::Game { spec: spec.clone() }).collect();
    let report = run_jobs("games-grid", &jobs, opts);

    println!(
        "{:<58} {:>5} {:>4} {:>7} {:>5} {:>5} {:>7} {:>8}",
        "cell", "term", "rnd", "out-pow", "nash", "flip", "flip-pw", "fragile"
    );
    for (i, spec) in specs.iter().enumerate() {
        let Some(m) = report.value(i) else {
            println!("{:<58} (unsolved)", spec.key());
            continue;
        };
        let nash =
            if m[5].is_finite() && m[5] >= 0.0 { format!("{:.0}", m[5]) } else { "-".into() };
        let fragile = if m[9] > 0.0 { format!("{:.0}%", 100.0 * m[8] / m[9]) } else { "-".into() };
        println!(
            "{:<58} {:>5.0} {:>4.0} {:>6.1}% {:>5} {:>5.0} {:>6.1}% {:>8}",
            spec.key(),
            m[1],
            m[2],
            100.0 * m[4] + 0.0,
            nash,
            m[6],
            100.0 * m[7],
            fragile,
        );
    }
    println!();

    // The pinned Figure 4 cell: the paper's §5.2 trace, byte-for-byte the
    // same whether this ran locally, resumed, or distributed.
    let pinned_ok;
    if let Some(m) = report.value(0) {
        pinned_ok = m[1] == 1.0 && m[2] == 2.0 && m[3] == 1.0;
        if pinned_ok {
            println!("pinned Figure 4 cell: terminal=1, 2 rounds, round 0 passed — reproduced.");
        } else {
            println!(
                "pinned Figure 4 cell MISMATCH: terminal={} rounds={} passed={} (want 1, 2, 1)",
                m[1], m[2], m[3]
            );
        }
    } else {
        pinned_ok = false;
        println!("pinned Figure 4 cell UNSOLVED.");
    }
    println!("{}", report.summary());
    print!("{}", report.failure_legend());
    if opts.json {
        println!("{}", report.to_json());
    }
    std::process::exit(if pinned_ok { report.exit_code() } else { 1 });
}

fn run_frontier(opts: &mut SweepOptions) {
    // Must match the `games-frontier` workload token.
    opts.config_token = frontier_config_token();

    let cells = frontier_cells();
    println!("coalition frontier: {} journaled shards over the C(n, k) layers", cells.len());
    println!();
    let jobs: Vec<JobSpec> =
        cells.iter().map(|spec| JobSpec::GameFrontier { spec: spec.clone() }).collect();
    let report = run_jobs("games-frontier", &jobs, opts);

    // Merge shards back into (game, size) layers, exactly the reduction a
    // coordinator would run over the journal.
    let mut layers: std::collections::BTreeMap<String, Layer> = std::collections::BTreeMap::new();
    let mut merged_all = true;
    for (i, cell) in cells.iter().enumerate() {
        let id = format!("{} k={}", cell.spec.key(), cell.size);
        let layer = layers.entry(id).or_default();
        let Some(m) = report.value(i) else {
            merged_all = false;
            layer.complete = false;
            continue;
        };
        layer.examined += m[0];
        layer.effective += m[1];
        layer.base_terminal = m[5];
        if m[2] > layer.best_terminal {
            layer.best_terminal = m[2];
            layer.best_mask = m[3];
        }
        if m[4] < NO_CARTEL {
            layer.min_cartel = layer.min_cartel.min(m[4]);
        }
    }
    println!(
        "{:<70} {:>9} {:>9} {:>5} {:>5} {:>8}",
        "layer", "examined", "effective", "base", "best", "cheapest"
    );
    for (id, layer) in &layers {
        let cheapest = if layer.min_cartel < NO_CARTEL {
            format!("{:.1}%", 100.0 * layer.min_cartel)
        } else {
            "-".into()
        };
        println!(
            "{:<70} {:>9.0} {:>9.0} {:>5.0} {:>5.0} {:>8}{}",
            id,
            layer.examined,
            layer.effective,
            layer.base_terminal,
            layer.best_terminal.max(layer.base_terminal),
            cheapest,
            if layer.complete { "" } else { "  (incomplete)" },
        );
    }
    println!();

    // Pinned Figure 4 kamikaze cartel: committing group 3 (30% power)
    // alone moves the terminal from group 2 to group 4 (1-based: the
    // cheapest single-group cartel is {2} at 30%, pushing terminal 1 -> 3).
    let k1 = layers.iter().find(|(id, _)| id.contains("n=4") && id.ends_with("k=1"));
    let pinned_ok = match k1 {
        Some((_, layer)) => {
            let ok = layer.base_terminal == 1.0
                && layer.best_terminal == 3.0
                && layer.best_mask == 4.0
                && (layer.min_cartel - 0.3).abs() < 1e-12;
            if ok {
                println!(
                    "pinned Figure 4 frontier: a single 30% kamikaze group moves the terminal"
                );
                println!("from group 2 to group 4 — reproduced.");
            } else {
                println!(
                    "pinned Figure 4 frontier MISMATCH: base={} best={} cartel={}",
                    layer.base_terminal, layer.best_terminal, layer.min_cartel
                );
            }
            ok
        }
        None => {
            println!("pinned Figure 4 frontier layer MISSING.");
            false
        }
    };
    println!("{}", report.summary());
    print!("{}", report.failure_legend());
    if opts.json {
        println!("{}", report.to_json());
    }
    std::process::exit(if pinned_ok && merged_all { report.exit_code() } else { 1 });
}

#[derive(Debug)]
struct Layer {
    examined: f64,
    effective: f64,
    base_terminal: f64,
    best_terminal: f64,
    best_mask: f64,
    min_cartel: f64,
    complete: bool,
}

impl Default for Layer {
    fn default() -> Self {
        Layer {
            examined: 0.0,
            effective: 0.0,
            base_terminal: 0.0,
            best_terminal: 0.0,
            best_mask: 0.0,
            min_cartel: NO_CARTEL,
            complete: true,
        }
    }
}
