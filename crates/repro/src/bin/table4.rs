//! Regenerates **Table 4**: the number of Bob's and Carol's blocks orphaned
//! by each Alice block (Eq. 3) for a non-profit-driven 1% attacker, in both
//! settings.
//!
//! Run: `cargo run --release -p bvc-repro --bin table4`

use bvc_bu::{AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};
use bvc_repro::{parallel_map, render_grid, Cell};

const RATIOS: [(u32, u32); 9] =
    [(4, 1), (3, 1), (2, 1), (3, 2), (1, 1), (2, 3), (1, 2), (1, 3), (1, 4)];

/// Published values: columns are settings 1 and 2, rows the β:γ ratios.
const PAPER: [[f64; 2]; 9] = [
    [0.61, 0.62],
    [0.83, 0.85],
    [1.22, 1.26],
    [1.50, 1.55],
    [1.76, 1.76],
    [1.77, 1.77],
    [1.62, 1.62],
    [1.30, 1.30],
    [1.06, 1.06],
];

fn main() {
    let mut jobs = Vec::new();
    for ratio in RATIOS {
        for setting in [Setting::One, Setting::Two] {
            jobs.push((ratio, setting));
        }
    }
    let values = parallel_map(jobs, |&(ratio, setting)| {
        let cfg =
            AttackConfig::with_ratio(0.01, ratio, setting, IncentiveModel::NonProfitDriven);
        AttackModel::build(cfg)
            .expect("model builds")
            .optimal_orphan_rate(&SolveOptions::default())
            .expect("solver converges")
            .value
    });
    let cells: Vec<Vec<Option<Cell>>> = (0..9)
        .map(|r| {
            (0..2)
                .map(|c| Some(Cell { paper: Some(PAPER[r][c]), ours: values[r * 2 + c] }))
                .collect()
        })
        .collect();
    let rows: Vec<String> = RATIOS.iter().map(|(b, c)| format!("{b}:{c}")).collect();
    print!(
        "{}",
        render_grid(
            "Table 4 — orphans per attacker block u3, alpha = 1% (ours vs paper)",
            &rows,
            &["setting 1".to_string(), "setting 2".to_string()],
            &cells,
            2,
        )
    );
    println!();
    println!("Analytical Result 3: BU lets a non-profit-driven attacker orphan up to ~1.77");
    println!("compliant blocks per attacker block; in Bitcoin the same ratio never exceeds 1.");
}
