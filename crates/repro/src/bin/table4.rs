//! Regenerates **Table 4**: the number of Bob's and Carol's blocks orphaned
//! by each Alice block (Eq. 3) for a non-profit-driven 1% attacker, in both
//! settings.
//!
//! Run: `cargo run --release -p bvc-repro --bin table4`
//!
//! Accepts the standard sweep-runner flags (see `bvc_repro::sweep`); exits
//! nonzero when any cell failed.

use bvc_bu::SolveOptions;
use bvc_repro::sweep::{run_jobs, SweepOptions};
use bvc_repro::{render_grid, GridEntry};

const RATIOS: [(u32, u32); 9] =
    [(4, 1), (3, 1), (2, 1), (3, 2), (1, 1), (2, 3), (1, 2), (1, 3), (1, 4)];

/// Published values: columns are settings 1 and 2, rows the β:γ ratios.
const PAPER: [[f64; 2]; 9] = [
    [0.61, 0.62],
    [0.83, 0.85],
    [1.22, 1.26],
    [1.50, 1.55],
    [1.76, 1.76],
    [1.77, 1.77],
    [1.62, 1.62],
    [1.30, 1.30],
    [1.06, 1.06],
];

fn main() {
    let (mut opts, _rest) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    opts.config_token = SolveOptions::default().fingerprint_token();

    // Ratio-major over settings {1, 2}, same order as the rendered grid.
    let jobs = bvc_cluster::jobs::table4_jobs();
    let report = run_jobs("table4", &jobs, &opts);
    let cells: Vec<Vec<GridEntry>> = (0..9)
        .map(|r| (0..2).map(|c| report.grid_entry(r * 2 + c, Some(PAPER[r][c]))).collect())
        .collect();
    let rows: Vec<String> = RATIOS.iter().map(|(b, c)| format!("{b}:{c}")).collect();
    print!(
        "{}",
        render_grid(
            "Table 4 — orphans per attacker block u3, alpha = 1% (ours vs paper)",
            &rows,
            &["setting 1".to_string(), "setting 2".to_string()],
            &cells,
            2,
        )
    );
    println!("{}", report.summary());
    print!("{}", report.failure_legend());
    if opts.json {
        println!("{}", report.to_json());
    }
    println!();
    println!("Analytical Result 3: BU lets a non-profit-driven attacker orphan up to ~1.77");
    println!("compliant blocks per attacker block; in Bitcoin the same ratio never exceeds 1.");
    std::process::exit(report.exit_code());
}
