//! Regenerates **Figure 4**: the block size increasing game with miner
//! groups of 10% / 20% / 30% / 40%, plus the stable-set characterization
//! (Analytical Result 5).
//!
//! Run: `cargo run --release -p bvc-repro --bin figure4`

use bvc_games::{BlockSizeIncreasingGame, MinerGroup};

fn main() {
    let game = BlockSizeIncreasingGame::new(vec![
        MinerGroup { mpb: 1.0, power: 0.10 },
        MinerGroup { mpb: 2.0, power: 0.20 },
        MinerGroup { mpb: 4.0, power: 0.30 },
        MinerGroup { mpb: 8.0, power: 0.40 },
    ]);

    println!("Figure 4 — block size increasing game, powers 10/20/30/40");
    println!();
    let trace = game.play();
    for (i, round) in trace.rounds.iter().enumerate() {
        let votes: Vec<String> = round
            .votes
            .iter()
            .map(|(g, v)| format!("group {} votes {}", g + 1, if *v { "yes" } else { "no" }))
            .collect();
        println!(
            "round {}: motion to raise MG past group {}'s MPB — {}",
            i + 1,
            round.leaving + 1,
            votes.join(", ")
        );
        println!(
            "         -> {}",
            if round.passed {
                format!("passed: group {} is forced out", round.leaving + 1)
            } else {
                "failed: game terminates".to_string()
            }
        );
    }
    println!();
    println!(
        "terminal set: groups {:?} (0-based suffix start {})",
        (trace.terminal..game.len()).map(|i| i + 1).collect::<Vec<_>>(),
        trace.terminal
    );
    assert_eq!(trace.terminal, game.terminal_set(), "theorem == playout");
    println!("stable-set recursion agrees with the round-by-round playout.");
    println!();
    let u = game.utilities();
    println!("utilities: {u:?}");
    println!();
    println!("Analytical Result 5: group 1 (10%) is forced out even though the");
    println!("remaining groups then stop — a coalition of large miners raises the");
    println!("block size whenever the prospective survivors outweigh the rest.");
}
