//! Cross-validation: replays MDP-optimal policies on the **real chain
//! substrate** (block tree + BU node views) and on the MDP itself via Monte
//! Carlo, comparing three estimates of each utility:
//!
//! 1. exact — stationary-distribution evaluation of the policy;
//! 2. MDP-MC — sampled path through the MDP transitions;
//! 3. chain-MC — the `bvc-sim` replay on real chains (setting 1).
//!
//! All three must agree within sampling error; this closes the loop between
//! the analytic model and the chain semantics.
//!
//! Run: `cargo run --release -p bvc-repro --bin crossval`
//!
//! Each cell runs isolated in the sweep runner: a disagreement panics that
//! cell only, the remaining cells still report, and the binary exits
//! nonzero. Accepts the standard sweep-runner flags (see
//! `bvc_repro::sweep`).

use bvc_bu::{AttackConfig, AttackModel, AttackState, IncentiveModel, Setting, SolveOptions};
use bvc_mdp::solve::{sample_path, XorShift64};
use bvc_repro::sweep::{run_sweep, CellContext, SweepOptions};
use bvc_sim::AttackReplay;

const STEPS: usize = 400_000;

type CellSpec = (f64, (u32, u32), IncentiveModel, &'static str);

/// Computes all three estimators for one cell and cross-checks them.
/// Returns `[exact, mdp_mc, chain_mc]`; panics (isolated to this cell) when
/// the estimators disagree beyond sampling error.
fn validate(i: usize, spec: &CellSpec, ctx: &CellContext) -> Result<Vec<f64>, bvc_mdp::MdpError> {
    let (alpha, ratio, incentive, which) = spec;
    let cfg = AttackConfig::with_ratio(*alpha, *ratio, Setting::One, *incentive);
    let model = AttackModel::build(cfg)?;
    let opts = ctx.solve_options::<SolveOptions>();
    let sol = match *which {
        "u1" => model.optimal_relative_revenue(&opts),
        "u2" => model.optimal_absolute_revenue(&opts),
        _ => model.optimal_orphan_rate(&opts),
    }?;

    let exact = model.evaluate(&sol.policy)?;
    let exact_v = match *which {
        "u1" => exact.u1,
        "u2" => exact.u2,
        _ => exact.u3,
    };

    // Monte Carlo through the MDP transitions.
    let base = model.id_of(&AttackState::BASE).expect("base reachable");
    let mut rng = XorShift64::new(1000 + i as u64);
    let path = sample_path(model.mdp(), &sol.policy, base, STEPS, &mut rng)?;
    let t = path.component_totals;
    let (ra, ro, oa, oo, ds) = (t[0], t[1], t[2], t[3], t[4]);
    let mdp_mc = match *which {
        "u1" => ra / (ra + ro),
        "u2" => (ra + ds) / STEPS as f64,
        _ => {
            if ra + oa == 0.0 {
                0.0
            } else {
                oo / (ra + oa)
            }
        }
    };

    // Monte Carlo on the real chain substrate.
    let mut replay = AttackReplay::new(&model, &sol.policy, 2000 + i as u64);
    let report = replay.run(STEPS);
    let chain_mc = match *which {
        "u1" => report.u1(),
        "u2" => report.u2(),
        _ => report.u3(),
    };

    assert!(
        (mdp_mc - exact_v).abs() < 0.02 && (chain_mc - exact_v).abs() < 0.05,
        "cross-validation failed: exact {exact_v:.4} vs MDP-MC {mdp_mc:.4} / chain-MC {chain_mc:.4}"
    );
    Ok(vec![exact_v, mdp_mc, chain_mc])
}

fn main() {
    let (mut opts, _rest) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    opts.config_token = format!("{};steps={STEPS}", SolveOptions::default().fingerprint_token());

    println!("MDP <-> chain-substrate cross-validation ({STEPS} sampled blocks per run)");
    println!();
    let cells: Vec<CellSpec> = vec![
        (0.25, (1u32, 1u32), IncentiveModel::CompliantProfitDriven, "u1"),
        (0.10, (1, 1), IncentiveModel::non_compliant_default(), "u2"),
        (0.10, (1, 2), IncentiveModel::non_compliant_default(), "u2"),
        (0.05, (1, 1), IncentiveModel::NonProfitDriven, "u3"),
        (0.01, (2, 3), IncentiveModel::NonProfitDriven, "u3"),
    ];
    let label_of = |(alpha, ratio, _, which): &CellSpec| {
        format!("{} alpha={}%, beta:gamma={}:{}", which, alpha * 100.0, ratio.0, ratio.1)
    };
    // The MC seeds are index-keyed, so the key carries the index to keep
    // journal entries honest about what they replay.
    let report = {
        let specs: Vec<(usize, CellSpec)> = cells.iter().cloned().enumerate().collect();
        run_sweep(
            "crossval",
            &specs,
            &opts,
            |(i, spec)| format!("#{i} {}", label_of(spec)),
            |(i, spec), ctx| validate(*i, spec, ctx),
        )
    };

    println!("{:<42} {:>9} {:>9} {:>9}", "cell", "exact", "MDP-MC", "chain-MC");
    for (i, spec) in cells.iter().enumerate() {
        let label = label_of(spec);
        match report.value(i) {
            Some(row) => println!("{label:<42} {:>9.4} {:>9.4} {:>9.4}", row[0], row[1], row[2]),
            None => {
                let reason = report.cells[i]
                    .outcome
                    .as_ref()
                    .err()
                    .map(|f| f.reason_code())
                    .unwrap_or_else(|| "?".to_string());
                println!("{label:<42} FAIL({reason})");
            }
        }
    }
    println!();
    if report.has_failures() {
        println!("cross-validation INCOMPLETE: see the failure legend below.");
    } else {
        println!("all three estimators agree: the MDP's transition semantics match the");
        println!("behaviour of real BU node views over a shared block tree.");
    }
    println!("{}", report.summary());
    print!("{}", report.failure_legend());
    if opts.json {
        println!("{}", report.to_json());
    }
    std::process::exit(report.exit_code());
}
