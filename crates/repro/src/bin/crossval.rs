//! Cross-validation: replays MDP-optimal policies on the **real chain
//! substrate** (block tree + BU node views) and on the MDP itself via Monte
//! Carlo, comparing three estimates of each utility:
//!
//! 1. exact — stationary-distribution evaluation of the policy;
//! 2. MDP-MC — sampled path through the MDP transitions;
//! 3. chain-MC — the `bvc-sim` replay on real chains (setting 1).
//!
//! All three must agree within sampling error; this closes the loop between
//! the analytic model and the chain semantics.
//!
//! Run: `cargo run --release -p bvc-repro --bin crossval`

use bvc_bu::{AttackConfig, AttackModel, AttackState, IncentiveModel, Setting, SolveOptions};
use bvc_mdp::solve::{sample_path, XorShift64};
use bvc_sim::AttackReplay;

const STEPS: usize = 400_000;

fn main() {
    println!("MDP <-> chain-substrate cross-validation ({STEPS} sampled blocks per run)");
    println!();
    let cells = [
        (0.25, (1u32, 1u32), IncentiveModel::CompliantProfitDriven, "u1"),
        (0.10, (1, 1), IncentiveModel::non_compliant_default(), "u2"),
        (0.10, (1, 2), IncentiveModel::non_compliant_default(), "u2"),
        (0.05, (1, 1), IncentiveModel::NonProfitDriven, "u3"),
        (0.01, (2, 3), IncentiveModel::NonProfitDriven, "u3"),
    ];
    println!(
        "{:<42} {:>9} {:>9} {:>9}",
        "cell", "exact", "MDP-MC", "chain-MC"
    );
    for (i, (alpha, ratio, incentive, which)) in cells.iter().enumerate() {
        let cfg = AttackConfig::with_ratio(*alpha, *ratio, Setting::One, incentive.clone());
        let model = AttackModel::build(cfg).expect("model builds");
        let opts = SolveOptions::default();
        let sol = match *which {
            "u1" => model.optimal_relative_revenue(&opts),
            "u2" => model.optimal_absolute_revenue(&opts),
            _ => model.optimal_orphan_rate(&opts),
        }
        .expect("solver converges");

        let exact = model.evaluate(&sol.policy).expect("evaluation converges");
        let exact_v = match *which {
            "u1" => exact.u1,
            "u2" => exact.u2,
            _ => exact.u3,
        };

        // Monte Carlo through the MDP transitions.
        let base = model.id_of(&AttackState::BASE).expect("base reachable");
        let mut rng = XorShift64::new(1000 + i as u64);
        let path =
            sample_path(model.mdp(), &sol.policy, base, STEPS, &mut rng).expect("sampling");
        let t = path.component_totals;
        let (ra, ro, oa, oo, ds) = (t[0], t[1], t[2], t[3], t[4]);
        let mdp_mc = match *which {
            "u1" => ra / (ra + ro),
            "u2" => (ra + ds) / STEPS as f64,
            _ => {
                if ra + oa == 0.0 {
                    0.0
                } else {
                    oo / (ra + oa)
                }
            }
        };

        // Monte Carlo on the real chain substrate.
        let mut replay = AttackReplay::new(&model, &sol.policy, 2000 + i as u64);
        let report = replay.run(STEPS);
        let chain_mc = match *which {
            "u1" => report.u1(),
            "u2" => report.u2(),
            _ => report.u3(),
        };

        let label = format!(
            "{} alpha={}%, beta:gamma={}:{}",
            which,
            alpha * 100.0,
            ratio.0,
            ratio.1
        );
        println!("{label:<42} {exact_v:>9.4} {mdp_mc:>9.4} {chain_mc:>9.4}");
        assert!(
            (mdp_mc - exact_v).abs() < 0.02 && (chain_mc - exact_v).abs() < 0.05,
            "cross-validation failed for {label}"
        );
    }
    println!();
    println!("all three estimators agree: the MDP's transition semantics match the");
    println!("behaviour of real BU node views over a shared block tree.");
}
