//! Cross-validation: replays MDP-optimal policies on the **real chain
//! substrate** (block tree + BU node views) and on the MDP itself via Monte
//! Carlo, comparing three estimates of each utility:
//!
//! 1. exact — stationary-distribution evaluation of the policy;
//! 2. MDP-MC — sampled path through the MDP transitions;
//! 3. chain-MC — the `bvc-sim` replay on real chains (setting 1).
//!
//! All three must agree within sampling error; this closes the loop between
//! the analytic model and the chain semantics.
//!
//! Run: `cargo run --release -p bvc-repro --bin crossval`
//!
//! Each cell runs isolated in the sweep runner: a disagreement panics that
//! cell only, the remaining cells still report, and the binary exits
//! nonzero. Accepts the standard sweep-runner flags (see
//! `bvc_repro::sweep`).

use bvc_bu::SolveOptions;
use bvc_cluster::jobs::{crossval_specs, CROSSVAL_STEPS};
use bvc_repro::sweep::{run_jobs, JobSpec, SweepOptions};

fn main() {
    let (mut opts, _rest) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    opts.config_token =
        format!("{};steps={CROSSVAL_STEPS}", SolveOptions::default().fingerprint_token());

    println!("MDP <-> chain-substrate cross-validation ({CROSSVAL_STEPS} sampled blocks per run)");
    println!();
    // The cell bodies (and the index-keyed MC seeds) live in the job
    // registry, so a cluster worker replays exactly this binary's solves.
    let specs = crossval_specs();
    let jobs: Vec<JobSpec> = (0..specs.len()).map(|index| JobSpec::Crossval { index }).collect();
    let report = run_jobs("crossval", &jobs, &opts);

    println!("{:<42} {:>9} {:>9} {:>9}", "cell", "exact", "MDP-MC", "chain-MC");
    for (i, (alpha, ratio, _, which)) in specs.iter().enumerate() {
        let label =
            format!("{} alpha={}%, beta:gamma={}:{}", which, alpha * 100.0, ratio.0, ratio.1);
        match report.value(i) {
            Some(row) => println!("{label:<42} {:>9.4} {:>9.4} {:>9.4}", row[0], row[1], row[2]),
            None => {
                let reason = report.cells[i]
                    .outcome
                    .as_ref()
                    .err()
                    .map(|f| f.reason_code())
                    .unwrap_or_else(|| "?".to_string());
                println!("{label:<42} FAIL({reason})");
            }
        }
    }
    println!();
    if report.has_failures() {
        println!("cross-validation INCOMPLETE: see the failure legend below.");
    } else {
        println!("all three estimators agree: the MDP's transition semantics match the");
        println!("behaviour of real BU node views over a shared block tree.");
    }
    println!("{}", report.summary());
    print!("{}", report.failure_legend());
    if opts.json {
        println!("{}", report.to_json());
    }
    std::process::exit(report.exit_code());
}
