//! Regenerates the §5.1 analysis: Nash equilibria of the **EB choosing
//! game** (Analytical Result 4), including the April-2017 interpretation
//! (§6.1) and the breakdown with a majority miner.
//!
//! Run: `cargo run --release -p bvc-repro --bin eb_game`

use bvc_games::EbChoosingGame;

fn main() {
    println!("EB choosing game — Nash equilibria (Analytical Result 4)");
    println!();

    // A representative sub-50% power distribution.
    let g = EbChoosingGame::new(vec![0.05, 0.10, 0.15, 0.30, 0.40]);
    let eq = g.enumerate_equilibria().expect("5 miners is well under the cap");
    println!("powers {:?}:", g.powers());
    for p in &eq {
        println!("  equilibrium: {p:?} (utilities {:?})", g.utilities(p));
    }
    assert_eq!(eq.len(), 2, "exactly the two unanimous profiles");
    assert!(eq.iter().all(|p| p.iter().all(|&c| c == p[0])));
    println!("  -> exactly the unanimous profiles: consensus can hold, but the game");
    println!("     does not select WHICH EB — and says nothing under perturbations.");
    println!();

    // Best-response dynamics from a split start converge to unanimity.
    let (profile, nash) = g.best_response_dynamics(vec![0, 1, 0, 1, 0], 100);
    println!("best-response dynamics from [0,1,0,1,0] -> {profile:?} (NE: {nash})");
    println!();

    // Fragility (§6.2: the emergent consensus "is easily disrupted even
    // when it holds"): the smallest coalition whose joint EB deviation
    // flips the whole network under best-response dynamics.
    let g2017 = EbChoosingGame::new(vec![0.17, 0.13, 0.10, 0.10, 0.08, 0.07, 0.06, 0.29]);
    let k =
        g2017.minimal_flipping_coalition().expect("8 miners is under the cap").expect("flippable");
    println!("fragility on the 2017-style pool distribution:");
    println!("  minimal flipping coalition: {k} parties");
    println!("  -> a handful of pools signalling a new EB drags the whole network");
    println!("     to it; and with a near-majority miner, even a SINGLE small");
    println!("     defector can trigger the flip (the big miner prefers the");
    println!("     smaller winning coalition - see the ebgame tests).");
    println!();

    // §6.1: with a majority already on one EB, following is rational —
    // the paper's explanation of why all BU miners signalled EB = 1 MB.
    let april = EbChoosingGame::new(vec![0.6, 0.25, 0.15]);
    println!("majority-miner game, powers {:?}:", april.powers());
    let eq = april.enumerate_equilibria().expect("3 miners is well under the cap");
    println!("  pure equilibria: {}", eq.len());
    assert!(eq.is_empty());
    println!("  -> with a strict majority miner NO pure equilibrium exists: the");
    println!("     majority miner always profits from defecting to win alone, and");
    println!("     every loser profits from rejoining — the consensus claim of the");
    println!("     paper's proof explicitly needs every miner below 50%.");
}
