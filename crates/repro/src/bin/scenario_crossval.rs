//! Scenario-grid cross-validation: replays the **optimal MDP policy** of
//! selected Table 2 setting-1 cells on N-node BU networks (heterogeneous
//! hash rates, two `EB` groups) and checks that the simulated relative
//! revenue converges to the exact MDP `u1`.
//!
//! Each setting runs `CROSSVAL_REPS` independently-seeded replications of
//! a `CROSSVAL_NODES`-node network for `CROSSVAL_BLOCKS` blocks; the
//! replication mean must lie within `crossval_tolerance` (the 95% CI
//! half-width of the mean, floored at 0.02 absolute) of the exact value.
//! Under setting-1 semantics the aggregation of many nodes into the
//! model's three miners is exact, so a miss beyond sampling error means a
//! bug in the network engine, the policy export, or the MDP itself.
//!
//! Run: `cargo run --release -p bvc-repro --bin scenario_crossval`
//!
//! Accepts the standard sweep-runner flags (see `bvc_repro::sweep`), so
//! replications shard across threads, journal, resume, and run
//! distributed (`--cluster`) with bit-identical journals.

use bvc_bu::SolveOptions;
use bvc_repro::sweep::{run_jobs, JobSpec, SweepOptions};
use bvc_scenario::{
    crossval_cells, crossval_tolerance, CROSSVAL_BLOCKS, CROSSVAL_NODES, CROSSVAL_REPS,
    CROSSVAL_SETTINGS,
};

fn main() {
    let (mut opts, _rest) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    // Must match the `scenario-crossval` workload token so journals from
    // either entry point are interchangeable.
    opts.config_token = format!(
        "{};scn-xval blocks={CROSSVAL_BLOCKS} reps={CROSSVAL_REPS}",
        SolveOptions::default().fingerprint_token()
    );

    println!(
        "MDP policy <-> {CROSSVAL_NODES}-node network cross-validation \
         ({CROSSVAL_REPS} x {CROSSVAL_BLOCKS} blocks per setting)"
    );
    println!();
    let cells = crossval_cells();
    let jobs: Vec<JobSpec> =
        (0..cells.len()).map(|index| JobSpec::ScenarioCrossval { index }).collect();
    let report = run_jobs("scenario-crossval", &jobs, &opts);

    let mut converged = true;
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>9}  verdict",
        "setting", "exact u1", "mean sim", "|diff|", "tol"
    );
    for (s, (alpha, ratio)) in CROSSVAL_SETTINGS.iter().enumerate() {
        let label = format!("alpha={}% beta:gamma={}:{}", alpha * 100.0, ratio.0, ratio.1);
        let mut sims = Vec::new();
        let mut exact = None;
        for rep in 0..CROSSVAL_REPS {
            if let Some(row) = report.value(s * CROSSVAL_REPS + rep) {
                sims.push(row[0]);
                exact = Some(row[1]);
            }
        }
        let Some(exact_u1) = exact else {
            println!("{label:<28} FAIL(no replication solved)");
            converged = false;
            continue;
        };
        let n = sims.len() as f64;
        let mean = sims.iter().sum::<f64>() / n;
        // Sample variance of the replications -> standard error of the
        // mean (0 when only one replication survived; the tolerance
        // floor still applies).
        let var = if sims.len() > 1 {
            sims.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let stderr = (var / n).sqrt();
        let tol = crossval_tolerance(stderr);
        let diff = (mean - exact_u1).abs();
        let ok = diff <= tol && sims.len() == CROSSVAL_REPS;
        converged &= ok;
        println!(
            "{label:<28} {exact_u1:>9.4} {mean:>9.4} {diff:>9.4} {tol:>9.4}  {}",
            if ok { "ok" } else { "MISS" }
        );
    }
    println!();
    if converged && !report.has_failures() {
        println!("every setting converged: thousands-of-node aggregate dynamics reproduce");
        println!("the three-miner MDP's optimal relative revenue within sampling error.");
    } else {
        println!("cross-validation INCOMPLETE: see the verdicts and failure legend above.");
    }
    println!("{}", report.summary());
    print!("{}", report.failure_legend());
    if opts.json {
        println!("{}", report.to_json());
    }
    std::process::exit(if converged { report.exit_code() } else { 1 });
}
