//! Regenerates **Table 3 (bottom panel)**: the optimal combined
//! selfish-mining + double-spending attack on Bitcoin (after Sompolinsky &
//! Zohar, as modified by the paper: four confirmations, `R_DS` worth ten
//! block rewards).
//!
//! Run: `cargo run --release -p bvc-repro --bin table3_bitcoin`
//!
//! Accepts the standard sweep-runner flags (see `bvc_repro::sweep`); exits
//! nonzero when any cell failed.

use bvc_bitcoin::SolveOptions;
use bvc_repro::sweep::{run_jobs, SweepOptions};
use bvc_repro::{render_grid, GridEntry};

const ALPHAS: [f64; 4] = [0.10, 0.15, 0.20, 0.25];
const GAMMAS: [(f64, &str); 2] = [(0.5, "P(win tie)=50%"), (1.0, "P(win tie)=100%")];

/// Published values: rows γ ∈ {0.5, 1.0}, columns α.
const PAPER: [[f64; 4]; 2] = [[0.1, 0.15, 0.2, 0.38], [0.11, 0.18, 0.30, 0.52]];

fn main() {
    let (mut opts, _rest) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    opts.config_token = SolveOptions::default().fingerprint_token();

    // The job registry enumerates the γ-major grid plus the two
    // honest-degeneration demo cells, which ride along as extra sweep
    // cells so they inherit the same isolation and checkpointing.
    let jobs = bvc_cluster::jobs::table3_bitcoin_jobs();
    let report = run_jobs("table3-bitcoin", &jobs, &opts);

    let cells: Vec<Vec<GridEntry>> = (0..2)
        .map(|r| (0..4).map(|c| report.grid_entry(r * 4 + c, Some(PAPER[r][c]))).collect())
        .collect();
    let rows: Vec<String> = GAMMAS.iter().map(|(_, l)| l.to_string()).collect();
    let cols: Vec<String> = ALPHAS.iter().map(|a| format!("a={}%", a * 100.0)).collect();
    print!(
        "{}",
        render_grid(
            "Table 3 (bottom) — selfish mining + double-spending on Bitcoin",
            &rows,
            &cols,
            &cells,
            3,
        )
    );
    println!();
    println!(
        "Below 10% mining power the optimal strategy degenerates to honest mining (u2 = alpha):"
    );
    for (i, gamma) in [0.5, 1.0].into_iter().enumerate() {
        match report.value(8 + i).and_then(|v| v.first()) {
            Some(v) => println!("  alpha=5%, gamma={gamma}: u2 = {v:.4}"),
            None => println!("  alpha=5%, gamma={gamma}: u2 = FAIL"),
        }
    }
    println!("{}", report.summary());
    print!("{}", report.failure_legend());
    if opts.json {
        println!("{}", report.to_json());
    }
    std::process::exit(report.exit_code());
}
