//! Regenerates **Table 3 (bottom panel)**: the optimal combined
//! selfish-mining + double-spending attack on Bitcoin (after Sompolinsky &
//! Zohar, as modified by the paper: four confirmations, `R_DS` worth ten
//! block rewards).
//!
//! Run: `cargo run --release -p bvc-repro --bin table3_bitcoin`

use bvc_bitcoin::{BitcoinConfig, BitcoinModel, SolveOptions};
use bvc_repro::{parallel_map, render_grid, Cell};

const ALPHAS: [f64; 4] = [0.10, 0.15, 0.20, 0.25];
const GAMMAS: [(f64, &str); 2] = [(0.5, "P(win tie)=50%"), (1.0, "P(win tie)=100%")];

/// Published values: rows γ ∈ {0.5, 1.0}, columns α.
const PAPER: [[f64; 4]; 2] = [[0.1, 0.15, 0.2, 0.38], [0.11, 0.18, 0.30, 0.52]];

fn main() {
    let mut jobs = Vec::new();
    for (g, _) in GAMMAS {
        for a in ALPHAS {
            jobs.push((a, g));
        }
    }
    let values = parallel_map(jobs, |&(alpha, gamma)| {
        BitcoinModel::build(BitcoinConfig::smds(alpha, gamma))
            .expect("model builds")
            .optimal_absolute_revenue(&SolveOptions::default())
            .expect("solver converges")
            .value
    });
    let cells: Vec<Vec<Option<Cell>>> = (0..2)
        .map(|r| {
            (0..4)
                .map(|c| {
                    Some(Cell { paper: Some(PAPER[r][c]), ours: values[r * 4 + c] })
                })
                .collect()
        })
        .collect();
    let rows: Vec<String> = GAMMAS.iter().map(|(_, l)| l.to_string()).collect();
    let cols: Vec<String> = ALPHAS.iter().map(|a| format!("a={}%", a * 100.0)).collect();
    print!(
        "{}",
        render_grid(
            "Table 3 (bottom) — selfish mining + double-spending on Bitcoin",
            &rows,
            &cols,
            &cells,
            3,
        )
    );
    println!();
    println!("Below 10% mining power the optimal strategy degenerates to honest mining (u2 = alpha):");
    for gamma in [0.5, 1.0] {
        let m = BitcoinModel::build(BitcoinConfig::smds(0.05, gamma)).unwrap();
        let v = m.optimal_absolute_revenue(&SolveOptions::default()).unwrap().value;
        println!("  alpha=5%, gamma={gamma}: u2 = {v:.4}");
    }
}
