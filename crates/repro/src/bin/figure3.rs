//! Regenerates **Figure 3**: a concrete trace in which one Alice block
//! orphans two of Bob's and Carol's blocks (the mechanism behind Table 4's
//! `u3 > 1`).
//!
//! The figure's block sequence: Alice forks with a block of size `EB_C`
//! (Chain 2); Carol mines two blocks on it; Bob mines three blocks on Chain
//! 1; when Chain 1 outgrows Chain 2, Carol switches back — Alice's single
//! block has orphaned Carol's two.
//!
//! Run: `cargo run --release -p bvc-repro --bin figure3`

use bvc_chain::{ascii_tree, Block, BlockId, BlockTree, BuRizunRule, ByteSize, MinerId, NodeView};

const ALICE: MinerId = MinerId(0);
const BOB: MinerId = MinerId(1);
const CAROL: MinerId = MinerId(2);

fn main() {
    let eb_b = ByteSize::mb(1);
    let eb_c = ByteSize::mb(16);
    let ad = 6;
    let small = ByteSize(900_000);
    let mut tree = BlockTree::new();
    let mut bob = NodeView::new(BuRizunRule::without_sticky_gate(eb_b, ad));
    let mut carol = NodeView::new(BuRizunRule::without_sticky_gate(eb_c, ad));
    let deliver = |tree: &BlockTree,
                   bob: &mut NodeView<BuRizunRule>,
                   carol: &mut NodeView<BuRizunRule>,
                   b: BlockId| {
        bob.receive(tree, b);
        carol.receive(tree, b);
    };

    println!("Figure 3 — two compliant blocks orphaned by one Alice block (AD = {ad})");
    println!();

    // Alice's fork block (size EB_C): Chain 2 starts.
    let a1 = tree.extend(BlockId::GENESIS, eb_c, ALICE);
    deliver(&tree, &mut bob, &mut carol, a1);
    println!("t1: Alice mines the fork block {a1} (size {eb_c}) — Carol follows, Bob rejects");

    // Carol extends Chain 2 twice.
    let c1 = tree.extend(carol.accepted_tip(), small, CAROL);
    deliver(&tree, &mut bob, &mut carol, c1);
    let c2 = tree.extend(carol.accepted_tip(), small, CAROL);
    deliver(&tree, &mut bob, &mut carol, c2);
    println!("t2: Carol mines {c1} and {c2} on Chain 2 (l2 = 3)");

    // Bob extends Chain 1 three times.
    let b1 = tree.extend(bob.accepted_tip(), small, BOB);
    deliver(&tree, &mut bob, &mut carol, b1);
    let b2 = tree.extend(bob.accepted_tip(), small, BOB);
    deliver(&tree, &mut bob, &mut carol, b2);
    let b3 = tree.extend(bob.accepted_tip(), small, BOB);
    deliver(&tree, &mut bob, &mut carol, b3);
    println!("t3: Bob mines {b1}, {b2}, {b3} on Chain 1 (l1 = 3)");

    // Chain 1 and Chain 2 are tied at 3; one more Bob block outgrows.
    let b4 = tree.extend(bob.accepted_tip(), small, BOB);
    deliver(&tree, &mut bob, &mut carol, b4);
    println!("t4: Bob mines {b4}: Chain 1 outgrows Chain 2 — Carol switches back");

    assert_eq!(bob.accepted_tip(), b4);
    assert_eq!(carol.accepted_tip(), b4, "Carol switched to Chain 1");
    let orphans = tree.orphaned_by(c2, b4);
    assert_eq!(orphans.len(), 3);
    let carol_orphans = orphans.iter().filter(|&&b| tree.block(b).miner == CAROL).count();
    let alice_orphans = orphans.iter().filter(|&&b| tree.block(b).miner == ALICE).count();
    assert_eq!(carol_orphans, 2);
    assert_eq!(alice_orphans, 1);

    println!();
    println!("final block tree (o = orphaned):");
    let winner = b4;
    print!(
        "{}",
        ascii_tree(&tree, &|b: &Block| {
            if tree.is_ancestor(b.id, winner) {
                String::new()
            } else {
                "o".into()
            }
        })
    );
    println!();
    println!(
        "result: Chain 2 orphaned — {carol_orphans} Carol blocks and {alice_orphans} Alice block"
    );
    println!("        u3 for this episode = {carol_orphans} / {alice_orphans} = 2.0");
    println!("        (Table 4 gives the long-run optimum, up to 1.77 at β:γ = 2:3)");
}
