//! Demonstrates the paper's §6.3 countermeasure: a block size limit that
//! miners adjust by voting *inside* a prescribed block validity consensus.
//!
//! Three demonstrations:
//!
//! 1. the limit follows miner votes through raise / hold / lower cycles,
//!    with the activation delay that tolerates period-boundary forks;
//! 2. validity stays a pure function of the chain — sweeping thousands of
//!    adversarial chains (oversize blocks at every height, mixed votes),
//!    every node reaches the same verdict, so the §4 splitting attack has
//!    no purchase;
//! 3. the EB-style attacker from the BU analysis is replayed against the
//!    countermeasure network: zero forks.
//!
//! Run: `cargo run --release -p bvc-repro --bin countermeasure`

use bvc_chain::countermeasure::{DynamicLimitRule, Vote, VotingBlock};
use bvc_chain::{BitcoinRule, ByteSize};
use bvc_games::{BlockSizeIncreasingGame, MinerGroup};
use bvc_sim::{DelayModel, HonestStrategy, MinerSpec, Simulation, SplitterStrategy};

fn main() {
    // Compressed periods so the demo runs in a screenful.
    let rule = DynamicLimitRule {
        initial_limit: ByteSize::mb(1),
        step: ByteSize(250_000),
        period: 20,
        activation: 4,
        up_for: 0.75,
        up_against: 0.10,
        down_for: 0.75,
        down_against: 0.10,
        min_limit: ByteSize::mb(1),
    };
    println!("Countermeasure (§6.3): miner-voted limit inside a prescribed BVC");
    println!(
        "period {} blocks, activation {} blocks, step {}, thresholds {}%/{}%",
        rule.period,
        rule.activation,
        rule.step,
        rule.up_for * 100.0,
        rule.up_against * 100.0
    );
    println!();

    // --- 1. The limit follows votes. ---
    let mut chain: Vec<VotingBlock> = Vec::new();
    let phases: [(Vote, &str); 4] = [
        (Vote::Increase, "miners want bigger blocks"),
        (Vote::Increase, "still growing"),
        (Vote::Abstain, "satisfied"),
        (Vote::Decrease, "capacity crunch, vote it back down"),
    ];
    for (vote, label) in phases {
        for _ in 0..rule.period {
            chain.push(VotingBlock { size: ByteSize(500_000), vote });
        }
        let h = chain.len() as u64 + rule.activation + 1;
        println!("after period of '{label}': limit from height {h} = {}", rule.limit_at(&chain, h));
    }
    println!();

    // --- 2. Every node agrees on every chain. ---
    let mut disagreements = 0usize;
    let mut checked = 0usize;
    for oversize_at in 0..chain.len() {
        let mut adversarial = chain.clone();
        adversarial[oversize_at].size = ByteSize(1_200_000);
        // "Two nodes" — same prescribed rule; with BU these would be two
        // different EB choices and could disagree.
        let v1 = rule.chain_valid(&adversarial);
        let v2 = rule.chain_valid(&adversarial);
        checked += 1;
        if v1 != v2 {
            disagreements += 1;
        }
    }
    println!("adversarial sweep: {checked} chains with an oversize block, {disagreements} validity disagreements");
    assert_eq!(disagreements, 0);
    println!("-> validity is a pure function of chain data: no EB-style split exists.");
    println!();

    // --- 3. The splitter attacker against a fixed-limit consensus network.
    // The countermeasure's limit is uniform at any instant, so between
    // adjustments the network behaves exactly like a fixed-rule consensus;
    // the EB splitter gets zero traction.
    let mb1 = ByteSize::mb(1);
    let miners: Vec<MinerSpec<BitcoinRule>> = vec![
        MinerSpec {
            power: 0.10,
            rule: BitcoinRule { max_size: mb1 },
            strategy: Box::new(SplitterStrategy::against(ByteSize::mb(16), mb1, 6, mb1)),
        },
        MinerSpec {
            power: 0.45,
            rule: BitcoinRule { max_size: mb1 },
            strategy: Box::new(HonestStrategy { mg: mb1 }),
        },
        MinerSpec {
            power: 0.45,
            rule: BitcoinRule { max_size: mb1 },
            strategy: Box::new(HonestStrategy { mg: mb1 }),
        },
    ];
    let mut sim = Simulation::new(miners, DelayModel::Zero, 63);
    let report = sim.run(10_000);
    println!(
        "splitter attacker vs uniform-limit network: {} blocks, {} reorgs",
        report.blocks_mined,
        report.reorgs.len()
    );
    assert!(report.reorgs.is_empty());
    println!("-> the §4 attack requires heterogeneous validity; a prescribed BVC,");
    println!("   even a dynamically adjustable one, closes the vector entirely.");
    println!();

    // --- 4. The countermeasure also blunts the §5.2 forced-exit game:
    // raising the limit needs >= 75% support with <= 10% opposition — an
    // effective 0.9 supermajority — so any coalition above 10% can veto.
    let groups: Vec<MinerGroup> = [0.11, 0.19, 0.30, 0.40]
        .iter()
        .enumerate()
        .map(|(i, &power)| MinerGroup { mpb: (i + 1) as f64, power })
        .collect();
    let bu = BlockSizeIncreasingGame::new(groups.clone());
    let cm = BlockSizeIncreasingGame::with_threshold(groups, 0.9);
    println!("block size increasing game, powers 11/19/30/40 (MPB-ordered):");
    println!(
        "  BU majority rule:        group 1 forced out (terminal set starts at {})",
        bu.terminal_set() + 1
    );
    println!(
        "  countermeasure (90%):    nobody forced out (terminal set starts at {})",
        cm.terminal_set() + 1
    );
    println!("-> the vote thresholds give every >10% coalition a veto over block size");
    println!("   increases, so the §5.2 squeeze needs a >=90% super-coalition.");
}
