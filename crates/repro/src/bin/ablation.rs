//! Parameter ablation for §6.2's claim that "adjusting the parameters only
//! trades one risk for another":
//!
//! * sweeping `AD` — a large `AD` lets the attacker keep the chain forked
//!   longer (higher orphan damage `u3` and more double-spend depth), while
//!   a small `AD` lets the attacker trigger sticky gates (and phase-3 giant
//!   blocks) with less effort — measured here as the rate of gate-opening
//!   events under the optimal `u2` policy;
//! * sweeping the sticky-gate length in setting 2 — a longer gate period
//!   gives more phase-2/phase-3 exposure per trigger, a shorter one lets
//!   the attacker split the network more often.
//!
//! Run: `cargo run --release -p bvc-repro --bin ablation`
//!
//! Accepts the standard sweep-runner flags (see `bvc_repro::sweep`); exits
//! nonzero when any cell failed.

use bvc_bu::SolveOptions;
use bvc_cluster::jobs::{ABLATION_ADS, ABLATION_GATES};
use bvc_repro::sweep::{run_jobs, JobSpec, SweepOptions};

fn main() {
    let (mut opts, _rest) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    opts.config_token = SolveOptions::default().fingerprint_token();

    println!("Parameter ablation (alpha = 10%)");
    println!();

    // --- AD sweep. ---
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>14} {:>14} {:>16}",
        "AD", "u2 (S1)", "u3 (S1)", "u1 (S1)", "orphans/1000", "P(fork>=4)", "blocks to gate"
    );
    let ads = ABLATION_ADS;
    let ad_jobs: Vec<JobSpec> = ads.iter().map(|&ad| JobSpec::AblationAd { ad }).collect();
    let ad_report = run_jobs("ablation-ad", &ad_jobs, &opts);
    for (i, ad) in ads.iter().enumerate() {
        match ad_report.value(i) {
            Some(row) => {
                let [u2, u3, u1, orphan_rate, deep_fork, gate_time] = row[..] else {
                    unreachable!("ad_row always packs six values")
                };
                println!(
                    "{:<6} {:>10.4} {:>10.3} {:>12.4} {:>14.2} {:>14.4} {:>16}",
                    ad,
                    u2,
                    u3,
                    u1,
                    orphan_rate * 1000.0,
                    deep_fork,
                    if gate_time.is_nan() {
                        "never".to_string()
                    } else {
                        format!("{gate_time:.0}")
                    }
                );
            }
            None => {
                let reason = ad_report.cells[i]
                    .outcome
                    .as_ref()
                    .err()
                    .map(|f| f.reason_code())
                    .unwrap_or_else(|| "?".to_string());
                println!("{:<6} FAIL({reason})", ad);
            }
        }
    }
    println!();
    println!("reading: every attack utility and the deep-fork probability grow with AD,");
    println!("while the expected time to trigger a sticky gate SHRINKS as AD gets small —");
    println!("the §6.2 trade-off: long forks (double-spend depth) vs cheap gate-openings");
    println!("(giant-block exposure). No AD avoids both.");
    println!();

    // --- Sticky-gate length sweep (setting 2). ---
    // Swept at the asymmetric ratio 1:2: Chain-2 wins (which trigger the
    // gate) are frequent there, and the phase-2 regime — roles swapped, so
    // an effective 2:1 — is *more* profitable for the attacker than phase
    // 1. A longer gate then parks the system in the attacker's preferred
    // regime for longer. At 1:1 the phases coincide and the gate length is
    // irrelevant by symmetry.
    println!("{:<12} {:>10} {:>10}   (beta:gamma = 1:2)", "gate blocks", "u2 (S2)", "u3 (S2)");
    let gates = ABLATION_GATES;
    let gate_jobs: Vec<JobSpec> =
        gates.iter().map(|&gate| JobSpec::AblationGate { gate }).collect();
    let gate_report = run_jobs("ablation-gate", &gate_jobs, &opts);
    for (i, gate) in gates.iter().enumerate() {
        match gate_report.value(i) {
            Some(row) => println!("{:<12} {:>10.4} {:>10.3}", gate, row[0], row[1]),
            None => println!("{:<12} FAIL", gate),
        }
    }
    println!();
    println!("reading: at 1:2 a chain-2 win is frequent and phase 2 (roles swapped: an");
    println!("effective 2:1) is the attacker's preferred regime, so u2 grows with the");
    println!("gate length toward the 2:1 setting-1 value; a short gate instead returns");
    println!("to phase 1 quickly. Either way some attack mode stays open, and longer");
    println!("gates additionally expose the network to phase-3 giant-block attacks");
    println!("outside this model — the parameter only trades one risk for another.");
    println!("{}", ad_report.summary());
    println!("{}", gate_report.summary());
    print!("{}{}", ad_report.failure_legend(), gate_report.failure_legend());
    if opts.json {
        println!("{}", ad_report.to_json());
        println!("{}", gate_report.to_json());
    }
    std::process::exit(ad_report.exit_code().max(gate_report.exit_code()));
}
