//! Parameter ablation for §6.2's claim that "adjusting the parameters only
//! trades one risk for another":
//!
//! * sweeping `AD` — a large `AD` lets the attacker keep the chain forked
//!   longer (higher orphan damage `u3` and more double-spend depth), while
//!   a small `AD` lets the attacker trigger sticky gates (and phase-3 giant
//!   blocks) with less effort — measured here as the rate of gate-opening
//!   events under the optimal `u2` policy;
//! * sweeping the sticky-gate length in setting 2 — a longer gate period
//!   gives more phase-2/phase-3 exposure per trigger, a shorter one lets
//!   the attacker split the network more often.
//!
//! Run: `cargo run --release -p bvc-repro --bin ablation`
//!
//! Accepts the standard sweep-runner flags (see `bvc_repro::sweep`); exits
//! nonzero when any cell failed.

use bvc_bu::{rewards, AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};
use bvc_repro::sweep::{run_sweep, CellContext, SweepOptions};

fn config(
    ad: u8,
    gate: u16,
    ratio: (u32, u32),
    setting: Setting,
    incentive: IncentiveModel,
) -> AttackConfig {
    let mut cfg = AttackConfig::with_ratio(0.10, ratio, setting, incentive);
    cfg.ad = ad;
    cfg.gate_blocks = gate;
    cfg
}

/// One AD-sweep row packed for the journal:
/// `[u2, u3, u1, orphan_rate, deep_fork, gate_time]`, where a model whose
/// optimal policy never opens the gate stores `NaN` for `gate_time`.
fn ad_row(ad: u8, ctx: &CellContext) -> Result<Vec<f64>, bvc_mdp::MdpError> {
    let opts = ctx.solve_options::<SolveOptions>();
    let m2 = AttackModel::build(config(
        ad,
        144,
        (1, 1),
        Setting::One,
        IncentiveModel::non_compliant_default(),
    ))?;
    let s2 = m2.optimal_absolute_revenue(&opts)?;
    // Fork frequency under the optimal u2 policy: rate of leaving the
    // base state via Alice's fork block.
    let report = m2.evaluate(&s2.policy)?;
    let orphan_rate = report.rates[rewards::OA] + report.rates[rewards::OOTHERS];
    let m3 =
        AttackModel::build(config(ad, 144, (1, 1), Setting::One, IncentiveModel::NonProfitDriven))?;
    let s3 = m3.optimal_orphan_rate(&opts)?;
    let m1 = AttackModel::build(config(
        ad,
        144,
        (1, 1),
        Setting::One,
        IncentiveModel::CompliantProfitDriven,
    ))?;
    let s1 = m1.optimal_relative_revenue(&opts)?;
    // Episode metrics under the u2-optimal policy: how likely a fork
    // reaches double-spend depth, and how quickly the attacker opens a
    // sticky gate in setting 2 (a short gate keeps the sweep fast).
    let deep_fork = m2.fork_depth_probability(&s2.policy, 4)?;
    let gate_cfg = config(ad, 24, (1, 1), Setting::Two, IncentiveModel::non_compliant_default());
    let mg = AttackModel::build(gate_cfg)?;
    let sg = mg.optimal_absolute_revenue(&opts)?;
    let gate_time = mg.expected_blocks_to_gate_trigger(&sg.policy)?;
    Ok(vec![s2.value, s3.value, s1.value, orphan_rate, deep_fork, gate_time.unwrap_or(f64::NAN)])
}

fn main() {
    let (mut opts, _rest) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    opts.config_token = SolveOptions::default().fingerprint_token();

    println!("Parameter ablation (alpha = 10%)");
    println!();

    // --- AD sweep. ---
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>14} {:>14} {:>16}",
        "AD", "u2 (S1)", "u3 (S1)", "u1 (S1)", "orphans/1000", "P(fork>=4)", "blocks to gate"
    );
    let ads: Vec<u8> = vec![2, 3, 4, 6, 8, 12, 20];
    let ad_report =
        run_sweep("ablation-ad", &ads, &opts, |ad| format!("AD={ad}"), |&ad, ctx| ad_row(ad, ctx));
    for (i, ad) in ads.iter().enumerate() {
        match ad_report.value(i) {
            Some(row) => {
                let [u2, u3, u1, orphan_rate, deep_fork, gate_time] = row[..] else {
                    unreachable!("ad_row always packs six values")
                };
                println!(
                    "{:<6} {:>10.4} {:>10.3} {:>12.4} {:>14.2} {:>14.4} {:>16}",
                    ad,
                    u2,
                    u3,
                    u1,
                    orphan_rate * 1000.0,
                    deep_fork,
                    if gate_time.is_nan() {
                        "never".to_string()
                    } else {
                        format!("{gate_time:.0}")
                    }
                );
            }
            None => {
                let reason = ad_report.cells[i]
                    .outcome
                    .as_ref()
                    .err()
                    .map(|f| f.reason_code())
                    .unwrap_or_else(|| "?".to_string());
                println!("{:<6} FAIL({reason})", ad);
            }
        }
    }
    println!();
    println!("reading: every attack utility and the deep-fork probability grow with AD,");
    println!("while the expected time to trigger a sticky gate SHRINKS as AD gets small —");
    println!("the §6.2 trade-off: long forks (double-spend depth) vs cheap gate-openings");
    println!("(giant-block exposure). No AD avoids both.");
    println!();

    // --- Sticky-gate length sweep (setting 2). ---
    // Swept at the asymmetric ratio 1:2: Chain-2 wins (which trigger the
    // gate) are frequent there, and the phase-2 regime — roles swapped, so
    // an effective 2:1 — is *more* profitable for the attacker than phase
    // 1. A longer gate then parks the system in the attacker's preferred
    // regime for longer. At 1:1 the phases coincide and the gate length is
    // irrelevant by symmetry.
    println!("{:<12} {:>10} {:>10}   (beta:gamma = 1:2)", "gate blocks", "u2 (S2)", "u3 (S2)");
    let gates: Vec<u16> = vec![18, 36, 72, 144, 288];
    let gate_report = run_sweep(
        "ablation-gate",
        &gates,
        &opts,
        |gate| format!("gate={gate}"),
        |&gate, ctx| {
            let sopts = ctx.solve_options::<SolveOptions>();
            let m2 = AttackModel::build(config(
                6,
                gate,
                (1, 2),
                Setting::Two,
                IncentiveModel::non_compliant_default(),
            ))?;
            let u2 = m2.optimal_absolute_revenue(&sopts)?.value;
            let m3 = AttackModel::build(config(
                6,
                gate,
                (1, 2),
                Setting::Two,
                IncentiveModel::NonProfitDriven,
            ))?;
            let u3 = m3.optimal_orphan_rate(&sopts)?.value;
            Ok(vec![u2, u3])
        },
    );
    for (i, gate) in gates.iter().enumerate() {
        match gate_report.value(i) {
            Some(row) => println!("{:<12} {:>10.4} {:>10.3}", gate, row[0], row[1]),
            None => println!("{:<12} FAIL", gate),
        }
    }
    println!();
    println!("reading: at 1:2 a chain-2 win is frequent and phase 2 (roles swapped: an");
    println!("effective 2:1) is the attacker's preferred regime, so u2 grows with the");
    println!("gate length toward the 2:1 setting-1 value; a short gate instead returns");
    println!("to phase 1 quickly. Either way some attack mode stays open, and longer");
    println!("gates additionally expose the network to phase-3 giant-block attacks");
    println!("outside this model — the parameter only trades one risk for another.");
    println!("{}", ad_report.summary());
    println!("{}", gate_report.summary());
    print!("{}{}", ad_report.failure_legend(), gate_report.failure_legend());
    if opts.json {
        println!("{}", ad_report.to_json());
        println!("{}", gate_report.to_json());
    }
    std::process::exit(ad_report.exit_code().max(gate_report.exit_code()));
}
