//! Prints the optimal attack strategies the tables are built from — the
//! qualitative picture behind §4.2–§4.4 and the §5.1.2 justification
//! ("Alice mines with the stronger miner group unless the other group has
//! a large lead").
//!
//! For each incentive model: the base-state decision, the phase-1 action
//! map over `(l1, l2, a1, a2)` states, and side-preference statistics.
//!
//! Run: `cargo run --release -p bvc-repro --bin strategies`

use bvc_bu::{
    render_phase1_map, summarize, AttackConfig, AttackModel, IncentiveModel, Setting,
    SolveOptions,
};

fn show(title: &str, alpha: f64, ratio: (u32, u32), incentive: IncentiveModel) {
    let cfg = AttackConfig::with_ratio(alpha, ratio, Setting::One, incentive.clone());
    let model = AttackModel::build(cfg).expect("model builds");
    let opts = SolveOptions::default();
    let sol = match incentive {
        IncentiveModel::CompliantProfitDriven => model.optimal_relative_revenue(&opts),
        IncentiveModel::NonCompliantProfitDriven { .. } => {
            model.optimal_absolute_revenue(&opts)
        }
        IncentiveModel::NonProfitDriven => model.optimal_orphan_rate(&opts),
    }
    .expect("solver converges");
    let summary = summarize(&model, &sol.policy);

    println!("== {title} (alpha={alpha}, beta:gamma={}:{}) ==", ratio.0, ratio.1);
    println!("optimal value: {:.4}", sol.value);
    println!("base-state action: {}", summary.base_action);
    println!(
        "fork states: {} on Chain 1, {} on Chain 2, {} waiting",
        summary.on_chain1, summary.on_chain2, summary.waits
    );
    if summary.phase1_fork_states > 0 {
        println!(
            "sides with the stronger compliant group in {:.0}% of phase-1 fork states",
            100.0 * summary.with_stronger_group as f64 / summary.phase1_fork_states as f64
        );
    }
    println!("phase-1 action map (per (l1,l2); entries enumerate (a1,a2); 1=OnChain1, 2=OnChain2, w=Wait):");
    print!("{}", render_phase1_map(&model, &sol.policy));
    println!();
}

fn main() {
    show(
        "compliant & profit-driven (Table 2 cell)",
        0.25,
        (1, 1),
        IncentiveModel::CompliantProfitDriven,
    );
    show(
        "non-compliant & profit-driven (Table 3 cell)",
        0.10,
        (1, 2),
        IncentiveModel::non_compliant_default(),
    );
    show(
        "non-profit-driven (Table 4 cell)",
        0.01,
        (2, 3),
        IncentiveModel::NonProfitDriven,
    );
    println!("reading: all three optima initiate forks at the base state; during a fork");
    println!("the compliant-Alice optimum follows §5.1.2 (mine with the stronger group");
    println!("unless the other side has a decisive lead); the non-profit optimum waits");
    println!("in balanced races, letting Bob and Carol orphan each other.");
}
