//! Prints the optimal attack strategies the tables are built from — the
//! qualitative picture behind §4.2–§4.4 and the §5.1.2 justification
//! ("Alice mines with the stronger miner group unless the other group has
//! a large lead").
//!
//! For each incentive model: the base-state decision, the phase-1 action
//! map over `(l1, l2, a1, a2)` states, and side-preference statistics.
//!
//! Run: `cargo run --release -p bvc-repro --bin strategies`
//!
//! The three solves run through the sweep runner (isolation + optional
//! checkpointing; a journaled cell stores the optimal value *and* policy,
//! so resumed runs re-render without re-solving). Accepts the standard
//! sweep-runner flags (see `bvc_repro::sweep`).

use bvc_bu::{
    render_phase1_map, summarize, AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions,
};
use bvc_cluster::jobs::{strategy_specs, StrategySpec};
use bvc_mdp::Policy;
use bvc_repro::sweep::{run_jobs, JobSpec, SweepOptions};

fn build(alpha: f64, ratio: (u32, u32), incentive: &IncentiveModel) -> AttackModel {
    let cfg = AttackConfig::with_ratio(alpha, ratio, Setting::One, *incentive);
    AttackModel::build(cfg).expect("model builds")
}

fn render(spec: &StrategySpec, packed: &[f64]) {
    let (title, alpha, ratio, incentive) = spec;
    // Journal packing: [optimal value, policy choice per state...]. The
    // model rebuild here is cheap (no solving) and deterministic, so the
    // choices line up with state ids.
    let model = build(*alpha, *ratio, incentive);
    let value = packed[0];
    let mut policy = Policy::zeros(model.num_states());
    for (slot, &c) in policy.choices.iter_mut().zip(&packed[1..]) {
        *slot = c as usize;
    }
    let summary = summarize(&model, &policy);

    println!("== {title} (alpha={alpha}, beta:gamma={}:{}) ==", ratio.0, ratio.1);
    println!("optimal value: {value:.4}");
    println!("base-state action: {}", summary.base_action);
    println!(
        "fork states: {} on Chain 1, {} on Chain 2, {} waiting",
        summary.on_chain1, summary.on_chain2, summary.waits
    );
    if summary.phase1_fork_states > 0 {
        println!(
            "sides with the stronger compliant group in {:.0}% of phase-1 fork states",
            100.0 * summary.with_stronger_group as f64 / summary.phase1_fork_states as f64
        );
    }
    println!("phase-1 action map (per (l1,l2); entries enumerate (a1,a2); 1=OnChain1, 2=OnChain2, w=Wait):");
    print!("{}", render_phase1_map(&model, &policy));
    println!();
}

fn main() {
    let (mut opts, _rest) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    opts.config_token = SolveOptions::default().fingerprint_token();

    // Solve bodies live in the job registry; the binary keeps only the
    // rendering (which needs the deterministic model rebuild anyway).
    let specs = strategy_specs();
    let jobs: Vec<JobSpec> = (0..specs.len()).map(|index| JobSpec::Strategies { index }).collect();
    let report = run_jobs("strategies", &jobs, &opts);

    for (i, spec) in specs.iter().enumerate() {
        match report.value(i) {
            Some(packed) => render(spec, packed),
            None => {
                println!("== {} ==", spec.0);
                println!(
                    "FAILED: {}",
                    report.cells[i].outcome.as_ref().err().map(|f| f.message()).unwrap_or_default()
                );
                println!();
            }
        }
    }
    println!("reading: all three optima initiate forks at the base state; during a fork");
    println!("the compliant-Alice optimum follows §5.1.2 (mine with the stronger group");
    println!("unless the other side has a decisive lead); the non-profit optimum waits");
    println!("in balanced races, letting Bob and Carol orphan each other.");
    println!("{}", report.summary());
    print!("{}", report.failure_legend());
    if opts.json {
        println!("{}", report.to_json());
    }
    std::process::exit(report.exit_code());
}
