//! Prints the optimal attack strategies the tables are built from — the
//! qualitative picture behind §4.2–§4.4 and the §5.1.2 justification
//! ("Alice mines with the stronger miner group unless the other group has
//! a large lead").
//!
//! For each incentive model: the base-state decision, the phase-1 action
//! map over `(l1, l2, a1, a2)` states, and side-preference statistics.
//!
//! Run: `cargo run --release -p bvc-repro --bin strategies`
//!
//! The three solves run through the sweep runner (isolation + optional
//! checkpointing; a journaled cell stores the optimal value *and* policy,
//! so resumed runs re-render without re-solving). Accepts the standard
//! sweep-runner flags (see `bvc_repro::sweep`).

use bvc_bu::{
    render_phase1_map, summarize, AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions,
};
use bvc_mdp::Policy;
use bvc_repro::sweep::{run_sweep, SweepOptions};

type Spec = (&'static str, f64, (u32, u32), IncentiveModel);

fn build(alpha: f64, ratio: (u32, u32), incentive: &IncentiveModel) -> AttackModel {
    let cfg = AttackConfig::with_ratio(alpha, ratio, Setting::One, *incentive);
    AttackModel::build(cfg).expect("model builds")
}

fn render(spec: &Spec, packed: &[f64]) {
    let (title, alpha, ratio, incentive) = spec;
    // Journal packing: [optimal value, policy choice per state...]. The
    // model rebuild here is cheap (no solving) and deterministic, so the
    // choices line up with state ids.
    let model = build(*alpha, *ratio, incentive);
    let value = packed[0];
    let mut policy = Policy::zeros(model.num_states());
    for (slot, &c) in policy.choices.iter_mut().zip(&packed[1..]) {
        *slot = c as usize;
    }
    let summary = summarize(&model, &policy);

    println!("== {title} (alpha={alpha}, beta:gamma={}:{}) ==", ratio.0, ratio.1);
    println!("optimal value: {value:.4}");
    println!("base-state action: {}", summary.base_action);
    println!(
        "fork states: {} on Chain 1, {} on Chain 2, {} waiting",
        summary.on_chain1, summary.on_chain2, summary.waits
    );
    if summary.phase1_fork_states > 0 {
        println!(
            "sides with the stronger compliant group in {:.0}% of phase-1 fork states",
            100.0 * summary.with_stronger_group as f64 / summary.phase1_fork_states as f64
        );
    }
    println!("phase-1 action map (per (l1,l2); entries enumerate (a1,a2); 1=OnChain1, 2=OnChain2, w=Wait):");
    print!("{}", render_phase1_map(&model, &policy));
    println!();
}

fn main() {
    let (mut opts, _rest) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    opts.config_token = SolveOptions::default().fingerprint_token();

    let specs: Vec<Spec> = vec![
        (
            "compliant & profit-driven (Table 2 cell)",
            0.25,
            (1, 1),
            IncentiveModel::CompliantProfitDriven,
        ),
        (
            "non-compliant & profit-driven (Table 3 cell)",
            0.10,
            (1, 2),
            IncentiveModel::non_compliant_default(),
        ),
        ("non-profit-driven (Table 4 cell)", 0.01, (2, 3), IncentiveModel::NonProfitDriven),
    ];
    let report = run_sweep(
        "strategies",
        &specs,
        &opts,
        |(_, alpha, (b, g), incentive)| format!("{incentive:?} a={}% b:g={b}:{g}", alpha * 100.0),
        |(_, alpha, ratio, incentive), ctx| {
            let model = build(*alpha, *ratio, incentive);
            let sopts = ctx.solve_options::<SolveOptions>();
            let sol = match incentive {
                IncentiveModel::CompliantProfitDriven => model.optimal_relative_revenue(&sopts),
                IncentiveModel::NonCompliantProfitDriven { .. } => {
                    model.optimal_absolute_revenue(&sopts)
                }
                IncentiveModel::NonProfitDriven => model.optimal_orphan_rate(&sopts),
            }?;
            let mut packed = Vec::with_capacity(1 + sol.policy.choices.len());
            packed.push(sol.value);
            packed.extend(sol.policy.choices.iter().map(|&c| c as f64));
            Ok(packed)
        },
    );

    for (i, spec) in specs.iter().enumerate() {
        match report.value(i) {
            Some(packed) => render(spec, packed),
            None => {
                println!("== {} ==", spec.0);
                println!(
                    "FAILED: {}",
                    report.cells[i].outcome.as_ref().err().map(|f| f.message()).unwrap_or_default()
                );
                println!();
            }
        }
    }
    println!("reading: all three optima initiate forks at the base state; during a fork");
    println!("the compliant-Alice optimum follows §5.1.2 (mine with the stronger group");
    println!("unless the other side has a decisive lead); the non-profit optimum waits");
    println!("in balanced races, letting Bob and Carol orphan each other.");
    println!("{}", report.summary());
    print!("{}", report.failure_legend());
    if opts.json {
        println!("{}", report.to_json());
    }
    std::process::exit(report.exit_code());
}
