//! Regenerates the §2.3 comparison with Andrew Stone's "Emergent Consensus
//! Simulations": forks are rare when every miner's block size is *static*,
//! but frequent when an attacker sizes blocks adaptively — the paper's
//! rebuttal of Stone's conclusion.
//!
//! Three Monte Carlo scenarios on the full network simulator (real BU
//! views, sticky gates enabled):
//!
//! 1. all miners honest with `MG = EB` — no forks at zero delay;
//! 2. all miners honest with heterogeneous EBs but static 1 MB blocks
//!    (Stone's setting) — still no forks;
//! 3. a 10% attacker adaptively injecting `EB_C`-sized blocks
//!    (the Cryptoconomy splitter) — persistent forking.
//!
//! Run: `cargo run --release -p bvc-repro --bin stone_sim`

use bvc_chain::{BuRizunRule, ByteSize, MinerId};
use bvc_sim::{DelayModel, HonestStrategy, MinerSpec, Simulation, SplitterStrategy};

const BLOCKS: usize = 20_000;

fn honest(power: f64, eb: ByteSize, mg: ByteSize) -> MinerSpec<BuRizunRule> {
    MinerSpec { power, rule: BuRizunRule::new(eb, 6), strategy: Box::new(HonestStrategy { mg }) }
}

fn run(label: &str, miners: Vec<MinerSpec<BuRizunRule>>, seed: u64) {
    let n = miners.len();
    let mut sim = Simulation::new(miners, DelayModel::Zero, seed);
    let report = sim.run(BLOCKS);
    let reorgs: usize = (0..n).map(|i| report.reorg_count(i)).sum();
    let max_depth: u64 = (0..n).map(|i| report.max_reorg_depth(i)).max().unwrap_or(0);
    let on_chain: usize = report.chain_blocks[n - 1].values().sum();
    let attacker_share = report.chain_share(n - 1, MinerId(0));
    println!("{label}");
    println!(
        "  blocks mined {}, on final chain {}, orphan rate {:.2}%",
        report.blocks_mined,
        on_chain,
        100.0 * (report.blocks_mined - on_chain) as f64 / report.blocks_mined as f64
    );
    println!(
        "  reorg events {reorgs} ({:.2} per 1000 blocks), deepest reorg {max_depth}",
        1000.0 * reorgs as f64 / report.blocks_mined as f64
    );
    println!("  miner 0's share of the final chain: {:.3}", attacker_share);
    println!();
}

fn main() {
    let mb1 = ByteSize::mb(1);
    let eb_c = ByteSize::mb(16);
    println!("Stone-style fork-frequency simulations ({BLOCKS} blocks each, zero delay)");
    println!();

    run(
        "scenario 1: homogeneous EB = 1 MB, static 1 MB blocks",
        vec![honest(0.1, mb1, mb1), honest(0.45, mb1, mb1), honest(0.45, mb1, mb1)],
        101,
    );

    run(
        "scenario 2 (Stone): heterogeneous EBs (1 MB / 16 MB), static 1 MB blocks",
        vec![honest(0.1, mb1, mb1), honest(0.45, mb1, mb1), honest(0.45, eb_c, mb1)],
        202,
    );

    let attacker = MinerSpec {
        power: 0.1,
        rule: BuRizunRule::new(eb_c, 6),
        strategy: Box::new(SplitterStrategy::against(eb_c, mb1, 6, mb1)),
    };
    run(
        "scenario 3 (paper): 10% attacker with adaptive block sizes",
        vec![attacker, honest(0.45, mb1, mb1), honest(0.45, eb_c, mb1)],
        303,
    );

    println!("conclusion: static block sizes (Stone's model) produce no forks even with");
    println!("heterogeneous EBs; an adaptive attacker forks the network persistently —");
    println!("matching the paper's critique (§2.3) of the emergent-consensus simulations.");
}
