//! Regenerates the §2.3 comparison with Andrew Stone's "Emergent Consensus
//! Simulations": forks are rare when every miner's block size is *static*,
//! but frequent when an attacker sizes blocks adaptively — the paper's
//! rebuttal of Stone's conclusion.
//!
//! Three Monte Carlo scenarios on the full network simulator (real BU
//! views, sticky gates enabled):
//!
//! 1. all miners honest with `MG = EB` — no forks at zero delay;
//! 2. all miners honest with heterogeneous EBs but static 1 MB blocks
//!    (Stone's setting) — still no forks;
//! 3. a 10% attacker adaptively injecting `EB_C`-sized blocks
//!    (the Cryptoconomy splitter) — persistent forking.
//!
//! Run: `cargo run --release -p bvc-repro --bin stone_sim`
//!
//! Each scenario runs as an isolated sweep cell (the summary statistics are
//! journaled, so an interrupted run resumes without re-simulating).
//! Accepts the standard sweep-runner flags (see `bvc_repro::sweep`).

use bvc_cluster::jobs::STONE_BLOCKS;
use bvc_repro::sweep::{run_jobs, JobSpec, SweepOptions};

fn render(label: &str, row: &[f64]) {
    let [mined, on_chain, reorgs, max_depth, share] = row[..] else {
        unreachable!("simulate always packs five values")
    };
    println!("{label}");
    println!(
        "  blocks mined {}, on final chain {}, orphan rate {:.2}%",
        mined,
        on_chain,
        100.0 * (mined - on_chain) / mined
    );
    println!(
        "  reorg events {reorgs} ({:.2} per 1000 blocks), deepest reorg {max_depth}",
        1000.0 * reorgs / mined
    );
    println!("  miner 0's share of the final chain: {:.3}", share);
    println!();
}

fn main() {
    let (mut opts, _rest) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    opts.config_token = format!("stone;blocks={STONE_BLOCKS}");

    println!("Stone-style fork-frequency simulations ({STONE_BLOCKS} blocks each, zero delay)");
    println!();

    let scenarios: [(u8, &str); 3] = [
        (1, "scenario 1: homogeneous EB = 1 MB, static 1 MB blocks"),
        (2, "scenario 2 (Stone): heterogeneous EBs (1 MB / 16 MB), static 1 MB blocks"),
        (3, "scenario 3 (paper): 10% attacker with adaptive block sizes"),
    ];
    // The miner line-ups and seeds live in the job registry
    // (`stone_simulate`), so a cluster worker replays the same Monte Carlo.
    let jobs: Vec<JobSpec> =
        scenarios.iter().map(|&(scenario, _)| JobSpec::StoneSim { scenario }).collect();
    let report = run_jobs("stone-sim", &jobs, &opts);

    for (i, (_, label)) in scenarios.iter().enumerate() {
        match report.value(i) {
            Some(row) => render(label, row),
            None => {
                let reason = report.cells[i]
                    .outcome
                    .as_ref()
                    .err()
                    .map(|f| f.reason_code())
                    .unwrap_or_else(|| "?".to_string());
                println!("{label}");
                println!("  FAIL({reason})");
                println!();
            }
        }
    }

    println!("conclusion: static block sizes (Stone's model) produce no forks even with");
    println!("heterogeneous EBs; an adaptive attacker forks the network persistently —");
    println!("matching the paper's critique (§2.3) of the emergent-consensus simulations.");
    println!("{}", report.summary());
    print!("{}", report.failure_legend());
    if opts.json {
        println!("{}", report.to_json());
    }
    std::process::exit(report.exit_code());
}
