//! Regenerates **Table 2**: Alice's maximum expected relative revenue under
//! the compliant and profit-driven incentive model (Eq. 1), settings 1 and
//! 2, compared with the published values.
//!
//! Run: `cargo run --release -p bvc-repro --bin table2`
//!
//! Accepts the standard sweep-runner flags (`--journal`, `--fail-fast`,
//! `--cell-deadline`, `--retries`, `--threads`, `--inject-*`, `--cluster`;
//! see `bvc_repro::sweep`) plus `--setting1-only` to skip the much slower
//! setting-2 column. Exits nonzero when any cell failed.

use bvc_bu::SolveOptions;
use bvc_repro::sweep::{run_jobs, JobSpec, SweepOptions};
use bvc_repro::{render_grid, GridEntry};

/// One published row: the β:γ ratio and the u1 values for the four α
/// columns (`None` marks cells the paper omits).
type PaperRow = ((u32, u32), [Option<f64>; 4]);

/// The published Table 2 (setting 1): rows are β:γ ratios, columns are α in
/// {10, 15, 20, 25}%. `None` marks cells the paper omits (they violate
/// α ≤ min(β, γ)); cells the paper states satisfy `max u1 = α` are filled
/// with α.
const PAPER_SETTING1: &[PaperRow] = &[
    ((3, 2), [Some(0.10), Some(0.15), Some(0.20), Some(0.25)]),
    ((1, 1), [Some(0.10), Some(0.15), Some(0.20), Some(0.2624)]),
    ((2, 3), [Some(0.10), Some(0.1505), Some(0.2115), Some(0.2739)]),
    ((1, 2), [Some(0.10), Some(0.1562), Some(0.2156), Some(0.2756)]),
    ((1, 3), [Some(0.1026), Some(0.1587), Some(0.2158), None]),
    ((1, 4), [Some(0.1034), Some(0.1584), None, None]),
];

/// The published Table 2 (setting 2) only prints the α = 25% column.
const PAPER_SETTING2: &[((u32, u32), f64)] =
    &[((3, 2), 0.2529), ((1, 1), 0.2624), ((2, 3), 0.2529), ((1, 2), 0.25)];

const ALPHAS: [f64; 4] = [0.10, 0.15, 0.20, 0.25];

fn main() {
    let (mut sweep_opts, rest) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    sweep_opts.config_token = SolveOptions::default().fingerprint_token();
    let setting1_only = rest.iter().any(|a| a == "--setting1-only");

    // Setting 1: sweep all printed cells (the job registry enumerates
    // exactly the paper's present cells, row-major).
    let jobs = bvc_cluster::jobs::table2_setting1_jobs();
    let report = run_jobs("table2-setting1", &jobs, &sweep_opts);

    let row_labels: Vec<String> =
        PAPER_SETTING1.iter().map(|((b, c), _)| format!("{b}:{c}")).collect();
    let col_labels: Vec<String> = ALPHAS.iter().map(|a| format!("a={:.0}%", a * 100.0)).collect();
    let cells: Vec<Vec<GridEntry>> = PAPER_SETTING1
        .iter()
        .map(|(ratio, row)| {
            row.iter()
                .enumerate()
                .map(|(i, paper)| {
                    let spec = JobSpec::Table2 { alpha: ALPHAS[i], ratio: *ratio, setting: 1 };
                    match jobs.iter().position(|j| *j == spec) {
                        Some(j) => report.grid_entry(j, *paper),
                        None => GridEntry::Absent,
                    }
                })
                .collect()
        })
        .collect();
    print!(
        "{}",
        render_grid(
            "Table 2 — max relative revenue u1, setting 1 (ours vs paper)",
            &row_labels,
            &col_labels,
            &cells,
            4,
        )
    );
    println!("{}", report.summary());
    print!("{}", report.failure_legend());
    if sweep_opts.json {
        println!("{}", report.to_json());
    }
    let mut exit = report.exit_code();

    if !setting1_only {
        // Setting 2, α = 25% column.
        println!();
        let jobs2 = bvc_cluster::jobs::table2_setting2_jobs();
        let report2 = run_jobs("table2-setting2", &jobs2, &sweep_opts);
        let cells2: Vec<Vec<GridEntry>> = PAPER_SETTING2
            .iter()
            .enumerate()
            .map(|(i, (_, paper))| vec![report2.grid_entry(i, Some(*paper))])
            .collect();
        let rows2: Vec<String> =
            PAPER_SETTING2.iter().map(|((b, c), _)| format!("{b}:{c}")).collect();
        print!(
            "{}",
            render_grid("Table 2 — setting 2, a = 25%", &rows2, &["a=25%".to_string()], &cells2, 4,)
        );
        println!("{}", report2.summary());
        print!("{}", report2.failure_legend());
        if sweep_opts.json {
            println!("{}", report2.to_json());
        }
        exit = exit.max(report2.exit_code());
    }

    println!();
    println!(
        "Analytical Result 1: u1 > alpha (unfair revenue) exactly where alpha + gamma > beta."
    );
    std::process::exit(exit);
}
