//! Regenerates **Table 2**: Alice's maximum expected relative revenue under
//! the compliant and profit-driven incentive model (Eq. 1), settings 1 and
//! 2, compared with the published values.
//!
//! Run: `cargo run --release -p bvc-repro --bin table2`

use bvc_bu::{AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};
use bvc_repro::{parallel_map, render_grid, Cell};

/// The published Table 2 (setting 1): rows are β:γ ratios, columns are α in
/// {10, 15, 20, 25}%. `None` marks cells the paper omits (they violate
/// α ≤ min(β, γ)); cells the paper states satisfy `max u1 = α` are filled
/// with α.
const PAPER_SETTING1: &[((u32, u32), [Option<f64>; 4])] = &[
    ((3, 2), [Some(0.10), Some(0.15), Some(0.20), Some(0.25)]),
    ((1, 1), [Some(0.10), Some(0.15), Some(0.20), Some(0.2624)]),
    ((2, 3), [Some(0.10), Some(0.1505), Some(0.2115), Some(0.2739)]),
    ((1, 2), [Some(0.10), Some(0.1562), Some(0.2156), Some(0.2756)]),
    ((1, 3), [Some(0.1026), Some(0.1587), Some(0.2158), None]),
    ((1, 4), [Some(0.1034), Some(0.1584), None, None]),
];

/// The published Table 2 (setting 2) only prints the α = 25% column.
const PAPER_SETTING2: &[((u32, u32), f64)] =
    &[((3, 2), 0.2529), ((1, 1), 0.2624), ((2, 3), 0.2529), ((1, 2), 0.25)];

const ALPHAS: [f64; 4] = [0.10, 0.15, 0.20, 0.25];

fn solve(alpha: f64, ratio: (u32, u32), setting: Setting) -> f64 {
    let cfg = AttackConfig::with_ratio(
        alpha,
        ratio,
        setting,
        IncentiveModel::CompliantProfitDriven,
    );
    let model = AttackModel::build(cfg).expect("model builds");
    model
        .optimal_relative_revenue(&SolveOptions::default())
        .expect("solver converges")
        .value
}

fn main() {
    // Setting 1: sweep all printed cells in parallel.
    let mut jobs = Vec::new();
    for (ratio, row) in PAPER_SETTING1 {
        for (i, cell) in row.iter().enumerate() {
            if cell.is_some() {
                jobs.push((*ratio, ALPHAS[i]));
            }
        }
    }
    let values = parallel_map(jobs.clone(), |&(ratio, alpha)| solve(alpha, ratio, Setting::One));
    let lookup = |ratio: (u32, u32), alpha: f64| {
        jobs.iter()
            .position(|&(r, a)| r == ratio && (a - alpha).abs() < 1e-12)
            .map(|i| values[i])
    };

    let row_labels: Vec<String> =
        PAPER_SETTING1.iter().map(|((b, c), _)| format!("{b}:{c}")).collect();
    let col_labels: Vec<String> =
        ALPHAS.iter().map(|a| format!("a={:.0}%", a * 100.0)).collect();
    let cells: Vec<Vec<Option<Cell>>> = PAPER_SETTING1
        .iter()
        .map(|(ratio, row)| {
            row.iter()
                .enumerate()
                .map(|(i, paper)| {
                    paper.map(|p| Cell {
                        paper: Some(p),
                        ours: lookup(*ratio, ALPHAS[i]).expect("computed"),
                    })
                })
                .collect()
        })
        .collect();
    print!(
        "{}",
        render_grid(
            "Table 2 — max relative revenue u1, setting 1 (ours vs paper)",
            &row_labels,
            &col_labels,
            &cells,
            4,
        )
    );

    // Setting 2, α = 25% column.
    println!();
    let jobs2: Vec<(u32, u32)> = PAPER_SETTING2.iter().map(|(r, _)| *r).collect();
    let vals2 = parallel_map(jobs2, |&ratio| solve(0.25, ratio, Setting::Two));
    let cells2: Vec<Vec<Option<Cell>>> = PAPER_SETTING2
        .iter()
        .zip(&vals2)
        .map(|((_, paper), &ours)| vec![Some(Cell { paper: Some(*paper), ours })])
        .collect();
    let rows2: Vec<String> =
        PAPER_SETTING2.iter().map(|((b, c), _)| format!("{b}:{c}")).collect();
    print!(
        "{}",
        render_grid(
            "Table 2 — setting 2, a = 25%",
            &rows2,
            &["a=25%".to_string()],
            &cells2,
            4,
        )
    );
    println!();
    println!(
        "Analytical Result 1: u1 > alpha (unfair revenue) exactly where alpha + gamma > beta."
    );
}
