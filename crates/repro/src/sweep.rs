//! Fault-tolerant sweep runner: per-cell isolation, watchdogs with retry
//! escalation, and a checkpoint/resume journal.
//!
//! The table binaries sweep dozens of parameter cells, each an MDP solve
//! whose cost varies by orders of magnitude across the grid. Before this
//! module they ran through [`crate::parallel_map`], where one panicking or
//! non-converging cell aborted the whole binary and threw away every other
//! result. [`run_sweep`] instead treats each cell as an isolated unit of
//! work:
//!
//! * **Isolation** — a panic or structured [`MdpError`] marks that one cell
//!   failed; the rest of the grid still completes and renders (degraded)
//!   through [`crate::GridEntry::Failed`].
//! * **Watchdog + retry** — every attempt carries a [`SolveBudget`] with an
//!   optional per-cell wall-clock deadline, and
//!   [retryable](MdpError::is_retryable) failures are re-attempted with an
//!   escalated iteration budget and aperiodicity mixing (see
//!   [`RetryPolicy`] and [`CellContext`]).
//! * **Checkpoint/resume** — finished cells are appended to a JSONL journal
//!   keyed by a fingerprint of the cell key *and* the solver configuration;
//!   a rerun pointed at the same journal replays finished cells bit-for-bit
//!   and solves only missing or previously failed ones.
//!
//! Values cross the journal as `f64` bit patterns (hex), so a resumed grid
//! is *bit-identical* to an uninterrupted run — including `NaN` payloads,
//! signed zeros, and infinities that ordinary decimal round-tripping
//! mangles.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bvc_mdp::MdpError;

use crate::{Cell, GridEntry};

// ---------------------------------------------------------------------------
// Shared machinery (re-exported under its historical paths)
// ---------------------------------------------------------------------------

// The FNV-1a fingerprint and hex-f64 helpers live in `bvc-journal` so the
// `bvc-serve` result cache and the `bvc-cluster` wire protocol can key
// cells exactly the way this journal does.
pub use crate::fingerprint::{cell_fingerprint, fnv1a64};

// The journal line codec also lives in `bvc-journal`: the cluster
// coordinator writes journals through literally these functions, which is
// what makes a distributed journal byte-identical to a local one.
pub use bvc_journal::{
    encode_line, json_escape, load_journal, parse_journal_line, recover_journal, Durability,
    JournalEntry, JournalWriter,
};

// The per-cell attempt loop (watchdog budget, retry escalation, fault
// injection, panic isolation) lives in `bvc-cluster`'s [`bvc_cluster::cell`]
// so cluster workers run cells through literally the same code path as
// this local runner.
pub use bvc_cluster::cell::{
    run_cell_attempts, CellContext, CellFailure, CellRunConfig, RetryPolicy, TunableSolve,
};

// The job registry: every table binary's cell grid as data, so the same
// grid can run locally or be shipped to cluster workers.
pub use bvc_cluster::jobs::{workload, JobSpec, Workload, WORKLOAD_NAMES};

use bvc_cluster::{run_coordinator, ClusterConfig};

// ---------------------------------------------------------------------------
// Journal values
// ---------------------------------------------------------------------------

/// A value that can cross the checkpoint journal as a flat list of `f64`s.
///
/// Encoding must be lossless: the journal stores the raw bit patterns, so
/// `decode(encode(v))` must reproduce `v` exactly for resume runs to be
/// bit-identical to clean runs.
pub trait SweepValue: Sized {
    /// Flattens the value for journaling.
    fn encode(&self) -> Vec<f64>;
    /// Rebuilds the value from a journal entry; `None` when the stored
    /// shape does not match (the entry is then treated as missing and the
    /// cell re-solved).
    fn decode(vals: &[f64]) -> Option<Self>;
}

impl SweepValue for f64 {
    fn encode(&self) -> Vec<f64> {
        vec![*self]
    }
    fn decode(vals: &[f64]) -> Option<Self> {
        match vals {
            [x] => Some(*x),
            _ => None,
        }
    }
}

impl SweepValue for Vec<f64> {
    fn encode(&self) -> Vec<f64> {
        self.clone()
    }
    fn decode(vals: &[f64]) -> Option<Self> {
        Some(vals.to_vec())
    }
}

// ---------------------------------------------------------------------------
// Per-cell results
// ---------------------------------------------------------------------------

/// Outcome of one sweep cell, in input order.
#[derive(Debug, Clone)]
pub struct CellResult<T> {
    /// The human-readable cell key (also the journal key).
    pub key: String,
    /// The value, or why there is none.
    pub outcome: Result<T, CellFailure>,
    /// Solve attempts made for this cell in this run (0 when replayed or
    /// skipped before the first attempt).
    pub attempts: u32,
    /// True when the value came from the checkpoint journal instead of a
    /// fresh solve.
    pub replayed: bool,
    /// Wall-clock time spent solving this cell in this run (all attempts).
    pub elapsed: Duration,
}

/// Everything [`run_sweep`] produced, cells in input order.
#[derive(Debug, Clone)]
pub struct SweepReport<T> {
    /// Sweep label (for the summary line).
    pub label: String,
    /// Per-cell outcomes, parallel to the input slice.
    pub cells: Vec<CellResult<T>>,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
}

impl<T> SweepReport<T> {
    /// Number of cells with a value (fresh or replayed).
    pub fn solved(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_ok()).count()
    }

    /// Number of cells whose value was replayed from the journal.
    pub fn replayed(&self) -> usize {
        self.cells.iter().filter(|c| c.replayed).count()
    }

    /// Number of cells that failed (panic, solver error, remote failure,
    /// or a cell lost to repeated worker deaths) — everything except
    /// fail-fast skips.
    pub fn failed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(&c.outcome, Err(f) if !matches!(f, CellFailure::Skipped)))
            .count()
    }

    /// Number of cells skipped by fail-fast cancellation.
    pub fn skipped(&self) -> usize {
        self.cells.iter().filter(|c| matches!(&c.outcome, Err(CellFailure::Skipped))).count()
    }

    /// Total retry attempts beyond each cell's first (escalations).
    pub fn retries(&self) -> u32 {
        self.cells.iter().map(|c| c.attempts.saturating_sub(1)).sum()
    }

    /// True when any cell is without a value (failed or skipped).
    pub fn has_failures(&self) -> bool {
        self.solved() < self.cells.len()
    }

    /// The value of cell `i`, if it has one.
    pub fn value(&self, i: usize) -> Option<&T> {
        self.cells[i].outcome.as_ref().ok()
    }

    /// One-line machine-greppable summary. The `# sweep` prefix lets smoke
    /// scripts filter these lines out before diffing table output across
    /// runs (replay counts legitimately differ between a clean run and a
    /// resumed one).
    pub fn summary(&self) -> String {
        format!(
            "# sweep {}: {} cells | solved {} ({} replayed) | failed {} | skipped {} | retries {} | wall {:.2}s",
            self.label,
            self.cells.len(),
            self.solved(),
            self.replayed(),
            self.failed(),
            self.skipped(),
            self.retries(),
            self.wall.as_secs_f64(),
        )
    }

    /// Multi-line legend describing every failed/skipped cell, empty when
    /// the sweep is clean.
    pub fn failure_legend(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            if let Err(failure) = &c.outcome {
                let _ = writeln!(
                    out,
                    "# sweep {}: cell '{}' {} after {} attempt(s): {}",
                    self.label,
                    c.key,
                    failure.reason_code(),
                    c.attempts,
                    failure.message(),
                );
            }
        }
        out
    }

    /// Process exit code convention: `1` when any cell is missing a value.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.has_failures())
    }
}

impl<T: SweepValue> SweepReport<T> {
    /// One-line machine-readable summary of the whole sweep: every cell
    /// with its status, bit-exact value (`bits` hex patterns, decimal
    /// `vals` mirror) or failure reason, plus the aggregate counters.
    /// Printed by the sweep binaries under `--json` so the serve preloader
    /// and CI can consume results without scraping the rendered grid.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"sweep\":\"{}\",\"cells\":[", json_escape(&self.label));
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"key\":\"{}\"", json_escape(&c.key));
            match &c.outcome {
                Ok(value) => {
                    let vals = value.encode();
                    let _ = write!(out, ",\"status\":\"ok\",\"bits\":[");
                    for (j, v) in vals.iter().enumerate() {
                        let sep = if j > 0 { "," } else { "" };
                        let _ = write!(out, "{sep}\"{}\"", crate::fingerprint::f64_to_hex(*v));
                    }
                    let _ = write!(out, "],\"vals\":[");
                    for (j, v) in vals.iter().enumerate() {
                        let sep = if j > 0 { "," } else { "" };
                        if v.is_finite() {
                            let _ = write!(out, "{sep}{v}");
                        } else {
                            let _ = write!(out, "{sep}\"{v}\"");
                        }
                    }
                    out.push(']');
                }
                Err(CellFailure::Skipped) => {
                    let _ = write!(out, ",\"status\":\"skipped\"");
                }
                Err(failure) => {
                    let _ = write!(
                        out,
                        ",\"status\":\"fail\",\"code\":\"{}\",\"reason\":\"{}\"",
                        json_escape(&failure.reason_code()),
                        json_escape(&failure.message()),
                    );
                }
            }
            let _ = write!(
                out,
                ",\"attempts\":{},\"replayed\":{},\"elapsed_s\":{:.6}}}",
                c.attempts,
                c.replayed,
                c.elapsed.as_secs_f64(),
            );
        }
        let _ = write!(
            out,
            "],\"solved\":{},\"replayed\":{},\"failed\":{},\"skipped\":{},\"retries\":{},\"wall_s\":{:.3}}}",
            self.solved(),
            self.replayed(),
            self.failed(),
            self.skipped(),
            self.retries(),
            self.wall.as_secs_f64(),
        );
        out
    }
}

impl SweepReport<f64> {
    /// Builds the grid entry for cell `i`: a comparison [`Cell`] against the
    /// paper value on success, a `FAIL(reason)` marker otherwise.
    pub fn grid_entry(&self, i: usize, paper: Option<f64>) -> GridEntry {
        match &self.cells[i].outcome {
            Ok(v) => GridEntry::Value(Cell { paper, ours: *v }),
            Err(failure) => GridEntry::Failed(failure.reason_code()),
        }
    }
}

impl SweepReport<Vec<f64>> {
    /// Builds the grid entry comparing element `j` of cell `i`'s value
    /// vector against the paper value. A solved cell whose vector is too
    /// short renders as `FAIL(shape)` rather than panicking.
    pub fn grid_entry_at(&self, i: usize, j: usize, paper: Option<f64>) -> GridEntry {
        match &self.cells[i].outcome {
            Ok(v) => match v.get(j) {
                Some(x) => GridEntry::Value(Cell { paper, ours: *x }),
                None => GridEntry::Failed("shape".into()),
            },
            Err(failure) => GridEntry::Failed(failure.reason_code()),
        }
    }

    /// Builds the grid entry for cell `i` from the first element of its
    /// value vector (the scalar-sweep convention for job-registry sweeps).
    pub fn grid_entry(&self, i: usize, paper: Option<f64>) -> GridEntry {
        self.grid_entry_at(i, 0, paper)
    }

    /// The value vector of cell `i` as a fixed-size array, if the cell
    /// solved and the shape matches.
    pub fn value_array<const N: usize>(&self, i: usize) -> Option<[f64; N]> {
        let v = self.value(i)?;
        <[f64; N]>::try_from(v.as_slice()).ok()
    }
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// Configuration of one [`run_sweep`] call.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Checkpoint journal path. `None` disables checkpointing.
    pub journal: Option<PathBuf>,
    /// Cancel the whole sweep at the first cell failure (remaining cells
    /// are reported as skipped).
    pub fail_fast: bool,
    /// Per-attempt wall-clock deadline for each cell.
    pub cell_deadline: Option<Duration>,
    /// Retry escalation schedule.
    pub retry: RetryPolicy,
    /// Worker thread override (defaults to available parallelism).
    pub threads: Option<usize>,
    /// Worker threads *inside* each cell's Bellman sweeps (sharded Jacobi
    /// kernel; results are bit-identical for every value). Thread-budget
    /// arbitration: ignored (forced to 1) whenever the sweep itself runs
    /// with more than one cell-level thread — cell-level parallelism has
    /// no synchronization cost, so it always wins the core budget.
    pub solve_threads: usize,
    /// Minimum states per intra-solve shard (`0` = solver default); small
    /// models stay single-threaded regardless of `solve_threads`.
    pub shard_min_states: usize,
    /// Fault injection: cells whose key contains any of these substrings
    /// panic instead of solving. Testing/smoke only.
    pub inject_panic: Vec<String>,
    /// Fault injection: cells whose key contains any of these substrings
    /// report `NoConvergence` instead of solving (on every attempt, so
    /// retries are exercised and then exhausted). Testing/smoke only.
    pub inject_noconv: Vec<String>,
    /// Run the static model audit before each cell's solve; cells whose
    /// model fails a check render as `FAIL(audit: <check>)` instead of
    /// producing an untrustworthy number.
    pub audit: bool,
    /// Solver configuration token mixed into cell fingerprints; see
    /// [`cell_fingerprint`]. Use `SolveOptions::fingerprint_token()`.
    pub config_token: String,
    /// Ask binaries to also print the machine-readable summary
    /// ([`SweepReport::to_json`]) after the human-readable grid, so the
    /// serve preloader and CI can consume sweep results without scraping
    /// text.
    pub json: bool,
    /// Distribute the sweep: bind a cluster coordinator on this address
    /// (`host:port`, port 0 for ephemeral) and shard cells across
    /// connecting `bvc cluster work` processes instead of solving
    /// in-process. Only job-registry sweeps ([`run_jobs`]) support this.
    pub cluster: Option<String>,
    /// Cluster lease duration override (default 30s).
    pub lease: Option<Duration>,
    /// Cluster claim-batch-size override (default 4 cells per claim).
    pub cluster_batch: Option<u32>,
    /// Fsync policy for journal appends (`--durability none|batch|always`).
    pub durability: Durability,
    /// Validated chaos fault-plan spec (`--chaos`); installed process-wide
    /// by [`SweepOptions::from_cli_or_exit`] (binaries) — library callers
    /// install it themselves via [`bvc_chaos::install_spec`].
    pub chaos: Option<String>,
}

impl SweepOptions {
    /// Parses the sweep-related flags out of a CLI argument list, returning
    /// the options and every argument it did not consume (the binary's own
    /// flags, e.g. `--quick`).
    ///
    /// Recognized flags:
    /// `--journal PATH`, `--fail-fast`, `--cell-deadline SECONDS`,
    /// `--retries N` (extra attempts after the first), `--threads N`,
    /// `--solve-threads N`, `--shard-min-states N`, `--audit`, `--json`,
    /// `--inject-panic SUBSTR`, `--inject-noconv SUBSTR` (the last two
    /// repeatable), `--cluster HOST:PORT`, `--lease SECONDS`,
    /// `--cluster-batch N`.
    ///
    /// Returns `Err` with a usage message on a malformed flag (missing or
    /// unparseable value) instead of panicking; binaries print it and exit
    /// nonzero.
    pub fn from_cli<I: IntoIterator<Item = String>>(
        args: I,
    ) -> Result<(SweepOptions, Vec<String>), String> {
        let mut opts = SweepOptions::default();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} requires a value"))
        }
        fn parse<T: std::str::FromStr>(raw: String, what: &str) -> Result<T, String> {
            raw.parse().map_err(|_| format!("{what}, got {raw:?}"))
        }
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--journal" => opts.journal = Some(PathBuf::from(value(&mut it, "--journal")?)),
                "--fail-fast" => opts.fail_fast = true,
                "--audit" => opts.audit = true,
                "--json" => opts.json = true,
                "--cell-deadline" => {
                    let secs: f64 =
                        parse(value(&mut it, "--cell-deadline")?, "--cell-deadline takes seconds")?;
                    opts.cell_deadline = Some(Duration::from_secs_f64(secs));
                }
                "--retries" => {
                    let n: u32 = parse(value(&mut it, "--retries")?, "--retries takes a count")?;
                    opts.retry.max_attempts = n + 1;
                }
                "--threads" => {
                    let n: usize = parse(value(&mut it, "--threads")?, "--threads takes a count")?;
                    opts.threads = Some(n.max(1));
                }
                "--solve-threads" => {
                    let n: usize =
                        parse(value(&mut it, "--solve-threads")?, "--solve-threads takes a count")?;
                    opts.solve_threads = n.max(1);
                }
                "--shard-min-states" => {
                    let n: usize = parse(
                        value(&mut it, "--shard-min-states")?,
                        "--shard-min-states takes a count",
                    )?;
                    opts.shard_min_states = n;
                }
                "--inject-panic" => opts.inject_panic.push(value(&mut it, "--inject-panic")?),
                "--inject-noconv" => opts.inject_noconv.push(value(&mut it, "--inject-noconv")?),
                "--cluster" => opts.cluster = Some(value(&mut it, "--cluster")?),
                "--lease" => {
                    let secs: f64 = parse(value(&mut it, "--lease")?, "--lease takes seconds")?;
                    opts.lease = Some(Duration::from_secs_f64(secs));
                }
                "--cluster-batch" => {
                    let n: u32 =
                        parse(value(&mut it, "--cluster-batch")?, "--cluster-batch takes a count")?;
                    opts.cluster_batch = Some(n.max(1));
                }
                "--durability" => {
                    let raw = value(&mut it, "--durability")?;
                    opts.durability = Durability::parse(&raw).ok_or_else(|| {
                        format!("--durability takes none|batch|always, got {raw:?}")
                    })?;
                }
                "--chaos" => {
                    let spec = value(&mut it, "--chaos")?;
                    bvc_chaos::FaultPlan::parse(&spec).map_err(|e| format!("--chaos: {e}"))?;
                    opts.chaos = Some(spec);
                }
                _ => rest.push(arg),
            }
        }
        Ok((opts, rest))
    }

    /// [`SweepOptions::from_cli`] for binary `main`s: prints the error and
    /// exits with status 2 on a malformed flag instead of returning (no
    /// panic backtrace on bad arguments).
    pub fn from_cli_or_exit<I: IntoIterator<Item = String>>(
        args: I,
    ) -> (SweepOptions, Vec<String>) {
        let parsed = match Self::from_cli(args) {
            Ok(parsed) => parsed,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        };
        // Install the chaos plan process-wide: the `--chaos` flag wins,
        // otherwise `BVC_CHAOS` from the environment applies (so whole
        // pipelines can be fault-injected without threading a flag).
        let install = match &parsed.0.chaos {
            Some(spec) => bvc_chaos::install_spec(spec),
            None => bvc_chaos::install_from_env().map(|_| ()),
        };
        if let Err(msg) = install {
            eprintln!("error: chaos plan: {msg}");
            std::process::exit(2);
        }
        parsed
    }
}

// ---------------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------------

/// Runs `solve` over every input with per-cell fault isolation, watchdog
/// budgets, retry escalation, and (optionally) a checkpoint journal.
///
/// * `key_of` must produce a unique, stable, human-readable key per cell —
///   it names the cell in failure legends and identifies it across runs in
///   the journal.
/// * `solve` receives the input and a [`CellContext`]; it must thread
///   `ctx.budget` into its solver options (e.g. via
///   [`CellContext::solve_options`]) for deadlines and fail-fast
///   cancellation to be able to interrupt it.
///
/// The returned report has one entry per input, in input order, regardless
/// of how many cells failed. `run_sweep` itself never panics on cell
/// failures.
pub fn run_sweep<Inp, T, K, F>(
    label: &str,
    inputs: &[Inp],
    opts: &SweepOptions,
    key_of: K,
    solve: F,
) -> SweepReport<T>
where
    Inp: Sync,
    T: SweepValue + Send,
    K: Fn(&Inp) -> String,
    F: Fn(&Inp, &CellContext) -> Result<T, MdpError> + Sync,
{
    let started = Instant::now();
    let n = inputs.len();
    let keys: Vec<String> = inputs.iter().map(&key_of).collect();
    let fps: Vec<u64> = keys.iter().map(|k| cell_fingerprint(k, &opts.config_token)).collect();

    let mut slots: Vec<Option<CellResult<T>>> = (0..n).map(|_| None).collect();

    // Resume: replay finished cells out of the journal; failed or missing
    // entries are re-solved.
    if let Some(path) = &opts.journal {
        // Crash recovery: truncate any torn tail (a crash mid-append) back
        // to the last complete line before replaying, so the re-appended
        // line lands at the same byte offset an uninterrupted run used.
        let journal = recover_journal(path)
            .unwrap_or_else(|e| panic!("cannot recover journal {}: {e}", path.display()));
        if journal.truncated_bytes > 0 {
            eprintln!(
                "sweep {label}: journal {}: truncated {} byte(s) of torn tail",
                path.display(),
                journal.truncated_bytes
            );
        }
        for i in 0..n {
            if let Some(entry) = journal.entries.get(&fps[i]) {
                if entry.ok {
                    let vals: Vec<f64> = entry.bits.iter().map(|&b| f64::from_bits(b)).collect();
                    if let Some(value) = T::decode(&vals) {
                        slots[i] = Some(CellResult {
                            key: keys[i].clone(),
                            outcome: Ok(value),
                            attempts: 0,
                            replayed: true,
                            elapsed: Duration::ZERO,
                        });
                    }
                }
            }
        }
    }

    let pending: Vec<usize> = (0..n).filter(|&i| slots[i].is_none()).collect();
    let writer = opts.journal.as_ref().map(|path| {
        Mutex::new(
            JournalWriter::append_to(path, opts.durability)
                .unwrap_or_else(|e| panic!("cannot open journal {}: {e}", path.display())),
        )
    });

    let cancel = Arc::new(AtomicBool::new(false));
    let cursor = AtomicUsize::new(0);
    let slots_mx = Mutex::new(slots);
    let threads = opts
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4))
        .min(pending.len().max(1));

    // The shared per-cell attempt loop — literally the code a cluster
    // worker runs, which is what keeps local and distributed journals
    // byte-identical.
    let cell_cfg = CellRunConfig {
        retry: opts.retry.clone(),
        cell_deadline: opts.cell_deadline,
        audit: opts.audit,
        // Thread-budget arbitration: cell-level parallelism wins. Sharded
        // solves only engage when cells run one at a time.
        solve_threads: if threads > 1 { 1 } else { opts.solve_threads.max(1) },
        shard_min_states: opts.shard_min_states,
        inject_panic: opts.inject_panic.clone(),
        inject_noconv: opts.inject_noconv.clone(),
    };

    let solve_cell = |i: usize| -> CellResult<T> {
        let key = &keys[i];
        let cell_started = Instant::now();
        let (outcome, attempts) =
            run_cell_attempts(key, &cell_cfg, &cancel, |ctx| solve(&inputs[i], ctx));

        // Journal terminal outcomes. Skips are deliberately not journaled:
        // the cell was never really attempted and must re-solve on resume.
        let journaled = match &outcome {
            Ok(value) => Some((true, value.encode(), String::new())),
            Err(CellFailure::Skipped) => None,
            Err(f) => Some((false, Vec::new(), f.message())),
        };
        if let (Some(writer), Some((ok, vals, reason))) = (&writer, journaled) {
            let entry = JournalEntry {
                fp: fps[i],
                key: key.clone(),
                ok,
                attempts,
                bits: vals.iter().map(|v| v.to_bits()).collect(),
                reason,
            };
            let line = encode_line(&entry, &vals);
            // A worker panicking while holding the lock poisons it; the
            // journal file itself is still usable, so recover the guard.
            let mut file = writer.lock().unwrap_or_else(|e| e.into_inner());
            // A failed append rolled the file back to the previous line
            // boundary, so a retry re-appends the identical bytes. Give a
            // transiently faulted disk a few chances; a line lost past
            // that degrades to re-solving this cell on resume.
            for _ in 0..3 {
                if file.append_line(&line).is_ok() {
                    break;
                }
            }
        }

        if opts.fail_fast && matches!(&outcome, Err(f) if !matches!(f, CellFailure::Skipped)) {
            // ordering: Relaxed — best-effort cancel hint; results are joined through the scope barrier.
            cancel.store(true, Ordering::Relaxed);
        }
        CellResult {
            key: key.clone(),
            outcome,
            attempts,
            replayed: false,
            elapsed: cell_started.elapsed(),
        }
    };

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // ordering: Relaxed — a stale read solves at most one extra cell.
                if cancel.load(Ordering::Relaxed) {
                    return;
                }
                // ordering: Relaxed — the RMW itself is the claim; cell results flow through their own slots.
                let p = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = pending.get(p) else { return };
                let result = solve_cell(i);
                slots_mx.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(result);
            });
        }
    });

    // Durability barrier: under `batch`, appends since the last sync-every-N
    // boundary are only flushed, not fsynced — close the window here.
    if let Some(writer) = &writer {
        let _ = writer.lock().unwrap_or_else(|e| e.into_inner()).sync();
    }

    let cells = slots_mx
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .zip(keys)
        .map(|(slot, key)| {
            slot.unwrap_or(CellResult {
                key,
                outcome: Err(CellFailure::Skipped),
                attempts: 0,
                replayed: false,
                elapsed: Duration::ZERO,
            })
        })
        .collect();

    SweepReport { label: label.to_string(), cells, wall: started.elapsed() }
}

// ---------------------------------------------------------------------------
// Executors: local threads or a cluster coordinator
// ---------------------------------------------------------------------------

/// Where a job-registry sweep executes. The table binaries build their
/// grids as [`JobSpec`] lists and hand them to an executor, so the same
/// binary can solve in-process ([`LocalExecutor`]) or shard cells across
/// worker processes ([`ClusterExecutor`], selected by `--cluster`).
pub trait CellExecutor {
    /// Runs `jobs` under `opts`, returning one report entry per job in
    /// input order. `Err` is an infrastructure failure (bind error,
    /// journal error, determinism conflict), not a cell failure — cell
    /// failures are reported inside the `Ok` report.
    fn execute(
        &self,
        label: &str,
        jobs: &[JobSpec],
        opts: &SweepOptions,
    ) -> Result<SweepReport<Vec<f64>>, String>;
}

/// Solves every cell in-process via [`run_sweep`].
pub struct LocalExecutor;

impl CellExecutor for LocalExecutor {
    fn execute(
        &self,
        label: &str,
        jobs: &[JobSpec],
        opts: &SweepOptions,
    ) -> Result<SweepReport<Vec<f64>>, String> {
        Ok(run_sweep(label, jobs, opts, JobSpec::key, |job, ctx| job.solve(ctx)))
    }
}

/// Binds a `bvc-cluster` coordinator and shards the cells across
/// connecting workers. The journal, fingerprints, retry schedule and
/// fail-fast semantics all come from the same [`SweepOptions`] a local
/// run uses, so the resulting journal is byte-identical to a local
/// `--threads 1` run over the same cells.
pub struct ClusterExecutor {
    /// Listen address (`host:port`; port 0 binds ephemeral).
    pub addr: String,
    /// Lease duration for worker batches.
    pub lease: Duration,
    /// Claim batch size suggested to workers.
    pub batch: u32,
}

impl CellExecutor for ClusterExecutor {
    fn execute(
        &self,
        label: &str,
        jobs: &[JobSpec],
        opts: &SweepOptions,
    ) -> Result<SweepReport<Vec<f64>>, String> {
        let cfg = ClusterConfig {
            config_token: opts.config_token.clone(),
            journal: opts.journal.clone(),
            cell: CellRunConfig {
                retry: opts.retry.clone(),
                cell_deadline: opts.cell_deadline,
                audit: opts.audit,
                // Never shipped over the wire: each worker applies its own
                // local --solve-threads (see CellRunConfig docs).
                solve_threads: 1,
                shard_min_states: 0,
                inject_panic: opts.inject_panic.clone(),
                inject_noconv: opts.inject_noconv.clone(),
            },
            lease: self.lease,
            batch: self.batch,
            fail_fast: opts.fail_fast,
            durability: opts.durability,
            ..ClusterConfig::default()
        };
        let report = run_coordinator(&self.addr, label, jobs, cfg).map_err(|e| e.to_string())?;
        for line in report.stats.lines() {
            eprintln!("# {line}");
        }
        Ok(SweepReport {
            label: report.label,
            cells: report
                .cells
                .into_iter()
                .map(|c| CellResult {
                    key: c.key,
                    outcome: c.outcome,
                    attempts: c.attempts,
                    replayed: c.replayed,
                    elapsed: c.elapsed,
                })
                .collect(),
            wall: report.wall,
        })
    }
}

/// Runs a job-registry sweep through the executor `opts` selects:
/// [`ClusterExecutor`] when `--cluster` was given, [`LocalExecutor`]
/// otherwise. Infrastructure failures print and exit 2 (matching the
/// malformed-flag convention); cell failures are reported in the report.
pub fn run_jobs(label: &str, jobs: &[JobSpec], opts: &SweepOptions) -> SweepReport<Vec<f64>> {
    let result = match &opts.cluster {
        Some(addr) => ClusterExecutor {
            addr: addr.clone(),
            lease: opts.lease.unwrap_or(Duration::from_secs(30)),
            batch: opts.cluster_batch.unwrap_or(4),
        }
        .execute(label, jobs, opts),
        None => LocalExecutor.execute(label, jobs, opts),
    };
    result.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_mdp::solve::{RatioOptions, RviOptions};
    use bvc_mdp::SolveBudget;
    use std::sync::atomic::AtomicU32;

    fn tmp_journal(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("bvc_sweep_{tag}_{}_{n}.jsonl", std::process::id()))
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy { backoff: Duration::ZERO, ..Default::default() }
    }

    #[test]
    fn fingerprint_depends_on_config_token() {
        assert_ne!(cell_fingerprint("k", "a"), cell_fingerprint("k", "b"));
        assert_ne!(cell_fingerprint("k1", "a"), cell_fingerprint("k2", "a"));
        assert_eq!(cell_fingerprint("k", "a"), cell_fingerprint("k", "a"));
    }

    #[test]
    fn clean_sweep_preserves_input_order() {
        let inputs: Vec<f64> = (0..20).map(f64::from).collect();
        let report = run_sweep(
            "t",
            &inputs,
            &SweepOptions::default(),
            |x| format!("x={x}"),
            |x, _ctx| Ok(x * 2.0),
        );
        assert!(!report.has_failures());
        assert_eq!(report.solved(), 20);
        for (i, x) in inputs.iter().enumerate() {
            assert_eq!(*report.value(i).unwrap(), x * 2.0);
        }
    }

    #[test]
    fn panicking_cell_is_isolated() {
        let inputs: Vec<u32> = (0..8).collect();
        let report = run_sweep(
            "t",
            &inputs,
            &SweepOptions::default(),
            |x| format!("x={x}"),
            |x, _ctx| {
                if *x == 3 {
                    panic!("boom {x}");
                }
                Ok(f64::from(*x))
            },
        );
        assert_eq!(report.failed(), 1);
        assert_eq!(report.solved(), 7);
        let failed = &report.cells[3];
        assert!(matches!(&failed.outcome, Err(CellFailure::Panicked(m)) if m.contains("boom 3")));
        // Panics are never retried.
        assert_eq!(failed.attempts, 1);
        assert!(report.summary().contains("failed 1"));
        assert!(report.failure_legend().contains("x=3"));
    }

    #[test]
    fn injected_faults_match_by_key_substring() {
        let inputs: Vec<u32> = (0..4).collect();
        let opts = SweepOptions {
            inject_panic: vec!["x=1".into()],
            inject_noconv: vec!["x=2".into()],
            retry: fast_retry(),
            ..Default::default()
        };
        let report = run_sweep("t", &inputs, &opts, |x| format!("x={x}"), |x, _| Ok(f64::from(*x)));
        assert_eq!(report.solved(), 2);
        assert_eq!(report.failed(), 2);
        assert!(matches!(&report.cells[1].outcome, Err(CellFailure::Panicked(_))));
        assert!(matches!(
            &report.cells[2].outcome,
            Err(CellFailure::Solver(MdpError::NoConvergence { .. }))
        ));
        // The injected NoConvergence exhausted the full retry schedule.
        assert_eq!(report.cells[2].attempts, opts.retry.max_attempts);
        assert_eq!(report.grid_entry(1, None), GridEntry::Failed("panic".into()));
    }

    #[test]
    fn retry_escalation_reaches_success() {
        let inputs = [0u32];
        let report = run_sweep(
            "t",
            &inputs,
            &SweepOptions { retry: fast_retry(), ..Default::default() },
            |_| "cell".into(),
            |_, ctx| {
                if ctx.attempt == 0 {
                    assert_eq!(ctx.iteration_scale, 1.0);
                    assert_eq!(ctx.tau_offset, 0.0);
                    Err(MdpError::NoConvergence { solver: "x", iterations: 1, residual: 1.0 })
                } else {
                    assert!(ctx.iteration_scale > 1.0, "budget must escalate");
                    assert!(ctx.tau_offset > 0.0, "tau must escalate");
                    Ok(1.0)
                }
            },
        );
        assert_eq!(report.solved(), 1);
        assert_eq!(report.cells[0].attempts, 2);
        assert_eq!(report.retries(), 1);
    }

    #[test]
    fn non_retryable_errors_fail_immediately() {
        let inputs = [0u32];
        let report = run_sweep(
            "t",
            &inputs,
            &SweepOptions { retry: fast_retry(), ..Default::default() },
            |_| "cell".into(),
            |_, _| -> Result<f64, MdpError> {
                Err(MdpError::Shape { what: "warm start", found: 1, expected: 2 })
            },
        );
        assert_eq!(report.cells[0].attempts, 1);
        assert!(matches!(
            &report.cells[0].outcome,
            Err(CellFailure::Solver(MdpError::Shape { .. }))
        ));
    }

    #[test]
    fn fail_fast_skips_remaining_cells_serially() {
        let inputs: Vec<u32> = (0..10).collect();
        let executed = AtomicU32::new(0);
        let opts = SweepOptions {
            fail_fast: true,
            threads: Some(1),
            retry: fast_retry(),
            ..Default::default()
        };
        let report = run_sweep(
            "t",
            &inputs,
            &opts,
            |x| format!("x={x}"),
            |x, _| {
                executed.fetch_add(1, Ordering::SeqCst);
                if *x == 2 {
                    panic!("boom");
                }
                Ok(f64::from(*x))
            },
        );
        assert_eq!(executed.load(Ordering::SeqCst), 3, "must stop claiming after the failure");
        assert_eq!(report.solved(), 2);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.skipped(), 7);
        assert!(report.has_failures());
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn cancelled_solver_error_counts_as_skipped() {
        let inputs = [0u32];
        let report = run_sweep(
            "t",
            &inputs,
            &SweepOptions::default(),
            |_| "cell".into(),
            |_, _| -> Result<f64, MdpError> {
                Err(MdpError::Cancelled { solver: "x", iterations: 5 })
            },
        );
        assert_eq!(report.skipped(), 1);
        assert_eq!(report.failed(), 0);
    }

    #[test]
    fn deadline_is_threaded_into_the_cell_budget() {
        let inputs = [0u32];
        let opts = SweepOptions {
            cell_deadline: Some(Duration::ZERO),
            retry: RetryPolicy { max_attempts: 1, ..fast_retry() },
            ..Default::default()
        };
        let report = run_sweep(
            "t",
            &inputs,
            &opts,
            |_| "cell".into(),
            |_, ctx| -> Result<f64, MdpError> {
                // A compliant solve function checks its budget; with a zero
                // deadline the check fires on the first interval boundary.
                ctx.budget.check("test_solver", 0)?;
                Ok(1.0)
            },
        );
        assert!(matches!(
            &report.cells[0].outcome,
            Err(CellFailure::Solver(MdpError::DeadlineExceeded { .. }))
        ));
    }

    #[test]
    fn journal_resume_replays_without_resolving() {
        let path = tmp_journal("resume");
        let inputs: Vec<u32> = (0..6).collect();
        let solves = AtomicU32::new(0);
        let opts = SweepOptions {
            journal: Some(path.clone()),
            config_token: "cfg-a".into(),
            ..Default::default()
        };
        let solve = |x: &u32, _ctx: &CellContext| {
            solves.fetch_add(1, Ordering::SeqCst);
            Ok(f64::from(*x) * 3.0)
        };
        let first = run_sweep("t", &inputs, &opts, |x| format!("x={x}"), solve);
        assert_eq!(first.solved(), 6);
        assert_eq!(solves.load(Ordering::SeqCst), 6);

        let second = run_sweep("t", &inputs, &opts, |x| format!("x={x}"), solve);
        assert_eq!(second.solved(), 6);
        assert_eq!(second.replayed(), 6);
        assert_eq!(solves.load(Ordering::SeqCst), 6, "no cell may re-solve");
        for i in 0..6 {
            assert_eq!(
                second.value(i).unwrap().to_bits(),
                first.value(i).unwrap().to_bits(),
                "replayed values must be bit-identical"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_cells_resolve_on_resume() {
        let path = tmp_journal("refail");
        let inputs: Vec<u32> = (0..3).collect();
        let base =
            SweepOptions { journal: Some(path.clone()), retry: fast_retry(), ..Default::default() };
        let broken = SweepOptions { inject_panic: vec!["x=1".into()], ..base.clone() };
        let first =
            run_sweep("t", &inputs, &broken, |x| format!("x={x}"), |x, _| Ok(f64::from(*x)));
        assert_eq!(first.failed(), 1);

        // Injection removed: only the failed cell re-solves.
        let solves = AtomicU32::new(0);
        let second = run_sweep(
            "t",
            &inputs,
            &base,
            |x| format!("x={x}"),
            |x, _| {
                solves.fetch_add(1, Ordering::SeqCst);
                Ok(f64::from(*x))
            },
        );
        assert_eq!(second.solved(), 3);
        assert_eq!(second.replayed(), 2);
        assert_eq!(solves.load(Ordering::SeqCst), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn changed_config_token_invalidates_the_journal() {
        let path = tmp_journal("stale");
        let inputs: Vec<u32> = (0..4).collect();
        let mk = |token: &str| SweepOptions {
            journal: Some(path.clone()),
            config_token: token.into(),
            ..Default::default()
        };
        let solves = AtomicU32::new(0);
        let solve = |x: &u32, _: &CellContext| {
            solves.fetch_add(1, Ordering::SeqCst);
            Ok(f64::from(*x))
        };
        run_sweep("t", &inputs, &mk("tol=1e-5"), |x| format!("x={x}"), solve);
        assert_eq!(solves.load(Ordering::SeqCst), 4);
        // Tighter tolerances: every fingerprint changes, nothing replays.
        let report = run_sweep("t", &inputs, &mk("tol=1e-9"), |x| format!("x={x}"), solve);
        assert_eq!(report.replayed(), 0);
        assert_eq!(solves.load(Ordering::SeqCst), 8);
        // Back to the original config: those entries are still valid.
        let report = run_sweep("t", &inputs, &mk("tol=1e-5"), |x| format!("x={x}"), solve);
        assert_eq!(report.replayed(), 4);
        assert_eq!(solves.load(Ordering::SeqCst), 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn vec_values_roundtrip_through_the_journal() {
        let path = tmp_journal("vec");
        let inputs = [2u32];
        let opts = SweepOptions { journal: Some(path.clone()), ..Default::default() };
        let value = vec![1.5, f64::NAN, -0.0];
        let first = run_sweep("t", &inputs, &opts, |_| "cell".into(), |_, _| Ok(value.clone()));
        let second = run_sweep(
            "t",
            &inputs,
            &opts,
            |_| "cell".into(),
            |_, _| Err::<Vec<f64>, _>(MdpError::Empty),
        );
        assert_eq!(second.replayed(), 1);
        let (a, b) = (first.value(0).unwrap(), second.value(0).unwrap());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn to_json_reports_every_cell_bit_exactly() {
        let inputs: Vec<u32> = (0..3).collect();
        let opts = SweepOptions {
            inject_panic: vec!["x=1".into()],
            retry: fast_retry(),
            json: true,
            ..Default::default()
        };
        let report = run_sweep(
            "t \"json\"",
            &inputs,
            &opts,
            |x| format!("x={x}"),
            |x, _| if *x == 2 { Ok(f64::NAN) } else { Ok(f64::from(*x)) },
        );
        let json = report.to_json();
        assert!(json.starts_with("{\"sweep\":\"t \\\"json\\\"\""), "{json}");
        assert!(json.contains("\"status\":\"fail\""), "{json}");
        assert!(json.contains("\"code\":\"panic\""), "{json}");
        // NaN crosses as its bit pattern plus a quoted decimal mirror.
        assert!(
            json.contains(&format!("\"{}\"", crate::fingerprint::f64_to_hex(f64::NAN))),
            "{json}"
        );
        assert!(json.contains("\"vals\":[\"NaN\"]"), "{json}");
        assert!(json.contains("\"solved\":2,"), "{json}");
        // The whole line must survive the journal-grade parser's string
        // escaping rules: parse the key back out via a journal line.
        assert!(json.contains("\"key\":\"x=1\""), "{json}");
    }

    #[test]
    fn from_cli_parses_sweep_flags_and_passes_the_rest() {
        let args = [
            "--quick",
            "--journal",
            "/tmp/j.jsonl",
            "--fail-fast",
            "--cell-deadline",
            "2.5",
            "--retries",
            "4",
            "--threads",
            "2",
            "--solve-threads",
            "4",
            "--shard-min-states",
            "512",
            "--inject-panic",
            "a=15%",
            "--inject-noconv",
            "a=20%",
            "--audit",
            "--json",
            "--cluster",
            "127.0.0.1:0",
            "--lease",
            "1.5",
            "--cluster-batch",
            "8",
            "--setting1-only",
        ]
        .map(String::from);
        let (opts, rest) = SweepOptions::from_cli(args).unwrap();
        assert_eq!(opts.journal.as_deref(), Some(std::path::Path::new("/tmp/j.jsonl")));
        assert!(opts.fail_fast);
        assert_eq!(opts.cell_deadline, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(opts.retry.max_attempts, 5);
        assert_eq!(opts.threads, Some(2));
        assert_eq!(opts.solve_threads, 4);
        assert_eq!(opts.shard_min_states, 512);
        assert_eq!(opts.inject_panic, vec!["a=15%".to_string()]);
        assert_eq!(opts.inject_noconv, vec!["a=20%".to_string()]);
        assert!(opts.audit);
        assert!(opts.json);
        assert_eq!(opts.cluster.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.lease, Some(Duration::from_secs_f64(1.5)));
        assert_eq!(opts.cluster_batch, Some(8));
        assert_eq!(rest, vec!["--quick".to_string(), "--setting1-only".to_string()]);
    }

    #[test]
    fn from_cli_rejects_malformed_flags() {
        let missing = SweepOptions::from_cli(["--journal".to_string()]);
        assert!(missing.is_err(), "{missing:?}");
        let bad = SweepOptions::from_cli(["--retries".to_string(), "many".to_string()]);
        let msg = bad.unwrap_err();
        assert!(msg.contains("--retries"), "{msg}");
        assert!(msg.contains("many"), "{msg}");
    }

    #[test]
    fn tunable_solve_applies_escalation() {
        let ctx = CellContext {
            attempt: 1,
            budget: SolveBudget::with_timeout(Duration::from_secs(5)),
            iteration_scale: 4.0,
            tau_offset: 0.05,
            audit: true,
            solve_threads: 4,
            shard_min_states: 256,
        };
        let rvi: RviOptions = ctx.solve_options();
        let base = RviOptions::default();
        assert_eq!(rvi.max_iterations, base.max_iterations * 4);
        assert!((rvi.aperiodicity_tau - (base.aperiodicity_tau + 0.05)).abs() < 1e-12);
        assert!(!rvi.budget.is_unlimited());
        assert_eq!(rvi.solve_threads, 4);
        assert_eq!(rvi.shard_min_states, 256);

        let bu: bvc_bu::SolveOptions = ctx.solve_options();
        assert_eq!(bu.max_iterations, base.max_iterations * 4);
        assert!(bu.audit, "audit flag must thread through to solve options");
        assert_eq!(bu.solve_threads, 4);

        // A context with no shard override keeps the solver default.
        let plain = CellContext { solve_threads: 0, shard_min_states: 0, ..ctx.clone() };
        let rvi: RviOptions = plain.solve_options();
        assert_eq!(rvi.solve_threads, 1);
        assert_eq!(rvi.shard_min_states, base.shard_min_states);

        let ratio: RatioOptions = ctx.solve_options();
        assert_eq!(ratio.rvi.max_iterations, base.max_iterations * 4);

        // Tau stays clamped away from 1 however hard escalation pushes.
        let extreme = CellContext { tau_offset: 5.0, ..ctx };
        let rvi: RviOptions = extreme.solve_options();
        assert!(rvi.aperiodicity_tau <= 0.9);
    }
}
