//! Fault-tolerant sweep runner: per-cell isolation, watchdogs with retry
//! escalation, and a checkpoint/resume journal.
//!
//! The table binaries sweep dozens of parameter cells, each an MDP solve
//! whose cost varies by orders of magnitude across the grid. Before this
//! module they ran through [`crate::parallel_map`], where one panicking or
//! non-converging cell aborted the whole binary and threw away every other
//! result. [`run_sweep`] instead treats each cell as an isolated unit of
//! work:
//!
//! * **Isolation** — a panic or structured [`MdpError`] marks that one cell
//!   failed; the rest of the grid still completes and renders (degraded)
//!   through [`crate::GridEntry::Failed`].
//! * **Watchdog + retry** — every attempt carries a [`SolveBudget`] with an
//!   optional per-cell wall-clock deadline, and
//!   [retryable](MdpError::is_retryable) failures are re-attempted with an
//!   escalated iteration budget and aperiodicity mixing (see
//!   [`RetryPolicy`] and [`CellContext`]).
//! * **Checkpoint/resume** — finished cells are appended to a JSONL journal
//!   keyed by a fingerprint of the cell key *and* the solver configuration;
//!   a rerun pointed at the same journal replays finished cells bit-for-bit
//!   and solves only missing or previously failed ones.
//!
//! Values cross the journal as `f64` bit patterns (hex), so a resumed grid
//! is *bit-identical* to an uninterrupted run — including `NaN` payloads,
//! signed zeros, and infinities that ordinary decimal round-tripping
//! mangles.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{BufRead, BufReader, Write as _};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bvc_mdp::solve::{RatioOptions, RviOptions};
use bvc_mdp::{MdpError, SolveBudget};

use crate::{Cell, GridEntry};

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

// The FNV-1a fingerprint and hex-f64 helpers live in [`crate::fingerprint`]
// so the `bvc-serve` result cache can key cells exactly the way this
// journal does; they are re-exported here for existing callers.
pub use crate::fingerprint::{cell_fingerprint, fnv1a64};

// ---------------------------------------------------------------------------
// Journal values
// ---------------------------------------------------------------------------

/// A value that can cross the checkpoint journal as a flat list of `f64`s.
///
/// Encoding must be lossless: the journal stores the raw bit patterns, so
/// `decode(encode(v))` must reproduce `v` exactly for resume runs to be
/// bit-identical to clean runs.
pub trait SweepValue: Sized {
    /// Flattens the value for journaling.
    fn encode(&self) -> Vec<f64>;
    /// Rebuilds the value from a journal entry; `None` when the stored
    /// shape does not match (the entry is then treated as missing and the
    /// cell re-solved).
    fn decode(vals: &[f64]) -> Option<Self>;
}

impl SweepValue for f64 {
    fn encode(&self) -> Vec<f64> {
        vec![*self]
    }
    fn decode(vals: &[f64]) -> Option<Self> {
        match vals {
            [x] => Some(*x),
            _ => None,
        }
    }
}

impl SweepValue for Vec<f64> {
    fn encode(&self) -> Vec<f64> {
        self.clone()
    }
    fn decode(vals: &[f64]) -> Option<Self> {
        Some(vals.to_vec())
    }
}

// ---------------------------------------------------------------------------
// Failures and per-cell results
// ---------------------------------------------------------------------------

/// Why a cell has no value.
#[derive(Debug, Clone)]
pub enum CellFailure {
    /// The worker panicked; the payload is rendered to a string.
    Panicked(String),
    /// The solver returned a structured error after exhausting retries.
    Solver(MdpError),
    /// The cell was never (fully) attempted: a fail-fast sweep was cancelled
    /// by an earlier failure before this cell could run to completion.
    Skipped,
}

impl CellFailure {
    /// Short code rendered inside grid cells (`FAIL(code)`).
    pub fn reason_code(&self) -> String {
        match self {
            CellFailure::Panicked(_) => "panic".into(),
            CellFailure::Solver(MdpError::NoConvergence { .. }) => "no-conv".into(),
            CellFailure::Solver(MdpError::DeadlineExceeded { .. }) => "deadline".into(),
            CellFailure::Solver(MdpError::Cancelled { .. }) => "cancelled".into(),
            CellFailure::Solver(MdpError::AuditFailed { check, .. }) => format!("audit: {check}"),
            CellFailure::Solver(_) => "error".into(),
            CellFailure::Skipped => "skipped".into(),
        }
    }

    /// Full human-readable reason, used in journals and failure legends.
    pub fn message(&self) -> String {
        match self {
            CellFailure::Panicked(p) => format!("panic: {p}"),
            CellFailure::Solver(e) => e.to_string(),
            CellFailure::Skipped => "skipped (sweep cancelled before this cell ran)".into(),
        }
    }
}

/// Outcome of one sweep cell, in input order.
#[derive(Debug, Clone)]
pub struct CellResult<T> {
    /// The human-readable cell key (also the journal key).
    pub key: String,
    /// The value, or why there is none.
    pub outcome: Result<T, CellFailure>,
    /// Solve attempts made for this cell in this run (0 when replayed or
    /// skipped before the first attempt).
    pub attempts: u32,
    /// True when the value came from the checkpoint journal instead of a
    /// fresh solve.
    pub replayed: bool,
    /// Wall-clock time spent solving this cell in this run (all attempts).
    pub elapsed: Duration,
}

/// Everything [`run_sweep`] produced, cells in input order.
#[derive(Debug, Clone)]
pub struct SweepReport<T> {
    /// Sweep label (for the summary line).
    pub label: String,
    /// Per-cell outcomes, parallel to the input slice.
    pub cells: Vec<CellResult<T>>,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
}

impl<T> SweepReport<T> {
    /// Number of cells with a value (fresh or replayed).
    pub fn solved(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_ok()).count()
    }

    /// Number of cells whose value was replayed from the journal.
    pub fn replayed(&self) -> usize {
        self.cells.iter().filter(|c| c.replayed).count()
    }

    /// Number of cells that failed (panic or solver error).
    pub fn failed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| {
                matches!(&c.outcome, Err(CellFailure::Panicked(_) | CellFailure::Solver(_)))
            })
            .count()
    }

    /// Number of cells skipped by fail-fast cancellation.
    pub fn skipped(&self) -> usize {
        self.cells.iter().filter(|c| matches!(&c.outcome, Err(CellFailure::Skipped))).count()
    }

    /// Total retry attempts beyond each cell's first (escalations).
    pub fn retries(&self) -> u32 {
        self.cells.iter().map(|c| c.attempts.saturating_sub(1)).sum()
    }

    /// True when any cell is without a value (failed or skipped).
    pub fn has_failures(&self) -> bool {
        self.solved() < self.cells.len()
    }

    /// The value of cell `i`, if it has one.
    pub fn value(&self, i: usize) -> Option<&T> {
        self.cells[i].outcome.as_ref().ok()
    }

    /// One-line machine-greppable summary. The `# sweep` prefix lets smoke
    /// scripts filter these lines out before diffing table output across
    /// runs (replay counts legitimately differ between a clean run and a
    /// resumed one).
    pub fn summary(&self) -> String {
        format!(
            "# sweep {}: {} cells | solved {} ({} replayed) | failed {} | skipped {} | retries {} | wall {:.2}s",
            self.label,
            self.cells.len(),
            self.solved(),
            self.replayed(),
            self.failed(),
            self.skipped(),
            self.retries(),
            self.wall.as_secs_f64(),
        )
    }

    /// Multi-line legend describing every failed/skipped cell, empty when
    /// the sweep is clean.
    pub fn failure_legend(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            if let Err(failure) = &c.outcome {
                let _ = writeln!(
                    out,
                    "# sweep {}: cell '{}' {} after {} attempt(s): {}",
                    self.label,
                    c.key,
                    failure.reason_code(),
                    c.attempts,
                    failure.message(),
                );
            }
        }
        out
    }

    /// Process exit code convention: `1` when any cell is missing a value.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.has_failures())
    }
}

impl<T: SweepValue> SweepReport<T> {
    /// One-line machine-readable summary of the whole sweep: every cell
    /// with its status, bit-exact value (`bits` hex patterns, decimal
    /// `vals` mirror) or failure reason, plus the aggregate counters.
    /// Printed by the sweep binaries under `--json` so the serve preloader
    /// and CI can consume results without scraping the rendered grid.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"sweep\":\"{}\",\"cells\":[", json_escape(&self.label));
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"key\":\"{}\"", json_escape(&c.key));
            match &c.outcome {
                Ok(value) => {
                    let vals = value.encode();
                    let _ = write!(out, ",\"status\":\"ok\",\"bits\":[");
                    for (j, v) in vals.iter().enumerate() {
                        let sep = if j > 0 { "," } else { "" };
                        let _ = write!(out, "{sep}\"{}\"", crate::fingerprint::f64_to_hex(*v));
                    }
                    let _ = write!(out, "],\"vals\":[");
                    for (j, v) in vals.iter().enumerate() {
                        let sep = if j > 0 { "," } else { "" };
                        if v.is_finite() {
                            let _ = write!(out, "{sep}{v}");
                        } else {
                            let _ = write!(out, "{sep}\"{v}\"");
                        }
                    }
                    out.push(']');
                }
                Err(CellFailure::Skipped) => {
                    let _ = write!(out, ",\"status\":\"skipped\"");
                }
                Err(failure) => {
                    let _ = write!(
                        out,
                        ",\"status\":\"fail\",\"code\":\"{}\",\"reason\":\"{}\"",
                        json_escape(&failure.reason_code()),
                        json_escape(&failure.message()),
                    );
                }
            }
            let _ = write!(
                out,
                ",\"attempts\":{},\"replayed\":{},\"elapsed_s\":{:.6}}}",
                c.attempts,
                c.replayed,
                c.elapsed.as_secs_f64(),
            );
        }
        let _ = write!(
            out,
            "],\"solved\":{},\"replayed\":{},\"failed\":{},\"skipped\":{},\"retries\":{},\"wall_s\":{:.3}}}",
            self.solved(),
            self.replayed(),
            self.failed(),
            self.skipped(),
            self.retries(),
            self.wall.as_secs_f64(),
        );
        out
    }
}

impl SweepReport<f64> {
    /// Builds the grid entry for cell `i`: a comparison [`Cell`] against the
    /// paper value on success, a `FAIL(reason)` marker otherwise.
    pub fn grid_entry(&self, i: usize, paper: Option<f64>) -> GridEntry {
        match &self.cells[i].outcome {
            Ok(v) => GridEntry::Value(Cell { paper, ours: *v }),
            Err(failure) => GridEntry::Failed(failure.reason_code()),
        }
    }
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// Escalation schedule for retryable solver failures
/// ([`MdpError::is_retryable`], i.e. `NoConvergence`). Panics and
/// non-retryable errors are never retried.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per cell (first try included).
    pub max_attempts: u32,
    /// Multiplier applied to the solver's iteration budget per retry
    /// (`scale = growth^attempt`).
    pub iteration_growth: f64,
    /// Additive bump to the aperiodicity mixing weight per retry, to break
    /// periodic oscillation stalls.
    pub tau_step: f64,
    /// Base backoff slept before each retry; doubles per attempt.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            iteration_growth: 4.0,
            tau_step: 0.05,
            backoff: Duration::from_millis(50),
        }
    }
}

/// Configuration of one [`run_sweep`] call.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Checkpoint journal path. `None` disables checkpointing.
    pub journal: Option<PathBuf>,
    /// Cancel the whole sweep at the first cell failure (remaining cells
    /// are reported as skipped).
    pub fail_fast: bool,
    /// Per-attempt wall-clock deadline for each cell.
    pub cell_deadline: Option<Duration>,
    /// Retry escalation schedule.
    pub retry: RetryPolicy,
    /// Worker thread override (defaults to available parallelism).
    pub threads: Option<usize>,
    /// Fault injection: cells whose key contains any of these substrings
    /// panic instead of solving. Testing/smoke only.
    pub inject_panic: Vec<String>,
    /// Fault injection: cells whose key contains any of these substrings
    /// report `NoConvergence` instead of solving (on every attempt, so
    /// retries are exercised and then exhausted). Testing/smoke only.
    pub inject_noconv: Vec<String>,
    /// Run the static model audit before each cell's solve; cells whose
    /// model fails a check render as `FAIL(audit: <check>)` instead of
    /// producing an untrustworthy number.
    pub audit: bool,
    /// Solver configuration token mixed into cell fingerprints; see
    /// [`cell_fingerprint`]. Use `SolveOptions::fingerprint_token()`.
    pub config_token: String,
    /// Ask binaries to also print the machine-readable summary
    /// ([`SweepReport::to_json`]) after the human-readable grid, so the
    /// serve preloader and CI can consume sweep results without scraping
    /// text.
    pub json: bool,
}

impl SweepOptions {
    /// Parses the sweep-related flags out of a CLI argument list, returning
    /// the options and every argument it did not consume (the binary's own
    /// flags, e.g. `--quick`).
    ///
    /// Recognized flags:
    /// `--journal PATH`, `--fail-fast`, `--cell-deadline SECONDS`,
    /// `--retries N` (extra attempts after the first), `--threads N`,
    /// `--audit`, `--json`, `--inject-panic SUBSTR`, `--inject-noconv
    /// SUBSTR` (the last two repeatable).
    ///
    /// Returns `Err` with a usage message on a malformed flag (missing or
    /// unparseable value) instead of panicking; binaries print it and exit
    /// nonzero.
    pub fn from_cli<I: IntoIterator<Item = String>>(
        args: I,
    ) -> Result<(SweepOptions, Vec<String>), String> {
        let mut opts = SweepOptions::default();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} requires a value"))
        }
        fn parse<T: std::str::FromStr>(raw: String, what: &str) -> Result<T, String> {
            raw.parse().map_err(|_| format!("{what}, got {raw:?}"))
        }
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--journal" => opts.journal = Some(PathBuf::from(value(&mut it, "--journal")?)),
                "--fail-fast" => opts.fail_fast = true,
                "--audit" => opts.audit = true,
                "--json" => opts.json = true,
                "--cell-deadline" => {
                    let secs: f64 =
                        parse(value(&mut it, "--cell-deadline")?, "--cell-deadline takes seconds")?;
                    opts.cell_deadline = Some(Duration::from_secs_f64(secs));
                }
                "--retries" => {
                    let n: u32 = parse(value(&mut it, "--retries")?, "--retries takes a count")?;
                    opts.retry.max_attempts = n + 1;
                }
                "--threads" => {
                    let n: usize = parse(value(&mut it, "--threads")?, "--threads takes a count")?;
                    opts.threads = Some(n.max(1));
                }
                "--inject-panic" => opts.inject_panic.push(value(&mut it, "--inject-panic")?),
                "--inject-noconv" => opts.inject_noconv.push(value(&mut it, "--inject-noconv")?),
                _ => rest.push(arg),
            }
        }
        Ok((opts, rest))
    }

    /// [`SweepOptions::from_cli`] for binary `main`s: prints the error and
    /// exits with status 2 on a malformed flag instead of returning (no
    /// panic backtrace on bad arguments).
    pub fn from_cli_or_exit<I: IntoIterator<Item = String>>(
        args: I,
    ) -> (SweepOptions, Vec<String>) {
        match Self::from_cli(args) {
            Ok(parsed) => parsed,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-attempt context
// ---------------------------------------------------------------------------

/// What the runner hands a cell's solve function on each attempt: the
/// budget to thread into solver options plus the escalation state.
#[derive(Debug, Clone)]
pub struct CellContext {
    /// Attempt index, 0-based (0 = first try).
    pub attempt: u32,
    /// Budget carrying the per-cell deadline and the sweep's shared cancel
    /// flag. Solve functions must thread this into their solver options or
    /// watchdogs cannot interrupt them.
    pub budget: SolveBudget,
    /// Iteration-budget multiplier for this attempt
    /// (`iteration_growth^attempt`).
    pub iteration_scale: f64,
    /// Additive aperiodicity bump for this attempt (`attempt * tau_step`).
    pub tau_offset: f64,
    /// Whether the sweep requested a pre-solve model audit
    /// ([`SweepOptions::audit`]); [`TunableSolve`] impls whose options
    /// carry an audit gate forward it.
    pub audit: bool,
}

impl CellContext {
    /// Convenience: default options of type `T` with this context's budget
    /// and escalation applied.
    pub fn solve_options<T: TunableSolve>(&self) -> T {
        let mut t = T::default();
        t.tune(self);
        t
    }
}

/// Solver option types the runner knows how to escalate: apply the budget,
/// scale the iteration cap, bump the aperiodicity weight.
pub trait TunableSolve: Default {
    /// Applies `ctx`'s budget and escalation to these options.
    fn tune(&mut self, ctx: &CellContext);
}

fn scale_iterations(base: usize, scale: f64) -> usize {
    ((base as f64) * scale).min(1e15) as usize
}

/// Bumped tau, clamped below 1 (0.9 cap leaves the transform meaningful).
fn bump_tau(base: f64, offset: f64) -> f64 {
    (base + offset).min(0.9)
}

impl TunableSolve for RviOptions {
    fn tune(&mut self, ctx: &CellContext) {
        self.max_iterations = scale_iterations(self.max_iterations, ctx.iteration_scale);
        self.aperiodicity_tau = bump_tau(self.aperiodicity_tau, ctx.tau_offset);
        self.budget = ctx.budget.clone();
    }
}

impl TunableSolve for RatioOptions {
    fn tune(&mut self, ctx: &CellContext) {
        self.rvi.tune(ctx);
    }
}

impl TunableSolve for bvc_bu::SolveOptions {
    fn tune(&mut self, ctx: &CellContext) {
        self.max_iterations = scale_iterations(self.max_iterations, ctx.iteration_scale);
        self.aperiodicity_tau = bump_tau(self.aperiodicity_tau, ctx.tau_offset);
        self.budget = ctx.budget.clone();
        self.audit = ctx.audit;
    }
}

impl TunableSolve for bvc_bitcoin::SolveOptions {
    fn tune(&mut self, ctx: &CellContext) {
        self.max_iterations = scale_iterations(self.max_iterations, ctx.iteration_scale);
        self.aperiodicity_tau = bump_tau(self.aperiodicity_tau, ctx.tau_offset);
        self.budget = ctx.budget.clone();
        self.audit = ctx.audit;
    }
}

// ---------------------------------------------------------------------------
// Journal codec (hand-rolled JSONL; no serde in this workspace)
// ---------------------------------------------------------------------------

/// One parsed checkpoint-journal line.
///
/// Public so other subsystems can consume sweep journals directly — the
/// `bvc-serve` cache preloads itself from one ([`load_journal`] /
/// [`parse_journal_line`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Fingerprint the entry was journaled under
    /// ([`cell_fingerprint`] of key ⊕ config token).
    pub fp: u64,
    /// Human-readable cell key.
    pub key: String,
    /// Whether the cell solved (`status: ok`) or failed.
    pub ok: bool,
    /// Solve attempts recorded for the cell.
    pub attempts: u32,
    /// Raw `f64` bit patterns of the encoded value (empty for failures).
    pub bits: Vec<u64>,
    /// Failure reason (empty for successes).
    pub reason: String,
}

impl JournalEntry {
    /// The journaled value as `f64`s (bit-exact).
    pub fn values(&self) -> Vec<f64> {
        self.bits.iter().map(|&b| f64::from_bits(b)).collect()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn encode_line(entry: &JournalEntry, vals: &[f64]) -> String {
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"fp\":\"{:016x}\",\"key\":\"{}\",\"status\":\"{}\",\"attempts\":{}",
        entry.fp,
        json_escape(&entry.key),
        if entry.ok { "ok" } else { "fail" },
        entry.attempts,
    );
    if entry.ok {
        // Canonical value: hex bit patterns (bit-exact). The decimal `vals`
        // mirror is informational for humans reading the journal and is
        // ignored on replay.
        let _ = write!(line, ",\"bits\":[");
        for (i, b) in entry.bits.iter().enumerate() {
            let sep = if i > 0 { "," } else { "" };
            let _ = write!(line, "{sep}\"{}\"", crate::fingerprint::f64_to_hex(f64::from_bits(*b)));
        }
        let _ = write!(line, "],\"vals\":[");
        for (i, v) in vals.iter().enumerate() {
            let sep = if i > 0 { "," } else { "" };
            if v.is_finite() {
                let _ = write!(line, "{sep}{v}");
            } else {
                let _ = write!(line, "{sep}\"{v}\"");
            }
        }
        let _ = write!(line, "]");
    } else {
        let _ = write!(line, ",\"reason\":\"{}\"", json_escape(&entry.reason));
    }
    line.push('}');
    line
}

/// Minimal cursor over one JSON object line. Tolerant by construction: any
/// structural surprise makes the whole line parse to `None`, and the caller
/// skips it (a torn tail line from a killed run must not poison resume).
struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Option<String> {
        self.ws();
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            let c = *self.b.get(self.i)?;
            self.i += 1;
            match c {
                b'"' => return Some(out),
                b'\\' => {
                    let e = *self.b.get(self.i)?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.b.get(self.i..self.i + 4)?;
                            self.i += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c => out.push(c as char),
            }
        }
    }

    fn number(&mut self) -> Option<f64> {
        self.ws();
        let start = self.i;
        while self.i < self.b.len()
            && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i]).ok()?.parse().ok()
    }

    /// Skips a scalar or (possibly nested) array value we don't care about.
    fn skip_value(&mut self) -> Option<()> {
        self.ws();
        match *self.b.get(self.i)? {
            b'"' => self.string().map(|_| ()),
            b'[' => {
                self.i += 1;
                loop {
                    self.ws();
                    if self.eat(b']') {
                        return Some(());
                    }
                    self.skip_value()?;
                    self.ws();
                    self.eat(b',');
                }
            }
            b't' | b'f' | b'n' => {
                while self.i < self.b.len() && self.b[self.i].is_ascii_alphabetic() {
                    self.i += 1;
                }
                Some(())
            }
            _ => self.number().map(|_| ()),
        }
    }
}

/// Parses one journal line. Tolerant by construction: any structural
/// surprise (torn tail from a killed run, stray edit) makes the whole line
/// parse to `None` and the caller skips it.
pub fn parse_journal_line(line: &str) -> Option<JournalEntry> {
    let mut c = Cur { b: line.as_bytes(), i: 0 };
    c.ws();
    if !c.eat(b'{') {
        return None;
    }
    let mut fp = None;
    let mut key = None;
    let mut status = None;
    let mut attempts = 0u32;
    let mut bits = Vec::new();
    let mut reason = String::new();
    loop {
        c.ws();
        if c.eat(b'}') {
            break;
        }
        let name = c.string()?;
        c.ws();
        if !c.eat(b':') {
            return None;
        }
        match name.as_str() {
            "fp" => fp = u64::from_str_radix(&c.string()?, 16).ok(),
            "key" => key = Some(c.string()?),
            "status" => status = Some(c.string()?),
            "attempts" => attempts = c.number()? as u32,
            "bits" => {
                c.ws();
                if !c.eat(b'[') {
                    return None;
                }
                loop {
                    c.ws();
                    if c.eat(b']') {
                        break;
                    }
                    bits.push(crate::fingerprint::f64_from_hex(&c.string()?)?.to_bits());
                    c.ws();
                    c.eat(b',');
                }
            }
            "reason" => reason = c.string()?,
            _ => c.skip_value()?,
        }
        c.ws();
        c.eat(b',');
    }
    let status = status?;
    if status != "ok" && status != "fail" {
        return None;
    }
    Some(JournalEntry { fp: fp?, key: key?, ok: status == "ok", attempts, bits, reason })
}

/// Loads a journal, last-entry-wins per fingerprint. Unparseable lines
/// (torn tails from killed runs, stray edits) are skipped.
pub fn load_journal(path: &std::path::Path) -> HashMap<u64, JournalEntry> {
    let mut map = HashMap::new();
    let Ok(file) = std::fs::File::open(path) else {
        return map;
    };
    for line in BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        if let Some(entry) = parse_journal_line(&line) {
            map.insert(entry.fp, entry);
        }
    }
    map
}

// ---------------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------------

/// Runs `solve` over every input with per-cell fault isolation, watchdog
/// budgets, retry escalation, and (optionally) a checkpoint journal.
///
/// * `key_of` must produce a unique, stable, human-readable key per cell —
///   it names the cell in failure legends and identifies it across runs in
///   the journal.
/// * `solve` receives the input and a [`CellContext`]; it must thread
///   `ctx.budget` into its solver options (e.g. via
///   [`CellContext::solve_options`]) for deadlines and fail-fast
///   cancellation to be able to interrupt it.
///
/// The returned report has one entry per input, in input order, regardless
/// of how many cells failed. `run_sweep` itself never panics on cell
/// failures.
pub fn run_sweep<Inp, T, K, F>(
    label: &str,
    inputs: &[Inp],
    opts: &SweepOptions,
    key_of: K,
    solve: F,
) -> SweepReport<T>
where
    Inp: Sync,
    T: SweepValue + Send,
    K: Fn(&Inp) -> String,
    F: Fn(&Inp, &CellContext) -> Result<T, MdpError> + Sync,
{
    let started = Instant::now();
    let n = inputs.len();
    let keys: Vec<String> = inputs.iter().map(&key_of).collect();
    let fps: Vec<u64> = keys.iter().map(|k| cell_fingerprint(k, &opts.config_token)).collect();

    let mut slots: Vec<Option<CellResult<T>>> = (0..n).map(|_| None).collect();

    // Resume: replay finished cells out of the journal; failed or missing
    // entries are re-solved.
    if let Some(path) = &opts.journal {
        let journal = load_journal(path);
        for i in 0..n {
            if let Some(entry) = journal.get(&fps[i]) {
                if entry.ok {
                    let vals: Vec<f64> = entry.bits.iter().map(|&b| f64::from_bits(b)).collect();
                    if let Some(value) = T::decode(&vals) {
                        slots[i] = Some(CellResult {
                            key: keys[i].clone(),
                            outcome: Ok(value),
                            attempts: 0,
                            replayed: true,
                            elapsed: Duration::ZERO,
                        });
                    }
                }
            }
        }
    }

    let pending: Vec<usize> = (0..n).filter(|&i| slots[i].is_none()).collect();
    let writer = opts.journal.as_ref().map(|path| {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        Mutex::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| panic!("cannot open journal {}: {e}", path.display())),
        )
    });

    let cancel = Arc::new(AtomicBool::new(false));
    let cursor = AtomicUsize::new(0);
    let slots_mx = Mutex::new(slots);
    let threads = opts
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4))
        .min(pending.len().max(1));

    let solve_cell = |i: usize| -> CellResult<T> {
        let key = &keys[i];
        let cell_started = Instant::now();
        let inject_panic = opts.inject_panic.iter().any(|s| key.contains(s));
        let inject_noconv = opts.inject_noconv.iter().any(|s| key.contains(s));
        let mut attempts = 0u32;
        let outcome = loop {
            let attempt = attempts;
            attempts += 1;
            let mut budget = SolveBudget::unlimited().with_cancel(cancel.clone());
            if let Some(deadline) = opts.cell_deadline {
                budget = budget.deadline_at(Instant::now() + deadline);
            }
            let ctx = CellContext {
                attempt,
                budget,
                iteration_scale: opts.retry.iteration_growth.powi(attempt as i32),
                tau_offset: f64::from(attempt) * opts.retry.tau_step,
                audit: opts.audit,
            };
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                if inject_panic {
                    panic!("injected panic for cell '{key}'");
                }
                if inject_noconv {
                    return Err(MdpError::NoConvergence {
                        solver: "injected",
                        iterations: 0,
                        residual: f64::INFINITY,
                    });
                }
                solve(&inputs[i], &ctx)
            }));
            match result {
                Ok(Ok(value)) => break Ok(value),
                Ok(Err(e)) if e.is_cancellation() => break Err(CellFailure::Skipped),
                Ok(Err(e)) if e.is_retryable() && attempts < opts.retry.max_attempts => {
                    if !opts.retry.backoff.is_zero() {
                        std::thread::sleep(opts.retry.backoff * 2u32.pow(attempt.min(16)));
                    }
                }
                Ok(Err(e)) => break Err(CellFailure::Solver(e)),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                        .unwrap_or_else(|| "non-string panic payload".into());
                    break Err(CellFailure::Panicked(msg));
                }
            }
        };

        // Journal terminal outcomes. Skips are deliberately not journaled:
        // the cell was never really attempted and must re-solve on resume.
        let journaled = match &outcome {
            Ok(value) => Some((true, value.encode(), String::new())),
            Err(f @ (CellFailure::Panicked(_) | CellFailure::Solver(_))) => {
                Some((false, Vec::new(), f.message()))
            }
            Err(CellFailure::Skipped) => None,
        };
        if let (Some(writer), Some((ok, vals, reason))) = (&writer, journaled) {
            let entry = JournalEntry {
                fp: fps[i],
                key: key.clone(),
                ok,
                attempts,
                bits: vals.iter().map(|v| v.to_bits()).collect(),
                reason,
            };
            let line = encode_line(&entry, &vals);
            // A worker panicking while holding the lock poisons it; the
            // journal file itself is still usable, so recover the guard.
            let mut file = writer.lock().unwrap_or_else(|e| e.into_inner());
            let _ = writeln!(file, "{line}");
            let _ = file.flush();
        }

        if opts.fail_fast
            && matches!(&outcome, Err(CellFailure::Panicked(_) | CellFailure::Solver(_)))
        {
            cancel.store(true, Ordering::Relaxed);
        }
        CellResult {
            key: key.clone(),
            outcome,
            attempts,
            replayed: false,
            elapsed: cell_started.elapsed(),
        }
    };

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if cancel.load(Ordering::Relaxed) {
                    return;
                }
                let p = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = pending.get(p) else { return };
                let result = solve_cell(i);
                slots_mx.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(result);
            });
        }
    });

    let cells = slots_mx
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .zip(keys)
        .map(|(slot, key)| {
            slot.unwrap_or(CellResult {
                key,
                outcome: Err(CellFailure::Skipped),
                attempts: 0,
                replayed: false,
                elapsed: Duration::ZERO,
            })
        })
        .collect();

    SweepReport { label: label.to_string(), cells, wall: started.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tmp_journal(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("bvc_sweep_{tag}_{}_{n}.jsonl", std::process::id()))
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy { backoff: Duration::ZERO, ..Default::default() }
    }

    #[test]
    fn journal_lines_roundtrip_bit_exactly() {
        for v in [
            0.25f64,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.0e-308,
            std::f64::consts::PI,
        ] {
            let entry = JournalEntry {
                fp: cell_fingerprint("cell \"x\"\n", "cfg"),
                key: "cell \"x\"\n".into(),
                ok: true,
                attempts: 2,
                bits: vec![v.to_bits()],
                reason: String::new(),
            };
            let line = encode_line(&entry, &[v]);
            let parsed = parse_journal_line(&line).expect("line parses");
            assert_eq!(parsed, entry, "roundtrip for {v}: {line}");
            assert_eq!(f64::from_bits(parsed.bits[0]).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn failure_lines_roundtrip() {
        let entry = JournalEntry {
            fp: 7,
            key: "k".into(),
            ok: false,
            attempts: 3,
            bits: vec![],
            reason: "rvi did not converge\n(residual 1e-3)".into(),
        };
        let parsed = parse_journal_line(&encode_line(&entry, &[])).unwrap();
        assert_eq!(parsed, entry);
    }

    #[test]
    fn corrupt_lines_are_rejected_not_fatal() {
        for junk in [
            "",
            "not json",
            "{\"fp\":\"xyz\",\"key\":\"k\",\"status\":\"ok\",\"attempts\":1}",
            "{\"key\":\"missing fp\",\"status\":\"ok\",\"attempts\":1}",
            "{\"fp\":\"01\",\"key\":\"k\",\"status\":\"weird\",\"attempts\":1}",
            "{\"fp\":\"01\",\"key\":\"k\",\"status\":\"ok\",\"attempts\":1,\"bits\":[\"03",
        ] {
            assert!(parse_journal_line(junk).is_none(), "accepted junk: {junk:?}");
        }
    }

    #[test]
    fn fingerprint_depends_on_config_token() {
        assert_ne!(cell_fingerprint("k", "a"), cell_fingerprint("k", "b"));
        assert_ne!(cell_fingerprint("k1", "a"), cell_fingerprint("k2", "a"));
        assert_eq!(cell_fingerprint("k", "a"), cell_fingerprint("k", "a"));
    }

    #[test]
    fn clean_sweep_preserves_input_order() {
        let inputs: Vec<f64> = (0..20).map(f64::from).collect();
        let report = run_sweep(
            "t",
            &inputs,
            &SweepOptions::default(),
            |x| format!("x={x}"),
            |x, _ctx| Ok(x * 2.0),
        );
        assert!(!report.has_failures());
        assert_eq!(report.solved(), 20);
        for (i, x) in inputs.iter().enumerate() {
            assert_eq!(*report.value(i).unwrap(), x * 2.0);
        }
    }

    #[test]
    fn panicking_cell_is_isolated() {
        let inputs: Vec<u32> = (0..8).collect();
        let report = run_sweep(
            "t",
            &inputs,
            &SweepOptions::default(),
            |x| format!("x={x}"),
            |x, _ctx| {
                if *x == 3 {
                    panic!("boom {x}");
                }
                Ok(f64::from(*x))
            },
        );
        assert_eq!(report.failed(), 1);
        assert_eq!(report.solved(), 7);
        let failed = &report.cells[3];
        assert!(matches!(&failed.outcome, Err(CellFailure::Panicked(m)) if m.contains("boom 3")));
        // Panics are never retried.
        assert_eq!(failed.attempts, 1);
        assert!(report.summary().contains("failed 1"));
        assert!(report.failure_legend().contains("x=3"));
    }

    #[test]
    fn injected_faults_match_by_key_substring() {
        let inputs: Vec<u32> = (0..4).collect();
        let opts = SweepOptions {
            inject_panic: vec!["x=1".into()],
            inject_noconv: vec!["x=2".into()],
            retry: fast_retry(),
            ..Default::default()
        };
        let report = run_sweep("t", &inputs, &opts, |x| format!("x={x}"), |x, _| Ok(f64::from(*x)));
        assert_eq!(report.solved(), 2);
        assert_eq!(report.failed(), 2);
        assert!(matches!(&report.cells[1].outcome, Err(CellFailure::Panicked(_))));
        assert!(matches!(
            &report.cells[2].outcome,
            Err(CellFailure::Solver(MdpError::NoConvergence { .. }))
        ));
        // The injected NoConvergence exhausted the full retry schedule.
        assert_eq!(report.cells[2].attempts, opts.retry.max_attempts);
        assert_eq!(report.grid_entry(1, None), GridEntry::Failed("panic".into()));
    }

    #[test]
    fn retry_escalation_reaches_success() {
        let inputs = [0u32];
        let report = run_sweep(
            "t",
            &inputs,
            &SweepOptions { retry: fast_retry(), ..Default::default() },
            |_| "cell".into(),
            |_, ctx| {
                if ctx.attempt == 0 {
                    assert_eq!(ctx.iteration_scale, 1.0);
                    assert_eq!(ctx.tau_offset, 0.0);
                    Err(MdpError::NoConvergence { solver: "x", iterations: 1, residual: 1.0 })
                } else {
                    assert!(ctx.iteration_scale > 1.0, "budget must escalate");
                    assert!(ctx.tau_offset > 0.0, "tau must escalate");
                    Ok(1.0)
                }
            },
        );
        assert_eq!(report.solved(), 1);
        assert_eq!(report.cells[0].attempts, 2);
        assert_eq!(report.retries(), 1);
    }

    #[test]
    fn non_retryable_errors_fail_immediately() {
        let inputs = [0u32];
        let report = run_sweep(
            "t",
            &inputs,
            &SweepOptions { retry: fast_retry(), ..Default::default() },
            |_| "cell".into(),
            |_, _| -> Result<f64, MdpError> {
                Err(MdpError::Shape { what: "warm start", found: 1, expected: 2 })
            },
        );
        assert_eq!(report.cells[0].attempts, 1);
        assert!(matches!(
            &report.cells[0].outcome,
            Err(CellFailure::Solver(MdpError::Shape { .. }))
        ));
    }

    #[test]
    fn fail_fast_skips_remaining_cells_serially() {
        let inputs: Vec<u32> = (0..10).collect();
        let executed = AtomicU32::new(0);
        let opts = SweepOptions {
            fail_fast: true,
            threads: Some(1),
            retry: fast_retry(),
            ..Default::default()
        };
        let report = run_sweep(
            "t",
            &inputs,
            &opts,
            |x| format!("x={x}"),
            |x, _| {
                executed.fetch_add(1, Ordering::SeqCst);
                if *x == 2 {
                    panic!("boom");
                }
                Ok(f64::from(*x))
            },
        );
        assert_eq!(executed.load(Ordering::SeqCst), 3, "must stop claiming after the failure");
        assert_eq!(report.solved(), 2);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.skipped(), 7);
        assert!(report.has_failures());
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn cancelled_solver_error_counts_as_skipped() {
        let inputs = [0u32];
        let report = run_sweep(
            "t",
            &inputs,
            &SweepOptions::default(),
            |_| "cell".into(),
            |_, _| -> Result<f64, MdpError> {
                Err(MdpError::Cancelled { solver: "x", iterations: 5 })
            },
        );
        assert_eq!(report.skipped(), 1);
        assert_eq!(report.failed(), 0);
    }

    #[test]
    fn deadline_is_threaded_into_the_cell_budget() {
        let inputs = [0u32];
        let opts = SweepOptions {
            cell_deadline: Some(Duration::ZERO),
            retry: RetryPolicy { max_attempts: 1, ..fast_retry() },
            ..Default::default()
        };
        let report = run_sweep(
            "t",
            &inputs,
            &opts,
            |_| "cell".into(),
            |_, ctx| -> Result<f64, MdpError> {
                // A compliant solve function checks its budget; with a zero
                // deadline the check fires on the first interval boundary.
                ctx.budget.check("test_solver", 0)?;
                Ok(1.0)
            },
        );
        assert!(matches!(
            &report.cells[0].outcome,
            Err(CellFailure::Solver(MdpError::DeadlineExceeded { .. }))
        ));
    }

    #[test]
    fn journal_resume_replays_without_resolving() {
        let path = tmp_journal("resume");
        let inputs: Vec<u32> = (0..6).collect();
        let solves = AtomicU32::new(0);
        let opts = SweepOptions {
            journal: Some(path.clone()),
            config_token: "cfg-a".into(),
            ..Default::default()
        };
        let solve = |x: &u32, _ctx: &CellContext| {
            solves.fetch_add(1, Ordering::SeqCst);
            Ok(f64::from(*x) * 3.0)
        };
        let first = run_sweep("t", &inputs, &opts, |x| format!("x={x}"), solve);
        assert_eq!(first.solved(), 6);
        assert_eq!(solves.load(Ordering::SeqCst), 6);

        let second = run_sweep("t", &inputs, &opts, |x| format!("x={x}"), solve);
        assert_eq!(second.solved(), 6);
        assert_eq!(second.replayed(), 6);
        assert_eq!(solves.load(Ordering::SeqCst), 6, "no cell may re-solve");
        for i in 0..6 {
            assert_eq!(
                second.value(i).unwrap().to_bits(),
                first.value(i).unwrap().to_bits(),
                "replayed values must be bit-identical"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_cells_resolve_on_resume() {
        let path = tmp_journal("refail");
        let inputs: Vec<u32> = (0..3).collect();
        let base =
            SweepOptions { journal: Some(path.clone()), retry: fast_retry(), ..Default::default() };
        let broken = SweepOptions { inject_panic: vec!["x=1".into()], ..base.clone() };
        let first =
            run_sweep("t", &inputs, &broken, |x| format!("x={x}"), |x, _| Ok(f64::from(*x)));
        assert_eq!(first.failed(), 1);

        // Injection removed: only the failed cell re-solves.
        let solves = AtomicU32::new(0);
        let second = run_sweep(
            "t",
            &inputs,
            &base,
            |x| format!("x={x}"),
            |x, _| {
                solves.fetch_add(1, Ordering::SeqCst);
                Ok(f64::from(*x))
            },
        );
        assert_eq!(second.solved(), 3);
        assert_eq!(second.replayed(), 2);
        assert_eq!(solves.load(Ordering::SeqCst), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn changed_config_token_invalidates_the_journal() {
        let path = tmp_journal("stale");
        let inputs: Vec<u32> = (0..4).collect();
        let mk = |token: &str| SweepOptions {
            journal: Some(path.clone()),
            config_token: token.into(),
            ..Default::default()
        };
        let solves = AtomicU32::new(0);
        let solve = |x: &u32, _: &CellContext| {
            solves.fetch_add(1, Ordering::SeqCst);
            Ok(f64::from(*x))
        };
        run_sweep("t", &inputs, &mk("tol=1e-5"), |x| format!("x={x}"), solve);
        assert_eq!(solves.load(Ordering::SeqCst), 4);
        // Tighter tolerances: every fingerprint changes, nothing replays.
        let report = run_sweep("t", &inputs, &mk("tol=1e-9"), |x| format!("x={x}"), solve);
        assert_eq!(report.replayed(), 0);
        assert_eq!(solves.load(Ordering::SeqCst), 8);
        // Back to the original config: those entries are still valid.
        let report = run_sweep("t", &inputs, &mk("tol=1e-5"), |x| format!("x={x}"), solve);
        assert_eq!(report.replayed(), 4);
        assert_eq!(solves.load(Ordering::SeqCst), 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn vec_values_roundtrip_through_the_journal() {
        let path = tmp_journal("vec");
        let inputs = [2u32];
        let opts = SweepOptions { journal: Some(path.clone()), ..Default::default() };
        let value = vec![1.5, f64::NAN, -0.0];
        let first = run_sweep("t", &inputs, &opts, |_| "cell".into(), |_, _| Ok(value.clone()));
        let second = run_sweep(
            "t",
            &inputs,
            &opts,
            |_| "cell".into(),
            |_, _| Err::<Vec<f64>, _>(MdpError::Empty),
        );
        assert_eq!(second.replayed(), 1);
        let (a, b) = (first.value(0).unwrap(), second.value(0).unwrap());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn to_json_reports_every_cell_bit_exactly() {
        let inputs: Vec<u32> = (0..3).collect();
        let opts = SweepOptions {
            inject_panic: vec!["x=1".into()],
            retry: fast_retry(),
            json: true,
            ..Default::default()
        };
        let report = run_sweep(
            "t \"json\"",
            &inputs,
            &opts,
            |x| format!("x={x}"),
            |x, _| if *x == 2 { Ok(f64::NAN) } else { Ok(f64::from(*x)) },
        );
        let json = report.to_json();
        assert!(json.starts_with("{\"sweep\":\"t \\\"json\\\"\""), "{json}");
        assert!(json.contains("\"status\":\"fail\""), "{json}");
        assert!(json.contains("\"code\":\"panic\""), "{json}");
        // NaN crosses as its bit pattern plus a quoted decimal mirror.
        assert!(
            json.contains(&format!("\"{}\"", crate::fingerprint::f64_to_hex(f64::NAN))),
            "{json}"
        );
        assert!(json.contains("\"vals\":[\"NaN\"]"), "{json}");
        assert!(json.contains("\"solved\":2,"), "{json}");
        // The whole line must survive the journal-grade parser's string
        // escaping rules: parse the key back out via a journal line.
        assert!(json.contains("\"key\":\"x=1\""), "{json}");
    }

    #[test]
    fn from_cli_parses_sweep_flags_and_passes_the_rest() {
        let args = [
            "--quick",
            "--journal",
            "/tmp/j.jsonl",
            "--fail-fast",
            "--cell-deadline",
            "2.5",
            "--retries",
            "4",
            "--threads",
            "2",
            "--inject-panic",
            "a=15%",
            "--inject-noconv",
            "a=20%",
            "--audit",
            "--json",
            "--setting1-only",
        ]
        .map(String::from);
        let (opts, rest) = SweepOptions::from_cli(args).unwrap();
        assert_eq!(opts.journal.as_deref(), Some(std::path::Path::new("/tmp/j.jsonl")));
        assert!(opts.fail_fast);
        assert_eq!(opts.cell_deadline, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(opts.retry.max_attempts, 5);
        assert_eq!(opts.threads, Some(2));
        assert_eq!(opts.inject_panic, vec!["a=15%".to_string()]);
        assert_eq!(opts.inject_noconv, vec!["a=20%".to_string()]);
        assert!(opts.audit);
        assert!(opts.json);
        assert_eq!(rest, vec!["--quick".to_string(), "--setting1-only".to_string()]);
    }

    #[test]
    fn from_cli_rejects_malformed_flags() {
        let missing = SweepOptions::from_cli(["--journal".to_string()]);
        assert!(missing.is_err(), "{missing:?}");
        let bad = SweepOptions::from_cli(["--retries".to_string(), "many".to_string()]);
        let msg = bad.unwrap_err();
        assert!(msg.contains("--retries"), "{msg}");
        assert!(msg.contains("many"), "{msg}");
    }

    #[test]
    fn tunable_solve_applies_escalation() {
        let ctx = CellContext {
            attempt: 1,
            budget: SolveBudget::with_timeout(Duration::from_secs(5)),
            iteration_scale: 4.0,
            tau_offset: 0.05,
            audit: true,
        };
        let rvi: RviOptions = ctx.solve_options();
        let base = RviOptions::default();
        assert_eq!(rvi.max_iterations, base.max_iterations * 4);
        assert!((rvi.aperiodicity_tau - (base.aperiodicity_tau + 0.05)).abs() < 1e-12);
        assert!(!rvi.budget.is_unlimited());

        let bu: bvc_bu::SolveOptions = ctx.solve_options();
        assert_eq!(bu.max_iterations, base.max_iterations * 4);
        assert!(bu.audit, "audit flag must thread through to solve options");

        let ratio: RatioOptions = ctx.solve_options();
        assert_eq!(ratio.rvi.max_iterations, base.max_iterations * 4);

        // Tau stays clamped away from 1 however hard escalation pushes.
        let extreme = CellContext { tau_offset: 5.0, ..ctx };
        let rvi: RviOptions = extreme.solve_options();
        assert!(rvi.aperiodicity_tau <= 0.9);
    }
}
