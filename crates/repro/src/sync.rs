//! Synchronization facade.
//!
//! Production builds alias `std::sync`/`std::thread` directly — the
//! facade is zero-cost and binaries are bit-identical to using std paths
//! inline. Under `--cfg bvc_check` the same names resolve to the
//! `bvc-check` shims, whose every operation is a decision point of the
//! model checker's controlled scheduler (and which fall back to plain
//! std behaviour outside a model run). See DESIGN.md §13.

#[cfg(not(bvc_check))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicUsize};
#[cfg(not(bvc_check))]
pub(crate) use std::sync::Mutex;
#[cfg(not(bvc_check))]
pub(crate) use std::thread::scope;

#[cfg(bvc_check)]
pub(crate) use bvc_check::sync::{AtomicBool, AtomicUsize, Mutex};
#[cfg(bvc_check)]
pub(crate) use bvc_check::thread::scope;
