//! Stable cell fingerprints and bit-exact `f64` hex encoding.
//!
//! Two consumers share these helpers and must agree byte-for-byte on them:
//! the sweep checkpoint journal ([`crate::sweep`]) and the `bvc-serve`
//! result cache, which keys cached cells by exactly the fingerprints the
//! journal writes so a sweep journal can warm-start the server.

/// FNV-1a 64-bit hash; stable across platforms and releases, which is what
/// a checkpoint journal (and a cache warmed from one) needs —
/// `DefaultHasher` makes no such promise.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic identity of one sweep cell: the human-readable cell key
/// joined with a token describing every solver knob that can change the
/// cell's *value*. Changing tolerances invalidates old journal entries
/// (different fingerprint) without invalidating unrelated cells.
pub fn cell_fingerprint(key: &str, config_token: &str) -> u64 {
    let mut data = Vec::with_capacity(key.len() + config_token.len() + 1);
    data.extend_from_slice(key.as_bytes());
    data.push(0x1f);
    data.extend_from_slice(config_token.as_bytes());
    fnv1a64(&data)
}

/// Renders an `f64` as its 16-hex-digit bit pattern. Lossless for every
/// value, including NaN payloads, signed zeros, infinities and subnormals
/// that decimal round-tripping mangles.
pub fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parses a bit pattern written by [`f64_to_hex`]. Returns `None` on
/// malformed input instead of guessing.
pub fn f64_from_hex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_separates_key_and_token() {
        assert_ne!(cell_fingerprint("ab", "c"), cell_fingerprint("a", "bc"));
    }

    #[test]
    fn hex_roundtrip_is_bit_exact() {
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE / 2.0, // subnormal
            std::f64::consts::PI,
        ] {
            let hex = f64_to_hex(v);
            assert_eq!(hex.len(), 16);
            let back = f64_from_hex(&hex).expect("valid hex");
            assert_eq!(back.to_bits(), v.to_bits(), "roundtrip for {v}: {hex}");
        }
    }

    #[test]
    fn malformed_hex_is_rejected() {
        for junk in ["", "xyz", "12 34", "g000000000000000"] {
            assert!(f64_from_hex(junk).is_none(), "accepted junk {junk:?}");
        }
        // Short-but-valid hex still parses (leading zeros implied).
        assert_eq!(f64_from_hex("0").map(f64::to_bits), Some(0));
    }
}
