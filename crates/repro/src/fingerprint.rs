//! Stable cell fingerprints and bit-exact `f64` hex encoding.
//!
//! The implementations moved to the bottom-of-the-DAG `bvc-journal` crate
//! so that the sweep checkpoint journal ([`crate::sweep`]), the
//! `bvc-serve` result cache, and the `bvc-cluster` wire protocol all hash
//! and encode through literally the same functions. This module re-exports
//! them under their historical paths.

pub use bvc_journal::{cell_fingerprint, f64_from_hex, f64_to_hex, fnv1a64};
