//! Benchmarks for the analytic pipeline behind each reproduced table:
//! model construction and the solver work of one representative cell per
//! table. Absolute numbers are machine-dependent; the groups exist to
//! track regressions in the state-space generator and the solvers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bvc_bench::{setting2_model, standard_model};
use bvc_bitcoin::{BitcoinConfig, BitcoinModel};
use bvc_bu::{AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};

fn bench_model_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_build");
    g.bench_function("bu_setting1", |b| {
        b.iter(|| {
            let cfg = AttackConfig::with_ratio(
                0.2,
                (1, 1),
                Setting::One,
                IncentiveModel::CompliantProfitDriven,
            );
            black_box(AttackModel::build(cfg).unwrap().num_states())
        })
    });
    g.bench_function("bu_setting2", |b| {
        b.iter(|| {
            let cfg = AttackConfig::with_ratio(
                0.2,
                (1, 1),
                Setting::Two,
                IncentiveModel::CompliantProfitDriven,
            );
            black_box(AttackModel::build(cfg).unwrap().num_states())
        })
    });
    g.bench_function("bitcoin_cap40", |b| {
        b.iter(|| {
            black_box(BitcoinModel::build(BitcoinConfig::smds(0.25, 0.5)).unwrap().num_states())
        })
    });
    g.finish();
}

/// Table 2: one ratio-objective solve (compliant Alice).
fn bench_table2_cell(c: &mut Criterion) {
    let model = standard_model(IncentiveModel::CompliantProfitDriven);
    let opts = SolveOptions::default();
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("relative_revenue_setting1_a20_1to1", |b| {
        b.iter(|| black_box(model.optimal_relative_revenue(&opts).unwrap().value))
    });
    g.finish();
}

/// Table 3: one average-reward solve (non-compliant Alice), settings 1 & 2,
/// plus the Bitcoin SM+DS baseline.
fn bench_table3_cell(c: &mut Criterion) {
    let opts = SolveOptions::default();
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    let m1 = standard_model(IncentiveModel::non_compliant_default());
    g.bench_function("absolute_revenue_setting1_a20_1to1", |b| {
        b.iter(|| black_box(m1.optimal_absolute_revenue(&opts).unwrap().value))
    });
    let m2 = setting2_model(IncentiveModel::non_compliant_default());
    g.bench_function("absolute_revenue_setting2_a20_1to1", |b| {
        b.iter(|| black_box(m2.optimal_absolute_revenue(&opts).unwrap().value))
    });
    let bm = BitcoinModel::build(BitcoinConfig::smds(0.25, 0.5)).unwrap();
    let bopts = bvc_bitcoin::SolveOptions::default();
    g.bench_function("bitcoin_smds_a25_g05", |b| {
        b.iter(|| black_box(bm.optimal_absolute_revenue(&bopts).unwrap().value))
    });
    g.finish();
}

/// Table 4: one orphan-rate ratio solve (non-profit Alice, Wait action).
fn bench_table4_cell(c: &mut Criterion) {
    let model = standard_model(IncentiveModel::NonProfitDriven);
    let opts = SolveOptions::default();
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("orphan_rate_setting1_a20_1to1", |b| {
        b.iter(|| black_box(model.optimal_orphan_rate(&opts).unwrap().value))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_model_build,
    bench_table2_cell,
    bench_table3_cell,
    bench_table4_cell
);
criterion_main!(benches);
