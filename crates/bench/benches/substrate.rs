//! Benchmarks for the substrates behind the figures and the simulator:
//! block-tree operations, BU validity scans (Figure 1's rules), node views
//! (Figure 2's splits), the games (Figure 4), and simulator throughput
//! (the Stone §2.3 experiments and the Figure 3 traces).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bvc_chain::incremental::IncrementalView;
use bvc_chain::{BlockId, BlockTree, BuRizunRule, ByteSize, MinerId, NodeView, ValidityRule};
use bvc_games::{BlockSizeIncreasingGame, EbChoosingGame, MinerGroup};
use bvc_sim::{DelayModel, HonestStrategy, MinerSpec, Simulation, SplitterStrategy};

/// Figure 1 substrate: a full sticky-gate validity scan over a 1000-block
/// chain with one excessive block.
fn bench_validity_scan(c: &mut Criterion) {
    let mut sizes = vec![ByteSize::mb(16)];
    sizes.extend(std::iter::repeat(ByteSize(900_000)).take(999));
    let rule = BuRizunRule::new(ByteSize::mb(1), 6);
    let mut g = c.benchmark_group("figure1_validity");
    g.bench_function("rizun_scan_1000_blocks", |b| {
        b.iter(|| black_box(rule.chain_valid(black_box(&sizes))))
    });
    g.finish();
}

/// Figure 2 substrate: building a 200-block tree and driving two diverging
/// node views through a split.
fn bench_views(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure2_views");
    g.bench_function("split_and_resolve_200_blocks", |b| {
        b.iter(|| {
            let mut tree = BlockTree::new();
            let mut bob = NodeView::new(BuRizunRule::new(ByteSize::mb(1), 6));
            let mut carol = NodeView::new(BuRizunRule::new(ByteSize::mb(16), 6));
            let mut tip = tree.extend(BlockId::GENESIS, ByteSize::mb(16), MinerId(0));
            bob.receive(&tree, tip);
            carol.receive(&tree, tip);
            for i in 0..199 {
                tip = tree.extend(tip, ByteSize(900_000), MinerId(1 + i % 2));
                bob.receive(&tree, tip);
                carol.receive(&tree, tip);
            }
            black_box((bob.accepted_height(), carol.accepted_height()))
        })
    });
    g.finish();
}

/// The incremental view against the batch-scanning reference view on a
/// 2000-block linear chain: the production path must win by orders of
/// magnitude (O(1) vs O(chain) per delivery).
fn bench_incremental_view(c: &mut Criterion) {
    let mut tree = BlockTree::new();
    let mut tip = tree.extend(BlockId::GENESIS, ByteSize::mb(16), MinerId(0));
    for _ in 0..1999 {
        tip = tree.extend(tip, ByteSize(900_000), MinerId(1));
    }
    let blocks: Vec<BlockId> = tree.iter().skip(1).map(|b| b.id).collect();
    let rule = BuRizunRule::new(ByteSize::mb(1), 6);
    let mut g = c.benchmark_group("incremental_view");
    g.sample_size(10);
    g.bench_function("incremental_2000_blocks", |b| {
        b.iter(|| {
            let mut view = IncrementalView::new(rule);
            for &blk in &blocks {
                view.receive(&tree, blk);
            }
            black_box(view.accepted_height())
        })
    });
    g.bench_function("batch_nodeview_2000_blocks", |b| {
        b.iter(|| {
            let mut view = NodeView::new(rule);
            for &blk in &blocks {
                view.receive(&tree, blk);
            }
            black_box(view.accepted_height())
        })
    });
    g.finish();
}

/// Figure 3 / Stone §2.3 substrate: simulator throughput with an adaptive
/// splitter attacker (blocks simulated per iteration: 2000).
fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("stone_simulator");
    g.sample_size(10);
    g.bench_function("splitter_2000_blocks", |b| {
        b.iter(|| {
            let mb1 = ByteSize::mb(1);
            let ebc = ByteSize::mb(16);
            let miners = vec![
                MinerSpec {
                    power: 0.1,
                    rule: BuRizunRule::new(ebc, 6),
                    strategy: Box::new(SplitterStrategy::against(ebc, mb1, 6, mb1)),
                },
                MinerSpec {
                    power: 0.45,
                    rule: BuRizunRule::new(mb1, 6),
                    strategy: Box::new(HonestStrategy { mg: mb1 }),
                },
                MinerSpec {
                    power: 0.45,
                    rule: BuRizunRule::new(ebc, 6),
                    strategy: Box::new(HonestStrategy { mg: mb1 }),
                },
            ];
            let mut sim = Simulation::new(miners, DelayModel::Zero, 5);
            black_box(sim.run(2000).reorgs.len())
        })
    });
    g.finish();
}

/// Figure 4 / §5 substrate: game solving.
fn bench_games(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure4_games");
    g.bench_function("stable_sets_64_groups", |b| {
        let groups: Vec<MinerGroup> =
            (0..64).map(|i| MinerGroup { mpb: i as f64 + 1.0, power: 1.0 / 64.0 }).collect();
        let game = BlockSizeIncreasingGame::new(groups);
        b.iter(|| black_box(game.play().terminal))
    });
    g.bench_function("eb_game_equilibria_n12", |b| {
        let powers: Vec<f64> = (0..12).map(|_| 1.0 / 12.0).collect();
        let game = EbChoosingGame::new(powers);
        b.iter(|| black_box(game.enumerate_equilibria().len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_validity_scan,
    bench_views,
    bench_incremental_view,
    bench_simulator,
    bench_games
);
criterion_main!(benches);
