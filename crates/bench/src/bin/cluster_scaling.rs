//! `cluster_scaling` — measures distributed-sweep speedup over local
//! worker processes-worth of threads.
//!
//! For each worker count (default 1, 2, 4) the bench binds an in-process
//! coordinator on an ephemeral port, spawns that many in-process workers
//! (one solver thread each, batch size 1 for load balance), and times the
//! whole Table 2 setting-1 sweep end to end — framing, leases and journal
//! ordering included. The headline is the speedup over the 1-worker run;
//! on a multi-core box 2 workers should clear 1.6x.
//!
//! ```text
//! cluster_scaling [--workload table2-setting1] [--workers 1,2,4]
//!                 [--quick] [--json]
//! ```
//!
//! `--quick` swaps in the 3-cell stone-sim workload as a smoke test. With
//! `--json`, the final line is one machine-readable record per bench run
//! (`{"bench":"cluster_scaling",...}`).

use std::thread;
use std::time::{Duration, Instant};

use bvc_cluster::{workload, ClusterConfig, Coordinator, WorkerOptions, Workload};

struct Flags {
    workload: String,
    workers: Vec<usize>,
    json: bool,
}

fn parse_flags() -> Result<Flags, String> {
    let mut flags =
        Flags { workload: "table2-setting1".to_string(), workers: vec![1, 2, 4], json: false };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--workload" => flags.workload = value(&mut i)?,
            "--quick" => flags.workload = "stone-sim".to_string(),
            "--workers" => {
                flags.workers = value(&mut i)?
                    .split(',')
                    .map(|p| p.trim().parse::<usize>().map_err(|e| format!("--workers: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--json" => flags.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if flags.workers.is_empty() || flags.workers.contains(&0) {
        return Err("--workers needs a comma-separated list of positive counts".to_string());
    }
    Ok(flags)
}

/// One timed distributed sweep: coordinator plus `workers` single-threaded
/// in-process workers. Returns the wall time and the solved-cell count.
fn run_once(wl: &Workload, workers: usize) -> Result<(Duration, usize), String> {
    let cfg = ClusterConfig {
        config_token: wl.config_token.clone(),
        // Batch 1: with a handful of heavyweight cells, larger grants
        // serialize the tail onto one worker and hide the scaling.
        batch: 1,
        lease: Duration::from_secs(120),
        quiet: true,
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = coordinator.local_addr().map_err(|e| format!("local_addr: {e}"))?.to_string();

    let started = Instant::now();
    let report = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let opts = WorkerOptions { threads: 1, batch: 1, ..WorkerOptions::default() };
                    bvc_cluster::run_worker(&addr, &opts)
                })
            })
            .collect();
        let report = coordinator.run(wl.label, &wl.jobs);
        for handle in handles {
            handle.join().map_err(|_| "worker panicked".to_string())?.map_err(|e| e.to_string())?;
        }
        report.map_err(|e| format!("coordinator: {e}"))
    })?;
    let wall = started.elapsed();

    let solved = report.cells.iter().filter(|c| c.outcome.is_ok()).count();
    if solved != wl.jobs.len() {
        return Err(format!("only {solved}/{} cells solved", wl.jobs.len()));
    }
    Ok((wall, solved))
}

fn main() {
    let flags = match parse_flags() {
        Ok(flags) => flags,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let Some(wl) = workload(&flags.workload) else {
        eprintln!("error: unknown workload {:?}", flags.workload);
        std::process::exit(2);
    };
    println!(
        "cluster_scaling: workload {} ({} cells), {} core(s)",
        wl.name,
        wl.jobs.len(),
        thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    );

    let mut results: Vec<(usize, Duration)> = Vec::new();
    for &workers in &flags.workers {
        match run_once(&wl, workers) {
            Ok((wall, solved)) => {
                let base = results.first().map(|(_, t)| t.as_secs_f64());
                let speedup = base.map(|b| b / wall.as_secs_f64());
                println!(
                    "{workers} worker(s): {:.3}s for {solved} cells ({:.2} cells/s){}",
                    wall.as_secs_f64(),
                    solved as f64 / wall.as_secs_f64(),
                    match speedup {
                        Some(s) => format!("  speedup {s:.2}x"),
                        None => String::new(),
                    }
                );
                results.push((workers, wall));
            }
            Err(e) => {
                eprintln!("error: {workers}-worker run failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if flags.json {
        let base = results[0].1.as_secs_f64();
        let runs: Vec<String> = results
            .iter()
            .map(|(w, t)| {
                format!(
                    "{{\"workers\":{w},\"wall_s\":{:.6},\"speedup\":{:.4}}}",
                    t.as_secs_f64(),
                    base / t.as_secs_f64()
                )
            })
            .collect();
        println!(
            "{{\"bench\":\"cluster_scaling\",\"workload\":\"{}\",\"cells\":{},\"runs\":[{}]}}",
            wl.name,
            wl.jobs.len(),
            runs.join(",")
        );
    }
}
