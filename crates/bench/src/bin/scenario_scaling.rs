//! `scenario_scaling` — measures the scenario engine's headroom along its
//! two scaling axes:
//!
//! 1. **Node scaling** — one honest ring-topology cell per node count
//!    (default 100, 400, 1000), fixed block count, timed end to end. The
//!    headline unit is node-blocks/s: how fast the discrete-event engine
//!    advances one node by one block. Near-flat node-blocks/s across the
//!    sweep means per-step cost stays O(nodes) with no superlinear blowup.
//! 2. **Thread scaling** — a batch of independent scenario cells sharded
//!    through the sweep runner (`bvc_repro::sweep::run_jobs`) at each
//!    thread count (default 1, 2). Cells are embarrassingly parallel, so
//!    the speedup should track the physical core count — on a 1-core box
//!    expect ~1.0x, which is a property of the box, not a regression.
//!
//! ```text
//! scenario_scaling [--nodes 100,400,1000] [--blocks 400]
//!                  [--threads 1,2] [--quick] [--json]
//! ```
//!
//! With `--json`, the final line is one machine-readable record
//! (`{"bench":"scenario_scaling",...}`) for `scripts/bench_record.sh`.

use std::time::Instant;

use bvc_bu::SolveOptions;
use bvc_repro::sweep::{run_jobs, JobSpec, SweepOptions};
use bvc_scenario::{
    run_scenario, AttackerSpec, DelaySpec, HashDist, RuleKind, ScenarioSpec, GRID_SEED,
};

struct Flags {
    nodes: Vec<u32>,
    blocks: u32,
    threads: Vec<usize>,
    json: bool,
}

fn parse_list<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    raw.split(',').map(|p| p.trim().parse::<T>().map_err(|e| format!("{flag}: {e}"))).collect()
}

fn parse_flags() -> Result<Flags, String> {
    let mut flags =
        Flags { nodes: vec![100, 400, 1_000], blocks: 400, threads: vec![1, 2], json: false };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--nodes" => flags.nodes = parse_list(&value(&mut i)?, "--nodes")?,
            "--blocks" => {
                flags.blocks = value(&mut i)?.parse().map_err(|e| format!("--blocks: {e}"))?;
            }
            "--threads" => flags.threads = parse_list(&value(&mut i)?, "--threads")?,
            "--quick" => {
                flags.nodes = vec![50, 200];
                flags.blocks = 120;
            }
            "--json" => flags.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if flags.nodes.is_empty() || flags.blocks == 0 {
        return Err("--nodes and --blocks must be nonempty/positive".to_string());
    }
    if flags.threads.is_empty() || flags.threads.contains(&0) {
        return Err("--threads needs a comma-separated list of positive counts".to_string());
    }
    Ok(flags)
}

/// The node-scaling cell: honest miners, Zipf hash rates, ring topology —
/// the same shape as the grid's thousand-node headroom cell.
fn node_cell(nodes: u32, blocks: u32) -> ScenarioSpec {
    ScenarioSpec {
        nodes,
        hash: HashDist::Zipf { s: 1.0 },
        eb_small_mb: 1,
        eb_large_mb: 16,
        ad: 6,
        large_frac: 0.4,
        delay: DelaySpec::Ring { per_hop: 0.002 },
        rule: RuleKind::Rizun { sticky: true },
        attacker: AttackerSpec::Honest,
        blocks,
        seed: GRID_SEED,
    }
}

/// The thread-scaling batch: independent moderate cells (distinct seeds,
/// so every cell really runs).
fn thread_batch(blocks: u32) -> Vec<JobSpec> {
    (0..8)
        .map(|rep| JobSpec::Scenario {
            spec: ScenarioSpec { seed: GRID_SEED + rep, ..node_cell(60, blocks) },
        })
        .collect()
}

fn main() {
    let flags = match parse_flags() {
        Ok(flags) => flags,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!(
        "scenario_scaling: {} blocks per cell, {cores} core(s){}",
        flags.blocks,
        if cores == 1 { " — thread speedups near 1.0x are expected here" } else { "" }
    );

    println!("node scaling (honest ring cells):");
    let mut node_runs: Vec<(u32, f64, f64)> = Vec::new();
    for &nodes in &flags.nodes {
        let spec = node_cell(nodes, flags.blocks);
        let started = Instant::now();
        let metrics = match run_scenario(&spec, &SolveOptions::default()) {
            Ok(metrics) => metrics,
            Err(e) => {
                eprintln!("error: {} failed: {e}", spec.key());
                std::process::exit(1);
            }
        };
        let wall = started.elapsed().as_secs_f64();
        let node_blocks = f64::from(nodes) * f64::from(flags.blocks);
        let rate = node_blocks / wall;
        println!(
            "  {nodes:>5} nodes: {wall:>8.3}s  ({rate:>12.0} node-blocks/s, {} blocks mined)",
            metrics[0]
        );
        node_runs.push((nodes, wall, rate));
    }

    println!("thread scaling ({}-cell sweep batch):", thread_batch(flags.blocks).len());
    let jobs = thread_batch(flags.blocks);
    let mut thread_runs: Vec<(usize, f64)> = Vec::new();
    for &threads in &flags.threads {
        let opts = SweepOptions {
            threads: Some(threads),
            config_token: "scenario-scaling-bench".to_string(),
            ..SweepOptions::default()
        };
        let started = Instant::now();
        let report = run_jobs("scenario-scaling", &jobs, &opts);
        let wall = started.elapsed().as_secs_f64();
        if report.has_failures() {
            eprintln!("error: thread-scaling sweep failed:\n{}", report.failure_legend());
            std::process::exit(1);
        }
        let base = thread_runs.first().map(|&(_, b)| b);
        println!(
            "  {threads} thread(s): {wall:>8.3}s{}",
            match base {
                Some(b) => format!("  speedup {:.2}x", b / wall),
                None => String::new(),
            }
        );
        thread_runs.push((threads, wall));
    }

    if flags.json {
        let nodes_json: Vec<String> = node_runs
            .iter()
            .map(|(n, wall, rate)| {
                format!("{{\"nodes\":{n},\"wall_s\":{wall:.6},\"node_blocks_per_s\":{rate:.0}}}")
            })
            .collect();
        let base = thread_runs[0].1;
        let threads_json: Vec<String> = thread_runs
            .iter()
            .map(|(t, wall)| {
                format!("{{\"threads\":{t},\"wall_s\":{wall:.6},\"speedup\":{:.4}}}", base / wall)
            })
            .collect();
        println!(
            "{{\"bench\":\"scenario_scaling\",\"blocks\":{},\"cores\":{cores},\
             \"node_runs\":[{}],\"thread_runs\":[{}]}}",
            flags.blocks,
            nodes_json.join(","),
            threads_json.join(",")
        );
    }
}
