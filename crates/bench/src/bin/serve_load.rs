//! `serve_load` — closed-loop load generator for the bvc-serve HTTP
//! service.
//!
//! Spawns an in-process server (`--self-serve`, default) or targets an
//! external one (`--addr HOST:PORT`), then drives it with `--clients`
//! keep-alive connections, each issuing `--requests` GETs drawn from a
//! deterministic hot/cold mix: hot requests repeat one Table 2 cell
//! (cache hits after the first solve), cold requests walk distinct
//! alphas (each one a fresh solve). Reports throughput and client-side
//! p50/p99/p999 latency.
//!
//! ```text
//! serve_load [--addr HOST:PORT | --self-serve] [--clients 4]
//!            [--requests 2000] [--hot-frac 0.95] [--queue-cap 8] [--json]
//! ```
//!
//! With `--json`, the final line is a single machine-readable JSON record
//! (`{"bench":"serve_load",...}`) — `scripts/bench_record.sh` appends it to
//! the benchmark history.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

#[cfg(not(target_has_atomic = "64"))]
compile_error!("serve_load needs 64-bit atomics");

fn parse_flags() -> Result<Flags, String> {
    let mut flags =
        Flags { addr: None, clients: 4, requests: 2000, hot_frac: 0.95, queue_cap: 8, json: false };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--addr" => flags.addr = Some(value(&mut i)?),
            "--self-serve" => flags.addr = None,
            "--clients" => {
                flags.clients = value(&mut i)?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--requests" => {
                flags.requests = value(&mut i)?.parse().map_err(|e| format!("--requests: {e}"))?
            }
            "--hot-frac" => {
                flags.hot_frac = value(&mut i)?.parse().map_err(|e| format!("--hot-frac: {e}"))?
            }
            "--queue-cap" => {
                flags.queue_cap = value(&mut i)?.parse().map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--json" => flags.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if !(0.0..=1.0).contains(&flags.hot_frac) {
        return Err(format!("--hot-frac must be in [0, 1], got {}", flags.hot_frac));
    }
    if flags.clients == 0 || flags.requests == 0 {
        return Err("--clients and --requests must be positive".to_string());
    }
    Ok(flags)
}

struct Flags {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    hot_frac: f64,
    queue_cap: usize,
    json: bool,
}

/// FNV-1a, used to derive a deterministic hot/cold request mix without an
/// RNG (the same hash family the serve cache keys with).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The request path for the `n`-th request of client `client`: hot
/// requests repeat one small Table 2 cell; cold requests walk distinct
/// alphas of the same shape so every one is a new fingerprint.
fn request_path(client: usize, n: usize, hot_frac: f64) -> String {
    let h = fnv1a64(format!("{client}/{n}").as_bytes());
    let draw = (h % 10_000) as f64 / 10_000.0;
    if draw < hot_frac {
        "/v1/table2?alpha=0.33&eb=2&ad=2&gate=4".to_string()
    } else {
        // 0.101, 0.102, ... — distinct f64s, hence distinct cache keys.
        let cold_id = (h / 10_000) % 200;
        format!("/v1/table2?alpha=0.{}&ad=2&gate=4", 101 + cold_id)
    }
}

struct ClientStats {
    latencies_us: Vec<u64>,
    by_status: [u64; 4], // 200, 429, other, transport error
}

fn run_client(
    addr: &str,
    client: usize,
    requests: usize,
    hot_frac: f64,
) -> Result<ClientStats, String> {
    let mut stats = ClientStats { latencies_us: Vec::with_capacity(requests), by_status: [0; 4] };
    let mut stream = connect(addr)?;
    for n in 0..requests {
        let path = request_path(client, n, hot_frac);
        let started = Instant::now();
        let status = match round_trip(&mut stream, addr, &path) {
            Ok(status) => status,
            Err(_) => {
                // Reconnect once (the server may have closed a keep-alive
                // connection); a second failure counts as a transport error.
                stream = connect(addr)?;
                round_trip(&mut stream, addr, &path).unwrap_or(0)
            }
        };
        stats.latencies_us.push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        let slot = match status {
            200 => 0,
            429 => 1,
            0 => 3,
            _ => 2,
        };
        stats.by_status[slot] += 1;
    }
    Ok(stats)
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    Ok(stream)
}

/// Sends one GET and reads the response (status + headers +
/// Content-Length body), leaving the connection ready for the next
/// request. Returns the status code.
fn round_trip(stream: &mut TcpStream, host: &str, path: &str) -> Result<u16, String> {
    let req = format!("GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: keep-alive\r\n\r\n");
    stream.write_all(req.as_bytes()).map_err(|e| format!("write: {e}"))?;
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_crlf2(&buf) {
            break pos;
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("eof before response".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end]).map_err(|e| format!("head: {e}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {head:?}"))?;
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length").then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    let body_have = buf.len() - (header_end + 4);
    let mut remaining = content_length.saturating_sub(body_have);
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        let n = stream.read(&mut chunk[..take]).map_err(|e| format!("read body: {e}"))?;
        if n == 0 {
            return Err("eof mid-body".to_string());
        }
        remaining -= n;
    }
    Ok(status)
}

fn find_crlf2(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let flags = match parse_flags() {
        Ok(flags) => flags,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    // Either target an external server or bring one up in-process on an
    // ephemeral port (paper-default shape but a tiny gate so cold solves
    // are fast enough to mix in).
    let own_server = if flags.addr.is_none() {
        match bvc_serve::start(bvc_serve::ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_cap: flags.queue_cap,
            ..bvc_serve::ServeConfig::default()
        }) {
            Ok(server) => Some(server),
            Err(e) => {
                eprintln!("error: failed to start in-process server: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    let addr = match (&flags.addr, &own_server) {
        (Some(addr), _) => addr.clone(),
        (None, Some(server)) => server.local_addr().to_string(),
        (None, None) => unreachable!(),
    };

    println!(
        "serve_load: {} clients x {} requests, hot_frac {:.2}, target {addr}",
        flags.clients, flags.requests, flags.hot_frac
    );

    // Warm the hot cell once so the hot path measures cache hits, not the
    // initial solve.
    {
        let mut stream = connect(&addr).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        match round_trip(&mut stream, &addr, &request_path(0, 0, 1.0)) {
            Ok(200) => {}
            Ok(status) => eprintln!("warning: warmup answered {status}"),
            Err(e) => {
                eprintln!("error: warmup failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let addr = Arc::new(addr);
    let started = Instant::now();
    let handles: Vec<_> = (0..flags.clients)
        .map(|client| {
            let addr = Arc::clone(&addr);
            let requests = flags.requests;
            let hot_frac = flags.hot_frac;
            thread::Builder::new()
                .name(format!("load-client-{client}"))
                .spawn(move || run_client(&addr, client, requests, hot_frac))
                .unwrap_or_else(|e| {
                    eprintln!("error: cannot spawn load client {client}: {e}");
                    std::process::exit(1);
                })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut by_status = [0u64; 4];
    let mut failed_clients = 0usize;
    for handle in handles {
        match handle.join() {
            Ok(Ok(stats)) => {
                latencies.extend(stats.latencies_us);
                for (total, part) in by_status.iter_mut().zip(stats.by_status) {
                    *total += part;
                }
            }
            Ok(Err(e)) => {
                eprintln!("client error: {e}");
                failed_clients += 1;
            }
            Err(_) => {
                eprintln!("client panicked");
                failed_clients += 1;
            }
        }
    }
    let elapsed = started.elapsed();

    latencies.sort_unstable();
    let total = latencies.len();
    let throughput = total as f64 / elapsed.as_secs_f64();
    println!(
        "completed {total} requests in {:.3}s  ({throughput:.0} req/s)",
        elapsed.as_secs_f64()
    );
    println!(
        "status: 200 x {}, 429 x {}, other x {}, transport-error x {}",
        by_status[0], by_status[1], by_status[2], by_status[3]
    );
    println!(
        "latency us: p50 {}  p99 {}  p999 {}  max {}",
        quantile(&latencies, 0.50),
        quantile(&latencies, 0.99),
        quantile(&latencies, 0.999),
        latencies.last().copied().unwrap_or(0)
    );

    if let Some(server) = own_server {
        println!("--- server metrics ---");
        print!("{}", server.service.metrics.render_text());
        server.stop();
    }
    if flags.json {
        println!(
            "{{\"bench\":\"serve_load\",\"clients\":{},\"requests\":{},\"hot_frac\":{},\
             \"total\":{total},\"elapsed_s\":{:.6},\"req_per_s\":{throughput:.1},\
             \"status_200\":{},\"status_429\":{},\"status_other\":{},\"transport_errors\":{},\
             \"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{}}}",
            flags.clients,
            flags.requests,
            flags.hot_frac,
            elapsed.as_secs_f64(),
            by_status[0],
            by_status[1],
            by_status[2],
            by_status[3],
            quantile(&latencies, 0.50),
            quantile(&latencies, 0.99),
            quantile(&latencies, 0.999),
            latencies.last().copied().unwrap_or(0)
        );
    }
    if failed_clients > 0 || by_status[3] > 0 {
        std::process::exit(1);
    }
}
