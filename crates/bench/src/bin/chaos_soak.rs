//! `chaos_soak` — the deterministic chaos scenario matrix for the
//! distributed sweep subsystem.
//!
//! Each scenario runs an in-process coordinator + workers over a
//! workload with a seeded fault plan (worker churn, targeted connection
//! drops, torn journal appends, probabilistic network noise, crash-torn
//! journal prefixes, fsync-per-append durability) and asserts the two
//! invariants the chaos layer exists to protect:
//!
//! * the final journal is **byte-identical** to an uninterrupted local
//!   `--threads 1` run of the same cells;
//! * no cell is lost and no cell appears twice in the journal.
//!
//! The reconnect scenario runs twice with the same seed and additionally
//! asserts the injected fault schedule and journal bytes are identical
//! across runs — the replayability guarantee.
//!
//! ```text
//! chaos_soak [--workload stone-sim] [--seed 42] [--json]
//! ```
//!
//! Exits nonzero if any scenario fails. Real process kills (crash points
//! and `kill -9`) are exercised by `scripts/chaos_smoke.sh`, which drives
//! the installed `bvc` binary; this harness covers everything that can be
//! injected in-process.

use std::path::{Path, PathBuf};
use std::time::Duration;

use bvc_cluster::{
    workload, ClusterConfig, Coordinator, DieMode, ReconnectPolicy, WorkerOptions, WorkerSummary,
    Workload,
};
use bvc_journal::{load_journal, Durability};
use bvc_repro::sweep::{run_jobs, SweepOptions};

struct Flags {
    workload: String,
    seed: u64,
    json: bool,
}

fn parse_flags() -> Result<Flags, String> {
    let mut flags = Flags { workload: "stone-sim".to_string(), seed: 42, json: false };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--workload" => flags.workload = value(&mut i)?,
            "--seed" => flags.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--json" => flags.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    Ok(flags)
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bvc-chaos-soak-{tag}-{}.jsonl", std::process::id()))
}

/// The reference journal bytes: a local single-threaded sweep with no
/// chaos plan installed.
fn reference_journal(wl: &Workload) -> Result<Vec<u8>, String> {
    let path = tmp_path("reference");
    std::fs::remove_file(&path).ok();
    let opts = SweepOptions {
        journal: Some(path.clone()),
        threads: Some(1),
        config_token: wl.config_token.clone(),
        ..SweepOptions::default()
    };
    let report = run_jobs(wl.label, &wl.jobs, &opts);
    if report.solved() != wl.jobs.len() {
        return Err(format!("reference sweep incomplete: {}", report.failure_legend()));
    }
    let bytes = std::fs::read(&path).map_err(|e| format!("read reference journal: {e}"))?;
    std::fs::remove_file(&path).ok();
    Ok(bytes)
}

struct RunOutcome {
    journal: Vec<u8>,
    summaries: Vec<Result<WorkerSummary, String>>,
    events: Vec<String>,
}

/// One in-process cluster run over `path` (pre-seeded or fresh); the
/// caller installs/clears the chaos plan around it.
fn cluster_run(
    wl: &Workload,
    path: &PathBuf,
    workers: Vec<(WorkerOptions, Duration)>,
    durability: Durability,
) -> Result<RunOutcome, String> {
    let cfg = ClusterConfig {
        config_token: wl.config_token.clone(),
        journal: Some(path.clone()),
        lease: Duration::from_secs(30),
        quiet: true,
        durability,
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = coordinator.local_addr().map_err(|e| format!("addr: {e}"))?.to_string();
    let (result, summaries) = std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|(opts, delay)| {
                let addr = addr.clone();
                scope.spawn(move || {
                    std::thread::sleep(delay);
                    bvc_cluster::run_worker(&addr, &opts)
                })
            })
            .collect();
        let result = coordinator.run(wl.label, &wl.jobs);
        let summaries = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("worker thread panicked".to_string())))
            .collect();
        (result, summaries)
    });
    result.map_err(|e| format!("coordinator: {e}"))?;
    let journal = std::fs::read(path).map_err(|e| format!("read journal: {e}"))?;
    Ok(RunOutcome { journal, summaries, events: bvc_chaos::drain_events() })
}

/// The two invariants every scenario must uphold: byte-identity against
/// the reference and exactly-once presence of every cell fingerprint.
fn check_invariants(
    wl: &Workload,
    journal: &[u8],
    reference: &[u8],
    path: &Path,
) -> Result<(), String> {
    if journal != reference {
        return Err(format!(
            "journal diverged from reference ({} vs {} bytes)",
            journal.len(),
            reference.len()
        ));
    }
    // Exactly-once: one journal line per cell, each fp present.
    let lines = journal.iter().filter(|&&b| b == b'\n').count();
    if lines != wl.jobs.len() {
        return Err(format!("{} journal lines for {} cells", lines, wl.jobs.len()));
    }
    let entries = load_journal(path);
    if entries.len() != wl.jobs.len() {
        return Err(format!("{} distinct fps for {} cells", entries.len(), wl.jobs.len()));
    }
    Ok(())
}

fn reconnecting(site: &str, seed: u64) -> WorkerOptions {
    WorkerOptions {
        site: site.to_string(),
        reconnect: ReconnectPolicy {
            attempts: 10,
            base: Duration::from_millis(10),
            max: Duration::from_millis(80),
            seed,
        },
        ..WorkerOptions::default()
    }
}

type Scenario = (&'static str, Box<dyn Fn(&Workload, &[u8], u64) -> Result<String, String>>);

fn scenarios() -> Vec<Scenario> {
    let run_checked = |wl: &Workload,
                       reference: &[u8],
                       tag: &str,
                       plan: Option<String>,
                       workers: Vec<(WorkerOptions, Duration)>,
                       durability: Durability|
     -> Result<RunOutcome, String> {
        let path = tmp_path(tag);
        std::fs::remove_file(&path).ok();
        bvc_chaos::reset();
        if let Some(plan) = &plan {
            bvc_chaos::install_spec(plan)?;
        }
        let outcome = cluster_run(wl, &path, workers, durability);
        bvc_chaos::reset();
        let outcome = outcome?;
        check_invariants(wl, &outcome.journal, reference, &path)?;
        std::fs::remove_file(&path).ok();
        Ok(outcome)
    };

    vec![
        (
            "baseline",
            Box::new(move |wl, reference, _seed| {
                run_checked(
                    wl,
                    reference,
                    "baseline",
                    None,
                    vec![(WorkerOptions::default(), Duration::ZERO)],
                    Durability::Batch,
                )?;
                Ok("clean run, identity holds".into())
            }),
        ),
        (
            "worker-churn",
            Box::new(move |wl, reference, _seed| {
                // The first worker claims the whole batch, dies after one cell
                // (socket drop); a late-starting healthy worker picks up the
                // requeued cells.
                let dying = WorkerOptions {
                    die_after: Some(1),
                    die_mode: DieMode::Disconnect,
                    ..WorkerOptions::default()
                };
                let out = run_checked(
                    wl,
                    reference,
                    "churn",
                    None,
                    vec![
                        (dying, Duration::ZERO),
                        (WorkerOptions::default(), Duration::from_millis(300)),
                    ],
                    Durability::Batch,
                )?;
                let died = out
                    .summaries
                    .iter()
                    .filter(|s| s.as_ref().map(|w| w.died).unwrap_or(false))
                    .count();
                if died != 1 {
                    return Err(format!("expected exactly one injected death, saw {died}"));
                }
                Ok("1 worker died mid-batch, cells requeued".into())
            }),
        ),
        (
            "reconnect-replay",
            Box::new(move |wl, reference, seed| {
                // Targeted drop of the worker's 4th frame (its second `done`),
                // run twice: identity + an identical fault schedule per seed.
                let plan = format!("seed={seed},conn_drop_at=w1.s1.tx:4");
                let mut schedules = Vec::new();
                for _ in 0..2 {
                    let out = run_checked(
                        wl,
                        reference,
                        "reconnect",
                        Some(plan.clone()),
                        vec![(reconnecting("w1", seed), Duration::ZERO)],
                        Durability::Batch,
                    )?;
                    let sessions =
                        out.summaries[0].as_ref().map(|w| w.sessions).map_err(|e| e.clone())?;
                    if sessions < 2 {
                        return Err(format!("worker never reconnected (sessions={sessions})"));
                    }
                    let mut events = out.events;
                    events.sort();
                    schedules.push(events);
                }
                if schedules[0] != schedules[1] {
                    return Err(format!(
                        "fault schedule not reproducible: {:?} vs {:?}",
                        schedules[0], schedules[1]
                    ));
                }
                if schedules[0].is_empty() {
                    return Err("plan injected no faults".into());
                }
                Ok(format!("2 identical runs, schedule {:?}", schedules[0]))
            }),
        ),
        (
            "prefix-resume",
            Box::new(move |wl, reference, _seed| {
                // A crash-torn journal (full first line + half of the second)
                // resumes to byte-identity.
                let path = tmp_path("prefix");
                let lines: Vec<&[u8]> = reference.split_inclusive(|&b| b == b'\n').collect();
                let mut seeded = lines[0].to_vec();
                seeded.extend_from_slice(&lines[1][..lines[1].len() / 2]);
                std::fs::write(&path, &seeded).map_err(|e| format!("seed journal: {e}"))?;
                bvc_chaos::reset();
                let out = cluster_run(
                    wl,
                    &path,
                    vec![(WorkerOptions::default(), Duration::ZERO)],
                    Durability::Batch,
                )?;
                check_invariants(wl, &out.journal, reference, &path)?;
                std::fs::remove_file(&path).ok();
                Ok("torn tail truncated, prefix replayed, identity holds".into())
            }),
        ),
        (
            "torn-append",
            Box::new(move |wl, reference, seed| {
                // The coordinator's second journal append is torn mid-line and
                // must self-heal in-run via rollback + retry.
                let plan = format!("seed={seed},torn_write_at=journal.append:2");
                run_checked(
                    wl,
                    reference,
                    "torn",
                    Some(plan),
                    vec![(WorkerOptions::default(), Duration::ZERO)],
                    Durability::Batch,
                )?;
                Ok("torn append rolled back and retried".into())
            }),
        ),
        (
            "net-noise",
            Box::new(move |wl, reference, seed| {
                // Probabilistic noise on every chaos-wrapped stream: small
                // stalls, latency, and a drop rate high enough to force
                // reconnects over a longer run but low enough to finish.
                let plan = format!("seed={seed},conn_drop=0.05,read_stall_ms=3,latency_ms=1");
                let out = run_checked(
                    wl,
                    reference,
                    "noise",
                    Some(plan),
                    vec![
                        (reconnecting("w1", seed), Duration::ZERO),
                        (reconnecting("w2", seed.wrapping_add(1)), Duration::ZERO),
                    ],
                    Durability::Batch,
                )?;
                Ok(format!("{} fault(s) injected, identity holds", out.events.len()))
            }),
        ),
        (
            "durability-always",
            Box::new(move |wl, reference, _seed| {
                // fsync-per-append must not change a single byte.
                run_checked(
                    wl,
                    reference,
                    "always",
                    None,
                    vec![(WorkerOptions::default(), Duration::ZERO)],
                    Durability::Always,
                )?;
                Ok("fsync-per-append run byte-identical".into())
            }),
        ),
    ]
}

fn main() {
    let flags = match parse_flags() {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: chaos_soak [--workload NAME] [--seed N] [--json]");
            std::process::exit(2);
        }
    };
    let Some(wl) = workload(&flags.workload) else {
        eprintln!("error: unknown workload {:?}", flags.workload);
        std::process::exit(2);
    };
    println!(
        "chaos_soak: workload {} ({} cells), seed {}",
        flags.workload,
        wl.jobs.len(),
        flags.seed
    );
    let reference = match reference_journal(&wl) {
        Ok(bytes) => bytes,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };

    let mut failed = 0usize;
    let mut rows = Vec::new();
    for (name, scenario) in scenarios() {
        let started = std::time::Instant::now();
        let result = scenario(&wl, &reference, flags.seed);
        let elapsed = started.elapsed();
        match &result {
            Ok(note) => println!("  PASS {name:<18} {:>6.2}s  {note}", elapsed.as_secs_f64()),
            Err(msg) => {
                failed += 1;
                println!("  FAIL {name:<18} {:>6.2}s  {msg}", elapsed.as_secs_f64());
            }
        }
        rows.push((name, result.is_ok(), elapsed));
    }
    if flags.json {
        for (name, ok, elapsed) in &rows {
            println!(
                "{{\"bench\":\"chaos_soak\",\"scenario\":\"{name}\",\"ok\":{ok},\
                 \"seed\":{},\"elapsed_s\":{:.3}}}",
                flags.seed,
                elapsed.as_secs_f64()
            );
        }
    }
    if failed > 0 {
        eprintln!("chaos_soak: {failed} scenario(s) FAILED");
        std::process::exit(1);
    }
    println!("chaos_soak: all {} scenarios passed", rows.len());
}
