//! `games_scaling` — measures the coalition-frontier engine's headroom
//! along its two scaling axes:
//!
//! 1. **Frontier scaling** — one unsharded frontier layer per miner
//!    count (default 20, 22, 24) at a fixed coalition size, timed end to
//!    end. The headline unit is frontier-nodes/s: how fast the engine
//!    examines one committed coalition (one `O(n)` backward induction
//!    each). Near-flat frontier-nodes/s across the sweep means per-node
//!    cost stays `O(n)` with no superlinear blowup.
//! 2. **Thread scaling** — a sharded frontier layer run through the sweep
//!    runner (`bvc_repro::sweep::run_jobs`) at each thread count (default
//!    1, 2). Shards are embarrassingly parallel, so the speedup should
//!    track the physical core count — on a 1-core box expect ~1.0x,
//!    which is a property of the box, not a regression.
//!
//! ```text
//! games_scaling [--miners 20,22,24] [--size 8] [--threads 1,2]
//!               [--quick] [--json]
//! ```
//!
//! With `--json`, the final line is one machine-readable record
//! (`{"bench":"games_scaling",...}`) for `scripts/bench_record.sh`.

use std::time::Instant;

use bvc_gamesweep::{
    binomial, figure4_spec, frontier_config_token, solve_frontier_cell, FrontierSpec, GameSpec,
    PowerDist,
};
use bvc_repro::sweep::{run_jobs, JobSpec, SweepOptions};

struct Flags {
    miners: Vec<u32>,
    size: u32,
    threads: Vec<usize>,
    json: bool,
}

fn parse_list<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    raw.split(',').map(|p| p.trim().parse::<T>().map_err(|e| format!("{flag}: {e}"))).collect()
}

fn parse_flags() -> Result<Flags, String> {
    let mut flags = Flags { miners: vec![20, 22, 24], size: 8, threads: vec![1, 2], json: false };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--miners" => flags.miners = parse_list(&value(&mut i)?, "--miners")?,
            "--size" => {
                flags.size = value(&mut i)?.parse().map_err(|e| format!("--size: {e}"))?;
            }
            "--threads" => flags.threads = parse_list(&value(&mut i)?, "--threads")?,
            "--quick" => {
                flags.miners = vec![12, 16];
                flags.size = 4;
            }
            "--json" => flags.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if flags.miners.is_empty() || flags.size == 0 {
        return Err("--miners and --size must be nonempty/positive".to_string());
    }
    if flags.threads.is_empty() || flags.threads.contains(&0) {
        return Err("--threads needs a comma-separated list of positive counts".to_string());
    }
    Ok(flags)
}

/// The benchmark game: an n-miner Zipf ladder network, the same shape as
/// the canonical frontier workload's widest layers.
fn bench_game(miners: u32) -> GameSpec {
    GameSpec { miners, power: PowerDist::Zipf { s: 1.0 }, ..figure4_spec() }
}

/// One unsharded frontier layer.
fn layer(miners: u32, size: u32) -> FrontierSpec {
    FrontierSpec { spec: bench_game(miners), size, shard: 0, shards: 1 }
}

/// The thread-scaling batch: the widest benchmark layer split into many
/// independent shards.
fn thread_batch(miners: u32, size: u32, shards: u32) -> Vec<JobSpec> {
    (0..shards)
        .map(|shard| JobSpec::GameFrontier {
            spec: FrontierSpec { spec: bench_game(miners), size, shard, shards },
        })
        .collect()
}

fn main() {
    let flags = match parse_flags() {
        Ok(flags) => flags,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!(
        "games_scaling: coalition size {}, {cores} core(s){}",
        flags.size,
        if cores == 1 { " — thread speedups near 1.0x are expected here" } else { "" }
    );

    println!("frontier scaling (unsharded C(n, k) layers):");
    let mut layer_runs: Vec<(u32, u64, f64, f64)> = Vec::new();
    for &miners in &flags.miners {
        let cell = layer(miners, flags.size);
        if let Err(e) = cell.validate() {
            eprintln!("error: {}: {e}", cell.key());
            std::process::exit(1);
        }
        let combos = binomial(u64::from(miners), u64::from(flags.size));
        let started = Instant::now();
        if let Err(e) = solve_frontier_cell(&cell) {
            eprintln!("error: {} failed: {e}", cell.key());
            std::process::exit(1);
        }
        let wall = started.elapsed().as_secs_f64();
        let rate = combos as f64 / wall;
        println!(
            "  {miners:>3} miners: C({miners},{}) = {combos:>8} coalitions  {wall:>8.3}s  \
             ({rate:>12.0} frontier-nodes/s)",
            flags.size
        );
        layer_runs.push((miners, combos, wall, rate));
    }

    let widest = *flags.miners.iter().max().unwrap_or(&16);
    let shards = 16;
    let jobs = thread_batch(widest, flags.size, shards);
    println!("thread scaling ({widest}-miner layer, {shards} shards):");
    let mut thread_runs: Vec<(usize, f64)> = Vec::new();
    for &threads in &flags.threads {
        let opts = SweepOptions {
            threads: Some(threads),
            config_token: frontier_config_token(),
            ..SweepOptions::default()
        };
        let started = Instant::now();
        let report = run_jobs("games-scaling", &jobs, &opts);
        let wall = started.elapsed().as_secs_f64();
        if report.has_failures() {
            eprintln!("error: thread-scaling sweep failed:\n{}", report.failure_legend());
            std::process::exit(1);
        }
        let base = thread_runs.first().map(|&(_, b)| b);
        println!(
            "  {threads} thread(s): {wall:>8.3}s{}",
            match base {
                Some(b) => format!("  speedup {:.2}x", b / wall),
                None => String::new(),
            }
        );
        thread_runs.push((threads, wall));
    }

    if flags.json {
        let layers_json: Vec<String> = layer_runs
            .iter()
            .map(|(m, combos, wall, rate)| {
                format!(
                    "{{\"miners\":{m},\"coalitions\":{combos},\"wall_s\":{wall:.6},\
                     \"frontier_nodes_per_s\":{rate:.0}}}"
                )
            })
            .collect();
        let base = thread_runs[0].1;
        let threads_json: Vec<String> = thread_runs
            .iter()
            .map(|(t, wall)| {
                format!("{{\"threads\":{t},\"wall_s\":{wall:.6},\"speedup\":{:.4}}}", base / wall)
            })
            .collect();
        println!(
            "{{\"bench\":\"games_scaling\",\"size\":{},\"cores\":{cores},\
             \"layer_runs\":[{}],\"thread_runs\":[{}]}}",
            flags.size,
            layers_json.join(","),
            threads_json.join(",")
        );
    }
}
