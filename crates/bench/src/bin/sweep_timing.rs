//! Times the Table 2 sweep on the compiled CSR solver path against the
//! nested-layout reference baseline and prints cells/sec plus the speedup.
//!
//! The workload is the `table2` binary's: the printed cells of Table 2
//! (22 setting-1 cells across α ∈ {10,15,20,25}% and six β:γ ratios; with
//! `--full`, also the four setting-2 cells at α = 25%), each solved for the
//! maximal relative revenue u1 by bisection over ρ with warm-started inner
//! RVI solves. The nested baseline sweeps through
//! `bvc_repro::parallel_map`; the compiled path runs through the resilient
//! sweep runner (`bvc_repro::sweep::run_sweep`) exactly as the table
//! binaries do, so the timing includes the runner's per-cell isolation and
//! retry accounting — its overhead (one `catch_unwind` frame and an atomic
//! claim per cell) is far below the per-cell solve cost, so the comparison
//! still isolates the solver memory layout.
//!
//! ```console
//! $ cargo run --release -p bvc-bench --bin sweep_timing             # setting 1, 1 rep
//! $ cargo run --release -p bvc-bench --bin sweep_timing -- --quick  # smoke: α = 10% column
//! $ cargo run --release -p bvc-bench --bin sweep_timing -- --full --reps 3
//! ```
//!
//! Also accepts the standard sweep-runner flags (see `bvc_repro::sweep`);
//! note `--journal` replays cells on every rep after the first, which makes
//! the timed numbers meaningless — use it only to inspect runner behaviour.
//!
//! With `--json`, the final line is a single machine-readable timing record
//! (`{"bench":"sweep_timing",...}`) — `scripts/bench_record.sh` appends it
//! to the benchmark history.

use bvc_bench::timing::time_runs_cold;
use bvc_bu::{rewards, AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};
use bvc_mdp::solve::reference::maximize_ratio_nested;
use bvc_mdp::solve::{RatioOptions, RviOptions};
use bvc_repro::parallel_map;
use bvc_repro::sweep::{run_sweep, SweepOptions};

/// One Table 2 cell: power split and sticky-gate setting.
#[derive(Debug, Clone, Copy)]
struct SweepCell {
    alpha: f64,
    ratio: (u32, u32),
    setting: Setting,
}

/// The cells the paper prints in Table 2 (see `bvc-repro --bin table2`).
/// `quick` keeps only the α = 10% column (the cheapest models) as a smoke
/// workload; `full` adds the four setting-2 cells, whose state spaces are
/// orders of magnitude larger.
fn table2_cells(quick: bool, full: bool) -> Vec<SweepCell> {
    const RATIOS: [((u32, u32), [bool; 4]); 6] = [
        ((3, 2), [true, true, true, true]),
        ((1, 1), [true, true, true, true]),
        ((2, 3), [true, true, true, true]),
        ((1, 2), [true, true, true, true]),
        ((1, 3), [true, true, true, false]),
        ((1, 4), [true, true, false, false]),
    ];
    const ALPHAS: [f64; 4] = [0.10, 0.15, 0.20, 0.25];
    let mut cells = Vec::new();
    for (ratio, printed) in RATIOS {
        for (i, &p) in printed.iter().enumerate() {
            if p && (!quick || i == 0) {
                cells.push(SweepCell { alpha: ALPHAS[i], ratio, setting: Setting::One });
            }
        }
    }
    if full {
        for ratio in [(3, 2), (1, 1), (2, 3), (1, 2)] {
            cells.push(SweepCell { alpha: 0.25, ratio, setting: Setting::Two });
        }
    }
    cells
}

fn build(cell: &SweepCell) -> AttackModel {
    let cfg = AttackConfig::with_ratio(
        cell.alpha,
        cell.ratio,
        cell.setting,
        IncentiveModel::CompliantProfitDriven,
    );
    AttackModel::build(cfg).expect("model builds")
}

/// The ratio-solver options `SolveOptions::default()` maps to, duplicated
/// here so the nested baseline bisects with identical numerics.
fn ratio_opts() -> RatioOptions {
    let defaults = SolveOptions::default();
    RatioOptions {
        tolerance: defaults.ratio_tolerance,
        rvi: RviOptions { tolerance: defaults.gain_tolerance, ..Default::default() },
        initial_hi: 1.0,
    }
}

fn main() {
    let (mut sweep_opts, args) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    sweep_opts.config_token = SolveOptions::default().fingerprint_token();
    let quick = args.iter().any(|a| a == "--quick");
    let full = args.iter().any(|a| a == "--full");
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .map(|v| match v.parse() {
            Ok(r) if r > 0 => r,
            _ => panic!("--reps takes a positive integer, got {v:?}"),
        })
        .unwrap_or(1);

    let cells = table2_cells(quick, full);
    // Models are built once, outside the clock: both paths consume the same
    // nested `Mdp`, and construction cost is identical for both.
    let models = parallel_map(cells.clone(), build);
    let n = models.len();
    let states: usize = models.iter().map(|m| m.num_states()).sum();
    println!(
        "Table 2 sweep: {n} cells ({} setting-1, {} setting-2), {states} states total, \
         {} thread(s)",
        cells.iter().filter(|c| matches!(c.setting, Setting::One)).count(),
        cells.iter().filter(|c| matches!(c.setting, Setting::Two)).count(),
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
    );

    let opts = ratio_opts();
    let (num, den) = (rewards::u1_numerator(), rewards::u1_denominator());

    // The timed closures keep their last run's values so the two paths can
    // be cross-checked below without paying for extra sweeps.
    let mut nested_vals = Vec::new();
    let nested = time_runs_cold(reps, || {
        nested_vals = parallel_map(models.iter().collect(), |m| {
            maximize_ratio_nested(m.mdp(), &num, &den, &opts).expect("solver converges").value
        });
    });
    println!("nested   (baseline): {}  {:>7.2} cells/s", nested.summary(), nested.throughput(n));

    let indices: Vec<usize> = (0..n).collect();
    let mut last_report = None;
    let compiled = time_runs_cold(reps, || {
        last_report = Some(run_sweep(
            "sweep-timing",
            &indices,
            &sweep_opts,
            |&i| {
                let c = &cells[i];
                let tag = match c.setting {
                    Setting::One => 1,
                    Setting::Two => 2,
                };
                format!("s{tag} b:g={}:{} a={}%", c.ratio.0, c.ratio.1, c.alpha * 100.0)
            },
            |&i, ctx| {
                Ok(models[i].optimal_relative_revenue(&ctx.solve_options::<SolveOptions>())?.value)
            },
        ));
    });
    let report = last_report.expect("at least one rep ran");
    println!(
        "compiled (CSR):      {}  {:>7.2} cells/s",
        compiled.summary(),
        compiled.throughput(n)
    );
    println!(
        "speedup: {:.2}x (min-over-min wall clock)",
        nested.min().as_secs_f64() / compiled.min().as_secs_f64()
    );
    println!("{}", report.summary());
    print!("{}", report.failure_legend());
    if sweep_opts.json {
        println!("{}", report.to_json());
    }
    if report.has_failures() {
        println!("compiled sweep INCOMPLETE: skipping the path cross-check.");
        std::process::exit(report.exit_code());
    }

    // Guard against the two paths silently diverging while we time them.
    let compiled_vals: Vec<f64> =
        (0..n).map(|i| *report.value(i).expect("no failures above")).collect();
    let max_dev =
        nested_vals.iter().zip(&compiled_vals).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
    assert!(max_dev < 1e-9, "paths diverged: max |Δu1| = {max_dev:e}");
    println!("paths agree: max |Δu1| = {max_dev:.1e} over {n} cells");
    if sweep_opts.json {
        println!(
            "{{\"bench\":\"sweep_timing\",\"cells\":{n},\"states\":{states},\"reps\":{reps},\
             \"nested_min_s\":{:.6},\"compiled_min_s\":{:.6},\"speedup\":{:.4},\
             \"cells_per_s\":{:.3}}}",
            nested.min().as_secs_f64(),
            compiled.min().as_secs_f64(),
            nested.min().as_secs_f64() / compiled.min().as_secs_f64(),
            compiled.throughput(n)
        );
    }
}
