//! Times the Table 2 sweep on the compiled CSR solver path against the
//! nested-layout reference baseline and prints cells/sec plus the speedup.
//!
//! The workload is the `table2` binary's: the printed cells of Table 2
//! (22 setting-1 cells across α ∈ {10,15,20,25}% and six β:γ ratios; with
//! `--full`, also the four setting-2 cells at α = 25%), each solved for the
//! maximal relative revenue u1 by bisection over ρ with warm-started inner
//! RVI solves. The nested baseline sweeps through
//! `bvc_repro::parallel_map`; the compiled path runs through the resilient
//! sweep runner (`bvc_repro::sweep::run_sweep`) exactly as the table
//! binaries do, so the timing includes the runner's per-cell isolation and
//! retry accounting — its overhead (one `catch_unwind` frame and an atomic
//! claim per cell) is far below the per-cell solve cost, so the comparison
//! still isolates the solver memory layout.
//!
//! ```console
//! $ cargo run --release -p bvc-bench --bin sweep_timing             # setting 1, 1 rep
//! $ cargo run --release -p bvc-bench --bin sweep_timing -- --quick  # smoke: α = 10% column
//! $ cargo run --release -p bvc-bench --bin sweep_timing -- --full --reps 3
//! $ cargo run --release -p bvc-bench --bin sweep_timing -- --full --no-baseline --solve-threads 4
//! ```
//!
//! `--no-baseline` skips the nested-layout reference sweep (and with it
//! the cross-check and speedup line) — the full-grid baseline costs ~10
//! minutes on a laptop-class core, which swamps iteration on the compiled
//! path. Also accepts the standard sweep-runner flags (see
//! `bvc_repro::sweep`), including `--solve-threads`; note `--journal`
//! replays cells on every rep after the first, which makes the timed
//! numbers meaningless — use it only to inspect runner behaviour.
//!
//! With `--json`, the final line is a single machine-readable timing record
//! (`{"bench":"sweep_timing",...}`) with a per-cell breakdown (state count
//! and wall time per cell, plus the largest cell called out) —
//! `scripts/bench_record.sh` appends it to the benchmark history.

use bvc_bench::timing::time_runs_cold;
use bvc_bu::{rewards, AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};
use bvc_mdp::solve::reference::maximize_ratio_nested;
use bvc_mdp::solve::{RatioOptions, RviOptions};
use bvc_repro::parallel_map;
use bvc_repro::sweep::{json_escape, run_sweep, SweepOptions};

/// Prints a structured error and exits with status 2 (usage error), the
/// same convention as [`SweepOptions::from_cli_or_exit`].
fn die_usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// One Table 2 cell: power split and sticky-gate setting.
#[derive(Debug, Clone, Copy)]
struct SweepCell {
    alpha: f64,
    ratio: (u32, u32),
    setting: Setting,
}

/// The cells the paper prints in Table 2 (see `bvc-repro --bin table2`).
/// `quick` keeps only the α = 10% column (the cheapest models) as a smoke
/// workload; `full` adds the four setting-2 cells, whose state spaces are
/// orders of magnitude larger.
fn table2_cells(quick: bool, full: bool) -> Vec<SweepCell> {
    const RATIOS: [((u32, u32), [bool; 4]); 6] = [
        ((3, 2), [true, true, true, true]),
        ((1, 1), [true, true, true, true]),
        ((2, 3), [true, true, true, true]),
        ((1, 2), [true, true, true, true]),
        ((1, 3), [true, true, true, false]),
        ((1, 4), [true, true, false, false]),
    ];
    const ALPHAS: [f64; 4] = [0.10, 0.15, 0.20, 0.25];
    let mut cells = Vec::new();
    for (ratio, printed) in RATIOS {
        for (i, &p) in printed.iter().enumerate() {
            if p && (!quick || i == 0) {
                cells.push(SweepCell { alpha: ALPHAS[i], ratio, setting: Setting::One });
            }
        }
    }
    if full {
        for ratio in [(3, 2), (1, 1), (2, 3), (1, 2)] {
            cells.push(SweepCell { alpha: 0.25, ratio, setting: Setting::Two });
        }
    }
    cells
}

fn build(cell: &SweepCell) -> AttackModel {
    let cfg = AttackConfig::with_ratio(
        cell.alpha,
        cell.ratio,
        cell.setting,
        IncentiveModel::CompliantProfitDriven,
    );
    AttackModel::build(cfg).unwrap_or_else(|e| {
        eprintln!("error: model for {cell:?} does not build: {e}");
        std::process::exit(1);
    })
}

/// The ratio-solver options `SolveOptions::default()` maps to, duplicated
/// here so the nested baseline bisects with identical numerics.
fn ratio_opts() -> RatioOptions {
    let defaults = SolveOptions::default();
    RatioOptions {
        tolerance: defaults.ratio_tolerance,
        rvi: RviOptions { tolerance: defaults.gain_tolerance, ..Default::default() },
        initial_hi: 1.0,
    }
}

fn main() {
    let (mut sweep_opts, args) = SweepOptions::from_cli_or_exit(std::env::args().skip(1));
    sweep_opts.config_token = SolveOptions::default().fingerprint_token();
    let mut quick = false;
    let mut full = false;
    let mut no_baseline = false;
    let mut reps = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => full = true,
            "--no-baseline" => no_baseline = true,
            "--reps" => {
                let v = it.next().unwrap_or_else(|| die_usage("--reps takes a positive integer"));
                reps = match v.parse() {
                    Ok(r) if r > 0 => r,
                    _ => die_usage(&format!("--reps takes a positive integer, got {v:?}")),
                };
            }
            other => die_usage(&format!("unknown sweep_timing flag {other:?}")),
        }
    }

    let cells = table2_cells(quick, full);
    // Models are built once, outside the clock: both paths consume the same
    // nested `Mdp`, and construction cost is identical for both.
    let models = parallel_map(cells.clone(), build);
    let n = models.len();
    let states: usize = models.iter().map(|m| m.num_states()).sum();
    println!(
        "Table 2 sweep: {n} cells ({} setting-1, {} setting-2), {states} states total, \
         {} thread(s)",
        cells.iter().filter(|c| matches!(c.setting, Setting::One)).count(),
        cells.iter().filter(|c| matches!(c.setting, Setting::Two)).count(),
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
    );

    let opts = ratio_opts();
    let (num, den) = (rewards::u1_numerator(), rewards::u1_denominator());

    // The timed closures keep their last run's values so the two paths can
    // be cross-checked below without paying for extra sweeps. With
    // `--no-baseline` the nested sweep (and its cross-check) is skipped.
    let mut nested_vals = Vec::new();
    let nested = if no_baseline {
        None
    } else {
        let t = time_runs_cold(reps, || {
            nested_vals = parallel_map(models.iter().collect(), |m| {
                maximize_ratio_nested(m.mdp(), &num, &den, &opts)
                    .unwrap_or_else(|e| {
                        eprintln!("error: nested baseline solver failed: {e}");
                        std::process::exit(1);
                    })
                    .value
            });
        });
        println!("nested   (baseline): {}  {:>7.2} cells/s", t.summary(), t.throughput(n));
        Some(t)
    };

    let indices: Vec<usize> = (0..n).collect();
    let mut last_report = None;
    let compiled = time_runs_cold(reps, || {
        last_report = Some(run_sweep(
            "sweep-timing",
            &indices,
            &sweep_opts,
            |&i| {
                let c = &cells[i];
                let tag = match c.setting {
                    Setting::One => 1,
                    Setting::Two => 2,
                };
                format!("s{tag} b:g={}:{} a={}%", c.ratio.0, c.ratio.1, c.alpha * 100.0)
            },
            |&i, ctx| {
                Ok(models[i].optimal_relative_revenue(&ctx.solve_options::<SolveOptions>())?.value)
            },
        ));
    });
    let report = last_report.unwrap_or_else(|| {
        eprintln!("error: no sweep rep ran (reps = {reps})");
        std::process::exit(1);
    });
    println!(
        "compiled (CSR):      {}  {:>7.2} cells/s",
        compiled.summary(),
        compiled.throughput(n)
    );
    if let Some(nested) = &nested {
        println!(
            "speedup: {:.2}x (min-over-min wall clock)",
            nested.min().as_secs_f64() / compiled.min().as_secs_f64()
        );
    }
    println!("{}", report.summary());
    print!("{}", report.failure_legend());
    if sweep_opts.json {
        println!("{}", report.to_json());
    }
    if report.has_failures() {
        println!("compiled sweep INCOMPLETE: skipping the path cross-check.");
        std::process::exit(report.exit_code());
    }

    // Guard against the two paths silently diverging while we time them.
    if nested.is_some() {
        let compiled_vals: Vec<f64> = (0..n)
            .map(|i| {
                *report.value(i).unwrap_or_else(|| {
                    eprintln!("error: cell {i} has no value despite a clean report");
                    std::process::exit(1);
                })
            })
            .collect();
        let max_dev = nested_vals
            .iter()
            .zip(&compiled_vals)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        // `<` (not `>=`) so a NaN deviation also counts as divergence.
        let agree = max_dev < 1e-9;
        if !agree {
            eprintln!("error: paths diverged: max |Δu1| = {max_dev:e}");
            std::process::exit(1);
        }
        println!("paths agree: max |Δu1| = {max_dev:.1e} over {n} cells");
    }
    if sweep_opts.json {
        // The per-cell breakdown times each cell from the *last* rep (the
        // runner re-solves every cell per rep); the largest cell is the
        // shard-kernel stress case, so its wall time is called out.
        let workers = sweep_opts
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1));
        let solve_threads = if workers > 1 { 1 } else { sweep_opts.solve_threads.max(1) };
        let largest = (0..n)
            .max_by_key(|&i| models[i].num_states())
            .unwrap_or_else(|| die_usage("no cells selected"));
        let mut record = format!(
            "{{\"bench\":\"sweep_timing\",\"cells\":{n},\"states\":{states},\"reps\":{reps},\
             \"threads\":{workers},\"solve_threads\":{solve_threads},"
        );
        match &nested {
            Some(nested) => {
                record.push_str(&format!(
                    "\"nested_min_s\":{:.6},\"speedup\":{:.4},",
                    nested.min().as_secs_f64(),
                    nested.min().as_secs_f64() / compiled.min().as_secs_f64(),
                ));
            }
            None => record.push_str("\"nested_min_s\":null,\"speedup\":null,"),
        }
        record.push_str(&format!(
            "\"compiled_min_s\":{:.6},\"cells_per_s\":{:.3},\
             \"largest_cell\":{{\"key\":\"{}\",\"states\":{},\"elapsed_s\":{:.6}}},\
             \"cell_breakdown\":[",
            compiled.min().as_secs_f64(),
            compiled.throughput(n),
            json_escape(&report.cells[largest].key),
            models[largest].num_states(),
            report.cells[largest].elapsed.as_secs_f64(),
        ));
        for (i, c) in report.cells.iter().enumerate() {
            if i > 0 {
                record.push(',');
            }
            record.push_str(&format!(
                "{{\"key\":\"{}\",\"states\":{},\"elapsed_s\":{:.6}}}",
                json_escape(&c.key),
                models[i].num_states(),
                c.elapsed.as_secs_f64(),
            ));
        }
        record.push_str("]}");
        println!("{record}");
    }
}
