//! # bvc-bench — Criterion benchmarks
//!
//! One benchmark group per reproduced table/figure plus substrate
//! micro-benchmarks; see `benches/`. The library itself only hosts shared
//! helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use bvc_bu::{AttackConfig, AttackModel, IncentiveModel, Setting};

/// Builds a small standard attack model used across benches (setting 1,
/// α = 20%, β:γ = 1:1).
pub fn standard_model(incentive: IncentiveModel) -> AttackModel {
    AttackModel::build(AttackConfig::with_ratio(0.2, (1, 1), Setting::One, incentive))
        .unwrap_or_else(|e| panic!("standard bench model failed to build: {e}"))
}

/// Builds the setting-2 variant (sticky gate enabled, 144-block countdown).
pub fn setting2_model(incentive: IncentiveModel) -> AttackModel {
    AttackModel::build(AttackConfig::with_ratio(0.2, (1, 1), Setting::Two, incentive))
        .unwrap_or_else(|e| panic!("setting-2 bench model failed to build: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build() {
        assert!(standard_model(IncentiveModel::CompliantProfitDriven).num_states() > 10);
        assert!(setting2_model(IncentiveModel::CompliantProfitDriven).num_states() > 1000);
    }
}
