//! A minimal `std::time::Instant` micro-timing harness.
//!
//! Criterion is an optional, feature-gated dependency of this crate (the
//! offline registry cannot resolve the real one), so before/after numbers
//! for the solver work must come from std alone. This module provides the
//! small amount of structure repeated wall-clock measurement needs: N
//! repetitions, min/median/mean, and a one-line human-readable summary.
//!
//! Minimum-of-N is the headline statistic: for a CPU-bound workload the
//! minimum is the run least disturbed by scheduling noise, and it is the
//! conventional choice for before/after comparisons.

use std::time::{Duration, Instant};

/// Wall-clock measurements of `reps` executions of one workload.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Individual run durations, in execution order.
    pub runs: Vec<Duration>,
}

/// Runs `f` once as a warm-up, then `reps` more times under the clock.
///
/// The warm-up run is discarded: it pays first-touch page faults and cache
/// population that would otherwise bias the first measured repetition. For
/// workloads long enough that warm-up cost matters (whole table sweeps),
/// use [`time_runs_cold`].
pub fn time_runs<R>(reps: usize, mut f: impl FnMut() -> R) -> Timing {
    std::hint::black_box(f());
    time_runs_cold(reps, f)
}

/// Runs `f` exactly `reps` times under the clock, with no warm-up run.
pub fn time_runs_cold<R>(reps: usize, mut f: impl FnMut() -> R) -> Timing {
    assert!(reps > 0, "need at least one repetition");
    let runs = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    Timing { runs }
}

impl Timing {
    /// Fastest run — the headline number.
    pub fn min(&self) -> Duration {
        // `time` asserts reps > 0, so `runs` is never empty; the default
        // is unreachable rather than a silent fallback.
        self.runs.iter().copied().min().unwrap_or_default()
    }

    /// Median run (upper median for even counts).
    pub fn median(&self) -> Duration {
        let mut sorted = self.runs.clone();
        sorted.sort();
        sorted[sorted.len() / 2]
    }

    /// Arithmetic mean of all runs.
    pub fn mean(&self) -> Duration {
        let total: Duration = self.runs.iter().sum();
        total / self.runs.len() as u32
    }

    /// Items processed per second, judged by the fastest run.
    pub fn throughput(&self, items: usize) -> f64 {
        items as f64 / self.min().as_secs_f64()
    }

    /// `"min 12.3ms  median 12.9ms  mean 13.1ms  (n=5)"`.
    pub fn summary(&self) -> String {
        format!(
            "min {:.1?}  median {:.1?}  mean {:.1?}  (n={})",
            self.min(),
            self.median(),
            self.mean(),
            self.runs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_are_ordered_sanely() {
        let t = time_runs(5, || std::hint::black_box((0..1000u64).sum::<u64>()));
        assert_eq!(t.runs.len(), 5);
        assert!(t.min() <= t.median());
        assert!(t.min() <= t.mean());
        assert!(t.throughput(1000) > 0.0);
        assert!(t.summary().contains("n=5"));
    }
}
