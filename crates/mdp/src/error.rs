//! Error types for model construction and solving.

use std::fmt;

/// Errors arising while building or validating an [`crate::Mdp`].
#[derive(Debug, Clone, PartialEq)]
pub enum MdpError {
    /// A state has no available action.
    NoActions {
        /// Index of the offending state.
        state: usize,
    },
    /// An action's outgoing transition probabilities do not sum to one.
    BadProbabilitySum {
        /// Index of the offending state.
        state: usize,
        /// Index of the offending action within the state's action list.
        action: usize,
        /// The actual probability sum found.
        sum: f64,
    },
    /// A transition carries a NaN or infinite probability.
    NonFiniteProbability {
        /// Index of the offending state.
        state: usize,
        /// Index of the offending action within the state's action list.
        action: usize,
        /// The offending probability value.
        prob: f64,
    },
    /// A transition's reward vector contains a NaN or infinite component.
    NonFiniteReward {
        /// Index of the offending state.
        state: usize,
        /// Index of the offending action within the state's action list.
        action: usize,
        /// Index of the offending reward component.
        component: usize,
        /// The offending reward value.
        value: f64,
    },
    /// A pre-solve model audit found a violated solver precondition
    /// (see [`crate::audit`]).
    AuditFailed {
        /// Name of the first failed audit check.
        check: &'static str,
        /// Human-readable detail from the failed check.
        detail: String,
    },
    /// A transition carries a negative probability.
    NegativeProbability {
        /// Index of the offending state.
        state: usize,
        /// Index of the offending action within the state's action list.
        action: usize,
        /// The offending probability value.
        prob: f64,
    },
    /// A transition points at a state index outside the model.
    DanglingTarget {
        /// Index of the offending state.
        state: usize,
        /// Index of the offending action within the state's action list.
        action: usize,
        /// The out-of-range target index.
        target: usize,
    },
    /// A transition's reward vector has the wrong number of components.
    RewardArity {
        /// Index of the offending state.
        state: usize,
        /// Index of the offending action within the state's action list.
        action: usize,
        /// Number of components found.
        found: usize,
        /// Number of components the model declares.
        expected: usize,
    },
    /// The model has no states at all.
    Empty,
    /// A solver failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the solver that gave up.
        solver: &'static str,
        /// Number of iterations performed.
        iterations: usize,
        /// Residual (solver-specific norm) at the last iteration.
        residual: f64,
    },
    /// A policy vector does not match the model (wrong length or an
    /// action index out of range for some state).
    BadPolicy {
        /// Index of the offending state (or the policy length mismatch
        /// expressed as the model's state count).
        state: usize,
    },
    /// A ratio objective is unbounded: some policy accrues numerator
    /// reward at a positive rate while its denominator rate is zero.
    UnboundedRatio {
        /// The bracket value at which the solver gave up.
        reached: f64,
    },
    /// An objective weight vector has the wrong number of components.
    ObjectiveArity {
        /// Number of components found.
        found: usize,
        /// Number of components the model declares.
        expected: usize,
    },
    /// A caller-supplied buffer or vector (warm start, scratch space,
    /// pre-scalarized rewards) has the wrong length for the model.
    Shape {
        /// Which buffer is malformed.
        what: &'static str,
        /// Length found.
        found: usize,
        /// Length the model requires.
        expected: usize,
    },
    /// A numeric solver option is outside its valid range (e.g. an
    /// aperiodicity mixing weight or discount factor not in `[0, 1)`).
    BadOption {
        /// Which option is out of range.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A solve ran past its wall-clock deadline
    /// (see [`crate::budget::SolveBudget`]).
    DeadlineExceeded {
        /// Name of the solver whose loop hit the deadline.
        solver: &'static str,
        /// Iterations completed when the deadline fired.
        iterations: usize,
        /// How far past the deadline the check observed the clock, in
        /// milliseconds (granularity depends on the check interval).
        over_by_ms: u64,
    },
    /// A solve was cancelled through its budget's shared cancel flag.
    Cancelled {
        /// Name of the solver whose loop observed the flag.
        solver: &'static str,
        /// Iterations completed at cancellation.
        iterations: usize,
    },
    /// A hitting-time query's target set is not reachable from some state,
    /// making its expected hitting time infinite.
    UnreachableTarget {
        /// A state that cannot reach the target set.
        state: usize,
    },
}

impl MdpError {
    /// True for failures a retry with a larger budget could plausibly cure
    /// (currently only [`MdpError::NoConvergence`]): the escalation policy
    /// of sweep runners keys off this.
    pub fn is_retryable(&self) -> bool {
        matches!(self, MdpError::NoConvergence { .. })
    }

    /// True when the solve was stopped from outside (cancel flag), as
    /// opposed to failing on its own.
    pub fn is_cancellation(&self) -> bool {
        matches!(self, MdpError::Cancelled { .. })
    }
}

impl fmt::Display for MdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdpError::NoActions { state } => {
                write!(f, "state {state} has no available actions")
            }
            MdpError::BadProbabilitySum { state, action, sum } => write!(
                f,
                "transition probabilities for state {state}, action {action} sum to {sum}, expected 1"
            ),
            MdpError::NegativeProbability { state, action, prob } => write!(
                f,
                "negative transition probability {prob} at state {state}, action {action}"
            ),
            MdpError::NonFiniteProbability { state, action, prob } => write!(
                f,
                "non-finite transition probability {prob} at state {state}, action {action}"
            ),
            MdpError::NonFiniteReward { state, action, component, value } => write!(
                f,
                "non-finite reward component {component} ({value}) at state {state}, action {action}"
            ),
            MdpError::AuditFailed { check, detail } => {
                write!(f, "model audit failed check '{check}': {detail}")
            }
            MdpError::DanglingTarget { state, action, target } => write!(
                f,
                "state {state}, action {action} targets nonexistent state {target}"
            ),
            MdpError::RewardArity { state, action, found, expected } => write!(
                f,
                "reward vector at state {state}, action {action} has {found} components, expected {expected}"
            ),
            MdpError::Empty => write!(f, "model has no states"),
            MdpError::NoConvergence { solver, iterations, residual } => write!(
                f,
                "{solver} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            MdpError::BadPolicy { state } => {
                write!(f, "policy is invalid at state {state}")
            }
            MdpError::UnboundedRatio { reached } => write!(
                f,
                "ratio objective appears unbounded (still positive at rho = {reached:.3e}); \
                 some policy has positive numerator rate with zero denominator rate"
            ),
            MdpError::ObjectiveArity { found, expected } => write!(
                f,
                "objective weight vector has {found} components, expected {expected}"
            ),
            MdpError::Shape { what, found, expected } => {
                write!(f, "{what} has length {found}, expected {expected}")
            }
            MdpError::BadOption { what, value } => {
                write!(f, "solver option {what} is out of range: {value}")
            }
            MdpError::DeadlineExceeded { solver, iterations, over_by_ms } => write!(
                f,
                "{solver} exceeded its wall-clock deadline after {iterations} iterations \
                 (observed {over_by_ms} ms past the deadline)"
            ),
            MdpError::Cancelled { solver, iterations } => {
                write!(f, "{solver} was cancelled after {iterations} iterations")
            }
            MdpError::UnreachableTarget { state } => write!(
                f,
                "target set is unreachable from state {state}; its expected hitting time is infinite"
            ),
        }
    }
}

impl std::error::Error for MdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_state_and_action() {
        let e = MdpError::BadProbabilitySum { state: 3, action: 1, sum: 0.5 };
        let s = e.to_string();
        assert!(s.contains("state 3"));
        assert!(s.contains("action 1"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MdpError::Empty);
    }

    #[test]
    fn no_convergence_displays_solver_name() {
        let e = MdpError::NoConvergence { solver: "rvi", iterations: 10, residual: 1.0 };
        assert!(e.to_string().contains("rvi"));
    }

    #[test]
    fn shape_and_option_errors_display_context() {
        let e = MdpError::Shape { what: "warm start", found: 3, expected: 7 };
        assert!(e.to_string().contains("warm start"));
        assert!(e.to_string().contains('7'));
        let e = MdpError::BadOption { what: "aperiodicity_tau", value: 1.5 };
        assert!(e.to_string().contains("aperiodicity_tau"));
    }

    #[test]
    fn retryability_classification() {
        assert!(
            MdpError::NoConvergence { solver: "x", iterations: 1, residual: 0.1 }.is_retryable()
        );
        assert!(!MdpError::Empty.is_retryable());
        assert!(!MdpError::DeadlineExceeded { solver: "x", iterations: 1, over_by_ms: 0 }
            .is_retryable());
        assert!(MdpError::Cancelled { solver: "x", iterations: 1 }.is_cancellation());
        assert!(!MdpError::Empty.is_cancellation());
    }
}
