//! Shard machinery for intra-solve parallelism: state-range partitioning,
//! the shared-atomic bias buffers the sharded Bellman sweeps run in, and a
//! one-shot parallel driver for elementwise kernels.
//!
//! ## Why results are bit-identical for every thread count
//!
//! The sharded sweeps are *Jacobi* iterations: every state's update reads
//! only the previous iterate (`src`) and writes one disjoint slot of the
//! next iterate (`dst`). The value written for state `s` is a pure function
//! of `src` and the model — it cannot depend on how the state range was
//! partitioned or which thread computed it. The only cross-shard reduction
//! is the span seminorm, reduced with `f64::min`/`f64::max`, which are
//! commutative and associative over the finite values a validated model
//! produces — so the reduced `(lo, hi)` pair is independent of shard count
//! and arrival order. Everything downstream (convergence test, gain,
//! normalization offset) is computed from `dst` and `(lo, hi)` alone.
//!
//! Shared mutable state uses `AtomicU64`-of-bits buffers ([`AtomicBias`])
//! rather than `&mut` slices: workers persist across iterations inside one
//! solve (buffers swap roles every sweep), which safe Rust cannot express
//! with reborrowed disjoint `&mut` splits. All accesses are `Relaxed`; the
//! per-iteration channel rendezvous between coordinator and workers
//! provides the happens-before edges.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Minimum states a shard must hold before an extra worker thread is
/// engaged (the default for `RviOptions::shard_min_states`). Below this,
/// per-iteration barrier costs outweigh the sweep work.
pub const DEFAULT_SHARD_MIN_STATES: usize = 1024;

/// Minimum arms per shard for the one-shot parallel scalarization helpers.
/// Scalarization is a single cheap pass, so the bar for spawning is much
/// higher than for iterated sweeps.
pub(crate) const SCALARIZE_MIN_ARMS: usize = 1 << 16;

/// States a shard worker processes between cancel-flag polls, so a raised
/// flag stops a multi-threaded sweep at chunk granularity rather than at
/// the next iteration boundary.
pub(crate) const CANCEL_POLL_CHUNK: usize = 1024;

/// Effective intra-solve thread count: the requested count, capped so each
/// shard keeps at least `min_states` states (and never below 1).
pub(crate) fn effective_threads(requested: usize, n: usize, min_states: usize) -> usize {
    let cap = n / min_states.max(1);
    requested.max(1).min(cap.max(1))
}

/// Partitions `0..n` into `shards` contiguous ranges, balanced by the
/// per-state weights (transition counts for Bellman sweeps), so the wall
/// clock of a sweep is set by work, not state count. Deterministic in the
/// model and shard count — and irrelevant to results either way (see the
/// module docs).
pub(crate) fn shard_ranges(
    weights: impl Fn(usize) -> usize,
    n: usize,
    shards: usize,
) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let shards = shards.max(1).min(n);
    let total: u128 = (0..n).map(&weights).map(|w| w as u128).sum();
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut acc = 0u128;
    for k in 0..shards {
        // Every remaining shard must keep at least one state.
        let max_end = n - (shards - k - 1);
        // Ideal cumulative weight at the end of shard k.
        let target = total * (k as u128 + 1) / shards as u128;
        let mut end = start + 1;
        acc += weights(start) as u128;
        while end < max_end && acc < target {
            acc += weights(end) as u128;
            end += 1;
        }
        if k + 1 == shards {
            end = n;
        }
        out.push(start..end);
        start = end;
    }
    out
}

/// A bias vector stored as `f64` bit patterns in atomics, so shard workers
/// can share it by `&` reference across sweep iterations. `Relaxed` loads
/// and stores compile to plain moves on the targets we care about; the
/// cross-thread ordering comes from the coordinator's channel rendezvous.
pub(crate) struct AtomicBias(Vec<AtomicU64>);

impl AtomicBias {
    /// A buffer of `n` zeros.
    pub(crate) fn zeros(n: usize) -> Self {
        AtomicBias((0..n).map(|_| AtomicU64::new(0)).collect())
    }

    /// Overwrites the buffer with `src` (lengths must match).
    pub(crate) fn copy_from(&self, src: &[f64]) {
        debug_assert_eq!(self.0.len(), src.len());
        for (slot, &v) in self.0.iter().zip(src) {
            // ordering: Relaxed — slots are data, not flags: the scope join between sweeps publishes them.
            slot.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Copies the buffer out into `dst` (lengths must match).
    pub(crate) fn copy_to(&self, dst: &mut [f64]) {
        debug_assert_eq!(self.0.len(), dst.len());
        for (slot, v) in self.0.iter().zip(dst) {
            // ordering: Relaxed — slots are data, not flags: the scope join between sweeps publishes them.
            *v = f64::from_bits(slot.load(Ordering::Relaxed));
        }
    }

    #[inline(always)]
    pub(crate) fn get(&self, i: usize) -> f64 {
        // ordering: Relaxed — slots are data, not flags: the scope join between sweeps publishes them.
        f64::from_bits(self.0[i].load(Ordering::Relaxed))
    }

    #[inline(always)]
    pub(crate) fn set(&self, i: usize, v: f64) {
        // ordering: Relaxed — slots are data, not flags: the scope join between sweeps publishes them.
        self.0[i].store(v.to_bits(), Ordering::Relaxed);
    }
}

/// Read access to a bias iterate, abstracting plain slices (single-thread
/// sweeps) and [`AtomicBias`] (sharded sweeps). `#[inline(always)]`
/// monomorphization makes both compile to the same plain loads, so the two
/// paths execute identical arithmetic.
pub(crate) trait BiasRead: Sync {
    /// The bias value of state `i`.
    fn get(&self, i: usize) -> f64;
}

impl BiasRead for [f64] {
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        self[i]
    }
}

impl BiasRead for AtomicBias {
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        AtomicBias::get(self, i)
    }
}

/// Runs `work` over `out` split into `shards` contiguous chunks, one scoped
/// thread per extra chunk. `work` receives the chunk's global start index
/// and the chunk itself; chunks are disjoint, so no synchronization beyond
/// the scope join is needed. Used by the one-shot scalarization helpers —
/// iterated sweeps use the persistent worker pool in `solve::rvi` instead.
pub(crate) fn run_chunked<F>(out: &mut [f64], shards: usize, work: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let n = out.len();
    let shards = shards.max(1).min(n.max(1));
    if shards <= 1 {
        work(0, out);
        return;
    }
    let chunk = n.div_ceil(shards);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut start = 0usize;
        let work = &work;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let s = start;
            scope.spawn(move || work(s, head));
            start += take;
            rest = tail;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_caps_by_state_count() {
        assert_eq!(effective_threads(4, 10_000, 1024), 4);
        assert_eq!(effective_threads(8, 3000, 1024), 2);
        assert_eq!(effective_threads(8, 500, 1024), 1);
        assert_eq!(effective_threads(0, 500, 1024), 1);
        assert_eq!(effective_threads(4, 0, 1024), 1);
        assert_eq!(effective_threads(3, 6, 0), 3);
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for n in [1usize, 2, 7, 100, 1001] {
            for shards in [1usize, 2, 3, 7, 16] {
                let ranges = shard_ranges(|s| 1 + s % 5, n, shards);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "n={n} shards={shards} {ranges:?}");
                    assert!(r.end > r.start, "empty shard: n={n} shards={shards} {ranges:?}");
                    next = r.end;
                }
                assert_eq!(next, n);
                assert!(ranges.len() <= shards);
            }
        }
    }

    #[test]
    fn shard_ranges_balance_by_weight() {
        // One heavy state at the front: the first shard should hold little
        // else.
        let w = |s: usize| if s == 0 { 1000 } else { 1 };
        let ranges = shard_ranges(w, 100, 4);
        assert_eq!(ranges.len(), 4);
        assert!(ranges[0].len() <= 40, "{ranges:?}");
    }

    #[test]
    fn atomic_bias_roundtrips_bit_patterns() {
        let vals = [1.5, -0.0, f64::NAN, f64::INFINITY, 2.25];
        let buf = AtomicBias::zeros(vals.len());
        buf.copy_from(&vals);
        let mut out = vec![0.0; vals.len()];
        buf.copy_to(&mut out);
        for (a, b) in vals.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        buf.set(1, 42.0);
        assert_eq!(buf.get(1), 42.0);
    }

    /// Shard workers share an [`AtomicBias`] by reference: each thread
    /// writes a disjoint index range while every thread reads the whole
    /// buffer, exactly the access pattern of a sharded sweep iteration.
    /// Sized to stay fast under Miri, which runs this test in CI to check
    /// the bit-pattern atomics for data races.
    #[test]
    fn atomic_bias_concurrent_shard_writes() {
        const THREADS: usize = 4;
        const PER_SHARD: usize = 8;
        let n = THREADS * PER_SHARD;
        let buf = AtomicBias::zeros(n);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let buf = &buf;
                s.spawn(move || {
                    for i in t * PER_SHARD..(t + 1) * PER_SHARD {
                        buf.set(i, i as f64 + 0.5);
                        // Cross-shard reads race with other writers; any
                        // value seen must be a whole written f64, never a
                        // torn word.
                        let other = buf.get((i + PER_SHARD) % n);
                        assert!(other == 0.0 || other.fract() == 0.5, "torn read: {other}");
                    }
                });
            }
        });
        let mut out = vec![0.0; n];
        buf.copy_to(&mut out);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64 + 0.5);
        }
    }

    #[test]
    fn run_chunked_touches_every_slot_once() {
        for shards in [1usize, 2, 3, 8] {
            let mut out = vec![0.0f64; 37];
            run_chunked(&mut out, shards, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += (start + i) as f64 + 1.0;
                }
            });
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as f64 + 1.0, "shards={shards}");
            }
        }
    }
}
