//! Relative value iteration for undiscounted average-reward (gain-optimal)
//! MDPs.
//!
//! This is the workhorse solver of the crate: the paper's mining models are
//! unichain average-reward MDPs ("undiscounted average reward MDP" per
//! Sapirshtein et al.), where the quantity of interest is the long-run
//! expected reward per step (the *gain*).
//!
//! To guarantee convergence on periodic chains (common in mining models,
//! where deterministic reset cycles occur), the solver applies the standard
//! aperiodicity transform: each action is mixed with a probability-`tau`
//! self-loop of zero reward. The transform scales the gain by `(1 - tau)`
//! and leaves optimal policies unchanged; the reported gain is rescaled back.
//!
//! The Bellman sweeps run on a [`CompiledMdp`]: rewards are collapsed to one
//! expected scalar per arm up front ([`CompiledMdp::scalarize`]) and the
//! inner loop walks flat probability/destination arrays. The low-level
//! [`rvi_kernel`] works entirely in caller-owned buffers — zero heap
//! allocation per iteration *and* per solve — which is what lets the ratio
//! solver warm-start dozens of bisection steps in place.
//!
//! ## Execution modes
//!
//! The kernel has three sweep strategies, selected by [`RviOptions`]:
//!
//! * **Single-threaded Jacobi** (the default): one pass per iteration,
//!   restructured for auto-vectorization — streaming cursors over the CSR
//!   arrays, a hoisted aperiodicity blend, branch-free max selection, and
//!   the reference-state normalization fused into the sweep.
//! * **Sharded Jacobi** (`solve_threads > 1`): the state range is split
//!   across a pool of workers that persists for the whole solve; each shard
//!   writes a disjoint slice of the next iterate and reports a local span,
//!   reduced with order-independent `min`/`max`. Results are **bit-identical
//!   to the single-threaded path for every thread count** — see
//!   `crate::shard` for the argument.
//! * **Prioritized Gauss-Seidel** (`prioritized_sweep`): states are swept
//!   in-place in breadth-first order from the base state
//!   ([`CompiledMdp::bfs_order`]), propagating fresh values downstream
//!   within one sweep. An opt-in convergence accelerator: it usually needs
//!   fewer iterations, but its iterates (not its limit) differ from the
//!   Jacobi paths, so it is excluded from the bit-identity guarantee and
//!   cannot be combined with `solve_threads > 1`.

use std::sync::mpsc;

use crate::budget::SolveBudget;
use crate::compiled::CompiledMdp;
use crate::error::MdpError;
use crate::model::{Mdp, Objective, Policy};
use crate::shard::{
    effective_threads, shard_ranges, AtomicBias, BiasRead, CANCEL_POLL_CHUNK,
    DEFAULT_SHARD_MIN_STATES,
};

/// Options for [`relative_value_iteration`].
#[derive(Debug, Clone)]
pub struct RviOptions {
    /// Stop when the span seminorm of successive bias differences falls
    /// below this; the reported gain is then within `tolerance` of optimal.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Aperiodicity mixing weight in `[0, 1)`. `0` disables the transform.
    pub aperiodicity_tau: f64,
    /// Optional initial bias vector (warm start), e.g. from a previous solve
    /// of a nearby model. Must have one entry per state if present.
    pub warm_start: Option<Vec<f64>>,
    /// Wall-clock deadline and cooperative cancellation, checked at each
    /// iteration boundary (and, in sharded sweeps, the cancel flag every
    /// [`CANCEL_POLL_CHUNK`] states inside each shard). Unlimited by
    /// default.
    pub budget: SolveBudget,
    /// Worker threads sharding each Bellman sweep. `0` and `1` (default)
    /// keep the solve single-threaded; higher values are capped so every
    /// shard keeps at least `shard_min_states` states. Gain, bias, and
    /// policy are bit-identical for every value.
    pub solve_threads: usize,
    /// Minimum states per shard before an extra worker thread is engaged
    /// (default [`DEFAULT_SHARD_MIN_STATES`]); below it, per-iteration
    /// barrier costs outweigh the sweep work. Lower it only in tests and
    /// smokes that must exercise the sharded path on small models.
    pub shard_min_states: usize,
    /// Sweep states in-place in breadth-first order from the base state
    /// (Gauss-Seidel) instead of the double-buffered Jacobi sweep. Often
    /// converges in fewer iterations; results agree with the Jacobi paths
    /// within solver tolerance but are *not* bit-identical to them, and the
    /// mode cannot be combined with `solve_threads > 1`.
    pub prioritized_sweep: bool,
}

impl Default for RviOptions {
    fn default() -> Self {
        RviOptions {
            tolerance: 1e-7,
            max_iterations: 2_000_000,
            aperiodicity_tau: 0.05,
            warm_start: None,
            budget: SolveBudget::unlimited(),
            solve_threads: 1,
            shard_min_states: DEFAULT_SHARD_MIN_STATES,
            prioritized_sweep: false,
        }
    }
}

/// Result of [`relative_value_iteration`].
#[derive(Debug, Clone)]
pub struct RviSolution {
    /// Optimal long-run average reward per step (identical for every start
    /// state under the unichain assumption).
    pub gain: f64,
    /// Relative (bias) values, normalized so `bias[0] == 0`.
    pub bias: Vec<f64>,
    /// A gain-optimal policy.
    pub policy: Policy,
    /// Iterations performed.
    pub iterations: usize,
}

/// Computes the optimal gain of a unichain average-reward MDP.
pub fn relative_value_iteration(
    mdp: &Mdp,
    objective: &Objective,
    opts: &RviOptions,
) -> Result<RviSolution, MdpError> {
    let compiled = CompiledMdp::compile(mdp)?;
    compiled.validate_objective(objective)?;
    let exp_reward = compiled.scalarize(objective);
    relative_value_iteration_compiled(&compiled, &exp_reward, opts)
}

/// [`relative_value_iteration`] on an already-compiled model and
/// pre-scalarized per-arm expected rewards (one entry per global arm, from
/// [`CompiledMdp::scalarize`]). Use this form when solving the same model
/// under many objectives.
pub fn relative_value_iteration_compiled(
    compiled: &CompiledMdp,
    exp_reward: &[f64],
    opts: &RviOptions,
) -> Result<RviSolution, MdpError> {
    let n = compiled.num_states();
    let mut h: Vec<f64> = match &opts.warm_start {
        Some(w) => {
            if w.len() != n {
                return Err(MdpError::Shape { what: "warm start", found: w.len(), expected: n });
            }
            w.clone()
        }
        None => vec![0.0; n],
    };
    let mut h_next = vec![0.0f64; n];
    let mut policy = Policy::zeros(n);
    let (gain, iterations) =
        rvi_kernel(compiled, exp_reward, &mut h, &mut h_next, &mut policy, opts)?;
    Ok(RviSolution { gain, bias: h, policy, iterations })
}

/// Name the budget and error paths report for this solver.
const SOLVER: &str = "relative_value_iteration";

/// The allocation-light RVI core: runs Bellman sweeps inside the
/// caller-owned buffers `h` (bias in/out — pre-fill for a warm start),
/// `h_next` (scratch) and `policy` (out). All three must have one entry per
/// state; `exp_reward` one entry per global arm. On success `h` holds the
/// final bias normalized to `h[0] == 0`.
///
/// `opts.warm_start` is ignored here — the warm start *is* the incoming
/// content of `h`. With `solve_threads > 1` the sweeps shard across a
/// scoped worker pool that lives for this one call (the only allocations
/// past setup); results are bit-identical to the single-threaded path.
pub(crate) fn rvi_kernel(
    compiled: &CompiledMdp,
    exp_reward: &[f64],
    h: &mut Vec<f64>,
    h_next: &mut Vec<f64>,
    policy: &mut Policy,
    opts: &RviOptions,
) -> Result<(f64, usize), MdpError> {
    let tau = opts.aperiodicity_tau;
    if !(0.0..1.0).contains(&tau) {
        return Err(MdpError::BadOption { what: "aperiodicity_tau", value: tau });
    }
    let n = compiled.num_states();
    let arms = compiled.num_arms();
    for (what, found, expected) in [
        ("bias buffer", h.len(), n),
        ("scratch buffer", h_next.len(), n),
        ("policy buffer", policy.choices.len(), n),
        ("exp_reward", exp_reward.len(), arms),
    ] {
        if found != expected {
            return Err(MdpError::Shape { what, found, expected });
        }
    }

    if opts.prioritized_sweep {
        if opts.solve_threads > 1 {
            // The in-place sweep has loop-carried dependencies between
            // states; sharding it would race. Surface the conflict instead
            // of silently ignoring one of the options.
            return Err(MdpError::BadOption {
                what: "solve_threads with prioritized_sweep",
                value: opts.solve_threads as f64,
            });
        }
        return kernel_prioritized(compiled, exp_reward, h, policy, opts, tau);
    }
    let threads = effective_threads(opts.solve_threads, n, opts.shard_min_states);
    if threads > 1 {
        kernel_sharded(compiled, exp_reward, h, policy, opts, tau, threads)
    } else {
        kernel_single(compiled, exp_reward, h, h_next, policy, opts, tau)
    }
}

/// One Bellman backup of state `s` against the bias iterate `src`: returns
/// `(best, best_arm, diff)` — the blended optimal value, the local index of
/// an arm attaining it (first wins ties), and `best - src[s]` (the span
/// contribution).
///
/// This is the only place sweep arithmetic lives: the single-threaded,
/// sharded, and prioritized paths all monomorphize it, so every path
/// executes the identical operation sequence — the root of the
/// thread-count bit-identity guarantee.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn bellman_state<S: BiasRead + ?Sized>(
    s: usize,
    src: &S,
    arm_offsets: &[u32],
    tr_offsets: &[u32],
    next: &[u32],
    prob: &[f64],
    exp_reward: &[f64],
    tau: f64,
    one_minus_tau: f64,
) -> (f64, usize, f64) {
    let hs = src.get(s);
    // Aperiodicity transform, hoisted: `tau * h[s]` is shared by every arm.
    let blend = tau * hs;
    let a0 = arm_offsets[s] as usize;
    let a1 = arm_offsets[s + 1] as usize;
    let mut best = f64::NEG_INFINITY;
    let mut best_arm = 0usize;
    let mut t0 = tr_offsets[a0] as usize;
    for arm in a0..a1 {
        let t1 = tr_offsets[arm + 1] as usize;
        let mut acc = exp_reward[arm];
        // Transition-major streaming over the flat prob/next arrays, in CSR
        // order — the same serial accumulation the nested reference
        // performs, so near-tie argmax decisions cannot drift between the
        // compiled and reference paths.
        for (p, &to) in prob[t0..t1].iter().zip(&next[t0..t1]) {
            acc += p * src.get(to as usize);
        }
        t0 = t1;
        let q = one_minus_tau * acc + blend;
        // Strict `>` keeps first-wins ties, matching the nested reference.
        if q > best {
            best = q;
            best_arm = arm - a0;
        }
    }
    (best, best_arm, best - hs)
}

/// The default single-threaded Jacobi kernel.
fn kernel_single(
    compiled: &CompiledMdp,
    exp_reward: &[f64],
    h: &mut Vec<f64>,
    h_next: &mut Vec<f64>,
    policy: &mut Policy,
    opts: &RviOptions,
    tau: f64,
) -> Result<(f64, usize), MdpError> {
    let one_minus_tau = 1.0 - tau;
    let (arm_offsets, tr_offsets) = compiled.raw_offsets();
    let (next, prob) = (compiled.raw_next(), compiled.raw_prob());

    // Span seminorm of the last completed sweep, rescaled to the caller's
    // (untransformed) reward units so it compares directly to `tolerance`.
    let mut last_residual = f64::INFINITY;
    for iter in 0..opts.max_iterations {
        opts.budget.check(SOLVER, iter)?;
        // State 0 first: its raw value is the normalization offset, which
        // lets the offset subtraction fuse into the sweep instead of
        // costing a second pass over `h_next`.
        let (best0, arm0, d0) = bellman_state(
            0,
            &h[..],
            arm_offsets,
            tr_offsets,
            next,
            prob,
            exp_reward,
            tau,
            one_minus_tau,
        );
        // `best0` is finite (validated model), so subtracting it from
        // itself is exactly +0.0 — the same bits the sharded kernel's
        // normalization phase produces for state 0.
        h_next[0] = 0.0;
        policy.choices[0] = arm0;
        let mut span_lo = d0;
        let mut span_hi = d0;
        for (s, h_out) in h_next.iter_mut().enumerate().skip(1) {
            let (best, arm, d) = bellman_state(
                s,
                &h[..],
                arm_offsets,
                tr_offsets,
                next,
                prob,
                exp_reward,
                tau,
                one_minus_tau,
            );
            *h_out = best - best0;
            policy.choices[s] = arm;
            span_lo = span_lo.min(d);
            span_hi = span_hi.max(d);
        }
        std::mem::swap(h, h_next);

        last_residual = (span_hi - span_lo) / one_minus_tau;
        if span_hi - span_lo < opts.tolerance * one_minus_tau {
            // The per-step gain of the *transformed* chain lies in
            // [span_lo, span_hi]; undo the (1 - tau) reward scaling.
            let gain = 0.5 * (span_lo + span_hi) / one_minus_tau;
            return Ok((gain, iter + 1));
        }
    }
    Err(MdpError::NoConvergence {
        solver: SOLVER,
        iterations: opts.max_iterations,
        residual: last_residual,
    })
}

/// Replays the argmax of one Bellman sweep against the iterate `src` into
/// `policy` — exactly the choices a sweep reading `src` records. The
/// sharded kernel's sweeps skip per-state policy stores (which would need
/// yet another shared atomic buffer) and pay this single serial pass at
/// publish time instead.
fn extract_policy<S: BiasRead + ?Sized>(
    compiled: &CompiledMdp,
    exp_reward: &[f64],
    src: &S,
    policy: &mut Policy,
    tau: f64,
) {
    let one_minus_tau = 1.0 - tau;
    let (arm_offsets, tr_offsets) = compiled.raw_offsets();
    let (next, prob) = (compiled.raw_next(), compiled.raw_prob());
    for (s, choice) in policy.choices.iter_mut().enumerate() {
        let (_, arm, _) = bellman_state(
            s,
            src,
            arm_offsets,
            tr_offsets,
            next,
            prob,
            exp_reward,
            tau,
            one_minus_tau,
        );
        *choice = arm;
    }
}

/// A shard worker's report for one sweep phase.
struct Swept {
    lo: f64,
    hi: f64,
    /// The worker saw the cancel flag mid-sweep and stopped early; its
    /// slice of the iterate is incomplete (the solve is being torn down).
    aborted: bool,
}

/// Coordinator-to-worker commands; buffers are shared through the scope,
/// so commands carry only phase data.
enum Cmd {
    /// Sweep the worker's shard, reading iterate `src` (0 or 1) and
    /// writing the other buffer.
    Sweep { src: usize },
    /// Subtract `offset` over the worker's slice of iterate `dst`.
    Normalize { dst: usize, offset: f64 },
}

/// Worker-to-coordinator replies.
enum Reply {
    Swept(Swept),
    Normalized,
}

/// The sharded Jacobi kernel: `threads - 1` scoped workers plus the
/// calling thread (which owns shard 0 and the base state), persistent
/// across all iterations of this one solve. Bit-identical to
/// [`kernel_single`] — see `crate::shard` for the determinism argument.
fn kernel_sharded(
    compiled: &CompiledMdp,
    exp_reward: &[f64],
    h: &mut [f64],
    policy: &mut Policy,
    opts: &RviOptions,
    tau: f64,
    threads: usize,
) -> Result<(f64, usize), MdpError> {
    let n = compiled.num_states();
    let one_minus_tau = 1.0 - tau;
    let (arm_offsets, tr_offsets) = compiled.raw_offsets();
    let (next, prob) = (compiled.raw_next(), compiled.raw_prob());

    // Balance shards by transition count (+1 per state for the fixed
    // per-state cost), so one dense region cannot serialize the sweep.
    let weight = |s: usize| {
        let a0 = arm_offsets[s] as usize;
        let a1 = arm_offsets[s + 1] as usize;
        (tr_offsets[a1] - tr_offsets[a0]) as usize + 1
    };
    let ranges = shard_ranges(weight, n, threads);

    // Double-buffered iterates as shared atomics (see `crate::shard` for
    // why not `&mut` splits).
    let bufs = [AtomicBias::zeros(n), AtomicBias::zeros(n)];
    bufs[0].copy_from(h);

    let budget = &opts.budget;
    // Sweep of one shard, running [`bellman_state`] — the same microkernel
    // as [`kernel_single`] — over the shard's state range, writing the
    // shard's disjoint slice of `dst`. The cancel flag is polled every
    // [`CANCEL_POLL_CHUNK`] states.
    let sweep_shard = |range: std::ops::Range<usize>, src: &AtomicBias, dst: &AtomicBias| {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut since_poll = 0usize;
        for s in range {
            since_poll += 1;
            if since_poll >= CANCEL_POLL_CHUNK {
                since_poll = 0;
                if budget.is_cancelled() {
                    return Swept { lo, hi, aborted: true };
                }
            }
            let (best, _, d) = bellman_state(
                s,
                src,
                arm_offsets,
                tr_offsets,
                next,
                prob,
                exp_reward,
                tau,
                one_minus_tau,
            );
            dst.set(s, best);
            lo = lo.min(d);
            hi = hi.max(d);
        }
        Swept { lo, hi, aborted: false }
    };
    let normalize_shard = |range: std::ops::Range<usize>, dst: &AtomicBias, offset: f64| {
        for s in range {
            dst.set(s, dst.get(s) - offset);
        }
    };

    // Copy the final (or last completed) iterate back out of the shared
    // buffers into the caller's, and replay the final sweep's argmax
    // against the iterate it read (`src_buf` is only read, never written,
    // during a sweep — so it still holds that iterate verbatim). Like the
    // single-threaded path, the iterated sweeps skip per-state policy
    // stores and pay this one extra pass at the end.
    let publish =
        |dst_buf: &AtomicBias, src_buf: &AtomicBias, h: &mut [f64], policy: &mut Policy| {
            dst_buf.copy_to(h);
            extract_policy(compiled, exp_reward, src_buf, policy, tau);
        };

    std::thread::scope(|scope| {
        let mut channels = Vec::with_capacity(ranges.len().saturating_sub(1));
        for range in ranges.iter().skip(1) {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
            let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
            let sweep_shard = &sweep_shard;
            let normalize_shard = &normalize_shard;
            let bufs = &bufs;
            scope.spawn(move || {
                // Exits when the coordinator drops its sender (normal
                // teardown and every error path alike).
                while let Ok(cmd) = cmd_rx.recv() {
                    let reply = match cmd {
                        Cmd::Sweep { src } => {
                            Reply::Swept(sweep_shard(range.clone(), &bufs[src], &bufs[1 - src]))
                        }
                        Cmd::Normalize { dst, offset } => {
                            normalize_shard(range.clone(), &bufs[dst], offset);
                            Reply::Normalized
                        }
                    };
                    if reply_tx.send(reply).is_err() {
                        return;
                    }
                }
            });
            channels.push((cmd_tx, reply_rx));
        }

        // A worker can only stop answering if it panicked, which scoped
        // join will propagate as soon as this closure returns — so channel
        // failures here just cut the coordinator loop short.
        let dead = || MdpError::Cancelled { solver: SOLVER, iterations: 0 };

        let mut last_residual = f64::INFINITY;
        let mut last_dst = 0usize;
        for iter in 0..opts.max_iterations {
            opts.budget.check(SOLVER, iter)?;
            let src = iter % 2;
            let dst = 1 - src;
            last_dst = dst;
            for (cmd_tx, _) in &channels {
                cmd_tx.send(Cmd::Sweep { src }).map_err(|_| dead())?;
            }
            let own = sweep_shard(ranges[0].clone(), &bufs[src], &bufs[dst]);
            let mut span_lo = own.lo;
            let mut span_hi = own.hi;
            let mut aborted = own.aborted;
            for (_, reply_rx) in &channels {
                match reply_rx.recv().map_err(|_| dead())? {
                    Reply::Swept(s) => {
                        // Order-independent span reduction: min/max over
                        // finite values commute, so shard arrival order
                        // cannot change the reduced pair.
                        span_lo = span_lo.min(s.lo);
                        span_hi = span_hi.max(s.hi);
                        aborted |= s.aborted;
                    }
                    Reply::Normalized => return Err(dead()),
                }
            }
            if aborted {
                // Some shard saw the cancel flag mid-sweep; report the
                // same structured error the budget check would.
                opts.budget.check(SOLVER, iter)?;
                return Err(MdpError::Cancelled { solver: SOLVER, iterations: iter });
            }

            // Normalize against the base state to keep the bias bounded.
            // State 0 lives in the coordinator's own shard, so its raw
            // value is already visible here.
            let offset = bufs[dst].get(0);
            for (cmd_tx, _) in &channels {
                cmd_tx.send(Cmd::Normalize { dst, offset }).map_err(|_| dead())?;
            }
            normalize_shard(ranges[0].clone(), &bufs[dst], offset);
            for (_, reply_rx) in &channels {
                match reply_rx.recv().map_err(|_| dead())? {
                    Reply::Normalized => {}
                    Reply::Swept(_) => return Err(dead()),
                }
            }

            last_residual = (span_hi - span_lo) / one_minus_tau;
            if span_hi - span_lo < opts.tolerance * one_minus_tau {
                publish(&bufs[dst], &bufs[src], h, policy);
                let gain = 0.5 * (span_lo + span_hi) / one_minus_tau;
                return Ok((gain, iter + 1));
            }
        }
        if opts.max_iterations > 0 {
            // Match the single-threaded path's NoConvergence state: `h`
            // holds the last completed normalized iterate, `policy` the
            // last sweep's argmax choices.
            publish(&bufs[last_dst], &bufs[1 - last_dst], h, policy);
        }
        Err(MdpError::NoConvergence {
            solver: SOLVER,
            iterations: opts.max_iterations,
            residual: last_residual,
        })
    })
}

/// The opt-in prioritized (breadth-first order, in-place Gauss-Seidel)
/// kernel: fresh values propagate downstream within one sweep, which
/// typically cuts the iteration count on chain-structured models. Iterates
/// differ from the Jacobi paths, so agreement with them is within solver
/// tolerance, not bitwise.
fn kernel_prioritized(
    compiled: &CompiledMdp,
    exp_reward: &[f64],
    h: &mut [f64],
    policy: &mut Policy,
    opts: &RviOptions,
    tau: f64,
) -> Result<(f64, usize), MdpError> {
    let one_minus_tau = 1.0 - tau;
    let (arm_offsets, tr_offsets) = compiled.raw_offsets();
    let (next, prob) = (compiled.raw_next(), compiled.raw_prob());
    let order = compiled.bfs_order();

    let mut last_residual = f64::INFINITY;
    for iter in 0..opts.max_iterations {
        opts.budget.check(SOLVER, iter)?;
        // The base state leads the BFS order, so its backup (over old
        // values only) defines the normalization offset for the whole
        // sweep. Later states must see *normalized* fresh values — writing
        // `best` raw and subtracting at sweep end would let downstream
        // backups read offset-inflated upstream values, and the in-place
        // fixed point would overshoot the gain.
        let (best0, arm0, d0) = bellman_state(
            0,
            &h[..],
            arm_offsets,
            tr_offsets,
            next,
            prob,
            exp_reward,
            tau,
            one_minus_tau,
        );
        h[0] = 0.0; // exactly best0 - best0 for a finite best0
        policy.choices[0] = arm0;
        let mut span_lo = d0;
        let mut span_hi = d0;
        for &su in &order[1..] {
            let s = su as usize;
            let (best, arm, d) = bellman_state(
                s,
                &h[..],
                arm_offsets,
                tr_offsets,
                next,
                prob,
                exp_reward,
                tau,
                one_minus_tau,
            );
            h[s] = best - best0;
            policy.choices[s] = arm;
            span_lo = span_lo.min(d);
            span_hi = span_hi.max(d);
        }

        last_residual = (span_hi - span_lo) / one_minus_tau;
        if span_hi - span_lo < opts.tolerance * one_minus_tau {
            let gain = 0.5 * (span_lo + span_hi) / one_minus_tau;
            return Ok((gain, iter + 1));
        }
    }
    Err(MdpError::NoConvergence {
        solver: SOLVER,
        iterations: opts.max_iterations,
        residual: last_residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;

    fn solve(m: &Mdp, w: Vec<f64>) -> RviSolution {
        relative_value_iteration(m, &Objective::new(w), &RviOptions::default()).unwrap()
    }

    #[test]
    fn self_loop_gain_is_reward() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![3.5])]);
        let sol = solve(&m, vec![1.0]);
        assert!((sol.gain - 3.5).abs() < 1e-6, "gain {}", sol.gain);
    }

    /// A deterministic 2-cycle with rewards 1 and 3 has gain 2. Without the
    /// aperiodicity transform plain RVI oscillates on this chain.
    #[test]
    fn periodic_two_cycle_converges() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![3.0])]);
        let sol = solve(&m, vec![1.0]);
        assert!((sol.gain - 2.0).abs() < 1e-6, "gain {}", sol.gain);
    }

    /// Choice between a 1-reward self-loop and entering a 2-cycle with
    /// average 2.5: the optimal policy takes the cycle.
    #[test]
    fn prefers_higher_average_cycle() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        let c = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0])]);
        m.add_action(s, 1, vec![Transition::new(c, 1.0, vec![2.0])]);
        m.add_action(c, 0, vec![Transition::new(s, 1.0, vec![3.0])]);
        let sol = solve(&m, vec![1.0]);
        assert_eq!(sol.policy.choices[s], 1);
        assert!((sol.gain - 2.5).abs() < 1e-6, "gain {}", sol.gain);
    }

    /// Two-state chain with symmetric switching: stationary distribution is
    /// (2/3, 1/3) for leave-probabilities (0.1, 0.2); gain = 2/3*r_a + 1/3*r_b
    /// with per-state rewards attached to outgoing transitions.
    #[test]
    fn stochastic_chain_gain_matches_stationary_average() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(
            a,
            0,
            vec![Transition::new(a, 0.9, vec![6.0]), Transition::new(b, 0.1, vec![6.0])],
        );
        m.add_action(
            b,
            0,
            vec![Transition::new(b, 0.8, vec![0.0]), Transition::new(a, 0.2, vec![0.0])],
        );
        let sol = solve(&m, vec![1.0]);
        assert!((sol.gain - 4.0).abs() < 1e-5, "gain {}", sol.gain);
    }

    #[test]
    fn vector_rewards_scalarized_by_objective() {
        let mut m = Mdp::new(2);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0, 10.0])]);
        let sol = solve(&m, vec![0.0, 1.0]);
        assert!((sol.gain - 10.0).abs() < 1e-6);
        let sol = solve(&m, vec![1.0, -0.5]);
        assert!((sol.gain + 4.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_accepted_and_converges() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![3.0])]);
        let cold = solve(&m, vec![1.0]);
        let opts = RviOptions { warm_start: Some(cold.bias.clone()), ..Default::default() };
        let warm = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap();
        assert!((warm.gain - 2.0).abs() < 1e-6);
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn bias_is_normalized_to_reference_state() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![0.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![2.0])]);
        let sol = solve(&m, vec![1.0]);
        assert_eq!(sol.bias[0], 0.0);
    }

    #[test]
    fn wrong_length_warm_start_is_a_shape_error() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0])]);
        let opts = RviOptions { warm_start: Some(vec![0.0; 5]), ..Default::default() };
        let err = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap_err();
        assert_eq!(err, MdpError::Shape { what: "warm start", found: 5, expected: 1 });
    }

    #[test]
    fn bad_tau_is_a_structured_error() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0])]);
        for tau in [-0.1, 1.0, 1.5, f64::NAN] {
            let opts = RviOptions { aperiodicity_tau: tau, ..Default::default() };
            let err = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap_err();
            assert!(
                matches!(err, MdpError::BadOption { what: "aperiodicity_tau", .. }),
                "tau={tau}: {err:?}"
            );
        }
    }

    /// Exhausting the iteration budget reports the actual span-seminorm
    /// residual, not NaN (the retry policy keys its escalation off it).
    #[test]
    fn no_convergence_carries_finite_residual() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![3.0])]);
        let opts = RviOptions { max_iterations: 3, ..Default::default() };
        let err = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap_err();
        match err {
            MdpError::NoConvergence { iterations, residual, .. } => {
                assert_eq!(iterations, 3);
                assert!(residual.is_finite() && residual > 0.0, "residual {residual}");
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn pre_expired_deadline_stops_the_solve() {
        use crate::budget::SolveBudget;
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0])]);
        let opts = RviOptions {
            budget: SolveBudget::with_timeout(std::time::Duration::ZERO),
            ..Default::default()
        };
        std::thread::sleep(std::time::Duration::from_millis(2));
        let err = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap_err();
        assert!(matches!(err, MdpError::DeadlineExceeded { .. }), "{err:?}");
    }

    #[test]
    fn raised_cancel_flag_stops_the_solve() {
        use crate::budget::SolveBudget;
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0])]);
        let flag = Arc::new(AtomicBool::new(true));
        let opts =
            RviOptions { budget: SolveBudget::unlimited().with_cancel(flag), ..Default::default() };
        let err = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap_err();
        assert!(err.is_cancellation(), "{err:?}");
    }

    /// The compiled entry point solves the same model under two objectives
    /// without recompiling, and agrees with the front-door call.
    #[test]
    fn compiled_entry_point_reuses_model() {
        let mut m = Mdp::new(2);
        let s = m.add_state();
        let c = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0, 0.0])]);
        m.add_action(s, 1, vec![Transition::new(c, 1.0, vec![2.0, 1.0])]);
        m.add_action(c, 0, vec![Transition::new(s, 1.0, vec![3.0, 0.5])]);
        let compiled = CompiledMdp::compile(&m).unwrap();
        let opts = RviOptions::default();
        for weights in [vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, -2.0]] {
            let obj = Objective::new(weights);
            let exp = compiled.scalarize(&obj);
            let fast = relative_value_iteration_compiled(&compiled, &exp, &opts).unwrap();
            let front = relative_value_iteration(&m, &obj, &opts).unwrap();
            assert!((fast.gain - front.gain).abs() < 1e-12);
            assert_eq!(fast.policy, front.policy);
        }
    }

    /// A 4-state chain solved with every thread count (the shard threshold
    /// lowered so sharding actually engages): gain, bias, and policy must
    /// be bit-identical across all of them.
    #[test]
    fn sharded_solve_is_bit_identical_across_thread_counts() {
        let mut m = Mdp::new(1);
        let states: Vec<_> = (0..4).map(|_| m.add_state()).collect();
        for (i, &s) in states.iter().enumerate() {
            let to = states[(i + 1) % 4];
            m.add_action(s, 0, vec![Transition::new(to, 1.0, vec![i as f64])]);
            m.add_action(
                s,
                1,
                vec![
                    Transition::new(states[0], 0.5, vec![0.25]),
                    Transition::new(to, 0.5, vec![1.5]),
                ],
            );
        }
        let obj = Objective::new(vec![1.0]);
        let base = relative_value_iteration(&m, &obj, &RviOptions::default()).unwrap();
        for threads in [2usize, 3, 4, 7] {
            let opts =
                RviOptions { solve_threads: threads, shard_min_states: 1, ..Default::default() };
            let sol = relative_value_iteration(&m, &obj, &opts).unwrap();
            assert_eq!(sol.gain.to_bits(), base.gain.to_bits(), "threads={threads}");
            assert_eq!(sol.iterations, base.iterations, "threads={threads}");
            assert_eq!(sol.policy.choices, base.policy.choices, "threads={threads}");
            for (a, b) in sol.bias.iter().zip(&base.bias) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    /// Above-threshold thread requests are capped by the state count, so a
    /// tiny model never pays sharding overhead.
    #[test]
    fn small_models_stay_single_threaded() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![2.0])]);
        let opts = RviOptions { solve_threads: 8, ..Default::default() };
        let sol = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap();
        assert!((sol.gain - 2.0).abs() < 1e-6);
    }

    /// The prioritized (Gauss-Seidel) sweep agrees with the Jacobi path
    /// within tolerance and rejects the racing thread combination.
    #[test]
    fn prioritized_sweep_agrees_and_rejects_threads() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        let c = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
        m.add_action(b, 0, vec![Transition::new(c, 1.0, vec![2.0])]);
        m.add_action(b, 1, vec![Transition::new(a, 1.0, vec![0.5])]);
        m.add_action(c, 0, vec![Transition::new(a, 1.0, vec![3.0])]);
        let obj = Objective::new(vec![1.0]);
        let jacobi = relative_value_iteration(&m, &obj, &RviOptions::default()).unwrap();
        let opts = RviOptions { prioritized_sweep: true, ..Default::default() };
        let gs = relative_value_iteration(&m, &obj, &opts).unwrap();
        assert!((gs.gain - jacobi.gain).abs() < 1e-6, "{} vs {}", gs.gain, jacobi.gain);
        assert_eq!(gs.policy.choices, jacobi.policy.choices);

        let bad = RviOptions { prioritized_sweep: true, solve_threads: 2, ..Default::default() };
        let err = relative_value_iteration(&m, &obj, &bad).unwrap_err();
        assert!(
            matches!(err, MdpError::BadOption { what: "solve_threads with prioritized_sweep", .. }),
            "{err:?}"
        );
    }

    /// A pre-raised cancel flag stops a sharded solve too (the flag is
    /// polled inside shard sweeps as well as at iteration boundaries).
    #[test]
    fn sharded_solve_honours_cancellation() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![3.0])]);
        let flag = Arc::new(AtomicBool::new(true));
        let opts = RviOptions {
            solve_threads: 2,
            shard_min_states: 1,
            budget: SolveBudget::unlimited().with_cancel(flag),
            ..Default::default()
        };
        let err = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap_err();
        assert!(err.is_cancellation(), "{err:?}");
    }

    /// A cancel flag raised *while* a sharded solve is running must stop
    /// it from inside the shard workers (the chunk-granularity poll), not
    /// only at the next iteration boundary. `tolerance: 0.0` makes
    /// convergence impossible, so cancellation is the only way out.
    #[test]
    fn sharded_solve_cancels_mid_solve() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let n = 3000;
        let mut m = Mdp::new(1);
        for _ in 0..n {
            m.add_state();
        }
        for s in 0..n {
            m.add_action(
                s,
                0,
                vec![
                    Transition::new((s + 1) % n, 0.9, vec![(s % 7) as f64]),
                    Transition::new(0, 0.1, vec![0.0]),
                ],
            );
        }
        let flag = Arc::new(AtomicBool::new(false));
        let raiser = {
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                flag.store(true, Ordering::SeqCst);
            })
        };
        let opts = RviOptions {
            solve_threads: 2,
            shard_min_states: 1,
            tolerance: 0.0,
            max_iterations: usize::MAX,
            budget: SolveBudget::unlimited().with_cancel(flag),
            ..Default::default()
        };
        let err = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap_err();
        raiser.join().unwrap();
        assert!(err.is_cancellation(), "{err:?}");
    }
}
