//! Relative value iteration for undiscounted average-reward (gain-optimal)
//! MDPs.
//!
//! This is the workhorse solver of the crate: the paper's mining models are
//! unichain average-reward MDPs ("undiscounted average reward MDP" per
//! Sapirshtein et al.), where the quantity of interest is the long-run
//! expected reward per step (the *gain*).
//!
//! To guarantee convergence on periodic chains (common in mining models,
//! where deterministic reset cycles occur), the solver applies the standard
//! aperiodicity transform: each action is mixed with a probability-`tau`
//! self-loop of zero reward. The transform scales the gain by `(1 - tau)`
//! and leaves optimal policies unchanged; the reported gain is rescaled back.
//!
//! The Bellman sweeps run on a [`CompiledMdp`]: rewards are collapsed to one
//! expected scalar per arm up front ([`CompiledMdp::scalarize`]) and the
//! inner loop walks flat probability/destination arrays. The low-level
//! [`rvi_kernel`] works entirely in caller-owned buffers — zero heap
//! allocation per iteration *and* per solve — which is what lets the ratio
//! solver warm-start dozens of bisection steps in place.

use crate::budget::SolveBudget;
use crate::compiled::CompiledMdp;
use crate::error::MdpError;
use crate::model::{Mdp, Objective, Policy};

/// Options for [`relative_value_iteration`].
#[derive(Debug, Clone)]
pub struct RviOptions {
    /// Stop when the span seminorm of successive bias differences falls
    /// below this; the reported gain is then within `tolerance` of optimal.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Aperiodicity mixing weight in `[0, 1)`. `0` disables the transform.
    pub aperiodicity_tau: f64,
    /// Optional initial bias vector (warm start), e.g. from a previous solve
    /// of a nearby model. Must have one entry per state if present.
    pub warm_start: Option<Vec<f64>>,
    /// Wall-clock deadline and cooperative cancellation, checked at each
    /// iteration boundary. Unlimited by default.
    pub budget: SolveBudget,
}

impl Default for RviOptions {
    fn default() -> Self {
        RviOptions {
            tolerance: 1e-7,
            max_iterations: 2_000_000,
            aperiodicity_tau: 0.05,
            warm_start: None,
            budget: SolveBudget::unlimited(),
        }
    }
}

/// Result of [`relative_value_iteration`].
#[derive(Debug, Clone)]
pub struct RviSolution {
    /// Optimal long-run average reward per step (identical for every start
    /// state under the unichain assumption).
    pub gain: f64,
    /// Relative (bias) values, normalized so `bias[0] == 0`.
    pub bias: Vec<f64>,
    /// A gain-optimal policy.
    pub policy: Policy,
    /// Iterations performed.
    pub iterations: usize,
}

/// Computes the optimal gain of a unichain average-reward MDP.
pub fn relative_value_iteration(
    mdp: &Mdp,
    objective: &Objective,
    opts: &RviOptions,
) -> Result<RviSolution, MdpError> {
    let compiled = CompiledMdp::compile(mdp)?;
    compiled.validate_objective(objective)?;
    let exp_reward = compiled.scalarize(objective);
    relative_value_iteration_compiled(&compiled, &exp_reward, opts)
}

/// [`relative_value_iteration`] on an already-compiled model and
/// pre-scalarized per-arm expected rewards (one entry per global arm, from
/// [`CompiledMdp::scalarize`]). Use this form when solving the same model
/// under many objectives.
pub fn relative_value_iteration_compiled(
    compiled: &CompiledMdp,
    exp_reward: &[f64],
    opts: &RviOptions,
) -> Result<RviSolution, MdpError> {
    let n = compiled.num_states();
    let mut h: Vec<f64> = match &opts.warm_start {
        Some(w) => {
            if w.len() != n {
                return Err(MdpError::Shape { what: "warm start", found: w.len(), expected: n });
            }
            w.clone()
        }
        None => vec![0.0; n],
    };
    let mut h_next = vec![0.0f64; n];
    let mut policy = Policy::zeros(n);
    let (gain, iterations) =
        rvi_kernel(compiled, exp_reward, &mut h, &mut h_next, &mut policy, opts)?;
    Ok(RviSolution { gain, bias: h, policy, iterations })
}

/// The allocation-free RVI core: runs Bellman sweeps entirely inside the
/// caller-owned buffers `h` (bias in/out — pre-fill for a warm start),
/// `h_next` (scratch) and `policy` (out). All three must have one entry per
/// state; `exp_reward` one entry per global arm. On success `h` holds the
/// final bias normalized to `h[0] == 0`.
///
/// `opts.warm_start` is ignored here — the warm start *is* the incoming
/// content of `h`.
pub(crate) fn rvi_kernel(
    compiled: &CompiledMdp,
    exp_reward: &[f64],
    h: &mut Vec<f64>,
    h_next: &mut Vec<f64>,
    policy: &mut Policy,
    opts: &RviOptions,
) -> Result<(f64, usize), MdpError> {
    const SOLVER: &str = "relative_value_iteration";
    let tau = opts.aperiodicity_tau;
    if !(0.0..1.0).contains(&tau) {
        return Err(MdpError::BadOption { what: "aperiodicity_tau", value: tau });
    }
    let n = compiled.num_states();
    let arms = compiled.num_arms();
    for (what, found, expected) in [
        ("bias buffer", h.len(), n),
        ("scratch buffer", h_next.len(), n),
        ("policy buffer", policy.choices.len(), n),
        ("exp_reward", exp_reward.len(), arms),
    ] {
        if found != expected {
            return Err(MdpError::Shape { what, found, expected });
        }
    }
    let one_minus_tau = 1.0 - tau;

    // Span seminorm of the last completed sweep, rescaled to the caller's
    // (untransformed) reward units so it compares directly to `tolerance`.
    let mut last_residual = f64::INFINITY;
    for iter in 0..opts.max_iterations {
        opts.budget.check(SOLVER, iter)?;
        let mut span_lo = f64::INFINITY;
        let mut span_hi = f64::NEG_INFINITY;
        for s in 0..n {
            let hs = h[s];
            let mut best = f64::NEG_INFINITY;
            let mut best_a = 0;
            let arms = compiled.arm_range(s);
            let first_arm = arms.start;
            for arm in arms {
                let (probs, nexts) = compiled.arm_transitions(arm);
                let mut q = exp_reward[arm];
                for (p, &to) in probs.iter().zip(nexts) {
                    q += p * h[to as usize];
                }
                // Aperiodicity transform: blend with a zero-reward self-loop.
                let q = one_minus_tau * q + tau * hs;
                if q > best {
                    best = q;
                    best_a = arm - first_arm;
                }
            }
            h_next[s] = best;
            policy.choices[s] = best_a;
            let d = best - hs;
            span_lo = span_lo.min(d);
            span_hi = span_hi.max(d);
        }
        // Normalize against a reference state to keep the bias bounded.
        let offset = h_next[0];
        for x in h_next.iter_mut() {
            *x -= offset;
        }
        std::mem::swap(h, h_next);

        last_residual = (span_hi - span_lo) / one_minus_tau;
        if span_hi - span_lo < opts.tolerance * one_minus_tau {
            // The per-step gain of the *transformed* chain lies in
            // [span_lo, span_hi]; undo the (1 - tau) reward scaling.
            let gain = 0.5 * (span_lo + span_hi) / one_minus_tau;
            return Ok((gain, iter + 1));
        }
    }
    Err(MdpError::NoConvergence {
        solver: SOLVER,
        iterations: opts.max_iterations,
        residual: last_residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;

    fn solve(m: &Mdp, w: Vec<f64>) -> RviSolution {
        relative_value_iteration(m, &Objective::new(w), &RviOptions::default()).unwrap()
    }

    #[test]
    fn self_loop_gain_is_reward() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![3.5])]);
        let sol = solve(&m, vec![1.0]);
        assert!((sol.gain - 3.5).abs() < 1e-6, "gain {}", sol.gain);
    }

    /// A deterministic 2-cycle with rewards 1 and 3 has gain 2. Without the
    /// aperiodicity transform plain RVI oscillates on this chain.
    #[test]
    fn periodic_two_cycle_converges() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![3.0])]);
        let sol = solve(&m, vec![1.0]);
        assert!((sol.gain - 2.0).abs() < 1e-6, "gain {}", sol.gain);
    }

    /// Choice between a 1-reward self-loop and entering a 2-cycle with
    /// average 2.5: the optimal policy takes the cycle.
    #[test]
    fn prefers_higher_average_cycle() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        let c = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0])]);
        m.add_action(s, 1, vec![Transition::new(c, 1.0, vec![2.0])]);
        m.add_action(c, 0, vec![Transition::new(s, 1.0, vec![3.0])]);
        let sol = solve(&m, vec![1.0]);
        assert_eq!(sol.policy.choices[s], 1);
        assert!((sol.gain - 2.5).abs() < 1e-6, "gain {}", sol.gain);
    }

    /// Two-state chain with symmetric switching: stationary distribution is
    /// (2/3, 1/3) for leave-probabilities (0.1, 0.2); gain = 2/3*r_a + 1/3*r_b
    /// with per-state rewards attached to outgoing transitions.
    #[test]
    fn stochastic_chain_gain_matches_stationary_average() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(
            a,
            0,
            vec![Transition::new(a, 0.9, vec![6.0]), Transition::new(b, 0.1, vec![6.0])],
        );
        m.add_action(
            b,
            0,
            vec![Transition::new(b, 0.8, vec![0.0]), Transition::new(a, 0.2, vec![0.0])],
        );
        let sol = solve(&m, vec![1.0]);
        assert!((sol.gain - 4.0).abs() < 1e-5, "gain {}", sol.gain);
    }

    #[test]
    fn vector_rewards_scalarized_by_objective() {
        let mut m = Mdp::new(2);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0, 10.0])]);
        let sol = solve(&m, vec![0.0, 1.0]);
        assert!((sol.gain - 10.0).abs() < 1e-6);
        let sol = solve(&m, vec![1.0, -0.5]);
        assert!((sol.gain + 4.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_accepted_and_converges() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![3.0])]);
        let cold = solve(&m, vec![1.0]);
        let opts = RviOptions { warm_start: Some(cold.bias.clone()), ..Default::default() };
        let warm = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap();
        assert!((warm.gain - 2.0).abs() < 1e-6);
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn bias_is_normalized_to_reference_state() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![0.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![2.0])]);
        let sol = solve(&m, vec![1.0]);
        assert_eq!(sol.bias[0], 0.0);
    }

    #[test]
    fn wrong_length_warm_start_is_a_shape_error() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0])]);
        let opts = RviOptions { warm_start: Some(vec![0.0; 5]), ..Default::default() };
        let err = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap_err();
        assert_eq!(err, MdpError::Shape { what: "warm start", found: 5, expected: 1 });
    }

    #[test]
    fn bad_tau_is_a_structured_error() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0])]);
        for tau in [-0.1, 1.0, 1.5, f64::NAN] {
            let opts = RviOptions { aperiodicity_tau: tau, ..Default::default() };
            let err = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap_err();
            assert!(
                matches!(err, MdpError::BadOption { what: "aperiodicity_tau", .. }),
                "tau={tau}: {err:?}"
            );
        }
    }

    /// Exhausting the iteration budget reports the actual span-seminorm
    /// residual, not NaN (the retry policy keys its escalation off it).
    #[test]
    fn no_convergence_carries_finite_residual() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![3.0])]);
        let opts = RviOptions { max_iterations: 3, ..Default::default() };
        let err = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap_err();
        match err {
            MdpError::NoConvergence { iterations, residual, .. } => {
                assert_eq!(iterations, 3);
                assert!(residual.is_finite() && residual > 0.0, "residual {residual}");
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn pre_expired_deadline_stops_the_solve() {
        use crate::budget::SolveBudget;
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0])]);
        let opts = RviOptions {
            budget: SolveBudget::with_timeout(std::time::Duration::ZERO),
            ..Default::default()
        };
        std::thread::sleep(std::time::Duration::from_millis(2));
        let err = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap_err();
        assert!(matches!(err, MdpError::DeadlineExceeded { .. }), "{err:?}");
    }

    #[test]
    fn raised_cancel_flag_stops_the_solve() {
        use crate::budget::SolveBudget;
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0])]);
        let flag = Arc::new(AtomicBool::new(true));
        let opts =
            RviOptions { budget: SolveBudget::unlimited().with_cancel(flag), ..Default::default() };
        let err = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap_err();
        assert!(err.is_cancellation(), "{err:?}");
    }

    /// The compiled entry point solves the same model under two objectives
    /// without recompiling, and agrees with the front-door call.
    #[test]
    fn compiled_entry_point_reuses_model() {
        let mut m = Mdp::new(2);
        let s = m.add_state();
        let c = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0, 0.0])]);
        m.add_action(s, 1, vec![Transition::new(c, 1.0, vec![2.0, 1.0])]);
        m.add_action(c, 0, vec![Transition::new(s, 1.0, vec![3.0, 0.5])]);
        let compiled = CompiledMdp::compile(&m).unwrap();
        let opts = RviOptions::default();
        for weights in [vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, -2.0]] {
            let obj = Objective::new(weights);
            let exp = compiled.scalarize(&obj);
            let fast = relative_value_iteration_compiled(&compiled, &exp, &opts).unwrap();
            let front = relative_value_iteration(&m, &obj, &opts).unwrap();
            assert!((fast.gain - front.gain).abs() < 1e-12);
            assert_eq!(fast.policy, front.policy);
        }
    }
}
