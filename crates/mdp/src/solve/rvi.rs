//! Relative value iteration for undiscounted average-reward (gain-optimal)
//! MDPs.
//!
//! This is the workhorse solver of the crate: the paper's mining models are
//! unichain average-reward MDPs ("undiscounted average reward MDP" per
//! Sapirshtein et al.), where the quantity of interest is the long-run
//! expected reward per step (the *gain*).
//!
//! To guarantee convergence on periodic chains (common in mining models,
//! where deterministic reset cycles occur), the solver applies the standard
//! aperiodicity transform: each action is mixed with a probability-`tau`
//! self-loop of zero reward. The transform scales the gain by `(1 - tau)`
//! and leaves optimal policies unchanged; the reported gain is rescaled back.

use crate::error::MdpError;
use crate::model::{Mdp, Objective, Policy};

/// Options for [`relative_value_iteration`].
#[derive(Debug, Clone)]
pub struct RviOptions {
    /// Stop when the span seminorm of successive bias differences falls
    /// below this; the reported gain is then within `tolerance` of optimal.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Aperiodicity mixing weight in `[0, 1)`. `0` disables the transform.
    pub aperiodicity_tau: f64,
    /// Optional initial bias vector (warm start), e.g. from a previous solve
    /// of a nearby model. Must have one entry per state if present.
    pub warm_start: Option<Vec<f64>>,
}

impl Default for RviOptions {
    fn default() -> Self {
        RviOptions {
            tolerance: 1e-7,
            max_iterations: 2_000_000,
            aperiodicity_tau: 0.05,
            warm_start: None,
        }
    }
}

/// Result of [`relative_value_iteration`].
#[derive(Debug, Clone)]
pub struct RviSolution {
    /// Optimal long-run average reward per step (identical for every start
    /// state under the unichain assumption).
    pub gain: f64,
    /// Relative (bias) values, normalized so `bias[0] == 0`.
    pub bias: Vec<f64>,
    /// A gain-optimal policy.
    pub policy: Policy,
    /// Iterations performed.
    pub iterations: usize,
}

/// Computes the optimal gain of a unichain average-reward MDP.
pub fn relative_value_iteration(
    mdp: &Mdp,
    objective: &Objective,
    opts: &RviOptions,
) -> Result<RviSolution, MdpError> {
    mdp.validate()?;
    objective.validate(mdp)?;
    let tau = opts.aperiodicity_tau;
    assert!((0.0..1.0).contains(&tau), "aperiodicity_tau must be in [0,1), got {tau}");

    let n = mdp.num_states();
    let mut h: Vec<f64> = match &opts.warm_start {
        Some(w) => {
            assert_eq!(w.len(), n, "warm start has wrong length");
            w.clone()
        }
        None => vec![0.0; n],
    };
    let mut h_next = vec![0.0f64; n];
    let mut policy = Policy::zeros(n);

    // Pre-scalarize rewards: expected immediate reward per (state, action).
    // The transition structure is reused every iteration, so scalarizing once
    // up front removes the dot product from the hot loop.
    let expected_reward: Vec<Vec<f64>> = (0..n)
        .map(|s| {
            mdp.actions(s)
                .iter()
                .map(|arm| {
                    arm.transitions
                        .iter()
                        .map(|t| t.prob * objective.scalarize(&t.reward))
                        .sum()
                })
                .collect()
        })
        .collect();

    for iter in 0..opts.max_iterations {
        let mut span_lo = f64::INFINITY;
        let mut span_hi = f64::NEG_INFINITY;
        for s in 0..n {
            let mut best = f64::NEG_INFINITY;
            let mut best_a = 0;
            for (a, arm) in mdp.actions(s).iter().enumerate() {
                let mut q = expected_reward[s][a];
                for t in &arm.transitions {
                    q += t.prob * h[t.to];
                }
                // Aperiodicity transform: blend with a zero-reward self-loop.
                let q = (1.0 - tau) * q + tau * h[s];
                if q > best {
                    best = q;
                    best_a = a;
                }
            }
            h_next[s] = best;
            policy.choices[s] = best_a;
            let d = best - h[s];
            span_lo = span_lo.min(d);
            span_hi = span_hi.max(d);
        }
        // Normalize against a reference state to keep the bias bounded.
        let offset = h_next[0];
        for x in h_next.iter_mut() {
            *x -= offset;
        }
        std::mem::swap(&mut h, &mut h_next);

        if span_hi - span_lo < opts.tolerance * (1.0 - tau) {
            // The per-step gain of the *transformed* chain lies in
            // [span_lo, span_hi]; undo the (1 - tau) reward scaling.
            let gain = 0.5 * (span_lo + span_hi) / (1.0 - tau);
            return Ok(RviSolution { gain, bias: h, policy, iterations: iter + 1 });
        }
    }
    Err(MdpError::NoConvergence {
        solver: "relative_value_iteration",
        iterations: opts.max_iterations,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;

    fn solve(m: &Mdp, w: Vec<f64>) -> RviSolution {
        relative_value_iteration(m, &Objective::new(w), &RviOptions::default()).unwrap()
    }

    #[test]
    fn self_loop_gain_is_reward() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![3.5])]);
        let sol = solve(&m, vec![1.0]);
        assert!((sol.gain - 3.5).abs() < 1e-6, "gain {}", sol.gain);
    }

    /// A deterministic 2-cycle with rewards 1 and 3 has gain 2. Without the
    /// aperiodicity transform plain RVI oscillates on this chain.
    #[test]
    fn periodic_two_cycle_converges() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![3.0])]);
        let sol = solve(&m, vec![1.0]);
        assert!((sol.gain - 2.0).abs() < 1e-6, "gain {}", sol.gain);
    }

    /// Choice between a 1-reward self-loop and entering a 2-cycle with
    /// average 2.5: the optimal policy takes the cycle.
    #[test]
    fn prefers_higher_average_cycle() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        let c = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0])]);
        m.add_action(s, 1, vec![Transition::new(c, 1.0, vec![2.0])]);
        m.add_action(c, 0, vec![Transition::new(s, 1.0, vec![3.0])]);
        let sol = solve(&m, vec![1.0]);
        assert_eq!(sol.policy.choices[s], 1);
        assert!((sol.gain - 2.5).abs() < 1e-6, "gain {}", sol.gain);
    }

    /// Two-state chain with symmetric switching: stationary distribution is
    /// (2/3, 1/3) for leave-probabilities (0.1, 0.2); gain = 2/3*r_a + 1/3*r_b
    /// with per-state rewards attached to outgoing transitions.
    #[test]
    fn stochastic_chain_gain_matches_stationary_average() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(
            a,
            0,
            vec![Transition::new(a, 0.9, vec![6.0]), Transition::new(b, 0.1, vec![6.0])],
        );
        m.add_action(
            b,
            0,
            vec![Transition::new(b, 0.8, vec![0.0]), Transition::new(a, 0.2, vec![0.0])],
        );
        let sol = solve(&m, vec![1.0]);
        assert!((sol.gain - 4.0).abs() < 1e-5, "gain {}", sol.gain);
    }

    #[test]
    fn vector_rewards_scalarized_by_objective() {
        let mut m = Mdp::new(2);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0, 10.0])]);
        let sol = solve(&m, vec![0.0, 1.0]);
        assert!((sol.gain - 10.0).abs() < 1e-6);
        let sol = solve(&m, vec![1.0, -0.5]);
        assert!((sol.gain + 4.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_accepted_and_converges() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![3.0])]);
        let cold = solve(&m, vec![1.0]);
        let opts = RviOptions { warm_start: Some(cold.bias.clone()), ..Default::default() };
        let warm = relative_value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap();
        assert!((warm.gain - 2.0).abs() < 1e-6);
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn bias_is_normalized_to_reference_state() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![0.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![2.0])]);
        let sol = solve(&m, vec![1.0]);
        assert_eq!(sol.bias[0], 0.0);
    }
}
