//! Nested-layout reference solvers.
//!
//! These are the original implementations of the main solvers, operating
//! directly on the builder-facing [`Mdp`] representation (`Vec<Vec<ActionArm>>`
//! with per-transition reward vectors). The production solvers in
//! [`rvi`](crate::solve::rvi), [`ratio`](crate::solve::ratio),
//! [`value_iteration`](crate::solve::value_iteration) and
//! [`eval`](crate::solve::eval) now run on the CSR-flattened
//! [`CompiledMdp`](crate::compiled::CompiledMdp); the nested versions are kept
//! for two jobs:
//!
//! 1. **Differential testing** — the property tests assert that compiled and
//!    nested solvers agree on gains, values, rates and ratios to tight
//!    tolerances on randomly generated models.
//! 2. **Baseline timing** — `bvc-bench`'s `sweep_timing` binary measures the
//!    compiled path's speedup against these as the before/after comparison.
//!
//! The algorithms are identical to their compiled counterparts; only the
//! memory layout of the model differs. Do not "optimize" these — their value
//! is precisely that they stay naive about layout.

use crate::error::MdpError;
use crate::model::{Mdp, Objective, Policy};
use crate::solve::eval::{EvalOptions, PolicyEvaluation};
use crate::solve::ratio::{RatioOptions, RatioSolution};
use crate::solve::rvi::{RviOptions, RviSolution};
use crate::solve::value_iteration::{ViOptions, ViSolution};

/// Nested-layout relative value iteration (see
/// [`relative_value_iteration`](crate::solve::rvi::relative_value_iteration)).
pub fn relative_value_iteration_nested(
    mdp: &Mdp,
    objective: &Objective,
    opts: &RviOptions,
) -> Result<RviSolution, MdpError> {
    mdp.validate()?;
    objective.validate(mdp)?;
    let tau = opts.aperiodicity_tau;
    assert!((0.0..1.0).contains(&tau), "aperiodicity_tau must be in [0,1), got {tau}");

    let n = mdp.num_states();
    let mut h: Vec<f64> = match &opts.warm_start {
        Some(w) => {
            assert_eq!(w.len(), n, "warm start has wrong length");
            w.clone()
        }
        None => vec![0.0; n],
    };
    let mut h_next = vec![0.0f64; n];
    let mut policy = Policy::zeros(n);

    // Pre-scalarize rewards: expected immediate reward per (state, action).
    let expected_reward: Vec<Vec<f64>> = (0..n)
        .map(|s| {
            mdp.actions(s)
                .iter()
                .map(|arm| {
                    arm.transitions.iter().map(|t| t.prob * objective.scalarize(&t.reward)).sum()
                })
                .collect()
        })
        .collect();

    for iter in 0..opts.max_iterations {
        let mut span_lo = f64::INFINITY;
        let mut span_hi = f64::NEG_INFINITY;
        for s in 0..n {
            let mut best = f64::NEG_INFINITY;
            let mut best_a = 0;
            for (a, arm) in mdp.actions(s).iter().enumerate() {
                let mut q = expected_reward[s][a];
                for t in &arm.transitions {
                    q += t.prob * h[t.to];
                }
                let q = (1.0 - tau) * q + tau * h[s];
                if q > best {
                    best = q;
                    best_a = a;
                }
            }
            h_next[s] = best;
            policy.choices[s] = best_a;
            let d = best - h[s];
            span_lo = span_lo.min(d);
            span_hi = span_hi.max(d);
        }
        let offset = h_next[0];
        for x in h_next.iter_mut() {
            *x -= offset;
        }
        std::mem::swap(&mut h, &mut h_next);

        if span_hi - span_lo < opts.tolerance * (1.0 - tau) {
            let gain = 0.5 * (span_lo + span_hi) / (1.0 - tau);
            return Ok(RviSolution { gain, bias: h, policy, iterations: iter + 1 });
        }
    }
    Err(MdpError::NoConvergence {
        solver: "relative_value_iteration_nested",
        iterations: opts.max_iterations,
        residual: f64::NAN,
    })
}

/// Nested-layout discounted value iteration (see
/// [`value_iteration`](crate::solve::value_iteration::value_iteration)).
pub fn value_iteration_nested(
    mdp: &Mdp,
    objective: &Objective,
    opts: &ViOptions,
) -> Result<ViSolution, MdpError> {
    mdp.validate()?;
    objective.validate(mdp)?;
    assert!(
        opts.discount > 0.0 && opts.discount < 1.0,
        "discount must be in (0,1), got {}",
        opts.discount
    );

    let n = mdp.num_states();
    let mut v = vec![0.0f64; n];
    let mut v_next = vec![0.0f64; n];
    let mut policy = Policy::zeros(n);

    for iter in 0..opts.max_iterations {
        let mut delta = 0.0f64;
        for s in 0..n {
            let mut best = f64::NEG_INFINITY;
            let mut best_a = 0;
            for (a, arm) in mdp.actions(s).iter().enumerate() {
                let mut q = 0.0;
                for t in &arm.transitions {
                    q += t.prob * (objective.scalarize(&t.reward) + opts.discount * v[t.to]);
                }
                if q > best {
                    best = q;
                    best_a = a;
                }
            }
            v_next[s] = best;
            policy.choices[s] = best_a;
            delta = delta.max((best - v[s]).abs());
        }
        std::mem::swap(&mut v, &mut v_next);
        if delta < opts.tolerance {
            return Ok(ViSolution { values: v, policy, iterations: iter + 1 });
        }
    }
    Err(MdpError::NoConvergence {
        solver: "value_iteration_nested",
        iterations: opts.max_iterations,
        residual: f64::NAN,
    })
}

/// Nested-layout fixed-policy evaluation (see
/// [`evaluate_policy`](crate::solve::eval::evaluate_policy)).
pub fn evaluate_policy_nested(
    mdp: &Mdp,
    policy: &Policy,
    opts: &EvalOptions,
) -> Result<PolicyEvaluation, MdpError> {
    mdp.validate()?;
    mdp.validate_policy(policy)?;
    assert!((0.0..1.0).contains(&opts.damping), "damping must be in [0,1)");

    let n = mdp.num_states();
    let mut pi = vec![1.0 / n as f64; n];
    let mut pi_next = vec![0.0f64; n];
    let d = opts.damping;

    let mut iterations = 0;
    for iter in 0..opts.max_iterations {
        iterations = iter + 1;
        for x in pi_next.iter_mut() {
            *x = 0.0;
        }
        for s in 0..n {
            let mass = pi[s];
            if mass <= 0.0 {
                continue;
            }
            let arm = &mdp.actions(s)[policy.choices[s]];
            for t in &arm.transitions {
                pi_next[t.to] += (1.0 - d) * mass * t.prob;
            }
            pi_next[s] += d * mass;
        }
        let delta: f64 = pi.iter().zip(&pi_next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut pi_next);
        if delta < opts.tolerance {
            break;
        }
        if iter + 1 == opts.max_iterations {
            return Err(MdpError::NoConvergence {
                solver: "evaluate_policy_nested",
                iterations: opts.max_iterations,
                residual: delta,
            });
        }
    }

    let total: f64 = pi.iter().sum();
    for x in pi.iter_mut() {
        *x /= total;
    }

    let k = mdp.reward_components();
    let mut rates = vec![0.0f64; k];
    for (s, &weight) in pi.iter().enumerate() {
        let arm = &mdp.actions(s)[policy.choices[s]];
        for t in &arm.transitions {
            for (c, r) in t.reward.iter().enumerate() {
                rates[c] += weight * t.prob * r;
            }
        }
    }

    Ok(PolicyEvaluation { stationary: pi, component_rates: rates, iterations })
}

/// Nested-layout ratio maximization (see
/// [`maximize_ratio`](crate::solve::ratio::maximize_ratio)): every bisection
/// step rebuilds the transformed objective and re-scalarizes all rewards
/// inside the inner solver.
pub fn maximize_ratio_nested(
    mdp: &Mdp,
    numerator: &Objective,
    denominator: &Objective,
    opts: &RatioOptions,
) -> Result<RatioSolution, MdpError> {
    mdp.validate()?;
    numerator.validate(mdp)?;
    denominator.validate(mdp)?;

    let eps = opts.tolerance * 0.1;
    let inner_opts = opts.rvi.clone();
    let mut inner_solves = 0usize;
    let mut warm: Option<Vec<f64>> = inner_opts.warm_start.clone();

    let solve_at = |rho: f64, warm: &mut Option<Vec<f64>>, solves: &mut usize| {
        let w = numerator.minus_scaled(denominator, rho);
        let mut o = inner_opts.clone();
        o.warm_start = warm.clone();
        let sol = relative_value_iteration_nested(mdp, &w, &o)?;
        *warm = Some(sol.bias.clone());
        *solves += 1;
        Ok::<_, MdpError>(sol)
    };

    let mut lo = 0.0f64;
    let sol0 = solve_at(0.0, &mut warm, &mut inner_solves)?;
    if sol0.gain <= eps {
        return Ok(RatioSolution { value: 0.0, policy: sol0.policy, inner_solves });
    }
    let mut lo_policy = sol0.policy;

    let mut hi = opts.initial_hi.max(opts.tolerance);
    loop {
        let sol = solve_at(hi, &mut warm, &mut inner_solves)?;
        if sol.gain <= eps {
            break;
        }
        lo = hi;
        lo_policy = sol.policy;
        hi *= 2.0;
        if hi >= 1e12 {
            return Err(MdpError::UnboundedRatio { reached: hi });
        }
    }

    while hi - lo > opts.tolerance {
        let mid = 0.5 * (lo + hi);
        let sol = solve_at(mid, &mut warm, &mut inner_solves)?;
        if sol.gain > eps {
            lo = mid;
            lo_policy = sol.policy;
        } else {
            hi = mid;
        }
    }

    Ok(RatioSolution { value: 0.5 * (lo + hi), policy: lo_policy, inner_solves })
}
