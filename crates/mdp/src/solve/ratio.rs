//! Ratio-objective solving: maximize `E[N] / E[D]` over stationary policies.
//!
//! The paper's relative-revenue objective (Eq. 1) and orphan-rate objective
//! (Eq. 3) are ratios of long-run accumulation rates, which plain dynamic
//! programming cannot maximize directly. Following Sapirshtein et al.
//! ("Optimal Selfish Mining Strategies in Bitcoin"), we solve a family of
//! standard average-reward MDPs with the transformed scalar reward
//! `w_rho = N - rho * D` and search for the critical `rho*`.
//!
//! Let `g(rho)` be the optimal gain under `w_rho`. Each policy contributes a
//! line `avg(N) - rho * avg(D)`, so `g` is convex, piecewise linear and
//! nonincreasing (given `avg(D) >= 0` for every policy). If every policy with
//! `avg(N) > 0` also has `avg(D) > 0` (true for all models in this crate's
//! dependents: an attacker block must end up either locked or orphaned), then
//!
//! * for `rho < rho*`, `g(rho) > 0`;
//! * for `rho >= rho*`, `g(rho) <= 0` — exactly `0` when null policies
//!   (with `avg(N) = avg(D) = 0`) exist, e.g. a strategy that never mines.
//!
//! `rho*` — the optimal ratio — is therefore the left edge of the set
//! `{rho : g(rho) <= eps}`, found by bisection.
//!
//! ## The compiled fast path
//!
//! The model is compiled to CSR form **once**. Scalarization is linear in the
//! objective, so the per-arm expected rewards of `w_rho` are
//! `exp_num[a] − rho · exp_den[a]`: each bisection step re-scalarizes *in
//! place* with one O(arms) vector combine
//! ([`CompiledMdp::combine_scalarized_into`]) and never re-reads the
//! per-transition reward buffer. Every inner solve runs [`rvi_kernel`] inside
//! one persistent set of buffers, warm-starting from the previous step's bias
//! vector — after setup, the whole bisection performs no heap allocation
//! except recording a new incumbent policy.

use crate::compiled::CompiledMdp;
use crate::error::MdpError;
use crate::model::{Mdp, Objective, Policy};
use crate::solve::rvi::{rvi_kernel, RviOptions};

/// Options for [`maximize_ratio`].
#[derive(Debug, Clone)]
pub struct RatioOptions {
    /// Bisection stops when the bracketing interval is narrower than this.
    /// The paper's stated precision is `1e-4`; we default one decade tighter.
    pub tolerance: f64,
    /// Inner average-reward solver options. Warm starts are managed
    /// internally across bisection steps; any user-provided warm start seeds
    /// only the first step.
    pub rvi: RviOptions,
    /// Initial upper bound for the ratio. Doubled until `g(hi) <= 0` holds,
    /// so this is a hint, not a hard cap.
    pub initial_hi: f64,
}

impl Default for RatioOptions {
    fn default() -> Self {
        RatioOptions { tolerance: 1e-5, rvi: RviOptions::default(), initial_hi: 1.0 }
    }
}

/// Result of [`maximize_ratio`].
#[derive(Debug, Clone)]
pub struct RatioSolution {
    /// The maximal ratio `E[N]/E[D]` (within tolerance).
    pub value: f64,
    /// A policy attaining the ratio: the optimal policy of the transformed
    /// MDP at the lower bracket (where the gain is still positive), i.e. a
    /// policy whose own ratio is within tolerance of optimal.
    pub policy: Policy,
    /// Number of inner average-reward solves performed.
    pub inner_solves: usize,
}

/// Maximizes `E[N]/E[D]` where `N` and `D` are linear functionals of the
/// reward components (`numerator` and `denominator` weights).
///
/// Requirements (asserted only in documentation; violations surface as
/// nonsensical results): both functionals must be nonnegative along every
/// transition actually taken, and every policy with positive `N`-rate must
/// have positive `D`-rate.
pub fn maximize_ratio(
    mdp: &Mdp,
    numerator: &Objective,
    denominator: &Objective,
    opts: &RatioOptions,
) -> Result<RatioSolution, MdpError> {
    let compiled = CompiledMdp::compile(mdp)?;
    compiled.validate_objective(numerator)?;
    compiled.validate_objective(denominator)?;
    maximize_ratio_compiled(&compiled, numerator, denominator, opts)
}

/// [`maximize_ratio`] on an already-compiled model. Use this form when
/// solving several ratio objectives over the same model.
pub fn maximize_ratio_compiled(
    compiled: &CompiledMdp,
    numerator: &Objective,
    denominator: &Objective,
    opts: &RatioOptions,
) -> Result<RatioSolution, MdpError> {
    // The inner gain must be resolved finer than the bisection step times the
    // denominator scale; one decade finer than the outer tolerance works for
    // the unit-rate denominators used throughout this project.
    let eps = opts.tolerance * 0.1;
    let n = compiled.num_states();

    // Scalarize both functionals once; every rho after this is a vector
    // combine over these two arrays. Both passes shard across the inner
    // solver's thread budget on large models (bit-identical either way).
    let solve_threads = opts.rvi.solve_threads;
    let mut exp_num = Vec::new();
    let mut exp_den = Vec::new();
    compiled.scalarize_into_threaded(numerator, &mut exp_num, solve_threads);
    compiled.scalarize_into_threaded(denominator, &mut exp_den, solve_threads);
    let mut exp_w = vec![0.0f64; compiled.num_arms()];

    // Persistent solver state. `h` carries the bias across bisection steps
    // (warm start); nearby rho values have nearby bias vectors, so each
    // inner solve converges in a fraction of a cold start's iterations.
    let mut h: Vec<f64> = match &opts.rvi.warm_start {
        Some(w) => {
            if w.len() != n {
                return Err(MdpError::Shape { what: "warm start", found: w.len(), expected: n });
            }
            w.clone()
        }
        None => vec![0.0; n],
    };
    let mut h_next = vec![0.0f64; n];
    let mut policy = Policy::zeros(n);
    let inner_opts = RviOptions { warm_start: None, ..opts.rvi.clone() };
    let mut inner_solves = 0usize;

    let mut solve_at = |rho: f64,
                        exp_w: &mut Vec<f64>,
                        h: &mut Vec<f64>,
                        h_next: &mut Vec<f64>,
                        policy: &mut Policy|
     -> Result<f64, MdpError> {
        CompiledMdp::combine_scalarized_into_threaded(
            &exp_num,
            &exp_den,
            rho,
            exp_w,
            solve_threads,
        );
        let (gain, _iters) = rvi_kernel(compiled, exp_w, h, h_next, policy, &inner_opts)?;
        inner_solves += 1;
        Ok(gain)
    };

    // Establish the bracket [lo, hi] with g(lo) > eps (if any) and
    // g(hi) <= eps.
    let mut lo = 0.0f64;
    let gain0 = solve_at(0.0, &mut exp_w, &mut h, &mut h_next, &mut policy)?;
    if gain0 <= eps {
        // Even at rho = 0 the best achievable N-rate is ~0: the ratio is 0.
        return Ok(RatioSolution { value: 0.0, policy, inner_solves });
    }
    let mut lo_policy = policy.clone();

    let mut hi = opts.initial_hi.max(opts.tolerance);
    loop {
        let gain = solve_at(hi, &mut exp_w, &mut h, &mut h_next, &mut policy)?;
        if gain <= eps {
            break;
        }
        lo = hi;
        lo_policy.clone_from(&policy);
        hi *= 2.0;
        if hi >= 1e12 {
            return Err(MdpError::UnboundedRatio { reached: hi });
        }
    }

    while hi - lo > opts.tolerance {
        let mid = 0.5 * (lo + hi);
        let gain = solve_at(mid, &mut exp_w, &mut h, &mut h_next, &mut policy)?;
        if gain > eps {
            lo = mid;
            lo_policy.clone_from(&policy);
        } else {
            hi = mid;
        }
    }

    Ok(RatioSolution { value: 0.5 * (lo + hi), policy: lo_policy, inner_solves })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;

    /// Two self-loop actions with (N, D) rates (1, 2) and (3, 10): ratios
    /// 0.5 and 0.3 — the solver must prefer the smaller-N, larger-ratio arm.
    #[test]
    fn picks_larger_ratio_not_larger_numerator() {
        let mut m = Mdp::new(2);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0, 2.0])]);
        m.add_action(s, 1, vec![Transition::new(s, 1.0, vec![3.0, 10.0])]);
        let n = Objective::component(0, 2);
        let d = Objective::component(1, 2);
        let sol = maximize_ratio(&m, &n, &d, &RatioOptions::default()).unwrap();
        assert!((sol.value - 0.5).abs() < 1e-4, "value {}", sol.value);
        assert_eq!(sol.policy.choices[s], 0);
    }

    /// With a null action (N = D = 0) present, g(rho) plateaus at zero; the
    /// bisection must still locate the active arm's ratio.
    #[test]
    fn null_policy_plateau_is_handled() {
        let mut m = Mdp::new(2);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![0.0, 0.0])]);
        m.add_action(s, 1, vec![Transition::new(s, 1.0, vec![0.7, 1.0])]);
        let n = Objective::component(0, 2);
        let d = Objective::component(1, 2);
        let sol = maximize_ratio(&m, &n, &d, &RatioOptions::default()).unwrap();
        assert!((sol.value - 0.7).abs() < 1e-4, "value {}", sol.value);
        assert_eq!(sol.policy.choices[s], 1);
    }

    /// All-zero numerator: ratio is zero, and the solver exits early.
    #[test]
    fn zero_numerator_returns_zero() {
        let mut m = Mdp::new(2);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![0.0, 1.0])]);
        let n = Objective::component(0, 2);
        let d = Objective::component(1, 2);
        let sol = maximize_ratio(&m, &n, &d, &RatioOptions::default()).unwrap();
        assert_eq!(sol.value, 0.0);
        assert_eq!(sol.inner_solves, 1);
    }

    /// Ratio larger than the default initial bracket: the doubling phase
    /// must extend the bracket.
    #[test]
    fn bracket_expands_beyond_initial_hi() {
        let mut m = Mdp::new(2);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![5.0, 1.0])]);
        let n = Objective::component(0, 2);
        let d = Objective::component(1, 2);
        let sol = maximize_ratio(&m, &n, &d, &RatioOptions::default()).unwrap();
        assert!((sol.value - 5.0).abs() < 1e-4, "value {}", sol.value);
    }

    /// A stochastic example: action loops through a two-step cycle earning
    /// N on one leg and D on both; ratio = 1/2.
    #[test]
    fn cycle_ratio() {
        let mut m = Mdp::new(2);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0, 1.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![0.0, 1.0])]);
        let n = Objective::component(0, 2);
        let d = Objective::component(1, 2);
        let sol = maximize_ratio(&m, &n, &d, &RatioOptions::default()).unwrap();
        assert!((sol.value - 0.5).abs() < 1e-4, "value {}", sol.value);
    }

    #[test]
    fn wrong_length_warm_start_is_a_shape_error() {
        let mut m = Mdp::new(2);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0, 2.0])]);
        let mut opts = RatioOptions::default();
        opts.rvi.warm_start = Some(vec![0.0; 3]);
        let err =
            maximize_ratio(&m, &Objective::component(0, 2), &Objective::component(1, 2), &opts)
                .unwrap_err();
        assert_eq!(err, MdpError::Shape { what: "warm start", found: 3, expected: 1 });
    }

    /// The budget threads through `RatioOptions::rvi` into every inner
    /// solve, so a raised cancel flag aborts the whole bisection.
    #[test]
    fn cancel_flag_aborts_bisection() {
        use crate::budget::SolveBudget;
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let mut m = Mdp::new(2);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0, 2.0])]);
        let mut opts = RatioOptions::default();
        opts.rvi.budget = SolveBudget::unlimited().with_cancel(Arc::new(AtomicBool::new(true)));
        let err =
            maximize_ratio(&m, &Objective::component(0, 2), &Objective::component(1, 2), &opts)
                .unwrap_err();
        assert!(err.is_cancellation(), "{err:?}");
    }

    /// The compiled entry point reuses one compilation across two different
    /// ratio objectives and matches the front door.
    #[test]
    fn compiled_entry_point_matches_front_door() {
        let mut m = Mdp::new(3);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0, 1.0, 0.5])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![0.0, 1.0, 1.0])]);
        m.add_action(b, 1, vec![Transition::new(b, 1.0, vec![0.2, 0.5, 0.1])]);
        let compiled = CompiledMdp::compile(&m).unwrap();
        let opts = RatioOptions::default();
        for (ni, di) in [(0usize, 1usize), (0, 2)] {
            let n = Objective::component(ni, 3);
            let d = Objective::component(di, 3);
            let fast = maximize_ratio_compiled(&compiled, &n, &d, &opts).unwrap();
            let front = maximize_ratio(&m, &n, &d, &opts).unwrap();
            assert!((fast.value - front.value).abs() < 1e-12);
            assert_eq!(fast.policy, front.policy);
        }
    }
}
