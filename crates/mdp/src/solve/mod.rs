//! Solvers: discounted (value/policy iteration), average-reward (relative
//! value iteration), ratio objectives (bisection over transformed rewards),
//! and fixed-policy evaluation.
//!
//! The production solvers run on the CSR-flattened
//! [`CompiledMdp`](crate::compiled::CompiledMdp); [`reference`] keeps the
//! original nested-layout implementations for differential testing and
//! baseline timing.

pub mod avg_pi;
pub mod eval;
pub mod hitting;
pub mod policy_iteration;
pub mod ratio;
pub mod reference;
pub mod rvi;
pub mod simulate;
pub mod value_iteration;

pub use avg_pi::{average_reward_policy_iteration, AvgPiOptions, AvgPiSolution};
pub use eval::{evaluate_policy, EvalOptions, PolicyEvaluation};
pub use hitting::{expected_hitting_time, hitting_probability, HittingOptions};
pub use policy_iteration::{policy_iteration, PiOptions, PiSolution};
pub use ratio::{maximize_ratio, RatioOptions, RatioSolution};
pub use rvi::{relative_value_iteration, RviOptions, RviSolution};
pub use simulate::{sample_path, PathSample, XorShift64};
pub use value_iteration::{value_iteration, ViOptions, ViSolution};
