//! Exact evaluation of a *fixed* policy: stationary distribution and
//! long-run accumulation rate of every reward component.
//!
//! Used to report all of the paper's utility functions (`u1`, `u2`, `u3`)
//! for a single optimal policy, and to cross-check optimizing solvers: the
//! gain reported by [`crate::solve::rvi`] must equal the scalarized
//! component rates of the policy it returns.
//!
//! Not sharded across threads (unlike the RVI kernel): the power-method
//! step `pi <- pi P` is a *scatter* — each state writes probability mass
//! to data-dependent successor indices — so per-thread output slices
//! would overlap. A gather formulation would need the transposed chain,
//! which [`CompiledMdp`] does not store. Policy evaluation runs once per
//! reported cell, so its cost is immaterial next to the solve.

use crate::compiled::CompiledMdp;
use crate::error::MdpError;
use crate::model::{Mdp, Policy};

/// Options for [`evaluate_policy`].
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Stop when the L1 change of the stationary distribution iterate falls
    /// below this.
    pub tolerance: f64,
    /// Iteration budget for the damped power method.
    pub max_iterations: usize,
    /// Damping weight: each step applies `pi <- (1-d) * pi P + d * pi`,
    /// which is the aperiodicity transform for Markov chains. Must be in
    /// `[0, 1)`.
    pub damping: f64,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { tolerance: 1e-12, max_iterations: 5_000_000, damping: 0.05 }
    }
}

/// Result of [`evaluate_policy`].
#[derive(Debug, Clone)]
pub struct PolicyEvaluation {
    /// Stationary distribution of the policy-induced Markov chain
    /// (unichain assumed; this is the chain's unique stationary law).
    pub stationary: Vec<f64>,
    /// Long-run average accumulation per step of every reward component.
    pub component_rates: Vec<f64>,
    /// Iterations performed by the power method.
    pub iterations: usize,
}

impl PolicyEvaluation {
    /// Scalarizes the component rates with arbitrary weights — the gain of
    /// the policy under that objective.
    pub fn rate(&self, weights: &[f64]) -> f64 {
        self.component_rates.iter().zip(weights).map(|(r, w)| r * w).sum()
    }

    /// Convenience: the ratio of two linear functionals of the rates, with
    /// `0/0` defined as `0` (the convention for "never attacks" policies).
    /// Denominator rates below `1e-9` — far under anything meaningful for
    /// per-step rates but comfortably above the transient residue the
    /// damped power iteration can leave on unreachable states — count as
    /// zero.
    pub fn ratio(&self, num_weights: &[f64], den_weights: &[f64]) -> f64 {
        let n = self.rate(num_weights);
        let d = self.rate(den_weights);
        if d.abs() < 1e-9 {
            0.0
        } else {
            n / d
        }
    }
}

/// Computes the stationary distribution and per-component accumulation rates
/// of the Markov chain induced by `policy`.
///
/// The chain is assumed unichain (single recurrent class); the paper's
/// models satisfy this because every strategy returns to the base state in a
/// bounded number of steps.
pub fn evaluate_policy(
    mdp: &Mdp,
    policy: &Policy,
    opts: &EvalOptions,
) -> Result<PolicyEvaluation, MdpError> {
    let compiled = CompiledMdp::compile(mdp)?;
    evaluate_policy_compiled(&compiled, policy, opts)
}

/// [`evaluate_policy`] on an already-compiled model. The power-method sweep
/// scatters mass along the chosen arm's flat transition slices; component
/// rates come from the per-arm expected component rewards
/// ([`CompiledMdp::expected_component_rewards`]) instead of re-walking
/// per-transition reward vectors.
pub fn evaluate_policy_compiled(
    compiled: &CompiledMdp,
    policy: &Policy,
    opts: &EvalOptions,
) -> Result<PolicyEvaluation, MdpError> {
    compiled.validate_policy(policy)?;
    if !(0.0..1.0).contains(&opts.damping) {
        return Err(MdpError::BadOption { what: "damping", value: opts.damping });
    }

    let n = compiled.num_states();
    let mut pi = vec![1.0 / n as f64; n];
    let mut pi_next = vec![0.0f64; n];
    let d = opts.damping;

    // Resolve the policy to one global arm per state, once.
    let chosen: Vec<usize> = (0..n).map(|s| compiled.policy_arm(policy, s)).collect();

    let mut iterations = 0;
    for iter in 0..opts.max_iterations {
        iterations = iter + 1;
        for x in pi_next.iter_mut() {
            *x = 0.0;
        }
        for s in 0..n {
            let mass = pi[s];
            if mass <= 0.0 {
                continue;
            }
            let (probs, nexts) = compiled.arm_transitions(chosen[s]);
            let spread = (1.0 - d) * mass;
            for (p, &to) in probs.iter().zip(nexts) {
                pi_next[to as usize] += spread * p;
            }
            pi_next[s] += d * mass;
        }
        let delta: f64 = pi.iter().zip(&pi_next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut pi_next);
        if delta < opts.tolerance {
            break;
        }
        if iter + 1 == opts.max_iterations {
            return Err(MdpError::NoConvergence {
                solver: "evaluate_policy",
                iterations: opts.max_iterations,
                residual: delta,
            });
        }
    }

    // Renormalize against accumulated floating-point drift.
    let total: f64 = pi.iter().sum();
    for x in pi.iter_mut() {
        *x /= total;
    }

    let k = compiled.reward_components();
    let exp_comp = compiled.expected_component_rewards();
    let mut rates = vec![0.0f64; k];
    for s in 0..n {
        let arm = chosen[s];
        let mass = pi[s];
        for (rate, e) in rates.iter_mut().zip(&exp_comp[arm * k..(arm + 1) * k]) {
            *rate += mass * e;
        }
    }

    Ok(PolicyEvaluation { stationary: pi, component_rates: rates, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Objective, Transition};
    use crate::solve::rvi::{relative_value_iteration, RviOptions};

    #[test]
    fn two_state_stationary_distribution() {
        // Leave probabilities 0.1 from a, 0.2 from b => pi = (2/3, 1/3).
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(
            a,
            0,
            vec![Transition::new(a, 0.9, vec![1.0]), Transition::new(b, 0.1, vec![1.0])],
        );
        m.add_action(
            b,
            0,
            vec![Transition::new(b, 0.8, vec![0.0]), Transition::new(a, 0.2, vec![0.0])],
        );
        let ev = evaluate_policy(&m, &Policy::zeros(2), &EvalOptions::default()).unwrap();
        assert!((ev.stationary[a] - 2.0 / 3.0).abs() < 1e-9);
        assert!((ev.stationary[b] - 1.0 / 3.0).abs() < 1e-9);
        assert!((ev.component_rates[0] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn periodic_chain_converges_with_damping() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![3.0])]);
        let ev = evaluate_policy(&m, &Policy::zeros(2), &EvalOptions::default()).unwrap();
        assert!((ev.component_rates[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut m = Mdp::new(2);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![0.0, 0.0])]);
        let ev = evaluate_policy(&m, &Policy::zeros(1), &EvalOptions::default()).unwrap();
        assert_eq!(ev.ratio(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    /// The rate of the RVI-optimal policy must equal the RVI gain.
    #[test]
    fn agrees_with_rvi_gain() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        let c = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0])]);
        m.add_action(s, 1, vec![Transition::new(c, 1.0, vec![2.0])]);
        m.add_action(c, 0, vec![Transition::new(s, 1.0, vec![3.0])]);
        let obj = Objective::new(vec![1.0]);
        let sol = relative_value_iteration(&m, &obj, &RviOptions::default()).unwrap();
        let ev = evaluate_policy(&m, &sol.policy, &EvalOptions::default()).unwrap();
        assert!((ev.rate(&obj.weights) - sol.gain).abs() < 1e-6);
    }
}
