//! Hitting analysis of the Markov chain induced by a fixed policy:
//! absorption probabilities and expected hitting times.
//!
//! Used by the attack analyses for questions the long-run averages do not
//! answer — e.g. *"with what probability does a fork reach length k before
//! resolving?"* or *"how many blocks pass, on average, before the attacker
//! opens a victim's sticky gate?"*.

use std::collections::HashSet;

use crate::compiled::CompiledMdp;
use crate::error::MdpError;
use crate::model::{Mdp, Policy, StateId};

/// Options for the hitting solvers.
#[derive(Debug, Clone)]
pub struct HittingOptions {
    /// Gauss–Seidel sweeps stop when the max-norm update falls below this.
    pub tolerance: f64,
    /// Sweep budget.
    pub max_sweeps: usize,
}

impl Default for HittingOptions {
    fn default() -> Self {
        HittingOptions { tolerance: 1e-12, max_sweeps: 1_000_000 }
    }
}

/// For every state, the probability that the chain induced by `policy`
/// reaches a state in `targets` before reaching one in `avoid`.
///
/// States in `targets` get probability 1, states in `avoid` get 0; from
/// anywhere else the standard first-step equations are solved by
/// Gauss–Seidel sweeps. States that can reach neither set keep value 0
/// (they never hit the target).
pub fn hitting_probability(
    mdp: &Mdp,
    policy: &Policy,
    targets: &HashSet<StateId>,
    avoid: &HashSet<StateId>,
    opts: &HittingOptions,
) -> Result<Vec<f64>, MdpError> {
    let compiled = CompiledMdp::compile(mdp)?;
    compiled.validate_policy(policy)?;
    let n = compiled.num_states();
    // Absorbing-state membership as flat masks: sweeps test a bool per state
    // instead of hashing into the sets.
    let mut frozen = vec![false; n];
    let mut p = vec![0.0f64; n];
    for &t in targets {
        p[t] = 1.0;
        frozen[t] = true;
    }
    for &a in avoid {
        frozen[a] = true;
    }
    let chosen: Vec<usize> = (0..n).map(|s| compiled.policy_arm(policy, s)).collect();
    let mut last_delta = f64::INFINITY;
    for sweep in 0..opts.max_sweeps {
        let mut delta = 0.0f64;
        for s in 0..n {
            if frozen[s] {
                continue;
            }
            let (probs, nexts) = compiled.arm_transitions(chosen[s]);
            let mut x = 0.0;
            for (pr, &to) in probs.iter().zip(nexts) {
                x += pr * p[to as usize];
            }
            delta = delta.max((x - p[s]).abs());
            p[s] = x;
        }
        last_delta = delta;
        if delta < opts.tolerance {
            return Ok(p);
        }
        if sweep + 1 == opts.max_sweeps {
            break;
        }
    }
    Err(MdpError::NoConvergence {
        solver: "hitting_probability",
        iterations: opts.max_sweeps,
        residual: last_delta,
    })
}

/// For every state, the expected number of steps until the chain induced
/// by `policy` first reaches a state in `targets`.
///
/// Returns [`MdpError::UnreachableTarget`] if some state cannot reach
/// `targets` at all (its expected time is infinite); callers should restrict
/// to models where the target set is reachable from everywhere, which holds
/// for the recurrent base states of the mining models.
pub fn expected_hitting_time(
    mdp: &Mdp,
    policy: &Policy,
    targets: &HashSet<StateId>,
    opts: &HittingOptions,
) -> Result<Vec<f64>, MdpError> {
    let compiled = CompiledMdp::compile(mdp)?;
    compiled.validate_policy(policy)?;
    let n = compiled.num_states();
    let chosen: Vec<usize> = (0..n).map(|s| compiled.policy_arm(policy, s)).collect();

    // Reachability pre-check: every state must reach the target set.
    let mut reaches = vec![false; n];
    for &t in targets {
        reaches[t] = true;
    }
    loop {
        let mut changed = false;
        for s in 0..n {
            if reaches[s] {
                continue;
            }
            let (probs, nexts) = compiled.arm_transitions(chosen[s]);
            if probs.iter().zip(nexts).any(|(&p, &to)| reaches[to as usize] && p > 0.0) {
                reaches[s] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if let Some(state) = reaches.iter().position(|&r| !r) {
        return Err(MdpError::UnreachableTarget { state });
    }

    let mut is_target = vec![false; n];
    for &t in targets {
        is_target[t] = true;
    }
    let mut h = vec![0.0f64; n];
    let mut last_delta = f64::INFINITY;
    for sweep in 0..opts.max_sweeps {
        let mut delta = 0.0f64;
        for s in 0..n {
            if is_target[s] {
                continue;
            }
            let (probs, nexts) = compiled.arm_transitions(chosen[s]);
            let mut x = 1.0;
            for (p, &to) in probs.iter().zip(nexts) {
                x += p * h[to as usize];
            }
            delta = delta.max((x - h[s]).abs());
            h[s] = x;
        }
        last_delta = delta;
        if delta < opts.tolerance {
            return Ok(h);
        }
        if sweep + 1 == opts.max_sweeps {
            break;
        }
    }
    Err(MdpError::NoConvergence {
        solver: "expected_hitting_time",
        iterations: opts.max_sweeps,
        residual: last_delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;

    /// Gambler's ruin on {0..=N} with fair coin: P(hit N before 0 | start
    /// i) = i/N; expected absorption time = i (N − i).
    fn gamblers_ruin(n: usize, p_up: f64) -> Mdp {
        let mut m = Mdp::new(1);
        for _ in 0..=n {
            m.add_state();
        }
        for s in 0..=n {
            if s == 0 || s == n {
                m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![0.0])]);
            } else {
                m.add_action(
                    s,
                    0,
                    vec![
                        Transition::new(s + 1, p_up, vec![0.0]),
                        Transition::new(s - 1, 1.0 - p_up, vec![0.0]),
                    ],
                );
            }
        }
        m
    }

    #[test]
    fn fair_gamblers_ruin_probabilities() {
        let n = 10;
        let m = gamblers_ruin(n, 0.5);
        let policy = Policy::zeros(n + 1);
        let targets: HashSet<_> = [n].into_iter().collect();
        let avoid: HashSet<_> = [0].into_iter().collect();
        let p =
            hitting_probability(&m, &policy, &targets, &avoid, &HittingOptions::default()).unwrap();
        for (i, &pi) in p.iter().enumerate() {
            let expected = i as f64 / n as f64;
            assert!((pi - expected).abs() < 1e-9, "i={i}: {pi} vs {expected}");
        }
    }

    #[test]
    fn biased_gamblers_ruin_matches_closed_form() {
        let n = 8;
        let p_up = 0.6;
        let m = gamblers_ruin(n, p_up);
        let policy = Policy::zeros(n + 1);
        let targets: HashSet<_> = [n].into_iter().collect();
        let avoid: HashSet<_> = [0].into_iter().collect();
        let p =
            hitting_probability(&m, &policy, &targets, &avoid, &HittingOptions::default()).unwrap();
        let r = (1.0 - p_up) / p_up;
        for (i, &pi) in p.iter().enumerate().take(n).skip(1) {
            let expected = (1.0 - r.powi(i as i32)) / (1.0 - r.powi(n as i32));
            assert!((pi - expected).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn fair_absorption_times() {
        let n = 10;
        let m = gamblers_ruin(n, 0.5);
        let policy = Policy::zeros(n + 1);
        // Expected time to hit {0, N} from i is i (N - i).
        let targets: HashSet<_> = [0, n].into_iter().collect();
        let h = expected_hitting_time(&m, &policy, &targets, &HittingOptions::default()).unwrap();
        for (i, &hi) in h.iter().enumerate() {
            let expected = (i * (n - i)) as f64;
            assert!((hi - expected).abs() < 1e-6, "i={i}: {hi} vs {expected}");
        }
    }

    #[test]
    fn unreachable_target_is_a_structured_error() {
        // Two disconnected self-loops.
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(a, 1.0, vec![0.0])]);
        m.add_action(b, 0, vec![Transition::new(b, 1.0, vec![0.0])]);
        let targets: HashSet<_> = [b].into_iter().collect();
        let err =
            expected_hitting_time(&m, &Policy::zeros(2), &targets, &HittingOptions::default())
                .unwrap_err();
        assert_eq!(err, MdpError::UnreachableTarget { state: a });
    }
}
