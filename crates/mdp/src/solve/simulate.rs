//! Monte Carlo simulation of a fixed policy — an independent check on the
//! exact evaluators, and the bridge used by `bvc-sim` to cross-validate
//! analytic results.
//!
//! The sampler uses no external RNG dependency: a small xorshift64* keeps
//! `bvc-mdp` dependency-free while remaining deterministic per seed.

use crate::error::MdpError;
use crate::model::{Mdp, Policy, StateId};

/// A tiny deterministic PRNG (xorshift64*), adequate for path sampling.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator (0 is remapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let v = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // Take the top 53 bits for a uniform double in [0, 1).
        (v >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Accumulated results of a sampled path.
#[derive(Debug, Clone)]
pub struct PathSample {
    /// Number of steps taken.
    pub steps: usize,
    /// Sum of each reward component along the path.
    pub component_totals: Vec<f64>,
    /// The final state.
    pub final_state: StateId,
}

impl PathSample {
    /// Per-step average of each component.
    pub fn component_rates(&self) -> Vec<f64> {
        self.component_totals.iter().map(|&x| x / self.steps as f64).collect()
    }
}

/// Samples `steps` transitions of `policy` from `start`, summing reward
/// components.
pub fn sample_path(
    mdp: &Mdp,
    policy: &Policy,
    start: StateId,
    steps: usize,
    rng: &mut XorShift64,
) -> Result<PathSample, MdpError> {
    mdp.validate_policy(policy)?;
    let mut totals = vec![0.0f64; mdp.reward_components()];
    let mut state = start;
    for _ in 0..steps {
        let arm = &mdp.actions(state)[policy.choices[state]];
        let mut x = rng.next_f64();
        // `validate_policy` guarantees nonempty arms; stay panic-free anyway.
        let Some(mut chosen) = arm.transitions.last() else {
            return Err(MdpError::NoActions { state });
        };
        for t in &arm.transitions {
            if x < t.prob {
                chosen = t;
                break;
            }
            x -= t.prob;
        }
        for (acc, r) in totals.iter_mut().zip(&chosen.reward) {
            *acc += r;
        }
        state = chosen.to;
    }
    Ok(PathSample { steps, component_totals: totals, final_state: state })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;
    use crate::solve::eval::{evaluate_policy, EvalOptions};

    #[test]
    fn rng_is_uniformish() {
        let mut rng = XorShift64::new(123);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn sample_matches_exact_evaluation() {
        // Two-state chain with stochastic switching and component rewards.
        let mut m = Mdp::new(2);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(
            a,
            0,
            vec![Transition::new(a, 0.7, vec![1.0, 0.0]), Transition::new(b, 0.3, vec![1.0, 0.0])],
        );
        m.add_action(
            b,
            0,
            vec![Transition::new(b, 0.5, vec![0.0, 2.0]), Transition::new(a, 0.5, vec![0.0, 2.0])],
        );
        let policy = Policy::zeros(2);
        let exact = evaluate_policy(&m, &policy, &EvalOptions::default()).unwrap();
        let mut rng = XorShift64::new(7);
        let sample = sample_path(&m, &policy, a, 400_000, &mut rng).unwrap();
        let rates = sample.component_rates();
        for (mc, ex) in rates.iter().zip(&exact.component_rates) {
            assert!((mc - ex).abs() < 0.01, "MC {mc} vs exact {ex}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut r1 = XorShift64::new(5);
        let mut r2 = XorShift64::new(5);
        for _ in 0..100 {
            assert_eq!(r1.next_f64(), r2.next_f64());
        }
    }
}
