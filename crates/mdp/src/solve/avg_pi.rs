//! Average-reward policy iteration (Howard's algorithm for unichain MDPs).
//!
//! An independent second solver for the gain-optimality problem that
//! [`crate::solve::rvi`] solves by value iteration: policy iteration
//! alternates exact policy evaluation (gain via the stationary
//! distribution, bias via damped fixed-point sweeps) with greedy
//! improvement. It typically converges in a handful of improvement steps
//! and serves as a cross-check on RVI in the test suite (two very
//! different iteration schemes agreeing on the same gain).
//!
//! Unlike the RVI kernel, this solver is deliberately not sharded across
//! threads: its evaluation step runs the power method of
//! [`crate::solve::eval`], whose `pi P` product *scatters* each state's
//! mass over its successors (writes land at data-dependent indices), so a
//! disjoint-output decomposition like the Bellman sweep's does not exist.
//! It is a test-suite cross-check, not a sweep workhorse, so single-thread
//! cost is acceptable.

use crate::budget::SolveBudget;
use crate::compiled::CompiledMdp;
use crate::error::MdpError;
use crate::model::{Mdp, Objective, Policy};
use crate::solve::eval::{evaluate_policy_compiled, EvalOptions};

/// Options for [`average_reward_policy_iteration`].
#[derive(Debug, Clone)]
pub struct AvgPiOptions {
    /// Convergence tolerance for the bias fixed-point sweeps.
    pub bias_tolerance: f64,
    /// Budget of bias sweeps per evaluation.
    pub max_bias_sweeps: usize,
    /// Budget of improvement steps.
    pub max_improvements: usize,
    /// Damping for periodic chains (mirrors the RVI aperiodicity
    /// transform), in `[0, 1)`.
    pub damping: f64,
    /// Options for the stationary-distribution computation.
    pub eval: EvalOptions,
    /// Wall-clock deadline / cancellation checked each bias sweep and
    /// improvement step. Unlimited by default.
    pub budget: SolveBudget,
}

impl Default for AvgPiOptions {
    fn default() -> Self {
        AvgPiOptions {
            bias_tolerance: 1e-10,
            max_bias_sweeps: 1_000_000,
            max_improvements: 500,
            damping: 0.05,
            eval: EvalOptions::default(),
            budget: SolveBudget::unlimited(),
        }
    }
}

/// Result of [`average_reward_policy_iteration`].
#[derive(Debug, Clone)]
pub struct AvgPiSolution {
    /// The optimal gain.
    pub gain: f64,
    /// Bias values of the final policy, normalized to `bias[0] = 0`.
    pub bias: Vec<f64>,
    /// The gain-optimal policy.
    pub policy: Policy,
    /// Improvement steps performed.
    pub improvements: usize,
}

/// Evaluates the bias of a fixed policy given its gain: solves
/// `h = r̄ − g + P h` (damped) with `h[0] = 0`.
fn bias_of(
    compiled: &CompiledMdp,
    exp_reward: &[f64],
    policy: &Policy,
    gain: f64,
    opts: &AvgPiOptions,
) -> Result<Vec<f64>, MdpError> {
    if !(0.0..1.0).contains(&opts.damping) {
        return Err(MdpError::BadOption { what: "damping", value: opts.damping });
    }
    let n = compiled.num_states();
    let d = opts.damping;
    let mut h = vec![0.0f64; n];
    let mut last_delta = f64::INFINITY;
    for sweep in 0..opts.max_bias_sweeps {
        opts.budget.check("average_reward_policy_iteration (bias)", sweep)?;
        let mut delta = 0.0f64;
        for s in 0..n {
            let arm = compiled.policy_arm(policy, s);
            let (probs, nexts) = compiled.arm_transitions(arm);
            let mut x = exp_reward[arm];
            for (p, &to) in probs.iter().zip(nexts) {
                x += p * h[to as usize];
            }
            // Damped update handles periodic chains.
            let x = (1.0 - d) * (x - gain) + d * h[s];
            delta = delta.max((x - h[s]).abs());
            h[s] = x;
        }
        let offset = h[0];
        for x in h.iter_mut() {
            *x -= offset;
        }
        last_delta = delta;
        if delta < opts.bias_tolerance {
            return Ok(h);
        }
    }
    Err(MdpError::NoConvergence {
        solver: "average_reward_policy_iteration (bias)",
        iterations: opts.max_bias_sweeps,
        residual: last_delta,
    })
}

/// Solves the unichain average-reward problem by Howard policy iteration.
pub fn average_reward_policy_iteration(
    mdp: &Mdp,
    objective: &Objective,
    opts: &AvgPiOptions,
) -> Result<AvgPiSolution, MdpError> {
    let compiled = CompiledMdp::compile(mdp)?;
    compiled.validate_objective(objective)?;
    let exp_reward = compiled.scalarize(objective);
    let n = compiled.num_states();
    let mut policy = Policy::zeros(n);

    let mut last_gain = f64::NAN;
    for step in 0..opts.max_improvements {
        opts.budget.check("average_reward_policy_iteration", step)?;
        let ev = evaluate_policy_compiled(&compiled, &policy, &opts.eval)?;
        let gain = ev.rate(&objective.weights);
        let h = bias_of(&compiled, &exp_reward, &policy, gain, opts)?;

        let mut changed = false;
        for s in 0..n {
            let mut best = f64::NEG_INFINITY;
            let mut best_a = policy.choices[s];
            let arms = compiled.arm_range(s);
            let first_arm = arms.start;
            for arm in arms {
                let (probs, nexts) = compiled.arm_transitions(arm);
                let mut q = exp_reward[arm];
                for (p, &to) in probs.iter().zip(nexts) {
                    q += p * h[to as usize];
                }
                // Tolerance guard against cycling between ties.
                if q > best + 1e-10 {
                    best = q;
                    best_a = arm - first_arm;
                }
            }
            if best_a != policy.choices[s] {
                policy.choices[s] = best_a;
                changed = true;
            }
        }
        // Stop only on policy stability: the gain can stall for a step
        // while bias improvements on transient states are still routing
        // the chain toward a better recurrent class.
        if !changed {
            return Ok(AvgPiSolution { gain, bias: h, policy, improvements: step + 1 });
        }
        last_gain = gain;
    }
    Err(MdpError::NoConvergence {
        solver: "average_reward_policy_iteration",
        iterations: opts.max_improvements,
        // Policy iteration has no natural residual; report the last gain so
        // the error at least names where the search stalled.
        residual: last_gain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;
    use crate::solve::rvi::{relative_value_iteration, RviOptions};

    #[test]
    fn matches_rvi_on_choice_model() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        let c = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![1.0])]);
        m.add_action(s, 1, vec![Transition::new(c, 1.0, vec![2.0])]);
        m.add_action(c, 0, vec![Transition::new(s, 1.0, vec![3.0])]);
        let obj = Objective::new(vec![1.0]);
        let pi = average_reward_policy_iteration(&m, &obj, &AvgPiOptions::default()).unwrap();
        let vi = relative_value_iteration(&m, &obj, &RviOptions::default()).unwrap();
        assert!((pi.gain - vi.gain).abs() < 1e-6, "PI {} vs RVI {}", pi.gain, vi.gain);
        assert!((pi.gain - 2.5).abs() < 1e-6);
        assert_eq!(pi.policy.choices[s], 1);
    }

    #[test]
    fn handles_periodic_chain() {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![3.0])]);
        let pi = average_reward_policy_iteration(
            &m,
            &Objective::new(vec![1.0]),
            &AvgPiOptions::default(),
        )
        .unwrap();
        assert!((pi.gain - 2.0).abs() < 1e-6);
    }

    #[test]
    fn converges_quickly() {
        let mut m = Mdp::new(1);
        let states: Vec<_> = (0..5).map(|_| m.add_state()).collect();
        for (i, &s) in states.iter().enumerate() {
            let next = states[(i + 1) % 5];
            m.add_action(s, 0, vec![Transition::new(next, 1.0, vec![i as f64])]);
            m.add_action(s, 1, vec![Transition::new(states[0], 1.0, vec![0.5])]);
        }
        let pi = average_reward_policy_iteration(
            &m,
            &Objective::new(vec![1.0]),
            &AvgPiOptions::default(),
        )
        .unwrap();
        assert!(pi.improvements <= 10);
        assert!(pi.gain >= 2.0 - 1e-9, "cycle average is 2, got {}", pi.gain);
    }
}
