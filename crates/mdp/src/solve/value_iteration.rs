//! Discounted value iteration.
//!
//! Included for completeness, testing, and ablation benchmarks; the paper's
//! objectives are undiscounted (see [`crate::solve::rvi`] and
//! [`crate::solve::ratio`]).
//!
//! Runs on the CSR-flattened [`CompiledMdp`] with per-arm pre-scalarized
//! rewards, like every optimizing solver in this crate.

use crate::budget::SolveBudget;
use crate::compiled::CompiledMdp;
use crate::error::MdpError;
use crate::model::{Mdp, Objective, Policy};

/// Options for [`value_iteration`].
#[derive(Debug, Clone)]
pub struct ViOptions {
    /// Discount factor in `(0, 1)`.
    pub discount: f64,
    /// Stop when the max-norm change of the value vector falls below this.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Wall-clock deadline / cancellation checked each iteration.
    /// Unlimited by default.
    pub budget: SolveBudget,
}

impl Default for ViOptions {
    fn default() -> Self {
        ViOptions {
            discount: 0.99,
            tolerance: 1e-9,
            max_iterations: 100_000,
            budget: SolveBudget::unlimited(),
        }
    }
}

/// Result of [`value_iteration`].
#[derive(Debug, Clone)]
pub struct ViSolution {
    /// Optimal discounted value per state.
    pub values: Vec<f64>,
    /// A greedy optimal policy.
    pub policy: Policy,
    /// Iterations performed.
    pub iterations: usize,
}

/// Solves `max E[Σ γ^t r_t]` for every start state.
pub fn value_iteration(
    mdp: &Mdp,
    objective: &Objective,
    opts: &ViOptions,
) -> Result<ViSolution, MdpError> {
    let compiled = CompiledMdp::compile(mdp)?;
    compiled.validate_objective(objective)?;
    let exp_reward = compiled.scalarize(objective);
    value_iteration_compiled(&compiled, &exp_reward, opts)
}

/// [`value_iteration`] on an already-compiled model and pre-scalarized
/// per-arm expected rewards (from [`CompiledMdp::scalarize`]).
pub fn value_iteration_compiled(
    compiled: &CompiledMdp,
    exp_reward: &[f64],
    opts: &ViOptions,
) -> Result<ViSolution, MdpError> {
    if !(opts.discount > 0.0 && opts.discount < 1.0) {
        return Err(MdpError::BadOption { what: "discount", value: opts.discount });
    }
    if exp_reward.len() != compiled.num_arms() {
        return Err(MdpError::Shape {
            what: "exp_reward",
            found: exp_reward.len(),
            expected: compiled.num_arms(),
        });
    }

    let n = compiled.num_states();
    let gamma = opts.discount;
    let mut v = vec![0.0f64; n];
    let mut v_next = vec![0.0f64; n];
    let mut policy = Policy::zeros(n);

    // Same transition-major CSR streaming as the RVI kernel: the offset
    // arrays are hoisted once and the transition cursor `t0` runs forward
    // monotonically, so the sweep is a single pass over the flat
    // prob/next/reward arrays instead of per-arm range lookups.
    let (arm_offsets, tr_offsets) = compiled.raw_offsets();
    let (next, prob) = (compiled.raw_next(), compiled.raw_prob());

    let mut last_delta = f64::INFINITY;
    for iter in 0..opts.max_iterations {
        opts.budget.check("value_iteration", iter)?;
        let mut delta = 0.0f64;
        for s in 0..n {
            let a0 = arm_offsets[s] as usize;
            let a1 = arm_offsets[s + 1] as usize;
            let mut best = f64::NEG_INFINITY;
            let mut best_a = 0;
            let mut t0 = tr_offsets[a0] as usize;
            for arm in a0..a1 {
                let t1 = tr_offsets[arm + 1] as usize;
                let mut future = 0.0;
                for (p, &to) in prob[t0..t1].iter().zip(&next[t0..t1]) {
                    future += p * v[to as usize];
                }
                t0 = t1;
                let q = exp_reward[arm] + gamma * future;
                if q > best {
                    best = q;
                    best_a = arm - a0;
                }
            }
            v_next[s] = best;
            policy.choices[s] = best_a;
            delta = delta.max((best - v[s]).abs());
        }
        std::mem::swap(&mut v, &mut v_next);
        last_delta = delta;
        if delta < opts.tolerance {
            return Ok(ViSolution { values: v, policy, iterations: iter + 1 });
        }
    }
    Err(MdpError::NoConvergence {
        solver: "value_iteration",
        iterations: opts.max_iterations,
        residual: last_delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;

    /// Single state, two actions: reward 1 or reward 2. Optimal value is
    /// 2 / (1 - gamma).
    #[test]
    fn picks_better_self_loop() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 10, vec![Transition::new(s, 1.0, vec![1.0])]);
        m.add_action(s, 20, vec![Transition::new(s, 1.0, vec![2.0])]);
        let opts = ViOptions { discount: 0.9, tolerance: 1e-12, ..Default::default() };
        let sol = value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap();
        assert_eq!(sol.policy.label(&m, s), 20);
        assert!((sol.values[s] - 20.0).abs() < 1e-6, "value {}", sol.values[s]);
    }

    /// Deterministic two-step corridor: value of the start discounts the
    /// terminal reward once.
    #[test]
    fn discounts_future_rewards() {
        let mut m = Mdp::new(1);
        let s0 = m.add_state();
        let s1 = m.add_state();
        let sink = m.add_state();
        m.add_action(s0, 0, vec![Transition::new(s1, 1.0, vec![0.0])]);
        m.add_action(s1, 0, vec![Transition::new(sink, 1.0, vec![1.0])]);
        m.add_action(sink, 0, vec![Transition::new(sink, 1.0, vec![0.0])]);
        let opts = ViOptions { discount: 0.5, tolerance: 1e-12, ..Default::default() };
        let sol = value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap();
        assert!((sol.values[s1] - 1.0).abs() < 1e-9);
        assert!((sol.values[s0] - 0.5).abs() < 1e-9);
        assert_eq!(sol.values[sink], 0.0);
    }

    #[test]
    fn rejects_bad_discount_with_structured_error() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![0.0])]);
        let opts = ViOptions { discount: 1.0, ..Default::default() };
        let err = value_iteration(&m, &Objective::new(vec![1.0]), &opts).unwrap_err();
        assert_eq!(err, MdpError::BadOption { what: "discount", value: 1.0 });
    }

    #[test]
    fn stochastic_transition_averages() {
        // One action: 50/50 to two absorbing sinks with rewards 0 and 4 on
        // entry; start value = 0.5 * 4 = 2 (undiscounted entry reward).
        let mut m = Mdp::new(1);
        let s = m.add_state();
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(
            s,
            0,
            vec![Transition::new(a, 0.5, vec![0.0]), Transition::new(b, 0.5, vec![4.0])],
        );
        m.add_action(a, 0, vec![Transition::new(a, 1.0, vec![0.0])]);
        m.add_action(b, 0, vec![Transition::new(b, 1.0, vec![0.0])]);
        let sol = value_iteration(
            &m,
            &Objective::new(vec![1.0]),
            &ViOptions { discount: 0.9, tolerance: 1e-12, ..Default::default() },
        )
        .unwrap();
        assert!((sol.values[s] - 2.0).abs() < 1e-9);
    }
}
