//! Discounted policy iteration (Howard's algorithm) with iterative policy
//! evaluation.
//!
//! Complements [`value_iteration()`](crate::solve::value_iteration()): policy iteration typically
//! converges in a handful of improvement steps, making it the reference
//! implementation that value-iteration results are tested against.
//!
//! Evaluation and improvement sweeps both run on the CSR-flattened
//! [`CompiledMdp`] with per-arm pre-scalarized rewards.

use crate::budget::SolveBudget;
use crate::compiled::CompiledMdp;
use crate::error::MdpError;
use crate::model::{Mdp, Objective, Policy};

/// Options for [`policy_iteration`].
#[derive(Debug, Clone)]
pub struct PiOptions {
    /// Discount factor in `(0, 1)`.
    pub discount: f64,
    /// Inner evaluation stops when the max-norm update falls below this.
    pub eval_tolerance: f64,
    /// Budget for inner evaluation sweeps per improvement step.
    pub max_eval_sweeps: usize,
    /// Budget for policy improvement steps.
    pub max_improvements: usize,
    /// Wall-clock deadline / cancellation checked each evaluation sweep.
    /// Unlimited by default.
    pub budget: SolveBudget,
}

impl Default for PiOptions {
    fn default() -> Self {
        PiOptions {
            discount: 0.99,
            eval_tolerance: 1e-10,
            max_eval_sweeps: 100_000,
            max_improvements: 1_000,
            budget: SolveBudget::unlimited(),
        }
    }
}

/// Result of [`policy_iteration`].
#[derive(Debug, Clone)]
pub struct PiSolution {
    /// Discounted value of the final policy.
    pub values: Vec<f64>,
    /// The optimal policy.
    pub policy: Policy,
    /// Improvement steps performed.
    pub improvements: usize,
}

/// Solves the discounted problem by alternating full policy evaluation
/// (Gauss–Seidel sweeps) and greedy improvement.
pub fn policy_iteration(
    mdp: &Mdp,
    objective: &Objective,
    opts: &PiOptions,
) -> Result<PiSolution, MdpError> {
    let compiled = CompiledMdp::compile(mdp)?;
    compiled.validate_objective(objective)?;
    if !(opts.discount > 0.0 && opts.discount < 1.0) {
        return Err(MdpError::BadOption { what: "discount", value: opts.discount });
    }
    let exp_reward = compiled.scalarize(objective);
    let gamma = opts.discount;

    let n = compiled.num_states();
    let mut policy = Policy::zeros(n);
    let mut v = vec![0.0f64; n];

    for step in 0..opts.max_improvements {
        opts.budget.check("policy_iteration", step)?;
        // Policy evaluation: Gauss–Seidel fixed-point sweeps, in place.
        let mut converged = false;
        let mut last_delta = f64::INFINITY;
        for sweep in 0..opts.max_eval_sweeps {
            opts.budget.check("policy_iteration (evaluation)", sweep)?;
            let mut delta = 0.0f64;
            for s in 0..n {
                let arm = compiled.policy_arm(&policy, s);
                let (probs, nexts) = compiled.arm_transitions(arm);
                let mut future = 0.0;
                for (p, &to) in probs.iter().zip(nexts) {
                    future += p * v[to as usize];
                }
                let x = exp_reward[arm] + gamma * future;
                delta = delta.max((x - v[s]).abs());
                v[s] = x;
            }
            last_delta = delta;
            if delta < opts.eval_tolerance {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(MdpError::NoConvergence {
                solver: "policy_iteration (evaluation)",
                iterations: opts.max_eval_sweeps,
                residual: last_delta,
            });
        }

        // Greedy improvement.
        let mut changed = false;
        for s in 0..n {
            let mut best = f64::NEG_INFINITY;
            let mut best_a = policy.choices[s];
            let arms = compiled.arm_range(s);
            let first_arm = arms.start;
            for arm in arms {
                let (probs, nexts) = compiled.arm_transitions(arm);
                let mut future = 0.0;
                for (p, &to) in probs.iter().zip(nexts) {
                    future += p * v[to as usize];
                }
                let q = exp_reward[arm] + gamma * future;
                // Strict improvement with a tolerance guard prevents cycling
                // between equally good actions.
                if q > best + 1e-12 {
                    best = q;
                    best_a = arm - first_arm;
                }
            }
            if best_a != policy.choices[s] {
                policy.choices[s] = best_a;
                changed = true;
            }
        }
        if !changed {
            return Ok(PiSolution { values: v, policy, improvements: step + 1 });
        }
    }
    // The improvement loop has no residual: it either stabilizes or cycles.
    Err(MdpError::NoConvergence {
        solver: "policy_iteration",
        iterations: opts.max_improvements,
        residual: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;
    use crate::solve::value_iteration::{value_iteration, ViOptions};

    fn random_like_model() -> Mdp {
        // A small layered model with mixed stochastic actions.
        let mut m = Mdp::new(1);
        let s0 = m.add_state();
        let s1 = m.add_state();
        let s2 = m.add_state();
        m.add_action(
            s0,
            0,
            vec![Transition::new(s1, 0.7, vec![1.0]), Transition::new(s2, 0.3, vec![0.0])],
        );
        m.add_action(s0, 1, vec![Transition::new(s2, 1.0, vec![0.5])]);
        m.add_action(
            s1,
            0,
            vec![Transition::new(s0, 0.5, vec![2.0]), Transition::new(s2, 0.5, vec![0.0])],
        );
        m.add_action(s2, 0, vec![Transition::new(s0, 1.0, vec![0.1])]);
        m.add_action(s2, 1, vec![Transition::new(s2, 1.0, vec![0.6])]);
        m
    }

    #[test]
    fn matches_value_iteration() {
        let m = random_like_model();
        let obj = Objective::new(vec![1.0]);
        let pi = policy_iteration(&m, &obj, &PiOptions::default()).unwrap();
        let vi = value_iteration(
            &m,
            &obj,
            &ViOptions { discount: 0.99, tolerance: 1e-12, ..Default::default() },
        )
        .unwrap();
        for (a, b) in pi.values.iter().zip(&vi.values) {
            assert!((a - b).abs() < 1e-6, "PI {a} vs VI {b}");
        }
        assert_eq!(pi.policy, vi.policy);
    }

    #[test]
    fn converges_in_few_improvements() {
        let m = random_like_model();
        let obj = Objective::new(vec![1.0]);
        let pi = policy_iteration(&m, &obj, &PiOptions::default()).unwrap();
        assert!(pi.improvements <= 10, "took {} improvements", pi.improvements);
    }
}
