//! # bvc-mdp — a finite Markov decision process toolkit
//!
//! A from-scratch, dependency-free MDP library built for analyzing
//! blockchain mining protocols, in the style used by Sapirshtein et al.
//! ("Optimal Selfish Mining Strategies in Bitcoin") and by Zhang & Preneel
//! ("On the Necessity of a Prescribed Block Validity Consensus", CoNEXT '17):
//!
//! * [`Mdp`] — sparse models with **vector-valued rewards**, so a single
//!   mining model can expose the attacker's locked blocks, the other miners'
//!   locked blocks, orphan counts and double-spend payouts as separate
//!   components, combined only at solve time by an [`Objective`].
//! * [`indexer::explore`] — breadth-first construction of a model from a
//!   typed domain-state expansion function, with state interning.
//! * [`solve::relative_value_iteration`] — undiscounted average-reward
//!   solving (the paper's "undiscounted average reward MDP").
//! * [`solve::maximize_ratio`] — maximizes `E[N]/E[D]` objectives such as
//!   *relative revenue* (Eq. 1 of the paper) via bisection over transformed
//!   rewards.
//! * [`solve::evaluate_policy`] — exact long-run component rates of a fixed
//!   policy, for reporting every utility of one optimal strategy and for
//!   Monte Carlo cross-validation.
//!
//! ## Quick example
//!
//! ```
//! use bvc_mdp::{Mdp, Objective, Transition};
//! use bvc_mdp::solve::{relative_value_iteration, RviOptions};
//!
//! // A coin that pays 1 on heads (p = 0.3) each step.
//! let mut m = Mdp::new(1);
//! let s = m.add_state();
//! m.add_action(s, 0, vec![
//!     Transition::new(s, 0.3, vec![1.0]),
//!     Transition::new(s, 0.7, vec![0.0]),
//! ]);
//! let sol = relative_value_iteration(&m, &Objective::new(vec![1.0]),
//!                                     &RviOptions::default()).unwrap();
//! assert!((sol.gain - 0.3).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod budget;
pub mod compiled;
pub mod error;
pub mod indexer;
pub mod model;
pub mod policy_table;
mod shard;
pub mod solve;

pub use audit::{
    audit_compiled, audit_mdp, audit_policy, demo_multichain, demo_unreachable, AuditOptions,
    AuditReport, AuditStatus,
};
pub use budget::SolveBudget;
pub use compiled::CompiledMdp;
pub use error::MdpError;
pub use indexer::{explore, ActionSpec, Explored, StateIndexer};
pub use model::{ActionArm, ActionId, Mdp, Objective, Policy, StateId, Transition};
pub use policy_table::{PolicyTable, PolicyTableError};
pub use shard::DEFAULT_SHARD_MIN_STATES;
