//! Cooperative solve budgets: wall-clock deadlines and cancellation flags
//! checked from *inside* solver iteration loops.
//!
//! Parameter sweeps solve hundreds of models whose cost varies by orders of
//! magnitude across the grid; a single pathological cell must not be able to
//! wedge a whole sweep. Every iterative solver in this crate threads a
//! [`SolveBudget`] through its options and calls [`SolveBudget::check`] once
//! per sweep/iteration. The check is cheap by construction:
//!
//! * the **cancel flag** is one relaxed atomic load — a sweep runner flips
//!   it when the caller asks for fail-fast, and every in-flight solve winds
//!   down with [`MdpError::Cancelled`] at its next iteration boundary;
//! * the **deadline** is consulted only every [`SolveBudget::check_interval`]
//!   iterations (reading the clock is ~20 ns, a Bellman sweep over a real
//!   model is micro- to milliseconds, but tiny test models iterate fast
//!   enough for `Instant::now()` per iteration to show up).
//!
//! A default-constructed budget is unlimited and adds two branch
//! predictions per iteration to the hot loops.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::MdpError;

/// A wall-clock deadline and/or cooperative cancel flag for one solve.
///
/// Cloning is cheap (the cancel flag is shared through an [`Arc`]), so one
/// budget can be handed to several solver calls that should live and die
/// together — e.g. all bisection steps of a ratio solve, or every solve
/// belonging to one sweep cell.
#[derive(Debug, Clone, Default)]
pub struct SolveBudget {
    /// Absolute deadline; the solve fails with [`MdpError::DeadlineExceeded`]
    /// at the first check past this instant.
    pub deadline: Option<Instant>,
    /// Shared cancel flag; the solve fails with [`MdpError::Cancelled`] at
    /// the first check after it becomes `true`.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Deadline checks happen every this-many iterations (`0` is treated as
    /// every iteration). The cancel flag is checked every iteration.
    pub check_interval: usize,
}

/// How often [`SolveBudget::check`] consults the clock by default.
pub const DEFAULT_CHECK_INTERVAL: usize = 32;

impl SolveBudget {
    /// An unlimited budget: never cancels, never times out.
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// A budget expiring `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        SolveBudget { deadline: Some(Instant::now() + timeout), ..Default::default() }
    }

    /// Attaches an absolute deadline.
    pub fn deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a shared cancel flag.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// True once the shared cancel flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        // ordering: Relaxed — best-effort cancellation; a stale read costs one extra iteration.
        self.cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// True if there is nothing to enforce (the default state).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// The per-iteration budget check solvers call at the top of each sweep.
    ///
    /// `iterations` is the solver's current iteration count; it gates how
    /// often the deadline consults the clock. Returns
    /// [`MdpError::Cancelled`] / [`MdpError::DeadlineExceeded`] tagged with
    /// `solver` so failures name the loop that hit the limit.
    #[inline]
    pub fn check(&self, solver: &'static str, iterations: usize) -> Result<(), MdpError> {
        if self.is_cancelled() {
            return Err(MdpError::Cancelled { solver, iterations });
        }
        if let Some(deadline) = self.deadline {
            let every =
                if self.check_interval == 0 { DEFAULT_CHECK_INTERVAL } else { self.check_interval };
            if iterations.is_multiple_of(every) {
                let now = Instant::now();
                if now >= deadline {
                    let over = now.saturating_duration_since(deadline);
                    return Err(MdpError::DeadlineExceeded {
                        solver,
                        iterations,
                        over_by_ms: over.as_millis() as u64,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = SolveBudget::unlimited();
        assert!(b.is_unlimited());
        for i in 0..1000 {
            b.check("t", i).unwrap();
        }
    }

    #[test]
    fn expired_deadline_fails_at_interval_boundary() {
        let b = SolveBudget::default().deadline_at(Instant::now() - Duration::from_millis(1));
        // Iteration 0 is always a check point.
        let err = b.check("rvi", 0).unwrap_err();
        assert!(matches!(err, MdpError::DeadlineExceeded { solver: "rvi", .. }), "{err:?}");
        // Off-boundary iterations skip the clock entirely.
        b.check("rvi", 1).unwrap();
        assert!(b.check("rvi", DEFAULT_CHECK_INTERVAL).is_err());
    }

    #[test]
    fn cancel_flag_fails_every_iteration() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = SolveBudget::default().with_cancel(flag.clone());
        b.check("x", 7).unwrap();
        flag.store(true, Ordering::Relaxed);
        let err = b.check("x", 7).unwrap_err();
        assert!(matches!(err, MdpError::Cancelled { solver: "x", iterations: 7 }));
        assert!(b.is_cancelled());
    }

    #[test]
    fn with_timeout_expires() {
        let b = SolveBudget::with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.check("t", 0).is_err());
    }
}
