//! CSR-style compiled execution layer for [`Mdp`] models.
//!
//! The builder-facing [`Mdp`] stores `Vec<Vec<ActionArm>>` with one
//! heap-allocated reward vector per transition — convenient to construct,
//! hostile to solver inner loops: every Bellman backup chases three levels
//! of pointers and the reward dot product touches a separate allocation per
//! transition. A [`CompiledMdp`] flattens the same model into contiguous
//! arrays in compressed-sparse-row style:
//!
//! ```text
//! states:       0 ───────┐ 1 ──┐  ...                (implicit)
//! arm_offsets:  [0,       2,    3, ...]               len n+1
//! arm_labels:   [lab, lab, lab, ...]                  len A (total arms)
//! tr_offsets:   [0,   2,   5,   ...]                  len A+1
//! next:         [s, s, s, s, s, ...]                  len T (total transitions)
//! prob:         [p, p, p, p, p, ...]                  len T
//! rewards:      [r00 r01 .. r0k | r10 r11 .. r1k | …] len T·k, transition-major
//! ```
//!
//! Solvers then run branch-light passes over flat slices. Reward vectors are
//! collapsed to scalars **once per sweep** by [`CompiledMdp::scalarize`]
//! (per-arm *expected* immediate reward, since every solver only ever needs
//! `Σ_t p_t · ⟨w, r_t⟩`), and the ratio solver's per-bisection-step
//! re-scalarization is a fused multiply-add over two precomputed arrays
//! ([`CompiledMdp::combine_scalarized_into`]) — it never re-reads the
//! `rewards` buffer.
//!
//! The nested [`Mdp`] stays the construction front-end; compile once with
//! [`CompiledMdp::compile`] (which validates) and solve many objectives.

use crate::error::MdpError;
use crate::model::{Mdp, Objective, Policy, StateId};
use crate::shard::{effective_threads, run_chunked, SCALARIZE_MIN_ARMS};

/// A validated, flattened, solver-ready MDP (see the module docs).
#[derive(Debug, Clone)]
pub struct CompiledMdp {
    reward_components: usize,
    /// `arm_offsets[s]..arm_offsets[s+1]` indexes state `s`'s arms. Length
    /// `num_states + 1`.
    arm_offsets: Vec<u32>,
    /// Domain label of every arm. Length `num_arms`.
    arm_labels: Vec<u32>,
    /// `tr_offsets[a]..tr_offsets[a+1]` indexes arm `a`'s transitions.
    /// Length `num_arms + 1`.
    tr_offsets: Vec<u32>,
    /// Destination state of every transition. Length `num_transitions`.
    next: Vec<u32>,
    /// Probability of every transition. Length `num_transitions`.
    prob: Vec<f64>,
    /// Transition-major strided reward components: component `c` of
    /// transition `t` lives at `t * reward_components + c`. Length
    /// `num_transitions * reward_components`.
    rewards: Vec<f64>,
    /// Every state exactly once, in breadth-first order from state 0
    /// (states unreachable from it follow in index order). Length
    /// `num_states`. Precomputed here so the prioritized Gauss-Seidel
    /// sweep costs nothing per solve.
    bfs_order: Vec<u32>,
}

impl CompiledMdp {
    /// Validates `mdp` and flattens it into CSR form.
    ///
    /// # Panics
    /// Panics if the model exceeds `u32` index space (4 billion states,
    /// arms, or transitions) — far beyond what the dense solvers could
    /// process anyway.
    pub fn compile(mdp: &Mdp) -> Result<Self, MdpError> {
        mdp.validate()?;
        let n = mdp.num_states();
        let num_arms = mdp.num_state_actions();
        let num_tr = mdp.num_transitions();
        assert!(
            n < u32::MAX as usize && num_arms < u32::MAX as usize && num_tr < u32::MAX as usize,
            "model exceeds u32 index space"
        );
        let k = mdp.reward_components();

        let mut arm_offsets = Vec::with_capacity(n + 1);
        let mut arm_labels = Vec::with_capacity(num_arms);
        let mut tr_offsets = Vec::with_capacity(num_arms + 1);
        let mut next = Vec::with_capacity(num_tr);
        let mut prob = Vec::with_capacity(num_tr);
        let mut rewards = Vec::with_capacity(num_tr * k);

        arm_offsets.push(0);
        tr_offsets.push(0);
        for (_, arms) in mdp.iter_states() {
            for arm in arms {
                arm_labels.push(arm.label as u32);
                for t in &arm.transitions {
                    next.push(t.to as u32);
                    prob.push(t.prob);
                    rewards.extend_from_slice(&t.reward);
                }
                tr_offsets.push(next.len() as u32);
            }
            arm_offsets.push(arm_labels.len() as u32);
        }

        let bfs_order = bfs_from_base(&arm_offsets, &tr_offsets, &next, n);
        Ok(CompiledMdp {
            reward_components: k,
            arm_offsets,
            arm_labels,
            tr_offsets,
            next,
            prob,
            rewards,
            bfs_order,
        })
    }

    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.arm_offsets.len() - 1
    }

    /// Total number of (state, action) arms.
    #[inline]
    pub fn num_arms(&self) -> usize {
        self.arm_labels.len()
    }

    /// Total number of transitions.
    #[inline]
    pub fn num_transitions(&self) -> usize {
        self.next.len()
    }

    /// Number of reward components per transition.
    #[inline]
    pub fn reward_components(&self) -> usize {
        self.reward_components
    }

    /// Global arm indices of state `s`.
    #[inline]
    pub fn arm_range(&self, s: StateId) -> std::ops::Range<usize> {
        self.arm_offsets[s] as usize..self.arm_offsets[s + 1] as usize
    }

    /// Number of arms of state `s`.
    #[inline]
    pub fn num_arms_of(&self, s: StateId) -> usize {
        (self.arm_offsets[s + 1] - self.arm_offsets[s]) as usize
    }

    /// The global arm index selected by `policy` in state `s`.
    #[inline]
    pub fn policy_arm(&self, policy: &Policy, s: StateId) -> usize {
        self.arm_offsets[s] as usize + policy.choices[s]
    }

    /// Transition indices of global arm `arm`.
    #[inline]
    pub fn transition_range(&self, arm: usize) -> std::ops::Range<usize> {
        self.tr_offsets[arm] as usize..self.tr_offsets[arm + 1] as usize
    }

    /// `(probabilities, destinations)` of global arm `arm`, as parallel
    /// slices — the shape solver inner loops consume.
    #[inline]
    pub fn arm_transitions(&self, arm: usize) -> (&[f64], &[u32]) {
        let r = self.transition_range(arm);
        (&self.prob[r.clone()], &self.next[r])
    }

    /// Domain label of the local action `a` of state `s` (the compiled
    /// equivalent of [`Policy::label`]).
    #[inline]
    pub fn label(&self, s: StateId, a: usize) -> usize {
        self.arm_labels[self.arm_offsets[s] as usize + a] as usize
    }

    /// Reward components of transition `t` (strided view).
    #[inline]
    pub fn transition_rewards(&self, t: usize) -> &[f64] {
        &self.rewards[t * self.reward_components..(t + 1) * self.reward_components]
    }

    /// Raw `(arm_offsets, tr_offsets)` arrays, for layout auditing.
    #[inline]
    pub(crate) fn raw_offsets(&self) -> (&[u32], &[u32]) {
        (&self.arm_offsets, &self.tr_offsets)
    }

    /// Raw destination-index buffer, for layout auditing.
    #[inline]
    pub(crate) fn raw_next(&self) -> &[u32] {
        &self.next
    }

    /// Raw probability buffer, for numeric auditing.
    #[inline]
    pub(crate) fn raw_prob(&self) -> &[f64] {
        &self.prob
    }

    /// Raw strided reward buffer, for layout auditing.
    #[inline]
    pub(crate) fn raw_rewards(&self) -> &[f64] {
        &self.rewards
    }

    /// Every state exactly once, in breadth-first order from state 0
    /// (unreachable states follow in index order) — the sweep order of the
    /// prioritized Gauss-Seidel solver mode.
    #[inline]
    pub fn bfs_order(&self) -> &[u32] {
        &self.bfs_order
    }

    /// Checks that `policy` selects a valid action index for every state
    /// (compiled counterpart of [`Mdp::validate_policy`]).
    pub fn validate_policy(&self, policy: &Policy) -> Result<(), MdpError> {
        if policy.choices.len() != self.num_states() {
            return Err(MdpError::BadPolicy { state: self.num_states() });
        }
        for (s, &a) in policy.choices.iter().enumerate() {
            if a >= self.num_arms_of(s) {
                return Err(MdpError::BadPolicy { state: s });
            }
        }
        Ok(())
    }

    /// Checks an objective's arity against this model.
    pub fn validate_objective(&self, objective: &Objective) -> Result<(), MdpError> {
        if objective.weights.len() != self.reward_components {
            return Err(MdpError::ObjectiveArity {
                found: objective.weights.len(),
                expected: self.reward_components,
            });
        }
        Ok(())
    }

    /// Scalarizes the model under `objective`: the *expected immediate
    /// scalar reward* of every arm, `out[a] = Σ_t p_t · ⟨w, r_t⟩`.
    ///
    /// This is the only form any solver consumes (every Bellman backup
    /// weights rewards by transition probability), so collapsing the strided
    /// reward buffer happens exactly once per sweep, outside all hot loops.
    pub fn scalarize_into(&self, objective: &Objective, out: &mut Vec<f64>) {
        self.scalarize_into_threaded(objective, out, 1);
    }

    /// [`CompiledMdp::scalarize_into`] with the arm range sharded across up
    /// to `threads` scoped threads (each arm's accumulation is independent
    /// and serial, so the result is bit-identical for every thread count).
    /// Extra threads only engage when every shard keeps enough arms for the
    /// spawn cost to pay off; `0`/`1` stay on the calling thread.
    pub fn scalarize_into_threaded(
        &self,
        objective: &Objective,
        out: &mut Vec<f64>,
        threads: usize,
    ) {
        let w = &objective.weights;
        debug_assert_eq!(w.len(), self.reward_components, "objective arity mismatch");
        let arms = self.num_arms();
        out.clear();
        out.resize(arms, 0.0);
        let shards = effective_threads(threads, arms, SCALARIZE_MIN_ARMS);
        run_chunked(out, shards, |start, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = self.scalarize_arm(start + i, w);
            }
        });
    }

    /// Expected immediate scalar reward of one arm under weights `w`:
    /// `Σ_t p_t · ⟨w, r_t⟩`, accumulated serially in CSR order.
    #[inline]
    fn scalarize_arm(&self, arm: usize, w: &[f64]) -> f64 {
        let k = self.reward_components;
        let mut acc = 0.0;
        for t in self.transition_range(arm) {
            let r = &self.rewards[t * k..(t + 1) * k];
            let mut dot = 0.0;
            for (rc, wc) in r.iter().zip(w) {
                dot += rc * wc;
            }
            acc += self.prob[t] * dot;
        }
        acc
    }

    /// Allocating convenience wrapper for [`CompiledMdp::scalarize_into`].
    pub fn scalarize(&self, objective: &Objective) -> Vec<f64> {
        let mut out = Vec::new();
        self.scalarize_into(objective, &mut out);
        out
    }

    /// Scalarizes the ratio-transformed reward `numerator − ρ · denominator`
    /// per arm. Equivalent to `scalarize(&numerator.minus_scaled(denominator,
    /// rho))` but without building the intermediate objective.
    pub fn scalarize_ratio(
        &self,
        numerator: &Objective,
        denominator: &Objective,
        rho: f64,
    ) -> Vec<f64> {
        self.scalarize_ratio_threaded(numerator, denominator, rho, 1)
    }

    /// [`CompiledMdp::scalarize_ratio`] with both component scalarizations
    /// and the combine sharded across up to `threads` threads
    /// (bit-identical for every thread count).
    pub fn scalarize_ratio_threaded(
        &self,
        numerator: &Objective,
        denominator: &Objective,
        rho: f64,
        threads: usize,
    ) -> Vec<f64> {
        let mut exp_num = Vec::new();
        let mut exp_den = Vec::new();
        self.scalarize_into_threaded(numerator, &mut exp_num, threads);
        self.scalarize_into_threaded(denominator, &mut exp_den, threads);
        let mut out = vec![0.0; self.num_arms()];
        Self::combine_scalarized_into_threaded(&exp_num, &exp_den, rho, &mut out, threads);
        out
    }

    /// The ratio solver's per-bisection-step re-scalarization, in place:
    /// `out[a] = exp_num[a] − ρ · exp_den[a]`. Scalarization is linear in
    /// the objective, so once the two component arrays exist, moving ρ costs
    /// O(arms) and never touches the `rewards` buffer again.
    #[inline]
    pub fn combine_scalarized_into(exp_num: &[f64], exp_den: &[f64], rho: f64, out: &mut [f64]) {
        debug_assert_eq!(exp_num.len(), exp_den.len());
        debug_assert_eq!(exp_num.len(), out.len());
        for ((o, n), d) in out.iter_mut().zip(exp_num).zip(exp_den) {
            *o = n - rho * d;
        }
    }

    /// [`CompiledMdp::combine_scalarized_into`] sharded across up to
    /// `threads` threads. Elementwise, so bit-identical for every thread
    /// count; extra threads only engage above the same arm-count threshold
    /// as the threaded scalarization.
    pub fn combine_scalarized_into_threaded(
        exp_num: &[f64],
        exp_den: &[f64],
        rho: f64,
        out: &mut [f64],
        threads: usize,
    ) {
        debug_assert_eq!(exp_num.len(), exp_den.len());
        debug_assert_eq!(exp_num.len(), out.len());
        let shards = effective_threads(threads, out.len(), SCALARIZE_MIN_ARMS);
        run_chunked(out, shards, |start, chunk| {
            let num = &exp_num[start..start + chunk.len()];
            let den = &exp_den[start..start + chunk.len()];
            for ((o, n), d) in chunk.iter_mut().zip(num).zip(den) {
                *o = n - rho * d;
            }
        });
    }

    /// Expected *per-component* immediate reward of every arm, arm-major
    /// strided (`out[a * k + c]`): the form the exact policy evaluator needs
    /// to accumulate component rates without re-reading per-transition
    /// reward vectors.
    pub fn expected_component_rewards(&self) -> Vec<f64> {
        let k = self.reward_components;
        let mut out = vec![0.0; self.num_arms() * k];
        for arm in 0..self.num_arms() {
            let acc = &mut out[arm * k..(arm + 1) * k];
            for t in self.transition_range(arm) {
                let p = self.prob[t];
                let r = &self.rewards[t * k..(t + 1) * k];
                for (a, rc) in acc.iter_mut().zip(r) {
                    *a += p * rc;
                }
            }
        }
        out
    }
}

/// Breadth-first order over states from state 0, following the CSR
/// transition structure; states unreachable from the base are appended in
/// index order so the result is a permutation of `0..n`.
fn bfs_from_base(arm_offsets: &[u32], tr_offsets: &[u32], next: &[u32], n: usize) -> Vec<u32> {
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    if n > 0 {
        seen[0] = true;
        order.push(0u32);
        let mut head = 0usize;
        while head < order.len() {
            let s = order[head] as usize;
            head += 1;
            let t0 = tr_offsets[arm_offsets[s] as usize] as usize;
            let t1 = tr_offsets[arm_offsets[s + 1] as usize] as usize;
            for &to in &next[t0..t1] {
                if !seen[to as usize] {
                    seen[to as usize] = true;
                    order.push(to);
                }
            }
        }
    }
    for (s, was_seen) in seen.iter().enumerate() {
        if !was_seen {
            order.push(s as u32);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;

    fn sample_mdp() -> Mdp {
        // 0: two arms (self-loop; jump to 1). 1: one stochastic arm back.
        let mut m = Mdp::new(2);
        let s0 = m.add_state();
        let s1 = m.add_state();
        m.add_action(s0, 7, vec![Transition::new(s0, 1.0, vec![1.0, 0.0])]);
        m.add_action(s0, 9, vec![Transition::new(s1, 1.0, vec![2.0, 1.0])]);
        m.add_action(
            s1,
            4,
            vec![
                Transition::new(s0, 0.25, vec![0.0, 4.0]),
                Transition::new(s1, 0.75, vec![1.0, 1.0]),
            ],
        );
        m
    }

    #[test]
    fn compiles_counts_and_offsets() {
        let c = CompiledMdp::compile(&sample_mdp()).unwrap();
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.num_arms(), 3);
        assert_eq!(c.num_transitions(), 4);
        assert_eq!(c.reward_components(), 2);
        assert_eq!(c.arm_range(0), 0..2);
        assert_eq!(c.arm_range(1), 2..3);
        assert_eq!(c.transition_range(2), 2..4);
        let (probs, nexts) = c.arm_transitions(2);
        assert_eq!(probs, &[0.25, 0.75]);
        assert_eq!(nexts, &[0, 1]);
    }

    #[test]
    fn labels_roundtrip() {
        let m = sample_mdp();
        let c = CompiledMdp::compile(&m).unwrap();
        assert_eq!(c.label(0, 0), 7);
        assert_eq!(c.label(0, 1), 9);
        assert_eq!(c.label(1, 0), 4);
    }

    #[test]
    fn rejects_invalid_models() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 0.5, vec![0.0])]);
        assert!(matches!(CompiledMdp::compile(&m), Err(MdpError::BadProbabilitySum { .. })));
    }

    /// Every malformed-model shape turns into a structured error — compile
    /// never panics.
    #[test]
    fn rejects_broken_models_without_panicking() {
        // Out-of-range target state id.
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(42, 1.0, vec![0.0])]);
        assert!(matches!(
            CompiledMdp::compile(&m),
            Err(MdpError::DanglingTarget { target: 42, .. })
        ));

        // A state with an empty action list.
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![0.0])]);
        assert!(matches!(CompiledMdp::compile(&m), Err(MdpError::NoActions { state: 1 })));

        // NaN reward.
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![f64::NAN])]);
        assert!(matches!(CompiledMdp::compile(&m), Err(MdpError::NonFiniteReward { .. })));

        // NaN probability.
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, f64::NAN, vec![0.0])]);
        assert!(matches!(CompiledMdp::compile(&m), Err(MdpError::NonFiniteProbability { .. })));
    }

    #[test]
    fn scalarize_is_expected_reward_per_arm() {
        let c = CompiledMdp::compile(&sample_mdp()).unwrap();
        let exp = c.scalarize(&Objective::new(vec![1.0, 0.5]));
        // Arm 0: 1·(1 + 0) = 1. Arm 1: 1·(2 + 0.5) = 2.5.
        // Arm 2: 0.25·(0 + 2) + 0.75·(1 + 0.5) = 0.5 + 1.125 = 1.625.
        assert_eq!(exp, vec![1.0, 2.5, 1.625]);
    }

    #[test]
    fn scalarize_ratio_matches_minus_scaled() {
        let c = CompiledMdp::compile(&sample_mdp()).unwrap();
        let n = Objective::component(0, 2);
        let d = Objective::component(1, 2);
        let rho = 0.375;
        let direct = c.scalarize_ratio(&n, &d, rho);
        let via_objective = c.scalarize(&n.minus_scaled(&d, rho));
        for (a, b) in direct.iter().zip(&via_objective) {
            assert!((a - b).abs() < 1e-15, "{a} vs {b}");
        }
    }

    #[test]
    fn combine_scalarized_is_in_place_fma() {
        let exp_num = [1.0, 2.0, 3.0];
        let exp_den = [0.5, 0.0, 2.0];
        let mut out = [0.0; 3];
        CompiledMdp::combine_scalarized_into(&exp_num, &exp_den, 2.0, &mut out);
        assert_eq!(out, [0.0, 2.0, -1.0]);
    }

    #[test]
    fn expected_component_rewards_are_arm_major() {
        let c = CompiledMdp::compile(&sample_mdp()).unwrap();
        let e = c.expected_component_rewards();
        assert_eq!(e.len(), 6);
        assert_eq!(&e[0..2], &[1.0, 0.0]);
        assert_eq!(&e[2..4], &[2.0, 1.0]);
        // Arm 2: [0.25·0 + 0.75·1, 0.25·4 + 0.75·1] = [0.75, 1.75].
        assert!((e[4] - 0.75).abs() < 1e-15);
        assert!((e[5] - 1.75).abs() < 1e-15);
    }

    /// BFS order visits states level by level from the base state and is a
    /// permutation of `0..n` even with unreachable states.
    #[test]
    fn bfs_order_is_breadth_first_permutation() {
        // 0 -> {2, 3}, 2 -> 1, 3 -> 3 (and 1 -> 0); 4 unreachable-from-0
        // but points somewhere valid so the model compiles.
        let mut m = Mdp::new(1);
        for _ in 0..5 {
            m.add_state();
        }
        m.add_action(
            0,
            0,
            vec![Transition::new(2, 0.5, vec![0.0]), Transition::new(3, 0.5, vec![0.0])],
        );
        m.add_action(1, 0, vec![Transition::new(0, 1.0, vec![0.0])]);
        m.add_action(2, 0, vec![Transition::new(1, 1.0, vec![0.0])]);
        m.add_action(3, 0, vec![Transition::new(3, 1.0, vec![0.0])]);
        m.add_action(4, 0, vec![Transition::new(0, 1.0, vec![0.0])]);
        let c = CompiledMdp::compile(&m).unwrap();
        assert_eq!(c.bfs_order(), &[0, 2, 3, 1, 4]);
    }

    /// Threaded scalarization and combine are bit-identical to the serial
    /// versions for every thread count (the threshold keeps the sample model
    /// single-threaded, but the dispatch path is still exercised).
    #[test]
    fn threaded_scalarize_matches_serial_bitwise() {
        let c = CompiledMdp::compile(&sample_mdp()).unwrap();
        let obj = Objective::new(vec![1.0, -0.5]);
        let serial = c.scalarize(&obj);
        for threads in [0usize, 1, 2, 7] {
            let mut out = Vec::new();
            c.scalarize_into_threaded(&obj, &mut out, threads);
            assert_eq!(serial, out, "threads={threads}");
        }
        let n = Objective::component(0, 2);
        let d = Objective::component(1, 2);
        let serial_ratio = c.scalarize_ratio(&n, &d, 0.375);
        for threads in [2usize, 7] {
            let ratio = c.scalarize_ratio_threaded(&n, &d, 0.375, threads);
            assert_eq!(serial_ratio, ratio, "threads={threads}");
        }
    }

    #[test]
    fn policy_helpers() {
        let c = CompiledMdp::compile(&sample_mdp()).unwrap();
        let p = Policy { choices: vec![1, 0] };
        c.validate_policy(&p).unwrap();
        assert_eq!(c.policy_arm(&p, 0), 1);
        assert_eq!(c.policy_arm(&p, 1), 2);
        let bad = Policy { choices: vec![2, 0] };
        assert_eq!(c.validate_policy(&bad), Err(MdpError::BadPolicy { state: 0 }));
    }
}
