//! Sparse finite Markov decision process representation.
//!
//! An [`Mdp`] stores, for every state, a list of available actions; each
//! action owns a sparse list of [`Transition`]s. Every transition carries a
//! *reward vector* rather than a scalar: the same model can then be solved
//! under several objectives (e.g. the attacker's locked blocks, the other
//! miners' locked blocks, orphan counts, and double-spend payouts are all
//! separate components, combined into scalars only at solve time by an
//! [`Objective`]).

use crate::error::MdpError;

/// Index of a state inside an [`Mdp`].
pub type StateId = usize;

/// Index of an action inside a state's action list.
///
/// Action indices are *local* to a state: action `0` of state `s` and action
/// `0` of state `t` need not represent the same domain action. Domain crates
/// attach meaning via [`ActionArm::label`].
pub type ActionId = usize;

/// A single probabilistic transition of one action.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Destination state.
    pub to: StateId,
    /// Probability of this transition, in `[0, 1]`.
    pub prob: f64,
    /// Reward components accrued when this transition fires. Length must
    /// equal [`Mdp::reward_components`].
    pub reward: Vec<f64>,
}

impl Transition {
    /// Convenience constructor.
    pub fn new(to: StateId, prob: f64, reward: Vec<f64>) -> Self {
        Transition { to, prob, reward }
    }
}

/// One action available in one state: a label plus its outgoing transitions.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionArm {
    /// Domain-level action identifier (e.g. `OnChain1 = 0`). Labels are
    /// carried through solving so a computed [`Policy`] can be
    /// mapped back to domain actions.
    pub label: usize,
    /// Sparse outgoing transition distribution. Probabilities must sum to 1.
    pub transitions: Vec<Transition>,
}

/// Sparse finite MDP with vector-valued rewards.
#[derive(Debug, Clone)]
pub struct Mdp {
    reward_components: usize,
    actions: Vec<Vec<ActionArm>>,
}

/// How tightly probability sums are checked during [`Mdp::validate`].
pub const PROB_SUM_TOLERANCE: f64 = 1e-9;

impl Mdp {
    /// Creates an empty model whose transitions carry `reward_components`
    /// reward components each.
    pub fn new(reward_components: usize) -> Self {
        Mdp { reward_components, actions: Vec::new() }
    }

    /// Number of reward components carried by every transition.
    pub fn reward_components(&self) -> usize {
        self.reward_components
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.actions.len()
    }

    /// Total number of (state, action) pairs.
    pub fn num_state_actions(&self) -> usize {
        self.actions.iter().map(Vec::len).sum()
    }

    /// Total number of stored transitions.
    pub fn num_transitions(&self) -> usize {
        self.actions.iter().flat_map(|arms| arms.iter().map(|a| a.transitions.len())).sum()
    }

    /// Appends a new state with no actions yet and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.actions.push(Vec::new());
        self.actions.len() - 1
    }

    /// Ensures states `0..=id` exist.
    pub fn ensure_state(&mut self, id: StateId) {
        while self.actions.len() <= id {
            self.actions.push(Vec::new());
        }
    }

    /// Adds an action to `state` and returns its local [`ActionId`].
    ///
    /// # Panics
    /// Panics if `state` does not exist. Use [`Mdp::ensure_state`] first when
    /// building out of order.
    pub fn add_action(
        &mut self,
        state: StateId,
        label: usize,
        transitions: Vec<Transition>,
    ) -> ActionId {
        self.actions[state].push(ActionArm { label, transitions });
        self.actions[state].len() - 1
    }

    /// The actions available in `state`.
    pub fn actions(&self, state: StateId) -> &[ActionArm] {
        &self.actions[state]
    }

    /// Iterates over all states as `(StateId, &[ActionArm])`.
    pub fn iter_states(&self) -> impl Iterator<Item = (StateId, &[ActionArm])> {
        self.actions.iter().enumerate().map(|(i, a)| (i, a.as_slice()))
    }

    /// Checks structural well-formedness: at least one state, at least one
    /// action per state, probabilities nonnegative and summing to one, all
    /// targets in range, all reward vectors of the declared arity.
    pub fn validate(&self) -> Result<(), MdpError> {
        if self.actions.is_empty() {
            return Err(MdpError::Empty);
        }
        for (s, arms) in self.actions.iter().enumerate() {
            if arms.is_empty() {
                return Err(MdpError::NoActions { state: s });
            }
            for (a, arm) in arms.iter().enumerate() {
                let mut sum = 0.0;
                for t in &arm.transitions {
                    if t.prob < 0.0 {
                        return Err(MdpError::NegativeProbability {
                            state: s,
                            action: a,
                            prob: t.prob,
                        });
                    }
                    if !t.prob.is_finite() {
                        return Err(MdpError::NonFiniteProbability {
                            state: s,
                            action: a,
                            prob: t.prob,
                        });
                    }
                    if t.to >= self.actions.len() {
                        return Err(MdpError::DanglingTarget { state: s, action: a, target: t.to });
                    }
                    if t.reward.len() != self.reward_components {
                        return Err(MdpError::RewardArity {
                            state: s,
                            action: a,
                            found: t.reward.len(),
                            expected: self.reward_components,
                        });
                    }
                    if let Some(c) = t.reward.iter().position(|r| !r.is_finite()) {
                        return Err(MdpError::NonFiniteReward {
                            state: s,
                            action: a,
                            component: c,
                            value: t.reward[c],
                        });
                    }
                    sum += t.prob;
                }
                if (sum - 1.0).abs() > PROB_SUM_TOLERANCE {
                    return Err(MdpError::BadProbabilitySum { state: s, action: a, sum });
                }
            }
        }
        Ok(())
    }

    /// Checks that `policy` selects a valid action index for every state.
    pub fn validate_policy(&self, policy: &Policy) -> Result<(), MdpError> {
        if policy.choices.len() != self.num_states() {
            return Err(MdpError::BadPolicy { state: self.num_states() });
        }
        for (s, &a) in policy.choices.iter().enumerate() {
            if a >= self.actions[s].len() {
                return Err(MdpError::BadPolicy { state: s });
            }
        }
        Ok(())
    }
}

/// A deterministic stationary policy: one chosen action index per state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    /// `choices[s]` is the selected [`ActionId`] in state `s`.
    pub choices: Vec<ActionId>,
}

impl Policy {
    /// A policy choosing action `0` everywhere (every validated MDP has at
    /// least one action per state, so this is always valid).
    pub fn zeros(num_states: usize) -> Self {
        Policy { choices: vec![0; num_states] }
    }

    /// The domain label of the action this policy picks in `state`.
    pub fn label(&self, mdp: &Mdp, state: StateId) -> usize {
        mdp.actions(state)[self.choices[state]].label
    }
}

/// A linear objective over reward components: the scalar reward of a
/// transition is the dot product of its reward vector with these weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// One weight per reward component.
    pub weights: Vec<f64>,
}

impl Objective {
    /// Creates an objective from component weights.
    pub fn new(weights: Vec<f64>) -> Self {
        Objective { weights }
    }

    /// An objective selecting a single component.
    pub fn component(index: usize, arity: usize) -> Self {
        let mut weights = vec![0.0; arity];
        weights[index] = 1.0;
        Objective { weights }
    }

    /// Checks the weight vector's arity against a model.
    pub fn validate(&self, mdp: &Mdp) -> Result<(), MdpError> {
        if self.weights.len() != mdp.reward_components() {
            return Err(MdpError::ObjectiveArity {
                found: self.weights.len(),
                expected: mdp.reward_components(),
            });
        }
        Ok(())
    }

    /// Scalarizes one reward vector.
    #[inline]
    pub fn scalarize(&self, reward: &[f64]) -> f64 {
        reward.iter().zip(&self.weights).map(|(r, w)| r * w).sum()
    }

    /// The linear combination `self - rho * other`, used by the ratio solver.
    pub fn minus_scaled(&self, other: &Objective, rho: f64) -> Objective {
        Objective {
            weights: self.weights.iter().zip(&other.weights).map(|(n, d)| n - rho * d).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state_chain() -> Mdp {
        // 0 --a--> 1 (reward [1,0]); 1 --a--> 0 (reward [0,1]).
        let mut m = Mdp::new(2);
        let s0 = m.add_state();
        let s1 = m.add_state();
        m.add_action(s0, 7, vec![Transition::new(s1, 1.0, vec![1.0, 0.0])]);
        m.add_action(s1, 8, vec![Transition::new(s0, 1.0, vec![0.0, 1.0])]);
        m
    }

    #[test]
    fn validates_well_formed_model() {
        let m = two_state_chain();
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.num_state_actions(), 2);
        assert_eq!(m.num_transitions(), 2);
        m.validate().expect("well-formed");
    }

    #[test]
    fn rejects_empty_model() {
        let m = Mdp::new(1);
        assert_eq!(m.validate(), Err(MdpError::Empty));
    }

    #[test]
    fn rejects_state_without_actions() {
        let mut m = Mdp::new(1);
        m.add_state();
        assert_eq!(m.validate(), Err(MdpError::NoActions { state: 0 }));
    }

    #[test]
    fn rejects_bad_probability_sum() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 0.5, vec![0.0])]);
        match m.validate() {
            Err(MdpError::BadProbabilitySum { state: 0, action: 0, sum }) => {
                assert!((sum - 0.5).abs() < 1e-12);
            }
            other => panic!("expected BadProbabilitySum, got {other:?}"),
        }
    }

    #[test]
    fn rejects_negative_probability() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(
            s,
            0,
            vec![Transition::new(s, -0.5, vec![0.0]), Transition::new(s, 1.5, vec![0.0])],
        );
        assert!(matches!(m.validate(), Err(MdpError::NegativeProbability { .. })));
    }

    #[test]
    fn rejects_dangling_target() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(99, 1.0, vec![0.0])]);
        assert!(matches!(m.validate(), Err(MdpError::DanglingTarget { target: 99, .. })));
    }

    #[test]
    fn rejects_wrong_reward_arity() {
        let mut m = Mdp::new(2);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![0.0])]);
        assert!(matches!(m.validate(), Err(MdpError::RewardArity { found: 1, expected: 2, .. })));
    }

    #[test]
    fn rejects_nan_probability() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(
            s,
            0,
            vec![Transition::new(s, f64::NAN, vec![0.0]), Transition::new(s, 1.0, vec![0.0])],
        );
        assert!(matches!(
            m.validate(),
            Err(MdpError::NonFiniteProbability { state: 0, action: 0, .. })
        ));
    }

    #[test]
    fn rejects_infinite_probability() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, f64::INFINITY, vec![0.0])]);
        assert!(matches!(m.validate(), Err(MdpError::NonFiniteProbability { .. })));
    }

    #[test]
    fn rejects_nan_reward() {
        let mut m = Mdp::new(2);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 1.0, vec![0.0, f64::NAN])]);
        match m.validate() {
            Err(MdpError::NonFiniteReward { state: 0, action: 0, component: 1, value }) => {
                assert!(value.is_nan());
            }
            other => panic!("expected NonFiniteReward, got {other:?}"),
        }
    }

    #[test]
    fn ensure_state_grows_model() {
        let mut m = Mdp::new(1);
        m.ensure_state(4);
        assert_eq!(m.num_states(), 5);
        m.ensure_state(2); // no shrink
        assert_eq!(m.num_states(), 5);
    }

    #[test]
    fn policy_validation() {
        let m = two_state_chain();
        let good = Policy::zeros(2);
        m.validate_policy(&good).unwrap();
        let short = Policy { choices: vec![0] };
        assert!(m.validate_policy(&short).is_err());
        let out_of_range = Policy { choices: vec![0, 3] };
        assert_eq!(m.validate_policy(&out_of_range), Err(MdpError::BadPolicy { state: 1 }));
    }

    #[test]
    fn policy_label_maps_to_domain_action() {
        let m = two_state_chain();
        let p = Policy::zeros(2);
        assert_eq!(p.label(&m, 0), 7);
        assert_eq!(p.label(&m, 1), 8);
    }

    #[test]
    fn objective_scalarizes_dot_product() {
        let o = Objective::new(vec![2.0, -1.0]);
        assert_eq!(o.scalarize(&[3.0, 4.0]), 2.0);
    }

    #[test]
    fn objective_component_selects_one() {
        let o = Objective::component(1, 3);
        assert_eq!(o.weights, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn objective_arity_checked() {
        let m = two_state_chain();
        assert!(Objective::new(vec![1.0]).validate(&m).is_err());
        assert!(Objective::new(vec![1.0, 0.0]).validate(&m).is_ok());
    }

    #[test]
    fn minus_scaled_combines_linearly() {
        let n = Objective::new(vec![1.0, 0.0]);
        let d = Objective::new(vec![1.0, 1.0]);
        let c = n.minus_scaled(&d, 0.25);
        assert_eq!(c.weights, vec![0.75, -0.25]);
    }
}
