//! Serializable export of a solved policy as a state-key → action table.
//!
//! A [`crate::Policy`] is a dense vector of *local* action indices and is
//! only meaningful next to the exact [`crate::Mdp`] it was solved against.
//! Consumers outside the solver — the scenario simulator replaying an
//! optimal policy on a real block tree, or an HTTP client asking
//! `/v1/policy` what to do in a given state — need the *domain* view
//! instead: "in state `(1, 2, 0, 1, 0)`, play action label 1". A
//! [`PolicyTable`] is exactly that: an ordered map from a caller-chosen
//! stable state key to the action's domain label, with a line-oriented
//! text encoding that round-trips bit-exactly.
//!
//! The table deliberately stores the *label* ([`crate::ActionArm::label`]),
//! not the state-local action index: labels are the stable cross-crate
//! vocabulary (e.g. `bvc_bu::Action::label`), while local indices change
//! whenever a state's action list is reordered.

use std::fmt;

use crate::model::{Mdp, Policy, StateId};

/// Errors from building, encoding, or decoding a [`PolicyTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyTableError {
    /// Two states mapped to the same key, so lookups would be ambiguous.
    DuplicateKey(String),
    /// A key contains a tab or newline, which the text encoding reserves.
    ReservedCharacter(String),
    /// The encoded text's header line is missing or unrecognised.
    BadHeader(String),
    /// An encoded line is not `<key>\t<label>`.
    BadLine {
        /// 1-based line number inside the encoded text.
        line: usize,
        /// The offending line content.
        content: String,
    },
}

impl fmt::Display for PolicyTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyTableError::DuplicateKey(k) => {
                write!(f, "duplicate state key {k:?} in policy table")
            }
            PolicyTableError::ReservedCharacter(k) => {
                write!(f, "state key {k:?} contains a reserved tab/newline character")
            }
            PolicyTableError::BadHeader(h) => {
                write!(f, "unrecognised policy-table header {h:?}")
            }
            PolicyTableError::BadLine { line, content } => {
                write!(f, "malformed policy-table line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for PolicyTableError {}

/// Header line of the text encoding; bump the version on format changes.
const HEADER: &str = "bvc-policy-table v1";

/// A solved policy exported as a sorted `(state key, action label)` table.
///
/// Keys are sorted lexicographically, so [`PolicyTable::encode`] is a
/// canonical form: two tables with the same mappings encode to identical
/// bytes regardless of insertion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyTable {
    /// Sorted by key; lookups binary-search.
    entries: Vec<(String, usize)>,
}

impl PolicyTable {
    /// Exports `policy` over `mdp` as a table keyed by `key_of`.
    ///
    /// `key_of` must be injective over the model's states and produce keys
    /// free of tabs and newlines; violations surface as errors rather than
    /// silently dropped states.
    pub fn from_policy<F>(mdp: &Mdp, policy: &Policy, key_of: F) -> Result<Self, PolicyTableError>
    where
        F: Fn(StateId) -> String,
    {
        let mut entries: Vec<(String, usize)> = Vec::with_capacity(mdp.num_states());
        for s in 0..mdp.num_states() {
            let key = key_of(s);
            if key.contains('\t') || key.contains('\n') {
                return Err(PolicyTableError::ReservedCharacter(key));
            }
            entries.push((key, policy.label(mdp, s)));
        }
        entries.sort();
        if let Some(w) = entries.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(PolicyTableError::DuplicateKey(w[0].0.clone()));
        }
        Ok(PolicyTable { entries })
    }

    /// Number of states in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The action label chosen in the state with key `key`, if present.
    pub fn action_of(&self, key: &str) -> Option<usize> {
        self.entries.binary_search_by(|(k, _)| k.as_str().cmp(key)).ok().map(|i| self.entries[i].1)
    }

    /// Iterates `(key, label)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> + '_ {
        self.entries.iter().map(|(k, l)| (k.as_str(), *l))
    }

    /// Canonical text encoding: a header line, then one `<key>\t<label>`
    /// line per state in key order.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 16 + HEADER.len() + 1);
        out.push_str(HEADER);
        out.push('\n');
        for (key, label) in &self.entries {
            out.push_str(key);
            out.push('\t');
            out.push_str(&label.to_string());
            out.push('\n');
        }
        out
    }

    /// Inverse of [`PolicyTable::encode`].
    pub fn decode(text: &str) -> Result<Self, PolicyTableError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h == HEADER => {}
            other => {
                return Err(PolicyTableError::BadHeader(other.unwrap_or("").to_string()));
            }
        }
        let mut entries = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let (key, label) = match line.split_once('\t') {
                Some((k, rest)) => match rest.parse::<usize>() {
                    Ok(l) => (k.to_string(), l),
                    Err(_) => {
                        return Err(PolicyTableError::BadLine {
                            line: i + 2,
                            content: line.to_string(),
                        });
                    }
                },
                None => {
                    return Err(PolicyTableError::BadLine {
                        line: i + 2,
                        content: line.to_string(),
                    });
                }
            };
            entries.push((key, label));
        }
        entries.sort();
        if let Some(w) = entries.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(PolicyTableError::DuplicateKey(w[0].0.clone()));
        }
        Ok(PolicyTable { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;

    /// A 3-state chain where every state has two actions with labels 10
    /// and 20; the policy picks 20 in state 1 and 10 elsewhere.
    fn tiny() -> (Mdp, Policy) {
        let mut mdp = Mdp::new(1);
        for _ in 0..3 {
            mdp.add_state();
        }
        for s in 0..3 {
            let next = (s + 1) % 3;
            mdp.add_action(s, 10, vec![Transition::new(next, 1.0, vec![0.0])]);
            mdp.add_action(s, 20, vec![Transition::new(next, 1.0, vec![1.0])]);
        }
        let mut policy = Policy::zeros(3);
        policy.choices[1] = 1;
        (mdp, policy)
    }

    #[test]
    fn exports_labels_not_indices() {
        let (mdp, policy) = tiny();
        let table = PolicyTable::from_policy(&mdp, &policy, |s| format!("s{s}")).unwrap();
        assert_eq!(table.len(), 3);
        assert_eq!(table.action_of("s0"), Some(10));
        assert_eq!(table.action_of("s1"), Some(20));
        assert_eq!(table.action_of("s2"), Some(10));
        assert_eq!(table.action_of("nope"), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (mdp, policy) = tiny();
        let table =
            PolicyTable::from_policy(&mdp, &policy, |s| format!("({s}, {})", s * 2)).unwrap();
        let text = table.encode();
        let back = PolicyTable::decode(&text).unwrap();
        assert_eq!(back, table);
        // Canonical: re-encoding the decoded table is byte-identical.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(PolicyTable::decode(""), Err(PolicyTableError::BadHeader(_))));
        assert!(matches!(
            PolicyTable::decode("bvc-policy-table v0\n"),
            Err(PolicyTableError::BadHeader(_))
        ));
        let bad = format!("{HEADER}\nkey-without-tab\n");
        assert!(matches!(
            PolicyTable::decode(&bad),
            Err(PolicyTableError::BadLine { line: 2, .. })
        ));
        let bad = format!("{HEADER}\nk\tnot-a-number\n");
        assert!(matches!(PolicyTable::decode(&bad), Err(PolicyTableError::BadLine { .. })));
        let dup = format!("{HEADER}\nk\t1\nk\t2\n");
        assert!(matches!(PolicyTable::decode(&dup), Err(PolicyTableError::DuplicateKey(_))));
    }

    #[test]
    fn rejects_non_injective_or_reserved_keys() {
        let (mdp, policy) = tiny();
        assert!(matches!(
            PolicyTable::from_policy(&mdp, &policy, |_| "same".to_string()),
            Err(PolicyTableError::DuplicateKey(_))
        ));
        assert!(matches!(
            PolicyTable::from_policy(&mdp, &policy, |s| format!("s\t{s}")),
            Err(PolicyTableError::ReservedCharacter(_))
        ));
    }
}
