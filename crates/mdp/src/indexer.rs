//! State interning and frontier exploration.
//!
//! Domain models are most naturally written as a function from a typed state
//! to its available actions and successor distributions. [`StateIndexer`]
//! interns typed states into dense [`StateId`]s, and [`explore`] drives a
//! breadth-first expansion from a set of start states, producing a fully
//! built [`Mdp`].

use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::Hash;

use crate::error::MdpError;
use crate::model::{Mdp, StateId, Transition};

/// Bidirectional mapping between typed domain states and dense indices.
#[derive(Debug, Clone)]
pub struct StateIndexer<S> {
    forward: HashMap<S, StateId>,
    backward: Vec<S>,
}

impl<S: Clone + Eq + Hash> StateIndexer<S> {
    /// Creates an empty indexer.
    pub fn new() -> Self {
        StateIndexer { forward: HashMap::new(), backward: Vec::new() }
    }

    /// Interns `state`, returning its index and whether it was new.
    pub fn intern(&mut self, state: &S) -> (StateId, bool) {
        if let Some(&id) = self.forward.get(state) {
            return (id, false);
        }
        let id = self.backward.len();
        self.forward.insert(state.clone(), id);
        self.backward.push(state.clone());
        (id, true)
    }

    /// Looks up the index of an already-interned state.
    pub fn get(&self, state: &S) -> Option<StateId> {
        self.forward.get(state).copied()
    }

    /// The typed state behind `id`.
    pub fn state(&self, id: StateId) -> &S {
        &self.backward[id]
    }

    /// Number of interned states.
    pub fn len(&self) -> usize {
        self.backward.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.backward.is_empty()
    }

    /// Iterates `(StateId, &S)` in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, &S)> {
        self.backward.iter().enumerate()
    }
}

impl<S: Clone + Eq + Hash> Default for StateIndexer<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// One action as produced by a domain expansion function: a domain action
/// label and the successor distribution in terms of typed states.
pub struct ActionSpec<S> {
    /// Domain action label (carried into [`crate::ActionArm::label`]).
    pub label: usize,
    /// `(successor, probability, reward vector)` triples.
    pub outcomes: Vec<(S, f64, Vec<f64>)>,
}

/// Result of [`explore`]: the built model plus the state interning used, so
/// callers can map solver output back to typed states.
#[derive(Debug)]
pub struct Explored<S> {
    /// The constructed (validated) model.
    pub mdp: Mdp,
    /// Mapping between typed states and the model's state indices.
    pub indexer: StateIndexer<S>,
}

/// Builds an [`Mdp`] by breadth-first expansion from `start` states.
///
/// `expand` is called exactly once per reachable state and must return a
/// non-empty action list whose outcome probabilities each sum to one. The
/// result is validated before being returned.
pub fn explore<S, F>(
    reward_components: usize,
    start: impl IntoIterator<Item = S>,
    mut expand: F,
) -> Result<Explored<S>, MdpError>
where
    S: Clone + Eq + Hash,
    F: FnMut(&S) -> Vec<ActionSpec<S>>,
{
    let mut indexer = StateIndexer::new();
    let mut queue = VecDeque::new();
    let mut mdp = Mdp::new(reward_components);

    for s in start {
        let (id, fresh) = indexer.intern(&s);
        if fresh {
            let created = mdp.add_state();
            debug_assert_eq!(created, id);
            queue.push_back(id);
        }
    }

    while let Some(id) = queue.pop_front() {
        let state = indexer.state(id).clone();
        for spec in expand(&state) {
            let mut transitions = Vec::with_capacity(spec.outcomes.len());
            for (succ, prob, reward) in spec.outcomes {
                let (to, fresh) = indexer.intern(&succ);
                if fresh {
                    let created = mdp.add_state();
                    debug_assert_eq!(created, to);
                    queue.push_back(to);
                }
                transitions.push(Transition::new(to, prob, reward));
            }
            mdp.add_action(id, spec.label, transitions);
        }
    }

    mdp.validate()?;
    Ok(Explored { mdp, indexer })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut ix = StateIndexer::new();
        let (a, fresh_a) = ix.intern(&"x");
        let (b, fresh_b) = ix.intern(&"x");
        assert_eq!(a, b);
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.get(&"x"), Some(a));
        assert_eq!(ix.get(&"y"), None);
    }

    #[test]
    fn iter_preserves_interning_order() {
        let mut ix = StateIndexer::new();
        ix.intern(&3u32);
        ix.intern(&1u32);
        ix.intern(&2u32);
        let order: Vec<u32> = ix.iter().map(|(_, &s)| s).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    /// A random walk on {0, 1, 2} with an absorbing self-loop at 2.
    fn walk_expand(s: &u32) -> Vec<ActionSpec<u32>> {
        if *s >= 2 {
            vec![ActionSpec { label: 0, outcomes: vec![(2, 1.0, vec![0.0])] }]
        } else {
            vec![ActionSpec {
                label: 0,
                outcomes: vec![(s + 1, 0.5, vec![1.0]), (0, 0.5, vec![0.0])],
            }]
        }
    }

    #[test]
    fn explore_reaches_all_reachable_states() {
        let explored = explore(1, [0u32], walk_expand).unwrap();
        assert_eq!(explored.mdp.num_states(), 3);
        assert_eq!(explored.indexer.get(&2), Some(2));
        explored.mdp.validate().unwrap();
    }

    #[test]
    fn explore_rejects_bad_distributions() {
        let err = match explore(1, [0u32], |_s: &u32| {
            vec![ActionSpec { label: 0, outcomes: vec![(0u32, 0.3, vec![0.0])] }]
        }) {
            Err(e) => e,
            Ok(_) => panic!("expected validation failure"),
        };
        assert!(matches!(err, MdpError::BadProbabilitySum { .. }));
    }

    #[test]
    fn explore_with_multiple_starts_dedups() {
        let explored = explore(1, [0u32, 0u32, 1u32], walk_expand).unwrap();
        assert_eq!(explored.mdp.num_states(), 3);
    }
}
