//! Static certification of solver preconditions ("model audit").
//!
//! Every average-reward solver in this crate ([`crate::solve`]) is only
//! correct under structural preconditions the solve loops themselves never
//! check: the model must be a *unichain* MDP (every stationary policy
//! induces a Markov chain with a single recurrent class), every state must
//! be reachable from the start state, and every transition row must be a
//! genuine probability distribution. A model violating them does not make
//! the solvers crash — they converge to a *wrong number*, which is the
//! worst possible failure mode for a reproduction study.
//!
//! This module is a static analysis pass that runs **without solving**:
//!
//! * **Numeric invariants** — per-arm probability mass within tolerance, no
//!   negative/NaN/infinite probabilities or rewards, CSR offset
//!   monotonicity and index bounds (for [`CompiledMdp`]).
//! * **Graph analysis** — Tarjan SCC over the full transition graph and
//!   over policy-closed subgraphs, maximal end-component (MEC)
//!   decomposition, forward reachability from a start state, and
//!   absorbing-state detection.
//! * **A structured [`AuditReport`]** — per-check pass/warn/fail with
//!   offending state/arm ids, rendered as text or JSON, and convertible
//!   into a structured [`MdpError::AuditFailed`] via [`AuditReport::gate`].
//!
//! ## The unichain verdict
//!
//! Deciding the unichain property exactly is NP-hard (Tsitsiklis 2007), so
//! the `unichain` check is deliberately three-valued:
//!
//! * **Fail** — the model is *certainly multichain*: it has two or more
//!   disjoint maximal end components (a policy staying inside each yields
//!   two disjoint recurrent classes).
//! * **Pass** — the model is *certifiably unichain*: some state `t` is
//!   reachable with positive probability from every state under **every**
//!   policy (a `forall`-attractor fixed point covers the whole state
//!   space), so every policy's every recurrent class contains `t` and is
//!   therefore unique.
//! * **Warn** — neither certificate applies; the single-MEC necessary
//!   condition holds but universal reachability could not be established
//!   from the candidate states tried.
//!
//! For a *specific* policy the question is easy: [`audit_policy`] runs SCC
//! over the policy-closed subgraph and counts its recurrent (closed)
//! classes exactly.
//!
//! All passes are linear or near-linear in the model size: Tarjan and BFS
//! are `O(V + E)`, the MEC fixed point is `O(rounds · E)` with `rounds`
//! bounded by the SCC nesting depth (2–3 in practice), and the attractor
//! certificate is `O(E)` per candidate state.

use std::fmt;

use crate::compiled::CompiledMdp;
use crate::error::MdpError;
use crate::model::{Mdp, Policy, StateId, Transition, PROB_SUM_TOLERANCE};

/// Outcome of a single audit check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditStatus {
    /// The precondition is certified to hold.
    Pass,
    /// The precondition could not be certified either way, or a benign
    /// irregularity was found; solving may still be correct.
    Warn,
    /// The precondition is certainly violated; solver output for this
    /// model is untrustworthy.
    Fail,
}

impl fmt::Display for AuditStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AuditStatus::Pass => "PASS",
            AuditStatus::Warn => "WARN",
            AuditStatus::Fail => "FAIL",
        })
    }
}

/// Result of one named audit check.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Stable check identifier (used in `FAIL(audit: <name>)` sweep cells).
    pub name: &'static str,
    /// The verdict.
    pub status: AuditStatus,
    /// Human-readable explanation of the verdict.
    pub detail: String,
    /// Offending state or arm ids (capped at
    /// [`AuditOptions::max_offenders`]; `detail` says which kind and how
    /// many in total).
    pub offenders: Vec<usize>,
}

impl CheckResult {
    fn pass(name: &'static str, detail: impl Into<String>) -> Self {
        CheckResult {
            name,
            status: AuditStatus::Pass,
            detail: detail.into(),
            offenders: Vec::new(),
        }
    }

    fn warn(name: &'static str, detail: impl Into<String>, offenders: Vec<usize>) -> Self {
        CheckResult { name, status: AuditStatus::Warn, detail: detail.into(), offenders }
    }

    fn fail(name: &'static str, detail: impl Into<String>, offenders: Vec<usize>) -> Self {
        CheckResult { name, status: AuditStatus::Fail, detail: detail.into(), offenders }
    }
}

/// Configuration of an audit pass.
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// Tolerance for per-arm probability mass (`|sum − 1| ≤ tolerance`).
    pub prob_tolerance: f64,
    /// State forward reachability is checked from (the model's designated
    /// start / base state).
    pub start_state: StateId,
    /// Maximum number of offending ids reported per check.
    pub max_offenders: usize,
    /// How many candidate states to try for the universal-reachability
    /// unichain certificate before giving up with a Warn.
    pub unichain_candidates: usize,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            prob_tolerance: PROB_SUM_TOLERANCE,
            start_state: 0,
            max_offenders: 8,
            unichain_candidates: 8,
        }
    }
}

/// Everything an audit pass found, one entry per check.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Number of states in the audited model.
    pub num_states: usize,
    /// Number of (state, action) arms.
    pub num_arms: usize,
    /// Number of stored transitions.
    pub num_transitions: usize,
    /// Per-check results, in execution order.
    pub checks: Vec<CheckResult>,
}

impl AuditReport {
    /// True when no check failed (warnings allowed).
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.status != AuditStatus::Fail)
    }

    /// True when every check passed outright (no warnings either).
    pub fn clean(&self) -> bool {
        self.checks.iter().all(|c| c.status == AuditStatus::Pass)
    }

    /// The worst status across all checks.
    pub fn worst(&self) -> AuditStatus {
        self.checks.iter().map(|c| c.status).max().unwrap_or(AuditStatus::Pass)
    }

    /// Looks up a check by name.
    pub fn check(&self, name: &str) -> Option<&CheckResult> {
        self.checks.iter().find(|c| c.name == name)
    }

    /// Appends an externally computed check (e.g. a [`audit_policy`]
    /// result) to the report.
    pub fn push_check(&mut self, check: CheckResult) {
        self.checks.push(check);
    }

    /// Converts the report into a pre-solve gate: `Err(AuditFailed)` naming
    /// the first failed check, `Ok(())` when nothing failed.
    pub fn gate(&self) -> Result<(), MdpError> {
        match self.checks.iter().find(|c| c.status == AuditStatus::Fail) {
            Some(c) => Err(MdpError::AuditFailed { check: c.name, detail: c.detail.clone() }),
            None => Ok(()),
        }
    }

    /// Renders the report as aligned human-readable text.
    pub fn render_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "model audit: {} states, {} arms, {} transitions",
            self.num_states, self.num_arms, self.num_transitions
        );
        let name_w = self.checks.iter().map(|c| c.name.len()).max().unwrap_or(0);
        for c in &self.checks {
            let _ = write!(out, "  [{}] {:<name_w$}  {}", c.status, c.name, c.detail);
            if !c.offenders.is_empty() {
                let ids: Vec<String> = c.offenders.iter().map(|i| i.to_string()).collect();
                let _ = write!(out, " [ids: {}]", ids.join(", "));
            }
            let _ = writeln!(out);
        }
        let failed = self.checks.iter().filter(|c| c.status == AuditStatus::Fail).count();
        let warned = self.checks.iter().filter(|c| c.status == AuditStatus::Warn).count();
        let _ = writeln!(
            out,
            "verdict: {} ({failed} failed, {warned} warning{})",
            self.worst(),
            if warned == 1 { "" } else { "s" }
        );
        out
    }

    /// Renders the report as a single JSON object (hand-rolled; this
    /// workspace has no serde).
    pub fn render_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"states\":{},\"arms\":{},\"transitions\":{},\"passed\":{},\"checks\":[",
            self.num_states,
            self.num_arms,
            self.num_transitions,
            self.passed()
        );
        for (i, c) in self.checks.iter().enumerate() {
            let status = match c.status {
                AuditStatus::Pass => "pass",
                AuditStatus::Warn => "warn",
                AuditStatus::Fail => "fail",
            };
            let _ = write!(
                out,
                "{}{{\"name\":\"{}\",\"status\":\"{status}\",\"detail\":\"{}\",\"offenders\":[",
                if i > 0 { "," } else { "" },
                json_escape(c.name),
                json_escape(&c.detail)
            );
            for (j, id) in c.offenders.iter().enumerate() {
                let _ = write!(out, "{}{id}", if j > 0 { "," } else { "" });
            }
            let _ = write!(out, "]}}");
        }
        let _ = write!(out, "]}}");
        out
    }
}

fn json_escape(s: &str) -> String {
    use fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Audits a builder-facing [`Mdp`] without compiling (and therefore without
/// requiring it to pass [`Mdp::validate`] first — broken models produce
/// failing checks, not errors).
pub fn audit_mdp(mdp: &Mdp, opts: &AuditOptions) -> AuditReport {
    let mut report = AuditReport {
        num_states: mdp.num_states(),
        num_arms: mdp.num_state_actions(),
        num_transitions: mdp.num_transitions(),
        checks: Vec::new(),
    };
    let structural = structure_check_mdp(mdp, opts, &mut report.checks);
    numeric_checks(NumericView::Nested(mdp), opts, &mut report.checks);
    if structural {
        let graph = AuditGraph::from_mdp(mdp);
        graph_checks(&graph, opts, &mut report.checks);
    } else {
        skip_graph_checks(&mut report.checks);
    }
    report
}

/// Audits a [`CompiledMdp`], including the CSR layout invariants the flat
/// solvers rely on.
pub fn audit_compiled(c: &CompiledMdp, opts: &AuditOptions) -> AuditReport {
    let mut report = AuditReport {
        num_states: c.num_states(),
        num_arms: c.num_arms(),
        num_transitions: c.num_transitions(),
        checks: Vec::new(),
    };
    let structural = csr_layout_check(c, opts, &mut report.checks);
    numeric_checks(NumericView::Compiled(c), opts, &mut report.checks);
    if structural {
        let graph = AuditGraph::from_compiled(c);
        graph_checks(&graph, opts, &mut report.checks);
    } else {
        skip_graph_checks(&mut report.checks);
    }
    report
}

/// Certifies the unichain property of one *specific* policy exactly: Tarjan
/// SCC over the policy-closed subgraph, counting recurrent (closed)
/// classes. Returns a `policy-unichain` check: Pass iff the induced chain
/// has exactly one recurrent class.
pub fn audit_policy(mdp: &Mdp, policy: &Policy, opts: &AuditOptions) -> CheckResult {
    const NAME: &str = "policy-unichain";
    if mdp.validate().is_err() || mdp.validate_policy(policy).is_err() {
        return CheckResult::fail(
            NAME,
            "model or policy is structurally invalid; cannot analyze the induced chain",
            Vec::new(),
        );
    }
    let graph = AuditGraph::from_mdp(mdp);
    let (adj_off, adj) = graph.policy_adjacency(policy);
    let scc = tarjan_scc(&adj_off, &adj);
    let closed = closed_components(&scc, &adj_off, &adj);
    if closed.len() == 1 {
        CheckResult::pass(
            NAME,
            format!(
                "policy-induced chain has exactly one recurrent class ({} of {} states)",
                scc.members(closed[0]).len(),
                graph.n()
            ),
        )
    } else {
        let reps: Vec<usize> =
            closed.iter().take(opts.max_offenders).map(|&c| scc.members(c)[0]).collect();
        CheckResult::fail(
            NAME,
            format!(
                "policy-induced chain has {} disjoint recurrent classes (representative states listed)",
                closed.len()
            ),
            reps,
        )
    }
}

// ---------------------------------------------------------------------------
// Structural checks
// ---------------------------------------------------------------------------

/// Pushes offending `id` keeping the cap; returns the total count via the
/// caller's counter.
fn push_offender(offenders: &mut Vec<usize>, id: usize, cap: usize) {
    if offenders.len() < cap {
        offenders.push(id);
    }
}

/// Structure of a nested model: nonempty, every state has arms, every arm
/// has transitions, all targets in range. Returns whether the graph passes
/// can run safely.
fn structure_check_mdp(mdp: &Mdp, opts: &AuditOptions, checks: &mut Vec<CheckResult>) -> bool {
    const NAME: &str = "structure";
    if mdp.num_states() == 0 {
        checks.push(CheckResult::fail(NAME, "model has no states", Vec::new()));
        return false;
    }
    let n = mdp.num_states();
    let mut offenders = Vec::new();
    let mut bad = 0usize;
    let mut details: Vec<&str> = Vec::new();
    let mut no_actions = false;
    let mut empty_arm = false;
    let mut dangling = false;
    for (s, arms) in mdp.iter_states() {
        let mut state_bad = false;
        if arms.is_empty() {
            no_actions = true;
            state_bad = true;
        }
        for arm in arms {
            if arm.transitions.is_empty() {
                empty_arm = true;
                state_bad = true;
            }
            for t in &arm.transitions {
                if t.to >= n {
                    dangling = true;
                    state_bad = true;
                }
            }
        }
        if state_bad {
            bad += 1;
            push_offender(&mut offenders, s, opts.max_offenders);
        }
    }
    if no_actions {
        details.push("state(s) without actions");
    }
    if empty_arm {
        details.push("arm(s) with no transitions");
    }
    if dangling {
        details.push("transition target(s) out of range");
    }
    if bad == 0 {
        checks.push(CheckResult::pass(
            NAME,
            "every state has ≥1 action, every arm ≥1 transition, all targets in range",
        ));
        true
    } else {
        checks.push(CheckResult::fail(
            NAME,
            format!("{bad} structurally broken state(s): {}", details.join(", ")),
            offenders,
        ));
        false
    }
}

/// CSR layout invariants of a compiled model: offset arrays monotone
/// non-decreasing, anchored at zero, ending at the buffer lengths; all
/// destination indices in range.
fn csr_layout_check(c: &CompiledMdp, opts: &AuditOptions, checks: &mut Vec<CheckResult>) -> bool {
    const NAME: &str = "csr-layout";
    let (arm_offsets, tr_offsets) = c.raw_offsets();
    let next = c.raw_next();
    let mut problems = Vec::new();
    if arm_offsets.first() != Some(&0) || tr_offsets.first() != Some(&0) {
        problems.push("offset arrays not anchored at 0".to_string());
    }
    if arm_offsets.windows(2).any(|w| w[0] > w[1]) {
        problems.push("arm offsets not monotone".to_string());
    }
    if tr_offsets.windows(2).any(|w| w[0] > w[1]) {
        problems.push("transition offsets not monotone".to_string());
    }
    if arm_offsets.last().copied().unwrap_or(0) as usize != c.num_arms() {
        problems.push("arm offsets do not cover the arm buffer".to_string());
    }
    if tr_offsets.last().copied().unwrap_or(0) as usize != c.num_transitions() {
        problems.push("transition offsets do not cover the transition buffer".to_string());
    }
    if c.raw_rewards().len() != c.num_transitions() * c.reward_components() {
        problems.push("reward buffer length mismatch".to_string());
    }
    let n = c.num_states() as u32;
    let mut offenders = Vec::new();
    let mut out_of_range = 0usize;
    for (t, &dest) in next.iter().enumerate() {
        if dest >= n {
            out_of_range += 1;
            push_offender(&mut offenders, t, opts.max_offenders);
        }
    }
    if out_of_range > 0 {
        problems.push(format!("{out_of_range} destination index(es) out of range"));
    }
    if problems.is_empty() && c.num_states() > 0 {
        checks
            .push(CheckResult::pass(NAME, "offsets monotone and anchored; all indices in bounds"));
        true
    } else {
        if c.num_states() == 0 {
            problems.push("model has no states".to_string());
        }
        checks.push(CheckResult::fail(NAME, problems.join("; "), offenders));
        false
    }
}

// ---------------------------------------------------------------------------
// Numeric checks
// ---------------------------------------------------------------------------

/// Uniform iteration over both model representations, so the numeric
/// invariants are written once.
enum NumericView<'a> {
    Nested(&'a Mdp),
    Compiled(&'a CompiledMdp),
}

impl NumericView<'_> {
    /// Calls `f(state, global_arm_index, probs, reward_component_iter)` for
    /// every arm.
    fn for_each_arm(
        &self,
        mut f: impl FnMut(usize, usize, &mut dyn Iterator<Item = (f64, &[f64])>),
    ) {
        match self {
            NumericView::Nested(mdp) => {
                let mut arm_idx = 0usize;
                for (s, arms) in mdp.iter_states() {
                    for arm in arms {
                        let mut it = arm.transitions.iter().map(|t| (t.prob, t.reward.as_slice()));
                        f(s, arm_idx, &mut it);
                        arm_idx += 1;
                    }
                }
            }
            NumericView::Compiled(c) => {
                for s in 0..c.num_states() {
                    for arm in c.arm_range(s) {
                        let mut it = c
                            .transition_range(arm)
                            .map(|t| (c.raw_prob()[t], c.transition_rewards(t)));
                        f(s, arm, &mut it);
                    }
                }
            }
        }
    }
}

/// Probability range/finiteness, per-arm mass, reward finiteness.
fn numeric_checks(view: NumericView<'_>, opts: &AuditOptions, checks: &mut Vec<CheckResult>) {
    let mut bad_prob_arms = Vec::new();
    let mut bad_prob_count = 0usize;
    let mut bad_mass_arms = Vec::new();
    let mut bad_mass_count = 0usize;
    let mut worst_mass_dev = 0.0f64;
    let mut bad_reward_arms = Vec::new();
    let mut bad_reward_count = 0usize;

    view.for_each_arm(|_s, arm, transitions| {
        let mut mass = 0.0f64;
        let mut arm_bad_prob = false;
        let mut arm_bad_reward = false;
        let mut any = false;
        for (p, reward) in transitions {
            any = true;
            if !p.is_finite() || p < 0.0 || p > 1.0 + opts.prob_tolerance {
                arm_bad_prob = true;
            }
            mass += p;
            if reward.iter().any(|r| !r.is_finite()) {
                arm_bad_reward = true;
            }
        }
        if arm_bad_prob {
            bad_prob_count += 1;
            push_offender(&mut bad_prob_arms, arm, opts.max_offenders);
        }
        // An arm with no transitions has zero mass; `structure` already
        // reports it, but the mass check flags it too (it cannot sum to 1).
        let dev = (mass - 1.0).abs();
        if !any || dev.is_nan() || dev > opts.prob_tolerance {
            bad_mass_count += 1;
            push_offender(&mut bad_mass_arms, arm, opts.max_offenders);
        }
        if dev.is_finite() {
            worst_mass_dev = worst_mass_dev.max(dev);
        } else {
            worst_mass_dev = f64::INFINITY;
        }
        if arm_bad_reward {
            bad_reward_count += 1;
            push_offender(&mut bad_reward_arms, arm, opts.max_offenders);
        }
    });

    checks.push(if bad_prob_count == 0 {
        CheckResult::pass("prob-finite", "all probabilities finite and within [0, 1]")
    } else {
        CheckResult::fail(
            "prob-finite",
            format!("{bad_prob_count} arm(s) carry negative, >1, or non-finite probabilities"),
            bad_prob_arms,
        )
    });
    checks.push(if bad_mass_count == 0 {
        CheckResult::pass(
            "prob-mass",
            format!("every arm's mass within {:.1e} of 1 (worst dev {:.2e})", opts.prob_tolerance, worst_mass_dev),
        )
    } else {
        CheckResult::fail(
            "prob-mass",
            format!(
                "{bad_mass_count} arm(s) with probability mass off 1 by more than {:.1e} (worst dev {:.2e})",
                opts.prob_tolerance, worst_mass_dev
            ),
            bad_mass_arms,
        )
    });
    checks.push(if bad_reward_count == 0 {
        CheckResult::pass("reward-finite", "all reward components finite")
    } else {
        CheckResult::fail(
            "reward-finite",
            format!("{bad_reward_count} arm(s) carry NaN or infinite reward components"),
            bad_reward_arms,
        )
    });
}

// ---------------------------------------------------------------------------
// Graph analysis
// ---------------------------------------------------------------------------

/// The model's transition structure with probabilities erased: per-arm
/// positive-probability target lists in CSR form. All graph checks operate
/// on this view, whichever representation it was built from.
struct AuditGraph {
    /// `arm_offsets[s]..arm_offsets[s+1]` indexes state `s`'s arms.
    arm_offsets: Vec<usize>,
    /// `tr_offsets[a]..tr_offsets[a+1]` indexes arm `a`'s targets.
    tr_offsets: Vec<usize>,
    /// Positive-probability transition targets.
    to: Vec<usize>,
}

impl AuditGraph {
    fn from_mdp(mdp: &Mdp) -> Self {
        let mut arm_offsets = Vec::with_capacity(mdp.num_states() + 1);
        let mut tr_offsets = Vec::with_capacity(mdp.num_state_actions() + 1);
        let mut to = Vec::with_capacity(mdp.num_transitions());
        arm_offsets.push(0);
        tr_offsets.push(0);
        for (_, arms) in mdp.iter_states() {
            for arm in arms {
                for t in &arm.transitions {
                    if t.prob > 0.0 {
                        to.push(t.to);
                    }
                }
                tr_offsets.push(to.len());
            }
            arm_offsets.push(tr_offsets.len() - 1);
        }
        AuditGraph { arm_offsets, tr_offsets, to }
    }

    fn from_compiled(c: &CompiledMdp) -> Self {
        let mut arm_offsets = Vec::with_capacity(c.num_states() + 1);
        let mut tr_offsets = Vec::with_capacity(c.num_arms() + 1);
        let mut to = Vec::with_capacity(c.num_transitions());
        arm_offsets.push(0);
        tr_offsets.push(0);
        for s in 0..c.num_states() {
            for arm in c.arm_range(s) {
                let (probs, dests) = c.arm_transitions(arm);
                for (&p, &d) in probs.iter().zip(dests) {
                    if p > 0.0 {
                        to.push(d as usize);
                    }
                }
                tr_offsets.push(to.len());
            }
            arm_offsets.push(tr_offsets.len() - 1);
        }
        AuditGraph { arm_offsets, tr_offsets, to }
    }

    fn n(&self) -> usize {
        self.arm_offsets.len() - 1
    }

    fn num_arms(&self) -> usize {
        self.tr_offsets.len() - 1
    }

    fn arms_of(&self, s: usize) -> std::ops::Range<usize> {
        self.arm_offsets[s]..self.arm_offsets[s + 1]
    }

    fn targets(&self, arm: usize) -> &[usize] {
        &self.to[self.tr_offsets[arm]..self.tr_offsets[arm + 1]]
    }

    /// Union adjacency: all positive-probability edges of all arms, as a
    /// state-level CSR (duplicates retained; the algorithms tolerate them).
    fn union_adjacency(&self) -> (Vec<usize>, Vec<usize>) {
        let mut off = Vec::with_capacity(self.n() + 1);
        off.push(0);
        let mut adj = Vec::with_capacity(self.to.len());
        for s in 0..self.n() {
            for arm in self.arms_of(s) {
                adj.extend_from_slice(self.targets(arm));
            }
            off.push(adj.len());
        }
        (off, adj)
    }

    /// Adjacency of the policy-closed subgraph: only the chosen arm's edges.
    fn policy_adjacency(&self, policy: &Policy) -> (Vec<usize>, Vec<usize>) {
        let mut off = Vec::with_capacity(self.n() + 1);
        off.push(0);
        let mut adj = Vec::new();
        for s in 0..self.n() {
            let arm = self.arm_offsets[s] + policy.choices[s];
            adj.extend_from_slice(self.targets(arm));
            off.push(adj.len());
        }
        (off, adj)
    }
}

/// Strongly connected components, component id per node.
struct Sccs {
    comp: Vec<usize>,
    count: usize,
    /// Nodes grouped by component (computed lazily from `comp`).
    groups: Vec<Vec<usize>>,
}

impl Sccs {
    fn members(&self, comp: usize) -> &[usize] {
        &self.groups[comp]
    }
}

/// Iterative Tarjan over a CSR adjacency (explicit stacks; safe for the
/// 100k+-state setting-2 models where recursion would overflow).
fn tarjan_scc(adj_off: &[usize], adj: &[usize]) -> Sccs {
    let n = adj_off.len() - 1;
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut comp = vec![UNSEEN; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new();
    let mut next_index = 0usize;
    let mut count = 0usize;

    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        call.push((root, adj_off[root]));
        while let Some(&mut (v, ref mut edge)) = call.last_mut() {
            if *edge < adj_off[v + 1] {
                let w = adj[*edge];
                *edge += 1;
                if index[w] == UNSEEN {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, adj_off[w]));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&mut (u, _)) = call.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }

    let mut groups = vec![Vec::new(); count];
    for (node, &c) in comp.iter().enumerate() {
        groups[c].push(node);
    }
    Sccs { comp, count, groups }
}

/// Component ids with no outgoing edge to another component ("bottom" /
/// closed components) — each closed component traps every policy that
/// enters it.
fn closed_components(scc: &Sccs, adj_off: &[usize], adj: &[usize]) -> Vec<usize> {
    let mut closed = vec![true; scc.count];
    for v in 0..adj_off.len() - 1 {
        for &w in &adj[adj_off[v]..adj_off[v + 1]] {
            if scc.comp[v] != scc.comp[w] {
                closed[scc.comp[v]] = false;
            }
        }
    }
    (0..scc.count).filter(|&c| closed[c]).collect()
}

/// Maximal end-component decomposition: the standard prune-to-fixpoint over
/// SCCs. Each returned component is a set of states closed under at least
/// one arm per state whose edges stay inside the set.
fn maximal_end_components(g: &AuditGraph) -> Vec<Vec<usize>> {
    let n = g.n();
    let mut state_alive = vec![true; n];
    let mut arm_alive = vec![true; g.num_arms()];

    loop {
        // Adjacency over alive states via alive arms.
        let mut off = Vec::with_capacity(n + 1);
        off.push(0);
        let mut adj = Vec::new();
        for s in 0..n {
            if state_alive[s] {
                for arm in g.arms_of(s) {
                    if arm_alive[arm] {
                        for &t in g.targets(arm) {
                            if state_alive[t] {
                                adj.push(t);
                            }
                        }
                    }
                }
            }
            off.push(adj.len());
        }
        let scc = tarjan_scc(&off, &adj);

        let mut changed = false;
        for s in 0..n {
            if !state_alive[s] {
                continue;
            }
            let mut any_arm = false;
            for arm in g.arms_of(s) {
                if !arm_alive[arm] {
                    continue;
                }
                // An arm survives only if every positive-probability edge
                // stays inside s's current component.
                let leaves =
                    g.targets(arm).iter().any(|&t| !state_alive[t] || scc.comp[t] != scc.comp[s]);
                if leaves {
                    arm_alive[arm] = false;
                    changed = true;
                } else {
                    any_arm = true;
                }
            }
            if !any_arm {
                state_alive[s] = false;
                changed = true;
            }
        }
        if !changed {
            // Group surviving states by component.
            let mut by_comp: Vec<Vec<usize>> = vec![Vec::new(); scc.count];
            for s in 0..n {
                if state_alive[s] {
                    by_comp[scc.comp[s]].push(s);
                }
            }
            return by_comp.into_iter().filter(|c| !c.is_empty()).collect();
        }
    }
}

/// The `forall`-attractor certificate: counts the states from which
/// `target` is reached with positive probability under **every** policy
/// (fixed point: a state joins when *all* of its arms have at least one
/// edge into the set). Linear in the number of edges via a
/// predecessor-indexed worklist.
fn forall_attractor_size(g: &AuditGraph, pred: &PredIndex, target: usize) -> usize {
    let n = g.n();
    let mut in_set = vec![false; n];
    let mut arm_hit = vec![false; g.num_arms()];
    let mut sat_arms = vec![0usize; n];
    let mut queue = vec![target];
    in_set[target] = true;
    let mut size = 1usize;
    while let Some(u) = queue.pop() {
        for &arm in pred.arms_into(u) {
            if arm_hit[arm] {
                continue;
            }
            arm_hit[arm] = true;
            let s = pred.owner[arm];
            sat_arms[s] += 1;
            let total = g.arms_of(s).len();
            if sat_arms[s] == total && !in_set[s] {
                in_set[s] = true;
                size += 1;
                queue.push(s);
            }
        }
    }
    size
}

/// Transition-reversed index: for each state, which arms have an edge into
/// it; plus each arm's owning state.
struct PredIndex {
    off: Vec<usize>,
    arms: Vec<usize>,
    owner: Vec<usize>,
}

impl PredIndex {
    fn build(g: &AuditGraph) -> Self {
        let n = g.n();
        let mut owner = vec![0usize; g.num_arms()];
        let mut counts = vec![0usize; n];
        for s in 0..n {
            for arm in g.arms_of(s) {
                owner[arm] = s;
                for &t in g.targets(arm) {
                    counts[t] += 1;
                }
            }
        }
        let mut off = Vec::with_capacity(n + 1);
        off.push(0);
        for c in &counts {
            off.push(off.last().copied().unwrap_or(0) + c);
        }
        let mut cursor = off.clone();
        let mut arms = vec![0usize; off[n]];
        for s in 0..n {
            for arm in g.arms_of(s) {
                for &t in g.targets(arm) {
                    arms[cursor[t]] = arm;
                    cursor[t] += 1;
                }
            }
        }
        PredIndex { off, arms, owner }
    }

    fn arms_into(&self, state: usize) -> &[usize] {
        &self.arms[self.off[state]..self.off[state + 1]]
    }
}

/// Placeholder results when structural failures make graph analysis
/// meaningless.
fn skip_graph_checks(checks: &mut Vec<CheckResult>) {
    for name in ["reachable", "absorbing", "end-components", "unichain"] {
        checks.push(CheckResult::warn(
            name,
            "skipped: structural failures prevent graph analysis",
            Vec::new(),
        ));
    }
}

/// Reachability, absorbing states, MEC decomposition, unichain verdict.
fn graph_checks(g: &AuditGraph, opts: &AuditOptions, checks: &mut Vec<CheckResult>) {
    let n = g.n();

    // Forward reachability (BFS over the union graph).
    let (adj_off, adj) = g.union_adjacency();
    let start = opts.start_state.min(n.saturating_sub(1));
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    let mut reached = 1usize;
    while let Some(u) = queue.pop_front() {
        for &w in &adj[adj_off[u]..adj_off[u + 1]] {
            if !seen[w] {
                seen[w] = true;
                reached += 1;
                queue.push_back(w);
            }
        }
    }
    if reached == n {
        checks.push(CheckResult::pass(
            "reachable",
            format!("all {n} states reachable from start state {start}"),
        ));
    } else {
        let mut offenders = Vec::new();
        for (s, &ok) in seen.iter().enumerate() {
            if !ok {
                push_offender(&mut offenders, s, opts.max_offenders);
            }
        }
        checks.push(CheckResult::fail(
            "reachable",
            format!("{} of {n} states unreachable from start state {start}", n - reached),
            offenders,
        ));
    }

    // Absorbing states: every arm a pure self-loop.
    let mut absorbing = Vec::new();
    let mut absorbing_count = 0usize;
    for s in 0..n {
        let arms = g.arms_of(s);
        if !arms.is_empty() && arms.clone().all(|a| g.targets(a).iter().all(|&t| t == s)) {
            absorbing_count += 1;
            push_offender(&mut absorbing, s, opts.max_offenders);
        }
    }
    checks.push(match absorbing_count {
        0 => CheckResult::pass("absorbing", "no absorbing states"),
        1 => CheckResult::warn(
            "absorbing",
            "1 absorbing state (harmless iff it is the unique recurrent class)",
            absorbing,
        ),
        k => CheckResult::fail(
            "absorbing",
            format!("{k} disjoint absorbing states — the model is certainly multichain"),
            absorbing,
        ),
    });

    // Maximal end components.
    let mecs = maximal_end_components(g);
    let mec_check_failed = mecs.len() != 1;
    checks.push(match mecs.len() {
        0 => CheckResult::fail(
            "end-components",
            "no end component found (no policy has a recurrent class — model is malformed)",
            Vec::new(),
        ),
        1 => CheckResult::pass(
            "end-components",
            format!("exactly one maximal end component ({} states)", mecs[0].len()),
        ),
        k => {
            let reps: Vec<usize> = mecs.iter().take(opts.max_offenders).map(|m| m[0]).collect();
            CheckResult::fail(
                "end-components",
                format!(
                    "{k} disjoint maximal end components (representative states listed) — \
                     some policy has {k} recurrent classes"
                ),
                reps,
            )
        }
    });

    // Unichain verdict.
    if mec_check_failed {
        checks.push(CheckResult::fail(
            "unichain",
            "certainly multichain: multiple disjoint end components (see end-components)",
            Vec::new(),
        ));
        return;
    }
    let pred = PredIndex::build(g);
    let mut certified_by = None;
    for &candidate in mecs[0].iter().take(opts.unichain_candidates) {
        if forall_attractor_size(g, &pred, candidate) == n {
            certified_by = Some(candidate);
            break;
        }
    }
    checks.push(match certified_by {
        Some(t) => CheckResult::pass(
            "unichain",
            format!(
                "certified: state {t} is reachable from every state under every policy, \
                 so every policy has a single recurrent class"
            ),
        ),
        None => CheckResult::warn(
            "unichain",
            format!(
                "inconclusive: single end component, but universal reachability could not be \
                 certified from {} candidate state(s) (exact check is NP-hard)",
                mecs[0].len().min(opts.unichain_candidates)
            ),
            Vec::new(),
        ),
    });
}

// ---------------------------------------------------------------------------
// Demo models
// ---------------------------------------------------------------------------

/// A hand-built certainly-multichain model: the start state falls into
/// either of two disjoint absorbing traps — the canonical shape every
/// solver precondition forbids. Auditing it fails the `unichain` check.
/// Used by `bvc audit --demo multichain` and the serve API to show what a
/// failing report looks like.
pub fn demo_multichain() -> Mdp {
    let mut m = Mdp::new(1);
    let start = m.add_state();
    let left = m.add_state();
    let right = m.add_state();
    m.add_action(
        start,
        0,
        vec![Transition::new(left, 0.5, vec![0.0]), Transition::new(right, 0.5, vec![0.0])],
    );
    m.add_action(left, 0, vec![Transition::new(left, 1.0, vec![1.0])]);
    m.add_action(right, 0, vec![Transition::new(right, 1.0, vec![0.0])]);
    m
}

/// A healthy two-state cycle plus a state nothing transitions into.
/// Auditing it fails the `reachable` check.
pub fn demo_unreachable() -> Mdp {
    let mut m = Mdp::new(1);
    let a = m.add_state();
    let b = m.add_state();
    let orphan = m.add_state();
    m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
    m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![0.0])]);
    m.add_action(orphan, 0, vec![Transition::new(a, 1.0, vec![0.0])]);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;

    /// Two states cycling deterministically: irreducible, unichain.
    fn cycle2() -> Mdp {
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![1.0])]);
        m.add_action(b, 0, vec![Transition::new(a, 1.0, vec![0.0])]);
        m
    }

    /// Two disjoint absorbing states reachable from a common start: the
    /// canonical multichain shape.
    fn two_traps() -> Mdp {
        let mut m = Mdp::new(1);
        let start = m.add_state();
        let left = m.add_state();
        let right = m.add_state();
        m.add_action(
            start,
            0,
            vec![Transition::new(left, 0.5, vec![0.0]), Transition::new(right, 0.5, vec![0.0])],
        );
        m.add_action(left, 0, vec![Transition::new(left, 1.0, vec![0.0])]);
        m.add_action(right, 0, vec![Transition::new(right, 1.0, vec![0.0])]);
        m
    }

    #[test]
    fn clean_model_passes_everything() {
        let report = audit_mdp(&cycle2(), &AuditOptions::default());
        assert!(report.clean(), "{}", report.render_text());
        assert_eq!(report.check("unichain").map(|c| c.status), Some(AuditStatus::Pass));
        report.gate().expect("clean model gates through");
    }

    #[test]
    fn compiled_audit_matches_nested() {
        let m = cycle2();
        let c = CompiledMdp::compile(&m).expect("compiles");
        let report = audit_compiled(&c, &AuditOptions::default());
        assert!(report.clean(), "{}", report.render_text());
        assert!(report.check("csr-layout").is_some());
    }

    #[test]
    fn multichain_model_fails_unichain_and_end_components() {
        let report = audit_mdp(&two_traps(), &AuditOptions::default());
        assert!(!report.passed(), "{}", report.render_text());
        let ec = report.check("end-components").expect("check exists");
        assert_eq!(ec.status, AuditStatus::Fail);
        assert_eq!(report.check("unichain").map(|c| c.status), Some(AuditStatus::Fail));
        assert_eq!(report.check("absorbing").map(|c| c.status), Some(AuditStatus::Fail));
        // The gate surfaces a structured error naming the first failed check.
        let err = report.gate().expect_err("must gate");
        assert!(matches!(err, MdpError::AuditFailed { .. }), "{err:?}");
    }

    #[test]
    fn unreachable_state_is_reported_by_id() {
        let mut m = cycle2();
        let orphan = m.add_state();
        m.add_action(orphan, 0, vec![Transition::new(0, 1.0, vec![0.0])]);
        let report = audit_mdp(&m, &AuditOptions::default());
        let r = report.check("reachable").expect("check exists");
        assert_eq!(r.status, AuditStatus::Fail);
        assert_eq!(r.offenders, vec![orphan]);
    }

    #[test]
    fn nan_probability_and_reward_are_flagged() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(
            s,
            0,
            vec![
                Transition::new(s, f64::NAN, vec![0.0]),
                Transition::new(s, 1.0, vec![f64::INFINITY]),
            ],
        );
        let report = audit_mdp(&m, &AuditOptions::default());
        assert_eq!(report.check("prob-finite").map(|c| c.status), Some(AuditStatus::Fail));
        assert_eq!(report.check("prob-mass").map(|c| c.status), Some(AuditStatus::Fail));
        assert_eq!(report.check("reward-finite").map(|c| c.status), Some(AuditStatus::Fail));
    }

    #[test]
    fn non_stochastic_row_fails_mass_only() {
        let mut m = Mdp::new(1);
        let s = m.add_state();
        m.add_action(s, 0, vec![Transition::new(s, 0.5, vec![0.0])]);
        let report = audit_mdp(&m, &AuditOptions::default());
        assert_eq!(report.check("prob-mass").map(|c| c.status), Some(AuditStatus::Fail));
        assert_eq!(report.check("prob-finite").map(|c| c.status), Some(AuditStatus::Pass));
    }

    #[test]
    fn structural_breakage_skips_graph_analysis() {
        let mut m = Mdp::new(1);
        m.add_state(); // no actions at all
        let report = audit_mdp(&m, &AuditOptions::default());
        assert_eq!(report.check("structure").map(|c| c.status), Some(AuditStatus::Fail));
        assert_eq!(report.check("unichain").map(|c| c.status), Some(AuditStatus::Warn));
    }

    #[test]
    fn policy_unichain_distinguishes_policies() {
        // State 0 has a "stay" arm and a "join cycle" arm; states 1/2 cycle.
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        let c = m.add_state();
        m.add_action(a, 0, vec![Transition::new(a, 1.0, vec![0.0])]); // stay
        m.add_action(a, 1, vec![Transition::new(b, 1.0, vec![0.0])]); // join
        m.add_action(b, 0, vec![Transition::new(c, 1.0, vec![0.0])]);
        m.add_action(c, 0, vec![Transition::new(b, 1.0, vec![0.0])]);
        let opts = AuditOptions::default();
        // Staying policy: {0} and {1,2} are both recurrent → multichain.
        let split = audit_policy(&m, &Policy { choices: vec![0, 0, 0] }, &opts);
        assert_eq!(split.status, AuditStatus::Fail);
        assert_eq!(split.offenders.len(), 2);
        // Joining policy: only {1,2} recurrent → unichain.
        let joined = audit_policy(&m, &Policy { choices: vec![1, 0, 0] }, &opts);
        assert_eq!(joined.status, AuditStatus::Pass, "{}", joined.detail);
        // The *model* is multichain (the staying policy witnesses it).
        let report = audit_mdp(&m, &opts);
        assert_eq!(report.check("unichain").map(|c| c.status), Some(AuditStatus::Fail));
    }

    #[test]
    fn mec_detection_catches_non_bottom_end_component() {
        // 0 can stay (self-loop arm) or fall into absorbing 1: two MECs
        // ({0}, {1}) although the union graph has a single bottom SCC {1}.
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(a, 1.0, vec![0.0])]);
        m.add_action(a, 1, vec![Transition::new(b, 1.0, vec![0.0])]);
        m.add_action(b, 0, vec![Transition::new(b, 1.0, vec![0.0])]);
        let report = audit_mdp(&m, &AuditOptions::default());
        let ec = report.check("end-components").expect("exists");
        assert_eq!(ec.status, AuditStatus::Fail, "{}", ec.detail);
        assert!(ec.detail.contains("2 disjoint"), "{}", ec.detail);
    }

    #[test]
    fn transient_states_do_not_break_unichain() {
        // 0 → 1 → 1: state 0 transient, single recurrent class {1}.
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![0.0])]);
        m.add_action(b, 0, vec![Transition::new(b, 1.0, vec![0.0])]);
        let report = audit_mdp(&m, &AuditOptions::default());
        assert_eq!(report.check("unichain").map(|c| c.status), Some(AuditStatus::Pass));
        assert_eq!(report.check("absorbing").map(|c| c.status), Some(AuditStatus::Warn));
        assert!(report.passed());
    }

    #[test]
    fn zero_probability_edges_are_ignored_by_graph_analysis() {
        // The structural edge 1 → 0 has probability zero: state 1 is
        // effectively absorbing, and 0 cannot actually be re-entered.
        let mut m = Mdp::new(1);
        let a = m.add_state();
        let b = m.add_state();
        m.add_action(a, 0, vec![Transition::new(b, 1.0, vec![0.0])]);
        m.add_action(
            b,
            0,
            vec![Transition::new(a, 0.0, vec![0.0]), Transition::new(b, 1.0, vec![0.0])],
        );
        let report = audit_mdp(&m, &AuditOptions::default());
        assert_eq!(report.check("absorbing").map(|c| c.status), Some(AuditStatus::Warn));
        assert_eq!(report.check("unichain").map(|c| c.status), Some(AuditStatus::Pass));
    }

    #[test]
    fn render_text_and_json_are_well_formed() {
        let report = audit_mdp(&two_traps(), &AuditOptions::default());
        let text = report.render_text();
        assert!(text.contains("[FAIL]"), "{text}");
        assert!(text.contains("verdict: FAIL"), "{text}");
        let json = report.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"passed\":false"), "{json}");
        assert!(json.contains("\"name\":\"unichain\""), "{json}");
        // Balanced braces/brackets (cheap structural sanity without a
        // JSON parser in scope).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn offender_lists_are_capped() {
        let mut m = Mdp::new(1);
        let hub = m.add_state();
        // 20 unreachable states.
        let mut orphans = Vec::new();
        for _ in 0..20 {
            orphans.push(m.add_state());
        }
        m.add_action(hub, 0, vec![Transition::new(hub, 1.0, vec![0.0])]);
        for &o in &orphans {
            m.add_action(o, 0, vec![Transition::new(hub, 1.0, vec![0.0])]);
        }
        let opts = AuditOptions { max_offenders: 4, ..Default::default() };
        let report = audit_mdp(&m, &opts);
        let r = report.check("reachable").expect("exists");
        assert_eq!(r.status, AuditStatus::Fail);
        assert_eq!(r.offenders.len(), 4);
        assert!(r.detail.contains("20 of 21"), "{}", r.detail);
    }
}
