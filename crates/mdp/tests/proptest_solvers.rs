//! Property-based tests for the MDP solvers on randomly generated models.
//!
//! Random models are small (≤ 8 states) but fully stochastic and strongly
//! connected by construction (every action keeps a minimum probability of
//! jumping to state 0), which guarantees the unichain assumption the
//! average-reward solvers rely on.

use bvc_mdp::solve::{
    average_reward_policy_iteration, evaluate_policy, maximize_ratio, policy_iteration,
    relative_value_iteration, value_iteration, AvgPiOptions, EvalOptions, PiOptions, RatioOptions,
    RviOptions, ViOptions,
};
use bvc_mdp::{Mdp, Objective, Transition};
use proptest::prelude::*;

/// Raw (target, weight, reward) transition triples of one action; weights
/// are normalized into probabilities at build time.
type RawAction = Vec<(usize, u32, [i32; 2])>;

/// A declarative description of a random model that proptest can shrink.
#[derive(Debug, Clone)]
struct RandomModel {
    n_states: usize,
    /// Per state: a list of actions.
    actions: Vec<Vec<RawAction>>,
}

impl RandomModel {
    fn build(&self) -> Mdp {
        let mut m = Mdp::new(2);
        for _ in 0..self.n_states {
            m.add_state();
        }
        for (s, arms) in self.actions.iter().enumerate() {
            for (label, raw) in arms.iter().enumerate() {
                // Always include a recurrence anchor to state 0 so the chain
                // is unichain regardless of the sampled structure.
                let mut total: f64 = raw.iter().map(|(_, w, _)| *w as f64).sum();
                total += 1.0; // anchor weight
                let mut transitions: Vec<Transition> = raw
                    .iter()
                    .map(|(t, w, r)| {
                        Transition::new(
                            t % self.n_states,
                            *w as f64 / total,
                            vec![f64::from(r[0]) / 8.0, f64::from(r[1].abs()) / 8.0],
                        )
                    })
                    .collect();
                transitions.push(Transition::new(0, 1.0 / total, vec![0.0, 0.0]));
                m.add_action(s, label, transitions);
            }
        }
        m
    }
}

fn random_model() -> impl Strategy<Value = RandomModel> {
    (2usize..6).prop_flat_map(|n| {
        let arm = proptest::collection::vec(
            (0usize..n, 1u32..10, (-8i32..8, 0i32..8).prop_map(|(a, b)| [a, b])),
            1..4,
        );
        let arms = proptest::collection::vec(arm, 1..3);
        proptest::collection::vec(arms, n)
            .prop_map(move |actions| RandomModel { n_states: n, actions })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The gain reported by RVI equals the exact long-run rate of the policy
    /// it returns — i.e. the solver's certificate is self-consistent.
    #[test]
    fn rvi_gain_matches_policy_evaluation(model in random_model()) {
        let m = model.build();
        let obj = Objective::new(vec![1.0, 0.5]);
        let sol = relative_value_iteration(&m, &obj, &RviOptions::default()).unwrap();
        let ev = evaluate_policy(&m, &sol.policy, &EvalOptions::default()).unwrap();
        prop_assert!((ev.rate(&obj.weights) - sol.gain).abs() < 1e-5,
            "gain {} vs evaluated {}", sol.gain, ev.rate(&obj.weights));
    }

    /// RVI's policy is at least as good as every *other* deterministic
    /// stationary policy we can cheaply enumerate (first 64 policies by
    /// mixed-radix counting).
    #[test]
    fn rvi_dominates_enumerated_policies(model in random_model()) {
        let m = model.build();
        let obj = Objective::new(vec![1.0, 0.0]);
        let sol = relative_value_iteration(&m, &obj, &RviOptions::default()).unwrap();
        let n = m.num_states();
        let radices: Vec<usize> = (0..n).map(|s| m.actions(s).len()).collect();
        let mut policy = bvc_mdp::Policy::zeros(n);
        for _ in 0..64 {
            let ev = evaluate_policy(&m, &policy, &EvalOptions::default()).unwrap();
            prop_assert!(ev.rate(&obj.weights) <= sol.gain + 1e-5,
                "policy {:?} beats optimal: {} > {}", policy.choices,
                ev.rate(&obj.weights), sol.gain);
            // Increment the mixed-radix counter; stop after wrap-around.
            let mut carry = true;
            for (choice, &radix) in policy.choices.iter_mut().zip(&radices) {
                if !carry { break; }
                *choice += 1;
                if *choice == radix {
                    *choice = 0;
                } else {
                    carry = false;
                }
            }
            if carry { break; }
        }
    }

    /// The ratio solver's reported value matches the exact ratio of the
    /// policy it returns, and no enumerated policy achieves a better ratio.
    #[test]
    fn ratio_solution_is_consistent_and_dominant(model in random_model()) {
        let m = model.build();
        let num = Objective::component(0, 2);
        // Denominator: strictly positive per step so ratios are well-defined.
        let den = Objective::new(vec![0.0, 1.0]);
        // Shift denominator rewards to be >= 1/8 per step by adding a constant:
        // instead, skip models where some action has zero denominator rate.
        let sol = maximize_ratio(&m, &num, &den, &RatioOptions::default());
        let sol = match sol { Ok(s) => s, Err(_) => return Ok(()) };
        let ev = evaluate_policy(&m, &sol.policy, &EvalOptions::default()).unwrap();
        let n_rate = ev.rate(&num.weights);
        let d_rate = ev.rate(&den.weights);
        if d_rate > 1e-6 && n_rate > 1e-6 {
            prop_assert!((n_rate / d_rate - sol.value).abs() < 1e-3,
                "reported {} vs evaluated {}", sol.value, n_rate / d_rate);
        }
        // Dominance over the all-zeros policy.
        let ev0 = evaluate_policy(&m, &bvc_mdp::Policy::zeros(m.num_states()),
                                  &EvalOptions::default()).unwrap();
        let r0 = ev0.ratio(&num.weights, &den.weights);
        prop_assert!(r0 <= sol.value + 1e-3, "baseline ratio {} > optimal {}", r0, sol.value);
    }

    /// Discounted solvers agree with each other on random models.
    #[test]
    fn vi_agrees_with_pi(model in random_model()) {
        let m = model.build();
        let obj = Objective::new(vec![1.0, -0.25]);
        let vi = value_iteration(&m, &obj,
            &ViOptions { discount: 0.95, tolerance: 1e-11, ..Default::default() }).unwrap();
        let pi = policy_iteration(&m, &obj,
            &PiOptions { discount: 0.95, ..Default::default() }).unwrap();
        for (a, b) in vi.values.iter().zip(&pi.values) {
            prop_assert!((a - b).abs() < 1e-5, "VI {} vs PI {}", a, b);
        }
    }

    /// Average-reward policy iteration and relative value iteration are
    /// two very different algorithms; they must agree on the optimal gain.
    #[test]
    fn avg_pi_agrees_with_rvi(model in random_model()) {
        let m = model.build();
        let obj = Objective::new(vec![1.0, 0.25]);
        let rvi = relative_value_iteration(&m, &obj, &RviOptions::default()).unwrap();
        let pi = average_reward_policy_iteration(&m, &obj, &AvgPiOptions::default()).unwrap();
        prop_assert!((rvi.gain - pi.gain).abs() < 1e-5,
            "RVI {} vs PI {}", rvi.gain, pi.gain);
    }

    /// Stationary distributions are probability vectors.
    #[test]
    fn stationary_distribution_is_normalized(model in random_model()) {
        let m = model.build();
        let ev = evaluate_policy(&m, &bvc_mdp::Policy::zeros(m.num_states()),
                                 &EvalOptions::default()).unwrap();
        let sum: f64 = ev.stationary.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(ev.stationary.iter().all(|&p| p >= -1e-12));
    }
}

// ---------------------------------------------------------------------------
// Differential tests: the CSR-compiled solvers against the nested-layout
// reference implementations (`bvc_mdp::solve::reference`). The two paths run
// the same algorithms with the same warm-start and tie-breaking rules — only
// the memory layout differs — so agreement is expected to near machine
// precision, far tighter than the solver tolerances themselves.
// ---------------------------------------------------------------------------

use bvc_mdp::solve::reference::{
    evaluate_policy_nested, maximize_ratio_nested, relative_value_iteration_nested,
    value_iteration_nested,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled RVI and nested RVI return the same gain, bias and policy.
    #[test]
    fn compiled_rvi_matches_nested(model in random_model()) {
        let m = model.build();
        let obj = Objective::new(vec![1.0, 0.5]);
        let opts = RviOptions::default();
        let fast = relative_value_iteration(&m, &obj, &opts).unwrap();
        let slow = relative_value_iteration_nested(&m, &obj, &opts).unwrap();
        prop_assert!((fast.gain - slow.gain).abs() < 1e-9,
            "gain: compiled {} vs nested {}", fast.gain, slow.gain);
        prop_assert_eq!(&fast.policy.choices, &slow.policy.choices);
        for (a, b) in fast.bias.iter().zip(&slow.bias) {
            prop_assert!((a - b).abs() < 1e-9, "bias: compiled {} vs nested {}", a, b);
        }
    }

    /// Compiled VI and nested VI return the same values and policy.
    #[test]
    fn compiled_vi_matches_nested(model in random_model()) {
        let m = model.build();
        let obj = Objective::new(vec![1.0, -0.25]);
        let opts = ViOptions { discount: 0.9, tolerance: 1e-12, ..Default::default() };
        let fast = value_iteration(&m, &obj, &opts).unwrap();
        let slow = value_iteration_nested(&m, &obj, &opts).unwrap();
        prop_assert_eq!(&fast.policy.choices, &slow.policy.choices);
        for (a, b) in fast.values.iter().zip(&slow.values) {
            prop_assert!((a - b).abs() < 1e-9, "value: compiled {} vs nested {}", a, b);
        }
    }

    /// Compiled and nested fixed-policy evaluation agree on the stationary
    /// distribution and every component rate.
    #[test]
    fn compiled_eval_matches_nested(model in random_model()) {
        let m = model.build();
        let policy = bvc_mdp::Policy::zeros(m.num_states());
        let opts = EvalOptions::default();
        let fast = evaluate_policy(&m, &policy, &opts).unwrap();
        let slow = evaluate_policy_nested(&m, &policy, &opts).unwrap();
        for (a, b) in fast.stationary.iter().zip(&slow.stationary) {
            prop_assert!((a - b).abs() < 1e-9, "stationary: {} vs {}", a, b);
        }
        for (a, b) in fast.component_rates.iter().zip(&slow.component_rates) {
            prop_assert!((a - b).abs() < 1e-9, "rate: {} vs {}", a, b);
        }
    }

    /// The sharded Bellman kernel is BIT-identical to the single-threaded
    /// kernel for every thread count: same gain bits, same bias bits, same
    /// policy. `shard_min_states: 1` forces sharding even on these tiny
    /// models, so shard boundaries land mid-model and thread counts exceed
    /// the state count (7 threads on ≤ 6 states) — the edge cases a real
    /// sweep never exercises.
    #[test]
    fn sharded_rvi_bit_identical_across_thread_counts(model in random_model()) {
        let m = model.build();
        let obj = Objective::new(vec![1.0, 0.5]);
        let base = relative_value_iteration(&m, &obj, &RviOptions::default()).unwrap();
        for threads in [2usize, 4, 7] {
            let opts =
                RviOptions { solve_threads: threads, shard_min_states: 1, ..Default::default() };
            let sharded = relative_value_iteration(&m, &obj, &opts).unwrap();
            prop_assert_eq!(sharded.gain.to_bits(), base.gain.to_bits(),
                "gain bits diverge at {} threads: {} vs {}", threads, sharded.gain, base.gain);
            prop_assert_eq!(&sharded.policy.choices, &base.policy.choices,
                "policy diverges at {} threads", threads);
            prop_assert_eq!(sharded.iterations, base.iterations,
                "iteration count diverges at {} threads", threads);
            for (s, (a, b)) in sharded.bias.iter().zip(&base.bias).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "bias[{}] bits diverge at {} threads: {} vs {}", s, threads, a, b);
            }
        }
    }

    /// The threaded kernel agrees with the nested-layout reference solver
    /// to 1e-9 — the same bound the single-threaded differential test
    /// enforces, so sharding adds no numeric drift against the reference.
    #[test]
    fn threaded_rvi_matches_reference(model in random_model()) {
        let m = model.build();
        let obj = Objective::new(vec![1.0, 0.5]);
        let opts = RviOptions { solve_threads: 4, shard_min_states: 1, ..Default::default() };
        let fast = relative_value_iteration(&m, &obj, &opts).unwrap();
        let slow = relative_value_iteration_nested(&m, &obj, &RviOptions::default()).unwrap();
        prop_assert!((fast.gain - slow.gain).abs() < 1e-9,
            "gain: threaded {} vs reference {}", fast.gain, slow.gain);
        prop_assert_eq!(&fast.policy.choices, &slow.policy.choices);
        for (a, b) in fast.bias.iter().zip(&slow.bias) {
            prop_assert!((a - b).abs() < 1e-9, "bias: threaded {} vs reference {}", a, b);
        }
    }

    /// The compiled ratio solver (in-place re-scalarization + warm-started
    /// kernel) and the nested one (objective rebuilt per bisection step)
    /// agree on the optimal ratio and the attaining policy.
    #[test]
    fn compiled_ratio_matches_nested(model in random_model()) {
        let m = model.build();
        let num = Objective::component(0, 2);
        let den = Objective::new(vec![0.0, 1.0]);
        let opts = RatioOptions::default();
        let fast = maximize_ratio(&m, &num, &den, &opts);
        let slow = maximize_ratio_nested(&m, &num, &den, &opts);
        match (fast, slow) {
            (Ok(f), Ok(s)) => {
                prop_assert!((f.value - s.value).abs() < 1e-9,
                    "ratio: compiled {} vs nested {}", f.value, s.value);
                prop_assert_eq!(f.inner_solves, s.inner_solves);
                prop_assert_eq!(&f.policy.choices, &s.policy.choices);
            }
            (Err(_), Err(_)) => {}
            (f, s) => prop_assert!(false, "one path failed: {:?} vs {:?}", f.is_ok(), s.is_ok()),
        }
    }
}
