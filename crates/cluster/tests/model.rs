//! Exhaustive model checks of the coordinator lease state machine.
//!
//! Runs only under `RUSTFLAGS="--cfg bvc_check"`. Each scenario encodes a
//! race that PR 5 actually fixed, and is checked twice:
//!
//! * against the shipped code, `explore` must pass **exhaustively**
//!   (every interleaving up to the preemption bound, no cap hit);
//! * with the matching [`ModelFaults`] flag re-introducing the historical
//!   bug, `explore` must find a violation — and the reported schedule
//!   must replay to the same violation deterministically.
#![cfg(bvc_check)]

use std::time::Duration;

use bvc_check::{explore, replay, Config, Report};
use bvc_cluster::coordinator::{ClusterConfig, ModelFaults};
use bvc_cluster::model::ModelCluster;

fn cfg_lease_ms(ms: u64, fail_fast: bool) -> ClusterConfig {
    ClusterConfig {
        lease: Duration::from_millis(ms),
        fail_fast,
        max_dispatch: 5,
        ..ClusterConfig::default()
    }
}

fn model_config() -> Config {
    // Transitions here are coarse (one lock section each), so the state
    // space is small; bound 2 with generous caps still finishes fast.
    Config { max_preemptions: 2, ..Config::default() }
}

/// Asserts the report passed exhaustively (no violation, bound reached,
/// not capped).
fn assert_exhaustive_pass(report: &Report, what: &str) {
    assert!(
        report.violation.is_none(),
        "{what}: unexpected violation:\n{}",
        report.violation.as_ref().unwrap()
    );
    assert!(report.exhaustive_pass(), "{what}: exploration was capped (not exhaustive)");
}

/// Asserts a violation was found and that its schedule replays to the
/// same violation, three times.
fn assert_violation_replays<F>(report: &Report, what: &str, f: F)
where
    F: Fn() + Send + Sync + Clone + 'static,
{
    let v = report.violation.as_ref().unwrap_or_else(|| panic!("{what}: no violation found"));
    for _ in 0..3 {
        let r = replay(&model_config(), &v.schedule, f.clone());
        let rv = r
            .violation
            .as_ref()
            .unwrap_or_else(|| panic!("{what}: schedule {:?} did not replay", v.schedule));
        assert_eq!(rv.kind, v.kind, "{what}: replayed kind differs");
        assert_eq!(rv.schedule, v.schedule, "{what}: replayed schedule differs");
    }
}

// ---------------------------------------------------------------------------
// Race 1: late Done after lease expiry (stale queue index)
// ---------------------------------------------------------------------------

/// Worker 1 holds both cells; its Done for cell 0 races the expiry
/// watchdog requeueing both. Afterwards worker 2 drains. Every cell must
/// end terminal exactly once: `done_count == n`, each fingerprint
/// journaled exactly once, in input order.
fn late_done_scenario(faults: ModelFaults) -> impl Fn() + Send + Sync + Clone + 'static {
    move || {
        let m = std::sync::Arc::new(ModelCluster::new(2, cfg_lease_ms(100, false), faults.clone()));
        let w1 = m.register_worker();
        let w2 = m.register_worker();
        let (lease, fps) = m.claim(w1, 2, 0).expect("initial grant");
        assert_eq!(fps, vec![m.fp_of(0), m.fp_of(1)]);

        let ma = std::sync::Arc::clone(&m);
        let a = bvc_check::thread::spawn(move || ma.done(lease, ma.fp_of(0), true));
        let mb = std::sync::Arc::clone(&m);
        let b = bvc_check::thread::spawn(move || mb.expire_at(200));
        a.join().unwrap();
        b.join().unwrap();

        m.drain(w2, 300);
        let s = m.snapshot();
        assert_eq!(s.done_count, 2, "done_count overshoot or undershoot: {s:?}");
        assert!(s.terminal.iter().all(|&t| t), "non-terminal cell: {s:?}");
        assert!(s.succeeded.iter().all(|&t| t), "failed cell: {s:?}");
        assert_eq!(s.queued, 0, "stale queue entries: {s:?}");
        assert_eq!(s.journal_cursor, 2, "journal cursor parked: {s:?}");
        let app = m.appended();
        assert_eq!(app, vec![m.fp_of(0), m.fp_of(1)], "journal lines duplicated or reordered");
    }
}

#[test]
fn late_done_after_expiry_fixed_passes() {
    let report = explore(&model_config(), late_done_scenario(ModelFaults::default()));
    assert_exhaustive_pass(&report, "late-done fixed");
}

#[test]
fn late_done_after_expiry_broken_is_found_and_replays() {
    let faults = ModelFaults { keep_stale_queue_index: true, ..ModelFaults::default() };
    let scenario = late_done_scenario(faults);
    let report = explore(&model_config(), scenario.clone());
    assert_violation_replays(&report, "late-done broken", scenario);
}

// ---------------------------------------------------------------------------
// Race 2: fail-fast requeue gap
// ---------------------------------------------------------------------------

/// Under fail-fast, worker 1's failure for cell 0 races worker 2's
/// disconnect while holding cell 1. Whichever order, cell 1 must end
/// terminal (skipped or failed-over) — never parked in the queue after
/// the sweep already failed.
fn fail_fast_scenario(faults: ModelFaults) -> impl Fn() + Send + Sync + Clone + 'static {
    move || {
        let m = std::sync::Arc::new(ModelCluster::new(2, cfg_lease_ms(100, true), faults.clone()));
        let w1 = m.register_worker();
        let w2 = m.register_worker();
        let (l1, fps1) = m.claim(w1, 1, 0).expect("grant to w1");
        assert_eq!(fps1, vec![m.fp_of(0)]);
        let (_l2, fps2) = m.claim(w2, 1, 0).expect("grant to w2");
        assert_eq!(fps2, vec![m.fp_of(1)]);

        let ma = std::sync::Arc::clone(&m);
        let a = bvc_check::thread::spawn(move || ma.done(l1, ma.fp_of(0), false));
        let mb = std::sync::Arc::clone(&m);
        let b = bvc_check::thread::spawn(move || mb.disconnect(w2));
        a.join().unwrap();
        b.join().unwrap();

        let s = m.snapshot();
        assert_eq!(s.done_count, 2, "cell left live after fail-fast: {s:?}");
        assert!(s.terminal.iter().all(|&t| t), "non-terminal cell: {s:?}");
        assert_eq!(s.queued, 0, "cell requeued after sweep failure: {s:?}");
        // Cell 0 carries the failure; cell 1 must not have succeeded
        // (it was never solved — skipped, or failed over).
        assert!(!s.succeeded[0], "failed cell recorded as success: {s:?}");
    }
}

#[test]
fn fail_fast_requeue_gap_fixed_passes() {
    let report = explore(&model_config(), fail_fast_scenario(ModelFaults::default()));
    assert_exhaustive_pass(&report, "fail-fast fixed");
}

#[test]
fn fail_fast_requeue_gap_broken_is_found_and_replays() {
    let faults = ModelFaults { skip_fail_fast_gate: true, ..ModelFaults::default() };
    let scenario = fail_fast_scenario(faults);
    let report = explore(&model_config(), scenario.clone());
    assert_violation_replays(&report, "fail-fast broken", scenario);
}

// ---------------------------------------------------------------------------
// Race 3: heartbeat renewing an unowned lease
// ---------------------------------------------------------------------------

/// Worker 1 claims cell 0 and dies. Worker 2's (buggy or malicious)
/// heartbeat naming worker 1's lease races the expiry watchdog. The
/// ownership check must keep the dead worker's lease from being renewed:
/// after expiry + drain, the cell is done. With the check removed, the
/// renew-then-expire order keeps the lease alive and the cell is never
/// finished.
fn heartbeat_scenario(faults: ModelFaults) -> impl Fn() + Send + Sync + Clone + 'static {
    move || {
        let m = std::sync::Arc::new(ModelCluster::new(1, cfg_lease_ms(100, false), faults.clone()));
        let w1 = m.register_worker();
        let w2 = m.register_worker();
        let (lease, fps) = m.claim(w1, 1, 0).expect("grant to w1");
        assert_eq!(fps, vec![m.fp_of(0)]);
        // w1 dies silently (no disconnect teardown — e.g. SIGKILL).

        let ma = std::sync::Arc::clone(&m);
        let a = bvc_check::thread::spawn(move || ma.heartbeat(w2, lease, 10_000));
        let mb = std::sync::Arc::clone(&m);
        let b = bvc_check::thread::spawn(move || mb.expire_at(200));
        a.join().unwrap();
        b.join().unwrap();

        // Drain with the clock still early (before the straggler
        // half-lease threshold) so duplicate dispatch cannot paper over a
        // lease that wrongly survived expiry.
        m.drain(w2, 10);
        let s = m.snapshot();
        assert_eq!(s.done_count, 1, "dead worker's lease kept the cell alive: {s:?}");
        assert!(s.terminal[0], "cell never completed: {s:?}");
        assert_eq!(m.appended(), vec![m.fp_of(0)]);
    }
}

#[test]
fn heartbeat_unowned_lease_fixed_passes() {
    let report = explore(&model_config(), heartbeat_scenario(ModelFaults::default()));
    assert_exhaustive_pass(&report, "heartbeat fixed");
}

#[test]
fn heartbeat_unowned_lease_broken_is_found_and_replays() {
    let faults = ModelFaults { heartbeat_any_lease: true, ..ModelFaults::default() };
    let scenario = heartbeat_scenario(faults);
    let report = explore(&model_config(), scenario.clone());
    assert_violation_replays(&report, "heartbeat broken", scenario);
}
