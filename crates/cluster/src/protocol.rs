//! The coordinator/worker wire protocol: flat JSON frames over the
//! length-prefixed framing of [`bvc_serve::net`].
//!
//! Every frame is one flat JSON object with a `"t"` discriminator,
//! encoded with [`bvc_serve::json::JsonObject`] and parsed with
//! [`bvc_serve::json::FlatJson`] (no nesting; list-valued fields cross as
//! delimiter-joined strings). Exact `f64`s — journal value bits and the
//! retry-escalation constants that decide attempt counts — cross as
//! 16-hex-digit bit patterns ([`bvc_journal::f64_to_hex`]) rather than
//! decimal, so the two sides can never disagree on a bit.
//!
//! Conversation shape:
//!
//! ```text
//! worker:  hello {proto, threads}
//! coord:   config {label, token, retry/injection schedule, lease_ms, batch}
//! worker:  claim {max}
//! coord:   task* {fp, key, spec}   then   grant {lease, n, lease_ms}
//!          | wait {ms}             (queue empty but cells outstanding)
//!          | fin                   (all cells terminal — disconnect)
//! worker:  done {lease, fp, ok, bits|code+reason, attempts, elapsed_us}   per cell
//! worker:  hb {lease}              (heartbeat thread, keeps the lease alive)
//! any:     stats  ->  stats_text {text}
//! coord:   err {msg}               (protocol violation or fatal conflict)
//! ```

use bvc_journal::{f64_from_hex, f64_to_hex};
use bvc_serve::json::{FlatJson, JsonObject};

/// Protocol version; bumped on any incompatible frame change.
pub const PROTO_VERSION: u32 = 2;

/// Separator for list-valued fields (injection substrings). An ASCII
/// control character, so it never collides with cell-key text and always
/// crosses JSON as an escape.
pub const LIST_SEP: char = '\u{1f}';

/// The sweep-wide execution configuration the coordinator pushes to every
/// worker right after `hello`. Carrying the full retry/injection schedule
/// means a worker reproduces the exact attempt counts and failure
/// messages a local run would journal.
#[derive(Debug, Clone, PartialEq)]
pub struct WireConfig {
    /// Sweep label (for worker-side logging only).
    pub label: String,
    /// Solver configuration token mixed into cell fingerprints.
    pub token: String,
    /// Whether cells run the pre-solve model audit.
    pub audit: bool,
    /// Per-attempt wall-clock deadline, in milliseconds.
    pub cell_deadline_ms: Option<u64>,
    /// Total attempts per cell (first try included).
    pub max_attempts: u32,
    /// Iteration-budget growth per retry (bit-exact across the wire).
    pub iteration_growth: f64,
    /// Aperiodicity bump per retry (bit-exact across the wire).
    pub tau_step: f64,
    /// Base retry backoff, in milliseconds.
    pub backoff_ms: u64,
    /// Exponential-backoff ceiling, in milliseconds. Shipped so local and
    /// distributed runs sleep the identical escalation schedule.
    pub max_backoff_ms: u64,
    /// Panic-injection key substrings.
    pub inject_panic: Vec<String>,
    /// No-convergence-injection key substrings.
    pub inject_noconv: Vec<String>,
    /// Suggested claim batch size.
    pub batch: u32,
    /// Lease duration workers must out-heartbeat, in milliseconds.
    pub lease_ms: u64,
}

/// One unit of work: the cell's journal fingerprint, its human-readable
/// key, and the encoded [`crate::jobs::JobSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskFrame {
    /// `cell_fingerprint(key, token)` — the journal/dedup identity.
    pub fp: u64,
    /// Human-readable cell key.
    pub key: String,
    /// `JobSpec::encode()` text the worker decodes and solves.
    pub spec: String,
}

/// One completed cell reported by a worker.
#[derive(Debug, Clone, PartialEq)]
pub struct DoneFrame {
    /// The lease this cell was granted under.
    pub lease: u64,
    /// The cell's fingerprint (dedup identity).
    pub fp: u64,
    /// Human-readable cell key (journal redundancy / sanity checks).
    pub key: String,
    /// Whether the cell solved.
    pub ok: bool,
    /// Attempts the worker made.
    pub attempts: u32,
    /// Raw bit patterns of the encoded value (empty on failure).
    pub bits: Vec<u64>,
    /// Failure code (empty on success).
    pub code: String,
    /// Failure reason (empty on success).
    pub reason: String,
    /// Worker-side wall-clock time for the cell, in microseconds.
    pub elapsed_us: u64,
}

/// Every frame of the protocol. See the module docs for the conversation
/// shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker introduction: protocol version and solver thread count.
    Hello {
        /// Must equal [`PROTO_VERSION`].
        proto: u32,
        /// Worker's solver thread count (capacity advertisement).
        threads: u32,
    },
    /// Coordinator's sweep-wide execution configuration.
    Config(WireConfig),
    /// Worker requests up to `max` cells.
    Claim {
        /// Upper bound on the batch size granted.
        max: u32,
    },
    /// One cell of a batch being granted (sent before the `grant`).
    Task(TaskFrame),
    /// Closes a batch: the preceding `task` frames run under this lease.
    Grant {
        /// Lease id the worker must heartbeat and report under.
        lease: u64,
        /// Number of `task` frames in the batch.
        count: u32,
        /// Lease duration in milliseconds.
        lease_ms: u64,
    },
    /// Nothing to hand out right now; ask again in `ms` milliseconds.
    Wait {
        /// Suggested retry delay.
        ms: u64,
    },
    /// All cells are terminal; the worker should disconnect.
    Fin,
    /// A completed cell.
    Done(DoneFrame),
    /// Keeps a lease alive while its batch is still being solved.
    Heartbeat {
        /// The lease being extended.
        lease: u64,
    },
    /// Requests the coordinator's metrics-style stats text.
    Stats,
    /// Reply to [`Frame::Stats`].
    StatsText {
        /// `name value` lines, one metric per line.
        text: String,
    },
    /// Protocol violation or fatal sweep error; the connection closes.
    Err {
        /// Human-readable description.
        msg: String,
    },
}

fn join_list(items: &[String]) -> String {
    items.join(&LIST_SEP.to_string())
}

fn split_list(joined: &str) -> Vec<String> {
    if joined.is_empty() {
        Vec::new()
    } else {
        joined.split(LIST_SEP).map(str::to_string).collect()
    }
}

fn join_bits(bits: &[u64]) -> String {
    bits.iter().map(|&b| f64_to_hex(f64::from_bits(b))).collect::<Vec<_>>().join(",")
}

fn split_bits(joined: &str) -> Option<Vec<u64>> {
    if joined.is_empty() {
        return Some(Vec::new());
    }
    joined.split(',').map(|h| f64_from_hex(h).map(f64::to_bits)).collect()
}

fn get_int(doc: &FlatJson, k: &str) -> Option<u64> {
    let n = doc.get_num(k)?;
    if n.is_finite() && n >= 0.0 && n <= (1u64 << 53) as f64 {
        Some(n as u64)
    } else {
        None
    }
}

fn get_hex_f64(doc: &FlatJson, k: &str) -> Option<f64> {
    f64_from_hex(doc.get_str(k)?)
}

fn get_fp(doc: &FlatJson, k: &str) -> Option<u64> {
    u64::from_str_radix(doc.get_str(k)?, 16).ok()
}

impl Frame {
    /// Encodes the frame as one flat JSON object.
    pub fn encode(&self) -> String {
        match self {
            Frame::Hello { proto, threads } => JsonObject::new()
                .str("t", "hello")
                .int("proto", u64::from(*proto))
                .int("threads", u64::from(*threads))
                .finish(),
            Frame::Config(c) => {
                let mut obj = JsonObject::new()
                    .str("t", "config")
                    .str("label", &c.label)
                    .str("token", &c.token)
                    .bool("audit", c.audit)
                    .int("max_attempts", u64::from(c.max_attempts))
                    .str("growth", &f64_to_hex(c.iteration_growth))
                    .str("tau_step", &f64_to_hex(c.tau_step))
                    .int("backoff_ms", c.backoff_ms)
                    .int("max_backoff_ms", c.max_backoff_ms)
                    .str("inj_panic", &join_list(&c.inject_panic))
                    .str("inj_noconv", &join_list(&c.inject_noconv))
                    .int("batch", u64::from(c.batch))
                    .int("lease_ms", c.lease_ms);
                if let Some(ms) = c.cell_deadline_ms {
                    obj = obj.int("deadline_ms", ms);
                }
                obj.finish()
            }
            Frame::Claim { max } => {
                JsonObject::new().str("t", "claim").int("max", u64::from(*max)).finish()
            }
            Frame::Task(task) => JsonObject::new()
                .str("t", "task")
                .str("fp", &format!("{:016x}", task.fp))
                .str("key", &task.key)
                .str("spec", &task.spec)
                .finish(),
            Frame::Grant { lease, count, lease_ms } => JsonObject::new()
                .str("t", "grant")
                .int("lease", *lease)
                .int("n", u64::from(*count))
                .int("lease_ms", *lease_ms)
                .finish(),
            Frame::Wait { ms } => JsonObject::new().str("t", "wait").int("ms", *ms).finish(),
            Frame::Fin => JsonObject::new().str("t", "fin").finish(),
            Frame::Done(d) => JsonObject::new()
                .str("t", "done")
                .int("lease", d.lease)
                .str("fp", &format!("{:016x}", d.fp))
                .str("key", &d.key)
                .bool("ok", d.ok)
                .int("attempts", u64::from(d.attempts))
                .str("bits", &join_bits(&d.bits))
                .str("code", &d.code)
                .str("reason", &d.reason)
                .int("elapsed_us", d.elapsed_us)
                .finish(),
            Frame::Heartbeat { lease } => {
                JsonObject::new().str("t", "hb").int("lease", *lease).finish()
            }
            Frame::Stats => JsonObject::new().str("t", "stats").finish(),
            Frame::StatsText { text } => {
                JsonObject::new().str("t", "stats_text").str("text", text).finish()
            }
            Frame::Err { msg } => JsonObject::new().str("t", "err").str("msg", msg).finish(),
        }
    }

    /// Decodes one frame. `Err` carries a readable reason; the connection
    /// handling a malformed frame drops the peer.
    pub fn decode(payload: &str) -> Result<Frame, String> {
        let doc = FlatJson::parse(payload).map_err(|e| format!("bad frame json: {e}"))?;
        let t = doc.get_str("t").ok_or("frame missing \"t\"")?;
        let field = |k: &str| format!("{t} frame missing/invalid \"{k}\"");
        match t {
            "hello" => Ok(Frame::Hello {
                proto: get_int(&doc, "proto").ok_or_else(|| field("proto"))? as u32,
                threads: get_int(&doc, "threads").ok_or_else(|| field("threads"))? as u32,
            }),
            "config" => Ok(Frame::Config(WireConfig {
                label: doc.get_str("label").ok_or_else(|| field("label"))?.to_string(),
                token: doc.get_str("token").ok_or_else(|| field("token"))?.to_string(),
                audit: doc.get_bool("audit").ok_or_else(|| field("audit"))?,
                cell_deadline_ms: if doc.has("deadline_ms") {
                    Some(get_int(&doc, "deadline_ms").ok_or_else(|| field("deadline_ms"))?)
                } else {
                    None
                },
                max_attempts: get_int(&doc, "max_attempts").ok_or_else(|| field("max_attempts"))?
                    as u32,
                iteration_growth: get_hex_f64(&doc, "growth").ok_or_else(|| field("growth"))?,
                tau_step: get_hex_f64(&doc, "tau_step").ok_or_else(|| field("tau_step"))?,
                backoff_ms: get_int(&doc, "backoff_ms").ok_or_else(|| field("backoff_ms"))?,
                max_backoff_ms: get_int(&doc, "max_backoff_ms")
                    .ok_or_else(|| field("max_backoff_ms"))?,
                inject_panic: split_list(doc.get_str("inj_panic").unwrap_or_default()),
                inject_noconv: split_list(doc.get_str("inj_noconv").unwrap_or_default()),
                batch: get_int(&doc, "batch").ok_or_else(|| field("batch"))? as u32,
                lease_ms: get_int(&doc, "lease_ms").ok_or_else(|| field("lease_ms"))?,
            })),
            "claim" => {
                Ok(Frame::Claim { max: get_int(&doc, "max").ok_or_else(|| field("max"))? as u32 })
            }
            "task" => Ok(Frame::Task(TaskFrame {
                fp: get_fp(&doc, "fp").ok_or_else(|| field("fp"))?,
                key: doc.get_str("key").ok_or_else(|| field("key"))?.to_string(),
                spec: doc.get_str("spec").ok_or_else(|| field("spec"))?.to_string(),
            })),
            "grant" => Ok(Frame::Grant {
                lease: get_int(&doc, "lease").ok_or_else(|| field("lease"))?,
                count: get_int(&doc, "n").ok_or_else(|| field("n"))? as u32,
                lease_ms: get_int(&doc, "lease_ms").ok_or_else(|| field("lease_ms"))?,
            }),
            "wait" => Ok(Frame::Wait { ms: get_int(&doc, "ms").ok_or_else(|| field("ms"))? }),
            "fin" => Ok(Frame::Fin),
            "done" => Ok(Frame::Done(DoneFrame {
                lease: get_int(&doc, "lease").ok_or_else(|| field("lease"))?,
                fp: get_fp(&doc, "fp").ok_or_else(|| field("fp"))?,
                key: doc.get_str("key").ok_or_else(|| field("key"))?.to_string(),
                ok: doc.get_bool("ok").ok_or_else(|| field("ok"))?,
                attempts: get_int(&doc, "attempts").ok_or_else(|| field("attempts"))? as u32,
                bits: split_bits(doc.get_str("bits").unwrap_or_default())
                    .ok_or_else(|| field("bits"))?,
                code: doc.get_str("code").unwrap_or_default().to_string(),
                reason: doc.get_str("reason").unwrap_or_default().to_string(),
                elapsed_us: get_int(&doc, "elapsed_us").unwrap_or(0),
            })),
            "hb" => Ok(Frame::Heartbeat {
                lease: get_int(&doc, "lease").ok_or_else(|| field("lease"))?,
            }),
            "stats" => Ok(Frame::Stats),
            "stats_text" => Ok(Frame::StatsText {
                text: doc.get_str("text").ok_or_else(|| field("text"))?.to_string(),
            }),
            "err" => {
                Ok(Frame::Err { msg: doc.get_str("msg").unwrap_or("unspecified").to_string() })
            }
            other => Err(format!("unknown frame type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let encoded = frame.encode();
        let decoded = Frame::decode(&encoded).unwrap_or_else(|e| panic!("{e}: {encoded}"));
        assert_eq!(decoded, frame, "wire roundtrip of {encoded}");
    }

    #[test]
    fn every_frame_roundtrips() {
        roundtrip(Frame::Hello { proto: PROTO_VERSION, threads: 4 });
        roundtrip(Frame::Config(WireConfig {
            label: "table2-setting1".into(),
            token: "rvi;tau=0.1".into(),
            audit: true,
            cell_deadline_ms: Some(30_000),
            max_attempts: 3,
            iteration_growth: 4.0,
            tau_step: 0.05,
            backoff_ms: 50,
            max_backoff_ms: 5_000,
            inject_panic: vec!["a=10%".into(), "s2".into()],
            inject_noconv: vec![],
            batch: 4,
            lease_ms: 30_000,
        }));
        roundtrip(Frame::Claim { max: 8 });
        roundtrip(Frame::Task(TaskFrame {
            fp: 0xdead_beef_0123_4567,
            key: "s1 b:g=3:2 a=10%".into(),
            spec: "t2;3fb999999999999a;3;2;1".into(),
        }));
        roundtrip(Frame::Grant { lease: 7, count: 3, lease_ms: 30_000 });
        roundtrip(Frame::Wait { ms: 250 });
        roundtrip(Frame::Fin);
        roundtrip(Frame::Done(DoneFrame {
            lease: 7,
            fp: 1,
            key: "k".into(),
            ok: true,
            attempts: 2,
            bits: vec![0.25f64.to_bits(), f64::NAN.to_bits(), (-0.0f64).to_bits()],
            code: String::new(),
            reason: String::new(),
            elapsed_us: 1234,
        }));
        roundtrip(Frame::Done(DoneFrame {
            lease: 8,
            fp: 2,
            key: "k2".into(),
            ok: false,
            attempts: 3,
            bits: vec![],
            code: "no-conv".into(),
            reason: "rvi did not converge\nresidual 1e-3".into(),
            elapsed_us: 0,
        }));
        roundtrip(Frame::Heartbeat { lease: 7 });
        roundtrip(Frame::Stats);
        roundtrip(Frame::StatsText { text: "cluster_cells_total 24\n".into() });
        roundtrip(Frame::Err { msg: "conflicting bits".into() });
    }

    #[test]
    fn config_without_deadline_roundtrips_as_none() {
        let cfg = WireConfig {
            label: "l".into(),
            token: "t".into(),
            audit: false,
            cell_deadline_ms: None,
            max_attempts: 1,
            iteration_growth: 4.0,
            tau_step: 0.05,
            backoff_ms: 0,
            max_backoff_ms: 5_000,
            inject_panic: vec![],
            inject_noconv: vec![],
            batch: 1,
            lease_ms: 1000,
        };
        roundtrip(Frame::Config(cfg));
    }

    #[test]
    fn escalation_constants_cross_bit_exactly() {
        let cfg = WireConfig {
            label: "l".into(),
            token: "t".into(),
            audit: false,
            cell_deadline_ms: None,
            // A value decimal formatting would be tempted to shorten.
            max_attempts: 5,
            iteration_growth: 4.000000000000001,
            tau_step: 0.05000000000000001,
            backoff_ms: 0,
            max_backoff_ms: 5_000,
            inject_panic: vec![],
            inject_noconv: vec![],
            batch: 1,
            lease_ms: 1000,
        };
        let Frame::Config(parsed) = Frame::decode(&Frame::Config(cfg.clone()).encode()).unwrap()
        else {
            panic!("not a config frame");
        };
        assert_eq!(parsed.iteration_growth.to_bits(), cfg.iteration_growth.to_bits());
        assert_eq!(parsed.tau_step.to_bits(), cfg.tau_step.to_bits());
    }

    #[test]
    fn malformed_frames_are_rejected_with_reasons() {
        assert!(Frame::decode("").is_err());
        assert!(Frame::decode("{}").is_err());
        assert!(Frame::decode("{\"t\":\"launch\"}").is_err());
        assert!(Frame::decode("{\"t\":\"claim\"}").is_err());
        assert!(
            Frame::decode("{\"t\":\"task\",\"fp\":\"xyz\",\"key\":\"k\",\"spec\":\"s\"}").is_err()
        );
        assert!(Frame::decode(
            "{\"t\":\"done\",\"lease\":1,\"fp\":\"01\",\"key\":\"k\",\"ok\":true,\"attempts\":1,\"bits\":\"zz\"}"
        )
        .is_err());
    }
}
