//! bvc-cluster: distributed sweep execution with lease-based fault
//! tolerance and bit-identical checkpoint journals.
//!
//! A sweep (any of the table binaries' cell grids) is sharded across
//! worker processes over a length-prefixed JSON-over-TCP protocol built on
//! [`bvc_serve::net`]:
//!
//! * the **coordinator** ([`coordinator`]) owns the cell queue and the
//!   append-only journal, hands out work under time-bounded leases with
//!   heartbeats, requeues cells whose lease expired (worker death or
//!   stall), re-dispatches tail stragglers, and dedupes duplicate
//!   completions by fingerprint — first result wins, conflicting value
//!   bits are a hard error;
//! * **workers** ([`worker`]) are stateless loops around the same
//!   budget-governed solver the local sweep runner uses: connect, claim a
//!   batch of cells, solve each with the exact retry-escalation schedule
//!   of a local run, and stream results back.
//!
//! Because cell fingerprints ([`bvc_journal::cell_fingerprint`]), the
//! journal line codec ([`bvc_journal::encode_line`]) and the per-cell
//! attempt loop ([`cell::run_cell_attempts`]) are all shared with the
//! local runner, a distributed run writes a journal **byte-identical** to
//! a single-process `run_sweep` over the same cells.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod coordinator;
pub mod jobs;
#[cfg(bvc_check)]
pub mod model;
pub mod protocol;
pub(crate) mod sync;
pub mod worker;

pub use cell::{
    run_cell_attempts, CellContext, CellFailure, CellRunConfig, RetryPolicy, TunableSolve,
};
pub use coordinator::{
    run_coordinator, ClusterCell, ClusterConfig, ClusterError, ClusterReport, Coordinator,
};
pub use jobs::{workload, JobSpec, Workload, WORKLOAD_NAMES};
pub use worker::{run_worker, DieMode, ReconnectPolicy, WorkerOptions, WorkerSummary};
