//! The per-cell solve machinery shared by the local sweep runner
//! (`bvc_repro::sweep::run_sweep`) and the cluster workers: retry
//! escalation, budget wiring, fault classification, and the attempt loop
//! itself.
//!
//! This module is the reason a distributed run journals the same bytes as
//! a local one: both execute cells through [`run_cell_attempts`], so
//! attempt counts, failure messages, and escalation behaviour cannot
//! drift between the two execution paths.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bvc_mdp::solve::{RatioOptions, RviOptions};
use bvc_mdp::{MdpError, SolveBudget};

/// Why a cell has no value.
#[derive(Debug, Clone)]
pub enum CellFailure {
    /// The worker panicked; the payload is rendered to a string.
    Panicked(String),
    /// The solver returned a structured error after exhausting retries.
    Solver(MdpError),
    /// A remote worker reported the failure over the cluster protocol.
    /// `code` and `message` are the worker-side [`reason_code`] and
    /// [`message`], so the coordinator journals the same bytes a local
    /// run would have.
    ///
    /// [`reason_code`]: CellFailure::reason_code
    /// [`message`]: CellFailure::message
    Remote {
        /// Short failure code (`panic`, `no-conv`, `deadline`, ...).
        code: String,
        /// Full human-readable reason.
        message: String,
    },
    /// The coordinator dispatched the cell its maximum number of times and
    /// every lease expired or disconnected without a result.
    Lost {
        /// How many times the cell was handed to a worker.
        dispatches: u32,
    },
    /// The cell was never (fully) attempted: a fail-fast sweep was cancelled
    /// by an earlier failure before this cell could run to completion.
    Skipped,
}

impl CellFailure {
    /// Short code rendered inside grid cells (`FAIL(code)`).
    pub fn reason_code(&self) -> String {
        match self {
            CellFailure::Panicked(_) => "panic".into(),
            CellFailure::Solver(MdpError::NoConvergence { .. }) => "no-conv".into(),
            CellFailure::Solver(MdpError::DeadlineExceeded { .. }) => "deadline".into(),
            CellFailure::Solver(MdpError::Cancelled { .. }) => "cancelled".into(),
            CellFailure::Solver(MdpError::AuditFailed { check, .. }) => format!("audit: {check}"),
            CellFailure::Solver(_) => "error".into(),
            CellFailure::Remote { code, .. } => code.clone(),
            CellFailure::Lost { .. } => "lost".into(),
            CellFailure::Skipped => "skipped".into(),
        }
    }

    /// Full human-readable reason, used in journals and failure legends.
    pub fn message(&self) -> String {
        match self {
            CellFailure::Panicked(p) => format!("panic: {p}"),
            CellFailure::Solver(e) => e.to_string(),
            CellFailure::Remote { message, .. } => message.clone(),
            CellFailure::Lost { dispatches } => {
                format!("lost: no result after {dispatches} dispatch(es) (worker death or stall)")
            }
            CellFailure::Skipped => "skipped (sweep cancelled before this cell ran)".into(),
        }
    }
}

/// Escalation schedule for retryable solver failures
/// ([`MdpError::is_retryable`], i.e. `NoConvergence`). Panics and
/// non-retryable errors are never retried.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per cell (first try included).
    pub max_attempts: u32,
    /// Multiplier applied to the solver's iteration budget per retry
    /// (`scale = growth^attempt`).
    pub iteration_growth: f64,
    /// Additive bump to the aperiodicity mixing weight per retry, to break
    /// periodic oscillation stalls.
    pub tau_step: f64,
    /// Base backoff slept before each retry; doubles per attempt up to
    /// [`RetryPolicy::max_backoff`].
    pub backoff: Duration,
    /// Ceiling for the exponential backoff sleep. Without it the doubled
    /// sleep reaches ~55 minutes by attempt 16 (or overflows `Duration`
    /// for large bases) — a hung-looking worker, not a retry schedule.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// The backoff sleep before retry number `attempt` (1-based like the
    /// attempt loop): `backoff * 2^attempt`, saturating, capped at
    /// `max_backoff`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let mult = 2u32.saturating_pow(attempt.min(16));
        self.backoff.saturating_mul(mult).min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            iteration_growth: 4.0,
            tau_step: 0.05,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
        }
    }
}

/// What the runner hands a cell's solve function on each attempt: the
/// budget to thread into solver options plus the escalation state.
#[derive(Debug, Clone)]
pub struct CellContext {
    /// Attempt index, 0-based (0 = first try).
    pub attempt: u32,
    /// Budget carrying the per-cell deadline and the sweep's shared cancel
    /// flag. Solve functions must thread this into their solver options or
    /// watchdogs cannot interrupt them.
    pub budget: SolveBudget,
    /// Iteration-budget multiplier for this attempt
    /// (`iteration_growth^attempt`).
    pub iteration_scale: f64,
    /// Additive aperiodicity bump for this attempt (`attempt * tau_step`).
    pub tau_offset: f64,
    /// Whether the sweep requested a pre-solve model audit;
    /// [`TunableSolve`] impls whose options carry an audit gate forward it.
    pub audit: bool,
    /// Worker threads inside each Bellman sweep (`0`/`1` = single-threaded).
    /// A pure throughput knob: results are bit-identical for every value,
    /// so it is never part of cell fingerprints and never ships over the
    /// cluster wire (each worker applies its own local setting).
    pub solve_threads: usize,
    /// Minimum states per intra-solve shard; `0` keeps the solver default
    /// ([`bvc_mdp::DEFAULT_SHARD_MIN_STATES`]).
    pub shard_min_states: usize,
}

impl CellContext {
    /// Convenience: default options of type `T` with this context's budget
    /// and escalation applied.
    pub fn solve_options<T: TunableSolve>(&self) -> T {
        let mut t = T::default();
        t.tune(self);
        t
    }
}

/// Solver option types the runner knows how to escalate: apply the budget,
/// scale the iteration cap, bump the aperiodicity weight.
pub trait TunableSolve: Default {
    /// Applies `ctx`'s budget and escalation to these options.
    fn tune(&mut self, ctx: &CellContext);
}

fn scale_iterations(base: usize, scale: f64) -> usize {
    ((base as f64) * scale).min(1e15) as usize
}

/// Bumped tau, clamped below 1 (0.9 cap leaves the transform meaningful).
fn bump_tau(base: f64, offset: f64) -> f64 {
    (base + offset).min(0.9)
}

impl TunableSolve for RviOptions {
    fn tune(&mut self, ctx: &CellContext) {
        self.max_iterations = scale_iterations(self.max_iterations, ctx.iteration_scale);
        self.aperiodicity_tau = bump_tau(self.aperiodicity_tau, ctx.tau_offset);
        self.budget = ctx.budget.clone();
        self.solve_threads = ctx.solve_threads.max(1);
        if ctx.shard_min_states > 0 {
            self.shard_min_states = ctx.shard_min_states;
        }
    }
}

impl TunableSolve for RatioOptions {
    fn tune(&mut self, ctx: &CellContext) {
        self.rvi.tune(ctx);
    }
}

impl TunableSolve for bvc_bu::SolveOptions {
    fn tune(&mut self, ctx: &CellContext) {
        self.max_iterations = scale_iterations(self.max_iterations, ctx.iteration_scale);
        self.aperiodicity_tau = bump_tau(self.aperiodicity_tau, ctx.tau_offset);
        self.budget = ctx.budget.clone();
        self.audit = ctx.audit;
        self.solve_threads = ctx.solve_threads.max(1);
        if ctx.shard_min_states > 0 {
            self.shard_min_states = ctx.shard_min_states;
        }
    }
}

impl TunableSolve for bvc_bitcoin::SolveOptions {
    fn tune(&mut self, ctx: &CellContext) {
        self.max_iterations = scale_iterations(self.max_iterations, ctx.iteration_scale);
        self.aperiodicity_tau = bump_tau(self.aperiodicity_tau, ctx.tau_offset);
        self.budget = ctx.budget.clone();
        self.audit = ctx.audit;
        self.solve_threads = ctx.solve_threads.max(1);
        if ctx.shard_min_states > 0 {
            self.shard_min_states = ctx.shard_min_states;
        }
    }
}

/// Per-cell execution configuration: everything [`run_cell_attempts`]
/// needs, independent of where the cell runs (local sweep thread or
/// cluster worker). The coordinator ships these fields to workers in its
/// config frame so both sides escalate identically.
#[derive(Debug, Clone, Default)]
pub struct CellRunConfig {
    /// Retry escalation schedule.
    pub retry: RetryPolicy,
    /// Per-attempt wall-clock deadline for each cell.
    pub cell_deadline: Option<Duration>,
    /// Run the static model audit before each cell's solve.
    pub audit: bool,
    /// Worker threads inside each Bellman sweep, forwarded into every
    /// [`CellContext`]. Deliberately NOT part of the coordinator's config
    /// frame: it changes throughput, never results, so each worker applies
    /// its own local `--solve-threads` instead of inheriting the
    /// coordinator's.
    pub solve_threads: usize,
    /// Minimum states per intra-solve shard (`0` = solver default); also
    /// worker-local, like `solve_threads`.
    pub shard_min_states: usize,
    /// Fault injection: cells whose key contains any of these substrings
    /// panic instead of solving. Testing/smoke only.
    pub inject_panic: Vec<String>,
    /// Fault injection: cells whose key contains any of these substrings
    /// report `NoConvergence` instead of solving (on every attempt, so
    /// retries are exercised and then exhausted). Testing/smoke only.
    pub inject_noconv: Vec<String>,
}

/// Runs one cell's full attempt loop — fault injection, panic isolation,
/// budget wiring, and retry escalation — and returns the terminal outcome
/// plus the number of attempts made.
///
/// This is the single implementation both execution paths share; the
/// journaled `attempts` field of a cell therefore cannot differ between a
/// local and a distributed run of the same cell under the same config.
pub fn run_cell_attempts<T>(
    key: &str,
    cfg: &CellRunConfig,
    cancel: &Arc<AtomicBool>,
    solve: impl Fn(&CellContext) -> Result<T, MdpError>,
) -> (Result<T, CellFailure>, u32) {
    let inject_panic = cfg.inject_panic.iter().any(|s| key.contains(s));
    let inject_noconv = cfg.inject_noconv.iter().any(|s| key.contains(s));
    let mut attempts = 0u32;
    let outcome = loop {
        let attempt = attempts;
        attempts += 1;
        let mut budget = SolveBudget::unlimited().with_cancel(cancel.clone());
        if let Some(deadline) = cfg.cell_deadline {
            budget = budget.deadline_at(Instant::now() + deadline);
        }
        let ctx = CellContext {
            attempt,
            budget,
            iteration_scale: cfg.retry.iteration_growth.powi(attempt as i32),
            tau_offset: f64::from(attempt) * cfg.retry.tau_step,
            audit: cfg.audit,
            solve_threads: cfg.solve_threads,
            shard_min_states: cfg.shard_min_states,
        };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected panic for cell '{key}'");
            }
            if inject_noconv {
                return Err(MdpError::NoConvergence {
                    solver: "injected",
                    iterations: 0,
                    residual: f64::INFINITY,
                });
            }
            solve(&ctx)
        }));
        match result {
            Ok(Ok(value)) => break Ok(value),
            Ok(Err(e)) if e.is_cancellation() => break Err(CellFailure::Skipped),
            Ok(Err(e)) if e.is_retryable() && attempts < cfg.retry.max_attempts => {
                if !cfg.retry.backoff.is_zero() {
                    std::thread::sleep(cfg.retry.backoff_for(attempt));
                }
            }
            Ok(Err(e)) => break Err(CellFailure::Solver(e)),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "non-string panic payload".into());
                break Err(CellFailure::Panicked(msg));
            }
        }
    };
    (outcome, attempts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn never_cancel() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(false))
    }

    #[test]
    fn success_on_first_attempt() {
        let cfg = CellRunConfig::default();
        let (outcome, attempts) = run_cell_attempts("k", &cfg, &never_cancel(), |_ctx| Ok(0.25f64));
        assert_eq!(outcome.unwrap(), 0.25);
        assert_eq!(attempts, 1);
    }

    #[test]
    fn retryable_failures_escalate_then_exhaust() {
        let mut cfg = CellRunConfig::default();
        cfg.retry.backoff = Duration::ZERO;
        let (outcome, attempts) = run_cell_attempts("k", &cfg, &never_cancel(), |ctx| {
            assert!(ctx.iteration_scale >= 1.0);
            Err::<f64, _>(MdpError::NoConvergence { solver: "t", iterations: 1, residual: 1.0 })
        });
        assert!(matches!(outcome, Err(CellFailure::Solver(MdpError::NoConvergence { .. }))));
        assert_eq!(attempts, cfg.retry.max_attempts);
    }

    #[test]
    fn panics_are_isolated_and_never_retried() {
        let mut cfg = CellRunConfig::default();
        cfg.retry.backoff = Duration::ZERO;
        let (outcome, attempts) =
            run_cell_attempts::<f64>("k", &cfg, &never_cancel(), |_ctx| panic!("boom"));
        match outcome {
            Err(CellFailure::Panicked(msg)) => assert!(msg.contains("boom")),
            other => panic!("expected panic failure, got {other:?}"),
        }
        assert_eq!(attempts, 1);
    }

    #[test]
    fn injected_faults_match_by_key_substring() {
        let cfg = CellRunConfig { inject_panic: vec!["a=10%".into()], ..Default::default() };
        let (outcome, _) = run_cell_attempts::<f64>("s1 a=10%", &cfg, &never_cancel(), |_| Ok(1.0));
        assert!(matches!(outcome, Err(CellFailure::Panicked(_))));
        let (outcome, _) = run_cell_attempts::<f64>("s1 a=15%", &cfg, &never_cancel(), |_| Ok(1.0));
        assert!(outcome.is_ok());
    }

    #[test]
    fn remote_and_lost_failures_render_codes() {
        let remote = CellFailure::Remote { code: "no-conv".into(), message: "rvi gave up".into() };
        assert_eq!(remote.reason_code(), "no-conv");
        assert_eq!(remote.message(), "rvi gave up");
        let lost = CellFailure::Lost { dispatches: 3 };
        assert_eq!(lost.reason_code(), "lost");
        assert!(lost.message().contains("3 dispatch(es)"));
    }

    #[test]
    fn backoff_doubles_then_caps_at_max_backoff() {
        let policy = RetryPolicy {
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(400),
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff_for(0), Duration::from_millis(50));
        assert_eq!(policy.backoff_for(1), Duration::from_millis(100));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(400), "cap engages");
        assert_eq!(policy.backoff_for(16), Duration::from_millis(400));
        assert_eq!(policy.backoff_for(u32::MAX), Duration::from_millis(400));

        // Large bases used to overflow `Duration * u32` and panic; now the
        // multiply saturates and the cap still wins.
        let huge = RetryPolicy {
            backoff: Duration::from_secs(u64::MAX / 4),
            max_backoff: Duration::from_secs(30),
            ..RetryPolicy::default()
        };
        assert_eq!(huge.backoff_for(16), Duration::from_secs(30));
    }
}
